// ssvbr/dist/distributions.h
//
// Concrete parametric distributions used throughout the reproduction:
//
//   * Normal      — background Gaussian marginals.
//   * Gamma       — body of VBR frame-size marginals (Garrett &
//                   Willinger, SIGCOMM '94, model the Star Wars trace
//                   body as Gamma).
//   * Pareto      — heavy upper tail of frame sizes; the source of the
//                   "long tail far from Gaussian" noted in Section 3.
//   * Lognormal   — alternative body model, used in tests/baselines.
//   * GammaPareto — spliced Gamma body + Pareto tail with continuous
//                   density at the splice point, the combined marginal
//                   of Garrett & Willinger referenced by the paper.
#pragma once

#include <string>

#include "dist/distribution.h"

namespace ssvbr {

/// Normal(mean, stddev).
class NormalDistribution final : public Distribution {
 public:
  NormalDistribution(double mean, double stddev);
  double cdf(double y) const override;
  double pdf(double y) const override;
  double quantile(double p) const override;
  double mean() const override { return mean_; }
  double variance() const override { return stddev_ * stddev_; }
  double sample(RandomEngine& rng) const override;
  std::string describe() const override;

 private:
  double mean_;
  double stddev_;
};

/// Gamma(shape k, scale theta): density x^{k-1} e^{-x/theta} / (Gamma(k) theta^k).
class GammaDistribution final : public Distribution {
 public:
  GammaDistribution(double shape, double scale);
  double cdf(double y) const override;
  double pdf(double y) const override;
  double quantile(double p) const override;
  double mean() const override { return shape_ * scale_; }
  double variance() const override { return shape_ * scale_ * scale_; }
  double sample(RandomEngine& rng) const override;  // Marsaglia-Tsang
  std::string describe() const override;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Pareto(alpha, xm): F(y) = 1 - (xm / y)^alpha for y >= xm.
class ParetoDistribution final : public Distribution {
 public:
  ParetoDistribution(double alpha, double xm);
  double cdf(double y) const override;
  double pdf(double y) const override;
  double quantile(double p) const override;
  double mean() const override;      // +inf when alpha <= 1
  double variance() const override;  // +inf when alpha <= 2
  std::string describe() const override;

  double alpha() const { return alpha_; }
  double xm() const { return xm_; }

 private:
  double alpha_;
  double xm_;
};

/// Lognormal(mu, sigma) of the underlying normal.
class LognormalDistribution final : public Distribution {
 public:
  LognormalDistribution(double mu, double sigma);
  double cdf(double y) const override;
  double pdf(double y) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  double mu_;
  double sigma_;
};

/// Spliced Gamma body + Pareto tail.
///
/// For y < split the distribution follows Gamma(shape, scale) rescaled
/// to mass (1 - tail_mass); for y >= split it follows a Pareto(alpha,
/// split) tail carrying `tail_mass`. This is the combined Gamma/Pareto
/// marginal Garrett & Willinger fitted to the Star Wars trace and that
/// the paper cites as the state of the art it builds upon.
class GammaParetoDistribution final : public Distribution {
 public:
  /// `tail_mass` is P(Y >= split); must lie in (0, 1).
  GammaParetoDistribution(double shape, double scale, double split, double alpha,
                          double tail_mass);

  /// Convenience factory: choose `tail_mass` so the density is
  /// continuous at the splice point (matches the construction in
  /// Garrett & Willinger).
  static GammaParetoDistribution with_continuous_density(double shape, double scale,
                                                         double split, double alpha);

  double cdf(double y) const override;
  double pdf(double y) const override;
  double quantile(double p) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

  double split() const { return split_; }
  double tail_mass() const { return tail_mass_; }

 private:
  GammaDistribution body_;
  ParetoDistribution tail_;
  double split_;
  double tail_mass_;
  double body_cdf_at_split_;  // Gamma CDF at the splice, for rescaling
};

}  // namespace ssvbr
