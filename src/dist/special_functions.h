// ssvbr/dist/special_functions.h
//
// Special functions required by the distribution substrate:
//   * regularized lower/upper incomplete gamma P(a,x) / Q(a,x)
//     (series + continued fraction, Numerical-Recipes style),
//   * inverse of the regularized incomplete gamma (Newton on P),
//   * standard normal CDF and its inverse (Wichura's AS241 algorithm,
//     accurate to ~1e-15 over the full double range).
//
// These are the building blocks for Gamma CDFs/quantiles and the
// histogram-inversion transform h(x) = F_Y^{-1}(Phi(x)) at the heart of
// the paper's unified model (eq. (7)).
#pragma once

namespace ssvbr {

/// log |Gamma(x)|, thread-safe. std::lgamma writes the global `signgam`
/// on POSIX systems and so races when replications run concurrently;
/// all library code must use this wrapper instead.
double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x) / Gamma(a).
/// Requires a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// Inverse of P(a, .): returns x such that P(a, x) = p. Requires
/// a > 0 and p in [0, 1); returns 0 for p == 0.
double inverse_regularized_gamma_p(double a, double p);

/// Standard normal cumulative distribution function Phi(x).
double normal_cdf(double x);

/// Standard normal survival function 1 - Phi(x), accurate in the tail.
double normal_sf(double x);

/// Inverse standard normal CDF (quantile function), AS241. Requires
/// p in (0, 1).
double normal_quantile(double p);

/// Standard normal density phi(x).
double normal_pdf(double x);

}  // namespace ssvbr
