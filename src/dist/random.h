// ssvbr/dist/random.h
//
// Pseudo-random number generation for the library.
//
// All stochastic components of ssvbr take an explicit RandomEngine so
// that every experiment in the paper reproduction is deterministic given
// a seed. The engine wraps a xoshiro256++ generator (fast, 256-bit
// state, passes BigCrush) and provides the variate primitives the rest
// of the library needs: uniforms, standard normals (Box-Muller with
// caching), and exponentials.
#pragma once

#include <cstdint>
#include <optional>

namespace ssvbr {

/// Deterministic, seedable random engine (xoshiro256++).
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can also
/// be handed to <random> distributions if desired.
class RandomEngine {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine via SplitMix64 expansion of `seed`; any 64-bit
  /// value (including 0) yields a well-mixed state.
  explicit RandomEngine(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept;

  /// Uniform double in (0, 1) — never exactly zero; safe for log().
  double uniform_open() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal variate (Box-Muller, one value cached).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Standard exponential variate (rate 1).
  double exponential() noexcept;

  /// Spawn an independent engine; used to give replications in a
  /// simulation study their own streams.
  RandomEngine split() noexcept;

 private:
  std::uint64_t state_[4];
  std::optional<double> cached_normal_;
};

}  // namespace ssvbr
