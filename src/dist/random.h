// ssvbr/dist/random.h
//
// Pseudo-random number generation for the library.
//
// All stochastic components of ssvbr take an explicit RandomEngine so
// that every experiment in the paper reproduction is deterministic given
// a seed. The engine wraps a xoshiro256++ generator (fast, 256-bit
// state, passes BigCrush) and provides the variate primitives the rest
// of the library needs: uniforms, standard normals (Box-Muller with
// caching), and exponentials.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

namespace ssvbr {

/// Deterministic, seedable random engine (xoshiro256++).
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can also
/// be handed to <random> distributions if desired.
class RandomEngine {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine via SplitMix64 expansion of `seed`; any 64-bit
  /// value (including 0) yields a well-mixed state.
  explicit RandomEngine(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept;

  /// Uniform double in (0, 1) — never exactly zero; safe for log().
  double uniform_open() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal variate (Box-Muller, one value cached).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Fill `out` with independent standard normal variates via the
  /// ziggurat method (Doornik's ZIGNOR layout, 128 layers) — several
  /// times faster than repeated normal() calls, which is what the bulk
  /// Gaussian synthesis in Davies-Harte needs. Consumes the same
  /// underlying bit stream as every other primitive but neither uses
  /// nor disturbs the Box-Muller cache, so the variate *values* differ
  /// from an equivalent sequence of normal() calls. In SSVBR_SIMD
  /// builds with AVX2 active the fill runs a speculative four-wide
  /// batch whose output (and final engine state) is bit-identical to
  /// the scalar loop — see dist/random.cpp.
  void fill_normal(std::span<double> out) noexcept;

  /// Standard exponential variate (rate 1).
  double exponential() noexcept;

  /// Advance this engine by exactly 2^128 steps of operator()() in O(1)
  /// state-space arithmetic (the xoshiro256++ jump polynomial). Engines
  /// related by jump() draw from provably non-overlapping subsequences
  /// as long as each consumes fewer than 2^128 values — the guarantee
  /// the replication engine relies on: replication i of a study always
  /// uses the base engine jumped i times, independent of thread count.
  /// Any cached Box-Muller normal is discarded so a jumped stream's
  /// output is a pure function of its (jumped) counter position.
  void jump() noexcept;

  /// Advance by 2^192 steps (the xoshiro256++ long-jump polynomial).
  /// Coarser spacing for nested stream hierarchies: spacing streams
  /// 2^192 apart leaves room for 2^64 jump()-spaced replication streams
  /// inside each — e.g. one long-jump per twist-sweep grid point, one
  /// jump per replication within the point.
  void jump_long() noexcept;

  /// Copy of this engine advanced by `n` jump() calls; *this is
  /// unchanged. Convenience for positioning at replication stream n.
  RandomEngine jumped(std::uint64_t n) const noexcept;

  /// Complete serializable engine state: the four xoshiro words plus
  /// the Box-Muller cache (a half-consumed normal() pair is part of the
  /// observable stream, so a faithful snapshot must carry it). The bit
  /// pattern of the cached normal is stored as a u64 so round-trips are
  /// exact through any text format.
  struct State {
    std::array<std::uint64_t, 4> words{};
    bool has_cached_normal = false;
    std::uint64_t cached_normal_bits = 0;

    friend bool operator==(const State&, const State&) = default;
  };

  /// Snapshot this engine. from_state(e.state()) is observationally
  /// identical to e for every primitive, including normal().
  State state() const noexcept;

  /// Reconstruct an engine from a snapshot. An all-zero word vector
  /// (invalid for xoshiro) is nudged to the canonical non-zero state,
  /// matching the seeding guard.
  static RandomEngine from_state(const State& state) noexcept;

  /// Spawn an engine seeded from this engine's next four outputs.
  ///
  /// Guarantees vs. jump(): split() children are statistically
  /// independent in practice (the child state is four fresh xoshiro
  /// outputs) but carry NO non-overlap proof — a child's subsequence
  /// could in principle land anywhere in the parent's period. jump()
  /// gives provably disjoint subsequences and is reproducible across
  /// serial and parallel execution orders; prefer it for per-replication
  /// streams. split() remains useful for one-off derived streams where
  /// the caller wants the parent visibly advanced (it consumes four
  /// outputs) and no indexing structure is needed.
  RandomEngine split() noexcept;

 private:
  void apply_jump_polynomial(const std::uint64_t (&poly)[4]) noexcept;

  std::uint64_t state_[4];
  std::optional<double> cached_normal_;
};

}  // namespace ssvbr
