#include "dist/special_functions.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/math_util.h"

#if defined(__GLIBC__)
// Declared here because -std=c++20 (strict ANSI) hides the POSIX
// declaration in <math.h>.
extern "C" double lgamma_r(double, int*);
#endif

namespace ssvbr {

double log_gamma(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(x, &sign);  // identical values to lgamma, no global write
#else
  return std::lgamma(x);
#endif
}

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEpsilon;

// Series representation of P(a, x); converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEpsilon) {
      return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
    }
  }
  throw NumericalError("incomplete gamma series failed to converge");
}

// Continued-fraction representation of Q(a, x); converges for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) {
      return h * std::exp(-x + a * std::log(x) - log_gamma(a));
    }
  }
  throw NumericalError("incomplete gamma continued fraction failed to converge");
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  SSVBR_REQUIRE(a > 0.0, "gamma shape must be positive");
  SSVBR_REQUIRE(x >= 0.0, "incomplete gamma argument must be non-negative");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  SSVBR_REQUIRE(a > 0.0, "gamma shape must be positive");
  SSVBR_REQUIRE(x >= 0.0, "incomplete gamma argument must be non-negative");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_continued_fraction(a, x);
}

double inverse_regularized_gamma_p(double a, double p) {
  SSVBR_REQUIRE(a > 0.0, "gamma shape must be positive");
  SSVBR_REQUIRE(p >= 0.0 && p < 1.0, "probability must lie in [0, 1)");
  if (p == 0.0) return 0.0;

  // Initial guess (Numerical Recipes / Abramowitz-Stegun 26.4.17).
  const double gln = log_gamma(a);
  double x;
  if (a > 1.0) {
    // Wilson-Hilferty via the AS 26.2.23 normal quantile of the
    // minority tail: z is the upper-tail deviate for pp, positive, so
    // the sign flips for the lower tail (p < 0.5).
    const double pp = p < 0.5 ? p : 1.0 - p;
    const double t = std::sqrt(-2.0 * std::log(pp));
    double z = t - (2.30753 + t * 0.27061) / (1.0 + t * (0.99229 + t * 0.04481));
    if (p < 0.5) z = -z;
    const double a1 = 1.0 / (9.0 * a);
    x = a * std::pow(1.0 - a1 + z * std::sqrt(a1), 3.0);
    if (x <= 1e-3) x = 1e-3;  // keep Halley clear of the x -> 0 crawl
  } else {
    const double t = 1.0 - a * (0.253 + a * 0.12);
    if (p < t) {
      x = std::pow(p / t, 1.0 / a);
    } else {
      x = 1.0 - std::log(1.0 - (p - t) / (1.0 - t));
    }
  }

  // Halley refinement of P(a, x) = p.
  const double a1 = a - 1.0;
  const double lna1 = a > 1.0 ? std::log(a1) : 0.0;
  const double afac = a > 1.0 ? std::exp(a1 * (lna1 - 1.0) - gln) : 0.0;
  for (int it = 0; it < 32; ++it) {
    if (x <= 0.0) {
      x = 1e-300;
    }
    const double err = regularized_gamma_p(a, x) - p;
    double t;
    if (a > 1.0) {
      t = afac * std::exp(-(x - a1) + a1 * (std::log(x) - lna1));
    } else {
      t = std::exp(-x + a1 * std::log(x) - gln);
    }
    if (t == 0.0) break;
    const double u = err / t;
    // Halley step.
    double dx = u / (1.0 - 0.5 * std::fmin(1.0, u * ((a - 1.0) / x - 1.0)));
    x -= dx;
    if (x <= 0.0) x = 0.5 * (x + dx);  // bisect back into the domain
    if (std::fabs(dx) < 1e-12 * x) break;
  }
  return x;
}

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(kTwoPi);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double normal_sf(double x) { return 0.5 * std::erfc(x / kSqrt2); }

double normal_quantile(double p) {
  SSVBR_REQUIRE(p > 0.0 && p < 1.0, "normal quantile requires p in (0, 1)");
  // Wichura (1988), algorithm AS241, PPND16.
  const double q = p - 0.5;
  if (std::fabs(q) <= 0.425) {
    const double r = 0.180625 - q * q;
    return q *
           (((((((2.5090809287301226727e3 * r + 3.3430575583588128105e4) * r +
                 6.7265770927008700853e4) * r + 4.5921953931549871457e4) * r +
               1.3731693765509461125e4) * r + 1.9715909503065514427e3) * r +
             1.3314166789178437745e2) * r + 3.3871328727963666080e0) /
           (((((((5.2264952788528545610e3 * r + 2.8729085735721942674e4) * r +
                 3.9307895800092710610e4) * r + 2.1213794301586595867e4) * r +
               5.3941960214247511077e3) * r + 6.8718700749205790830e2) * r +
             4.2313330701600911252e1) * r + 1.0);
  }
  double r = q < 0.0 ? p : 1.0 - p;
  r = std::sqrt(-std::log(r));
  double value;
  if (r <= 5.0) {
    r -= 1.6;
    value = (((((((7.74545014278341407640e-4 * r + 2.27238449892691845833e-2) * r +
                  2.41780725177450611770e-1) * r + 1.27045825245236838258e0) * r +
                3.64784832476320460504e0) * r + 5.76949722146069140550e0) * r +
              4.63033784615654529590e0) * r + 1.42343711074968357734e0) /
            (((((((1.05075007164441684324e-9 * r + 5.47593808499534494600e-4) * r +
                  1.51986665636164571966e-2) * r + 1.48103976427480074590e-1) * r +
                6.89767334985100004550e-1) * r + 1.67638483018380384940e0) * r +
              2.05319162663775882187e0) * r + 1.0);
  } else {
    r -= 5.0;
    value = (((((((2.01033439929228813265e-7 * r + 2.71155556874348757815e-5) * r +
                  1.24266094738807843860e-3) * r + 2.65321895265761230930e-2) * r +
                2.96560571828504891230e-1) * r + 1.78482653991729133580e0) * r +
              5.46378491116411436990e0) * r + 6.65790464350110377720e0) /
            (((((((2.04426310338993978564e-15 * r + 1.42151175831644588870e-7) * r +
                  1.84631831751005468180e-5) * r + 7.86869131145613259100e-4) * r +
                1.48753612908506148525e-2) * r + 1.36929880922735805310e-1) * r +
              5.99832206555887937690e-1) * r + 1.0);
  }
  return q < 0.0 ? -value : value;
}

}  // namespace ssvbr
