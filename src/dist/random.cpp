#include "dist/random.h"

#include <bit>
#include <cmath>
#include <cstddef>

#include "common/math_util.h"
#include "common/simd.h"

#if SSVBR_SIMD_ENABLED
#include <immintrin.h>
#endif

namespace ssvbr {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

RandomEngine::RandomEngine(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // xoshiro's all-zero state is invalid; splitmix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

RandomEngine::result_type RandomEngine::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double RandomEngine::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double RandomEngine::uniform_open() noexcept {
  // (u + 0.5) * 2^-53 lies strictly inside (0, 1).
  return (static_cast<double>((*this)() >> 11) + 0.5) * 0x1.0p-53;
}

double RandomEngine::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t RandomEngine::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Rejection sampling on the top bits keeps the draw exactly uniform
  // without 128-bit arithmetic.
  const std::uint64_t limit = max() - max() % n;
  for (;;) {
    const std::uint64_t v = (*this)();
    if (v < limit) return v % n;
  }
}

double RandomEngine::normal() noexcept {
  if (cached_normal_) {
    const double v = *cached_normal_;
    cached_normal_.reset();
    return v;
  }
  const double u1 = uniform_open();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = kTwoPi * u2;
  cached_normal_ = radius * std::sin(angle);
  return radius * std::cos(angle);
}

double RandomEngine::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double RandomEngine::exponential() noexcept { return -std::log(uniform_open()); }

namespace {

// Ziggurat tables for the standard normal (Doornik's ZIGNOR layout):
// 128 layers of equal area V with rightmost edge R. x[i] are the layer
// edges (x[0] is the pseudo-width of the base layer, x[1] = R), f[i]
// the density at each edge. Built once, on first use.
constexpr double kZigR = 3.442619855899;

struct ZigguratTables {
  double x[129];
  double f[129];
  ZigguratTables() noexcept {
    constexpr double kZigV = 9.91256303526217e-3;
    x[0] = kZigV / std::exp(-0.5 * kZigR * kZigR);
    x[1] = kZigR;
    x[128] = 0.0;
    for (int i = 2; i < 128; ++i) {
      const double prev = x[i - 1];
      x[i] = std::sqrt(-2.0 * std::log(kZigV / prev + std::exp(-0.5 * prev * prev)));
    }
    for (int i = 0; i <= 128; ++i) f[i] = std::exp(-0.5 * x[i] * x[i]);
  }
};

const ZigguratTables& zig_tables() noexcept {
  static const ZigguratTables tables;
  return tables;
}

double zig_normal(RandomEngine& rng, const ZigguratTables& t) noexcept {
  for (;;) {
    // One raw draw feeds both the layer index (low 7 bits) and the
    // signed uniform (top 53 bits) — they are disjoint bit ranges.
    const std::uint64_t bits = rng();
    const unsigned idx = static_cast<unsigned>(bits & 127u);
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-52 - 1.0;  // [-1, 1)
    const double z = u * t.x[idx];
    if (std::fabs(z) < t.x[idx + 1]) return z;  // inside the layer: ~98.8%
    if (idx == 0) {
      // Tail beyond R (Marsaglia's exact exponential-rejection scheme).
      double xt, yt;
      do {
        xt = -std::log(rng.uniform_open()) / kZigR;
        yt = -std::log(rng.uniform_open());
      } while (yt + yt < xt * xt);
      return z > 0.0 ? kZigR + xt : -(kZigR + xt);
    }
    // Wedge between the layer rectangles: accept against the density.
    const double f0 = t.f[idx];
    const double f1 = t.f[idx + 1];
    if (f1 + rng.uniform() * (f0 - f1) < std::exp(-0.5 * z * z)) return z;
  }
}

#if SSVBR_SIMD_ENABLED

// Speculative four-wide ziggurat batch. Rejection sampling consumes a
// data-dependent number of draws, so naive vectorization would change
// the stream; instead each batch snapshots the engine, draws four raw
// words (xoshiro is inherently sequential), and vector-evaluates the
// fast-path accept test — the ~98.8% branch of zig_normal. If all four
// lanes accept, the four results are exactly what four scalar calls
// would have produced from the same state (u, z, and the compare use
// mul/sub only — no FMA — so the bits match). Any rejected lane rolls
// the engine back to the snapshot and replays the whole batch through
// the scalar algorithm, reproducing the scalar draw sequence exactly.
__attribute__((target("avx2"))) void fill_normal_avx2(
    RandomEngine& rng, const ZigguratTables& t, std::span<double> out) noexcept {
  const __m256d scale = _mm256_set1_pd(0x1.0p-52);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  std::size_t i = 0;
  for (; i + 4 <= out.size(); i += 4) {
    const RandomEngine saved = rng;
    const std::uint64_t b0 = rng();
    const std::uint64_t b1 = rng();
    const std::uint64_t b2 = rng();
    const std::uint64_t b3 = rng();
    const __m128i idx = _mm_set_epi32(
        static_cast<int>(b3 & 127u), static_cast<int>(b2 & 127u),
        static_cast<int>(b1 & 127u), static_cast<int>(b0 & 127u));
    // bits >> 11 < 2^53 is exactly representable, so the scalar u64 ->
    // double conversions below are exact — identical to zig_normal's.
    const __m256d v = _mm256_set_pd(
        static_cast<double>(b3 >> 11), static_cast<double>(b2 >> 11),
        static_cast<double>(b1 >> 11), static_cast<double>(b0 >> 11));
    const __m256d u = _mm256_sub_pd(_mm256_mul_pd(v, scale), one);
    const __m256d xi = _mm256_i32gather_pd(t.x, idx, 8);
    const __m256d xi1 = _mm256_i32gather_pd(t.x, _mm_add_epi32(idx, _mm_set1_epi32(1)), 8);
    const __m256d z = _mm256_mul_pd(u, xi);
    const __m256d accept =
        _mm256_cmp_pd(_mm256_and_pd(z, abs_mask), xi1, _CMP_LT_OQ);
    if (_mm256_movemask_pd(accept) == 0xF) {
      _mm256_storeu_pd(out.data() + i, z);
      continue;
    }
    // Slow lane somewhere in the batch: rewind and replay scalar.
    rng = saved;
    for (std::size_t j = i; j < i + 4; ++j) out[j] = zig_normal(rng, t);
  }
  for (; i < out.size(); ++i) out[i] = zig_normal(rng, t);
}

#endif  // SSVBR_SIMD_ENABLED

}  // namespace

void RandomEngine::fill_normal(std::span<double> out) noexcept {
  const ZigguratTables& t = zig_tables();
#if SSVBR_SIMD_ENABLED
  if (simd::active_level() == simd::IsaLevel::kAvx2) {
    fill_normal_avx2(*this, t, out);
    return;
  }
#endif
  for (double& o : out) o = zig_normal(*this, t);
}

namespace {

// xoshiro256++ jump polynomials (Blackman & Vigna). XOR-accumulating the
// states visited at the set bits of the polynomial advances the stream
// by 2^128 (jump) or 2^192 (long jump) steps.
constexpr std::uint64_t kJump[4] = {0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
                                    0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};
constexpr std::uint64_t kLongJump[4] = {0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL,
                                        0x77710069854EE241ULL, 0x39109BB02ACBE635ULL};

}  // namespace

void RandomEngine::apply_jump_polynomial(const std::uint64_t (&poly)[4]) noexcept {
  std::uint64_t s[4] = {0, 0, 0, 0};
  for (const std::uint64_t word : poly) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s[0] ^= state_[0];
        s[1] ^= state_[1];
        s[2] ^= state_[2];
        s[3] ^= state_[3];
      }
      (void)(*this)();
    }
  }
  state_[0] = s[0];
  state_[1] = s[1];
  state_[2] = s[2];
  state_[3] = s[3];
  // A jumped stream must not replay the parent's half-used Box-Muller
  // pair: its output is defined by the new counter position alone.
  cached_normal_.reset();
}

void RandomEngine::jump() noexcept { apply_jump_polynomial(kJump); }

void RandomEngine::jump_long() noexcept { apply_jump_polynomial(kLongJump); }

RandomEngine RandomEngine::jumped(std::uint64_t n) const noexcept {
  RandomEngine out = *this;
  for (std::uint64_t i = 0; i < n; ++i) out.jump();
  return out;
}

RandomEngine::State RandomEngine::state() const noexcept {
  State s;
  s.words = {state_[0], state_[1], state_[2], state_[3]};
  if (cached_normal_) {
    s.has_cached_normal = true;
    s.cached_normal_bits = std::bit_cast<std::uint64_t>(*cached_normal_);
  }
  return s;
}

RandomEngine RandomEngine::from_state(const State& state) noexcept {
  RandomEngine out(0);
  for (int i = 0; i < 4; ++i) out.state_[i] = state.words[static_cast<std::size_t>(i)];
  if ((out.state_[0] | out.state_[1] | out.state_[2] | out.state_[3]) == 0) {
    out.state_[0] = 1;
  }
  if (state.has_cached_normal) {
    out.cached_normal_ = std::bit_cast<double>(state.cached_normal_bits);
  } else {
    out.cached_normal_.reset();
  }
  return out;
}

RandomEngine RandomEngine::split() noexcept {
  RandomEngine child(0);
  for (auto& s : child.state_) s = (*this)();
  if ((child.state_[0] | child.state_[1] | child.state_[2] | child.state_[3]) == 0) {
    child.state_[0] = 1;
  }
  return child;
}

}  // namespace ssvbr
