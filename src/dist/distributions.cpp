#include "dist/distributions.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"
#include "dist/special_functions.h"

namespace ssvbr {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double Distribution::sample(RandomEngine& rng) const {
  return quantile(rng.uniform_open());
}

// ---------------------------------------------------------------- Normal

NormalDistribution::NormalDistribution(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  SSVBR_REQUIRE(stddev > 0.0, "normal stddev must be positive");
}

double NormalDistribution::cdf(double y) const { return normal_cdf((y - mean_) / stddev_); }

double NormalDistribution::pdf(double y) const {
  return normal_pdf((y - mean_) / stddev_) / stddev_;
}

double NormalDistribution::quantile(double p) const {
  return mean_ + stddev_ * normal_quantile(p);
}

double NormalDistribution::sample(RandomEngine& rng) const {
  return rng.normal(mean_, stddev_);
}

std::string NormalDistribution::describe() const {
  std::ostringstream os;
  os << "Normal(mean=" << mean_ << ", stddev=" << stddev_ << ")";
  return os.str();
}

// ----------------------------------------------------------------- Gamma

GammaDistribution::GammaDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  SSVBR_REQUIRE(shape > 0.0, "gamma shape must be positive");
  SSVBR_REQUIRE(scale > 0.0, "gamma scale must be positive");
}

double GammaDistribution::cdf(double y) const {
  if (y <= 0.0) return 0.0;
  return regularized_gamma_p(shape_, y / scale_);
}

double GammaDistribution::pdf(double y) const {
  if (y <= 0.0) return 0.0;
  const double x = y / scale_;
  return std::exp((shape_ - 1.0) * std::log(x) - x - log_gamma(shape_)) / scale_;
}

double GammaDistribution::quantile(double p) const {
  SSVBR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  return scale_ * inverse_regularized_gamma_p(shape_, p);
}

double GammaDistribution::sample(RandomEngine& rng) const {
  // Marsaglia-Tsang squeeze method; for shape < 1 use the boosting
  // identity G(k) = G(k+1) * U^{1/k}.
  double shape = shape_;
  double boost = 1.0;
  if (shape < 1.0) {
    boost = std::pow(rng.uniform_open(), 1.0 / shape);
    shape += 1.0;
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform_open();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return boost * d * v * scale_;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) return boost * d * v * scale_;
  }
}

std::string GammaDistribution::describe() const {
  std::ostringstream os;
  os << "Gamma(shape=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

// ---------------------------------------------------------------- Pareto

ParetoDistribution::ParetoDistribution(double alpha, double xm) : alpha_(alpha), xm_(xm) {
  SSVBR_REQUIRE(alpha > 0.0, "pareto alpha must be positive");
  SSVBR_REQUIRE(xm > 0.0, "pareto scale xm must be positive");
}

double ParetoDistribution::cdf(double y) const {
  if (y <= xm_) return 0.0;
  return 1.0 - std::pow(xm_ / y, alpha_);
}

double ParetoDistribution::pdf(double y) const {
  if (y < xm_) return 0.0;
  return alpha_ * std::pow(xm_, alpha_) / std::pow(y, alpha_ + 1.0);
}

double ParetoDistribution::quantile(double p) const {
  SSVBR_REQUIRE(p >= 0.0 && p < 1.0, "quantile requires p in [0, 1)");
  return xm_ * std::pow(1.0 - p, -1.0 / alpha_);
}

double ParetoDistribution::mean() const {
  if (alpha_ <= 1.0) return kInf;
  return alpha_ * xm_ / (alpha_ - 1.0);
}

double ParetoDistribution::variance() const {
  if (alpha_ <= 2.0) return kInf;
  return xm_ * xm_ * alpha_ / ((alpha_ - 1.0) * (alpha_ - 1.0) * (alpha_ - 2.0));
}

std::string ParetoDistribution::describe() const {
  std::ostringstream os;
  os << "Pareto(alpha=" << alpha_ << ", xm=" << xm_ << ")";
  return os.str();
}

// ------------------------------------------------------------- Lognormal

LognormalDistribution::LognormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  SSVBR_REQUIRE(sigma > 0.0, "lognormal sigma must be positive");
}

double LognormalDistribution::cdf(double y) const {
  if (y <= 0.0) return 0.0;
  return normal_cdf((std::log(y) - mu_) / sigma_);
}

double LognormalDistribution::pdf(double y) const {
  if (y <= 0.0) return 0.0;
  const double z = (std::log(y) - mu_) / sigma_;
  return normal_pdf(z) / (y * sigma_);
}

double LognormalDistribution::quantile(double p) const {
  return std::exp(mu_ + sigma_ * normal_quantile(p));
}

double LognormalDistribution::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LognormalDistribution::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::string LognormalDistribution::describe() const {
  std::ostringstream os;
  os << "Lognormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

// ----------------------------------------------------------- GammaPareto

GammaParetoDistribution::GammaParetoDistribution(double shape, double scale, double split,
                                                 double alpha, double tail_mass)
    : body_(shape, scale),
      tail_(alpha, split),
      split_(split),
      tail_mass_(tail_mass),
      body_cdf_at_split_(body_.cdf(split)) {
  SSVBR_REQUIRE(split > 0.0, "splice point must be positive");
  SSVBR_REQUIRE(tail_mass > 0.0 && tail_mass < 1.0, "tail mass must lie in (0, 1)");
  SSVBR_REQUIRE(body_cdf_at_split_ > 0.0,
                "gamma body must carry positive mass below the splice point");
}

GammaParetoDistribution GammaParetoDistribution::with_continuous_density(double shape,
                                                                         double scale,
                                                                         double split,
                                                                         double alpha) {
  // Density continuity at the splice:
  //   (1 - m) * f_gamma(split) / F_gamma(split) = m * f_pareto(split)
  // where f_pareto(split) = alpha / split for a tail anchored at split.
  const GammaDistribution body(shape, scale);
  const double fg = body.pdf(split) / body.cdf(split);
  const double fp = alpha / split;
  SSVBR_REQUIRE(fg > 0.0, "gamma density must be positive at the splice point");
  const double m = fg / (fg + fp);
  return GammaParetoDistribution(shape, scale, split, alpha, m);
}

double GammaParetoDistribution::cdf(double y) const {
  if (y < split_) {
    return (1.0 - tail_mass_) * body_.cdf(y) / body_cdf_at_split_;
  }
  return (1.0 - tail_mass_) + tail_mass_ * tail_.cdf(y);
}

double GammaParetoDistribution::pdf(double y) const {
  if (y < split_) {
    return (1.0 - tail_mass_) * body_.pdf(y) / body_cdf_at_split_;
  }
  return tail_mass_ * tail_.pdf(y);
}

double GammaParetoDistribution::quantile(double p) const {
  SSVBR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  const double body_mass = 1.0 - tail_mass_;
  if (p < body_mass) {
    return body_.quantile(p / body_mass * body_cdf_at_split_);
  }
  return tail_.quantile((p - body_mass) / tail_mass_);
}

double GammaParetoDistribution::mean() const {
  if (tail_.alpha() <= 1.0) return kInf;
  // Truncated gamma mean below the splice:
  //   E[Y; Y < s] = shape * scale * P(shape + 1, s / scale)
  const double s = split_;
  const double truncated =
      body_.shape() * body_.scale() * regularized_gamma_p(body_.shape() + 1.0, s / body_.scale());
  const double body_part = (1.0 - tail_mass_) * truncated / body_cdf_at_split_;
  return body_part + tail_mass_ * tail_.mean();
}

double GammaParetoDistribution::variance() const {
  if (tail_.alpha() <= 2.0) return kInf;
  // Second moment of the truncated gamma body:
  //   E[Y^2; Y < s] = shape (shape + 1) scale^2 P(shape + 2, s / scale)
  const double k = body_.shape();
  const double th = body_.scale();
  const double s = split_;
  const double m2_body = k * (k + 1.0) * th * th * regularized_gamma_p(k + 2.0, s / th) /
                         body_cdf_at_split_;
  const double a = tail_.alpha();
  const double m2_tail = a * s * s / (a - 2.0);
  const double m2 = (1.0 - tail_mass_) * m2_body + tail_mass_ * m2_tail;
  const double m1 = mean();
  return m2 - m1 * m1;
}

std::string GammaParetoDistribution::describe() const {
  std::ostringstream os;
  os << "GammaPareto(body=" << body_.describe() << ", split=" << split_
     << ", tail=" << tail_.describe() << ", tail_mass=" << tail_mass_ << ")";
  return os.str();
}

}  // namespace ssvbr
