// ssvbr/dist/distribution.h
//
// Abstract interface for one-dimensional continuous distributions.
//
// The unified model (Section 3.1 of the paper) needs three operations
// from a marginal distribution F_Y:
//   * cdf(y)       — for diagnostics and goodness-of-fit,
//   * quantile(p)  — the inverse F_Y^{-1} used in the transform
//                    Y = F_Y^{-1}(Phi(X)) (eq. (7)),
//   * sample(rng)  — for workload generators and baselines.
//
// Implementations must make quantile() the exact (or numerically
// refined) inverse of cdf() so that inverse-transform sampling and the
// histogram-inversion transform agree.
#pragma once

#include <memory>
#include <string>

#include "dist/random.h"

namespace ssvbr {

/// One-dimensional continuous probability distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Cumulative distribution function F(y) in [0, 1].
  virtual double cdf(double y) const = 0;

  /// Probability density function f(y) (0 outside the support).
  virtual double pdf(double y) const = 0;

  /// Quantile function F^{-1}(p); requires p in (0, 1).
  virtual double quantile(double p) const = 0;

  /// Distribution mean (may be +inf for heavy tails with alpha <= 1).
  virtual double mean() const = 0;

  /// Distribution variance (may be +inf).
  virtual double variance() const = 0;

  /// Draw one variate.
  virtual double sample(RandomEngine& rng) const;

  /// Human-readable description, e.g. "Gamma(shape=2.1, scale=300)".
  virtual std::string describe() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

}  // namespace ssvbr
