// ssvbr/queueing/arrival.h
//
// Slotted arrival processes feeding the single-server queue of
// Section 4. One slot corresponds to one video frame time; the arrival
// in a slot is the frame's workload (bytes, or cells after
// normalization). Arrivals may be any non-negative real value, exactly
// as the paper assumes.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/activity_model.h"
#include "core/background_sampler.h"
#include "core/unified_model.h"
#include "dist/random.h"
#include "trace/video_trace.h"

namespace ssvbr::queueing {

/// A replication-oriented slotted arrival process. A simulation study
/// calls begin_replication once per independent run, then next() once
/// per slot.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Start an independent replication; `horizon` is the maximum number
  /// of next() calls that will follow.
  virtual void begin_replication(RandomEngine& rng, std::size_t horizon) = 0;

  /// Workload arriving in the current slot; advances the slot.
  virtual double next() = 0;

  /// Long-run mean arrival rate per slot (for utilization bookkeeping).
  virtual double mean_rate() const = 0;
};

/// Arrivals synthesized from a fitted unified VBR model: each
/// replication draws an independent background path and transforms it.
///
/// The per-horizon generator setup (Davies-Harte eigenvalues or the
/// Hosking coefficient table) is built once at the first
/// begin_replication and reused — together with the path buffer — for
/// every subsequent replication of the same horizon, so the steady
/// state of a replication study does no setup work and no heap
/// allocation. Draw sequences are unchanged.
class ModelArrivalProcess final : public ArrivalProcess {
 public:
  /// `generator` selects the background synthesis algorithm; Hosking
  /// matches the paper's queueing experiments, Davies-Harte is the fast
  /// default for long horizons.
  ModelArrivalProcess(std::shared_ptr<const core::UnifiedVbrModel> model,
                      core::BackgroundGenerator generator =
                          core::BackgroundGenerator::kHosking);

  /// Same, with a prebuilt background sampler shared across workers
  /// (the parallel engine's arrival factories otherwise build one
  /// coefficient table per worker). A begin_replication horizon that
  /// differs from the sampler's rebuilds a private Hosking sampler.
  ModelArrivalProcess(std::shared_ptr<const core::UnifiedVbrModel> model,
                      std::shared_ptr<const core::BackgroundPathSampler> sampler);

  void begin_replication(RandomEngine& rng, std::size_t horizon) override;
  double next() override;
  double mean_rate() const override;

 private:
  std::shared_ptr<const core::UnifiedVbrModel> model_;
  core::BackgroundGenerator generator_;
  std::shared_ptr<const core::BackgroundPathSampler> sampler_;
  // Owned scratch: each engine worker constructs its own arrival
  // process, so path generation never shares mutable state (or cache
  // lines) across workers and never consults thread_local caches.
  core::BackgroundWorkspace workspace_;
  std::vector<double> path_;
  std::size_t pos_ = 0;
};

/// Arrivals from a busy/idle activity-modulated VBR source
/// (core::ActivityModulatedModel): each replication draws an
/// independent background path, transforms it, then applies the
/// two-state gate — the conferencing-style workload of the
/// workload-diversity tier. Same setup-once/steady-state-allocation-
/// free contract as ModelArrivalProcess.
class ActivityArrivalProcess final : public ArrivalProcess {
 public:
  ActivityArrivalProcess(std::shared_ptr<const core::ActivityModulatedModel> model,
                         core::BackgroundGenerator generator =
                             core::BackgroundGenerator::kHosking);

  void begin_replication(RandomEngine& rng, std::size_t horizon) override;
  double next() override;
  double mean_rate() const override;

 private:
  std::shared_ptr<const core::ActivityModulatedModel> model_;
  core::BackgroundGenerator generator_;
  std::shared_ptr<const core::BackgroundPathSampler> sampler_;
  core::BackgroundWorkspace workspace_;
  std::vector<double> path_;
  std::size_t pos_ = 0;
};

/// Arrivals replayed from a recorded trace. Each replication starts at
/// a configurable (or random) offset; the playback wraps around.
class TraceArrivalProcess final : public ArrivalProcess {
 public:
  /// `series` is copied. When `random_offset` is true each replication
  /// begins at a uniformly random position (the closest one can get to
  /// independent replications given a single empirical trace — the
  /// paper instead runs one long replication; both modes are available).
  explicit TraceArrivalProcess(std::span<const double> series, bool random_offset = false);

  void begin_replication(RandomEngine& rng, std::size_t horizon) override;
  double next() override;
  double mean_rate() const override;

  std::size_t length() const noexcept { return series_.size(); }

 private:
  std::vector<double> series_;
  double mean_;
  bool random_offset_;
  std::size_t pos_ = 0;
};

/// Independent, identically distributed arrivals (sanity baseline for
/// tests: an M/D/1-like slotted queue with no correlation at all).
class IidArrivalProcess final : public ArrivalProcess {
 public:
  explicit IidArrivalProcess(DistributionPtr marginal);

  void begin_replication(RandomEngine& rng, std::size_t horizon) override;
  double next() override;
  double mean_rate() const override;

 private:
  DistributionPtr marginal_;
  RandomEngine* rng_ = nullptr;
};

/// Superposition of several independent arrival processes: per slot the
/// arrivals of all components are summed. Models the paper's target
/// scenario of a multiplexer fed by multiple statistically multiplexed
/// VBR video connections. LRD is preserved under superposition, so the
/// aggregate remains self-similar.
class SuperposedArrivalProcess final : public ArrivalProcess {
 public:
  explicit SuperposedArrivalProcess(
      std::vector<std::unique_ptr<ArrivalProcess>> components);

  void begin_replication(RandomEngine& rng, std::size_t horizon) override;
  double next() override;
  double mean_rate() const override;

  std::size_t n_components() const noexcept { return components_.size(); }

 private:
  std::vector<std::unique_ptr<ArrivalProcess>> components_;
};

}  // namespace ssvbr::queueing
