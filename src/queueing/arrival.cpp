#include "queueing/arrival.h"

#include <utility>

#include "common/error.h"
#include "stats/descriptive.h"

namespace ssvbr::queueing {

// ----------------------------------------------------------------- Model

ModelArrivalProcess::ModelArrivalProcess(
    std::shared_ptr<const core::UnifiedVbrModel> model,
    core::BackgroundGenerator generator)
    : model_(std::move(model)), generator_(generator) {
  SSVBR_REQUIRE(model_ != nullptr, "arrival model must not be null");
}

ModelArrivalProcess::ModelArrivalProcess(
    std::shared_ptr<const core::UnifiedVbrModel> model,
    std::shared_ptr<const core::BackgroundPathSampler> sampler)
    : model_(std::move(model)),
      generator_(core::BackgroundGenerator::kHosking),
      sampler_(std::move(sampler)) {
  SSVBR_REQUIRE(model_ != nullptr, "arrival model must not be null");
  SSVBR_REQUIRE(sampler_ != nullptr, "background sampler must not be null");
}

void ModelArrivalProcess::begin_replication(RandomEngine& rng, std::size_t horizon) {
  SSVBR_REQUIRE(horizon >= 1, "replication horizon must be positive");
  if (!sampler_ || sampler_->horizon() != horizon) {
    // First replication (or a horizon change): build the per-horizon
    // generator state once; every later replication is setup-free.
    sampler_ = std::make_shared<const core::BackgroundPathSampler>(*model_, horizon,
                                                                   generator_);
  }
  path_.resize(horizon);
  sampler_->sample(rng, path_, workspace_);
  model_->transform().apply(path_, path_);
  pos_ = 0;
}

double ModelArrivalProcess::next() {
  SSVBR_REQUIRE(pos_ < path_.size(), "arrival process exhausted its horizon");
  return path_[pos_++];
}

double ModelArrivalProcess::mean_rate() const { return model_->mean(); }

// -------------------------------------------------------------- Activity

ActivityArrivalProcess::ActivityArrivalProcess(
    std::shared_ptr<const core::ActivityModulatedModel> model,
    core::BackgroundGenerator generator)
    : model_(std::move(model)), generator_(generator) {
  SSVBR_REQUIRE(model_ != nullptr, "activity arrival model must not be null");
}

void ActivityArrivalProcess::begin_replication(RandomEngine& rng,
                                               std::size_t horizon) {
  SSVBR_REQUIRE(horizon >= 1, "replication horizon must be positive");
  if (!sampler_ || sampler_->horizon() != horizon) {
    sampler_ = std::make_shared<const core::BackgroundPathSampler>(
        model_->inner(), horizon, generator_);
  }
  path_.resize(horizon);
  // Same draw order as the net layer's kActivityModulated classes:
  // background path, marginal transform, then the gate's uniforms.
  sampler_->sample(rng, path_, workspace_);
  model_->inner().transform().apply(path_, path_);
  model_->modulate_in_place(path_, rng);
  pos_ = 0;
}

double ActivityArrivalProcess::next() {
  SSVBR_REQUIRE(pos_ < path_.size(), "arrival process exhausted its horizon");
  return path_[pos_++];
}

double ActivityArrivalProcess::mean_rate() const { return model_->mean(); }

// ----------------------------------------------------------------- Trace

TraceArrivalProcess::TraceArrivalProcess(std::span<const double> series,
                                         bool random_offset)
    : series_(series.begin(), series.end()),
      mean_(stats::mean(series)),
      random_offset_(random_offset) {
  SSVBR_REQUIRE(!series_.empty(), "trace playback needs a non-empty series");
}

void TraceArrivalProcess::begin_replication(RandomEngine& rng, std::size_t /*horizon*/) {
  pos_ = random_offset_ ? static_cast<std::size_t>(rng.uniform_index(series_.size())) : 0;
}

double TraceArrivalProcess::next() {
  const double v = series_[pos_];
  pos_ = (pos_ + 1) % series_.size();
  return v;
}

double TraceArrivalProcess::mean_rate() const { return mean_; }

// ------------------------------------------------------------------- IID

IidArrivalProcess::IidArrivalProcess(DistributionPtr marginal)
    : marginal_(std::move(marginal)) {
  SSVBR_REQUIRE(marginal_ != nullptr, "iid arrival marginal must not be null");
}

void IidArrivalProcess::begin_replication(RandomEngine& rng, std::size_t /*horizon*/) {
  rng_ = &rng;
}

double IidArrivalProcess::next() {
  SSVBR_REQUIRE(rng_ != nullptr, "begin_replication must be called before next");
  return marginal_->sample(*rng_);
}

double IidArrivalProcess::mean_rate() const { return marginal_->mean(); }

// ----------------------------------------------------------- Superposed

SuperposedArrivalProcess::SuperposedArrivalProcess(
    std::vector<std::unique_ptr<ArrivalProcess>> components)
    : components_(std::move(components)) {
  SSVBR_REQUIRE(!components_.empty(), "superposition needs at least one component");
  for (const auto& c : components_) {
    SSVBR_REQUIRE(c != nullptr, "superposition components must not be null");
  }
}

void SuperposedArrivalProcess::begin_replication(RandomEngine& rng,
                                                 std::size_t horizon) {
  for (auto& c : components_) c->begin_replication(rng, horizon);
}

double SuperposedArrivalProcess::next() {
  double sum = 0.0;
  for (auto& c : components_) sum += c->next();
  return sum;
}

double SuperposedArrivalProcess::mean_rate() const {
  double sum = 0.0;
  for (const auto& c : components_) sum += c->mean_rate();
  return sum;
}

}  // namespace ssvbr::queueing
