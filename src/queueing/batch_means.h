// ssvbr/queueing/batch_means.h
//
// Batch-means confidence intervals for steady-state estimates from a
// single long run.
//
// The paper runs its empirical-trace queueing experiments as "one
// (long) replication" and cautions that batches of a self-similar
// stream stay correlated. Batch means make that caution quantitative:
// the point estimate is unchanged, but the between-batch variance
// yields an (approximate) confidence interval whose width reveals how
// little information a single LRD trace actually carries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ssvbr::queueing {

/// A batch-means estimate of a time-average.
struct BatchMeansEstimate {
  double mean = 0.0;
  double batch_variance = 0.0;   ///< sample variance of the batch means
  double ci95_halfwidth = 0.0;   ///< ~t-based half width on the mean
  std::size_t n_batches = 0;
  std::size_t batch_size = 0;
  /// Lag-1 correlation of the batch means: near 0 for SRD data once
  /// batches are large, but stays high for LRD data at any feasible
  /// batch size — the warning sign the paper describes.
  double batch_mean_lag1_correlation = 0.0;
};

/// Split `observations` into `n_batches` equal batches (trailing
/// remainder dropped) and compute the batch-means statistics.
/// Requires n_batches >= 2 and at least one observation per batch.
BatchMeansEstimate batch_means(std::span<const double> observations,
                               std::size_t n_batches);

/// Convenience: steady-state P(Q > b) with a batch-means CI from one
/// long arrival sequence (infinite-buffer Lindley queue, per-slot
/// exceedance indicators are the observations).
BatchMeansEstimate steady_state_overflow_batch_means(std::span<const double> arrivals,
                                                     double service_rate, double buffer,
                                                     std::size_t n_batches,
                                                     std::size_t warmup = 0);

}  // namespace ssvbr::queueing
