#include "queueing/batch_means.h"

#include <cmath>

#include "common/error.h"
#include "queueing/lindley.h"
#include "stats/descriptive.h"

namespace ssvbr::queueing {

BatchMeansEstimate batch_means(std::span<const double> observations,
                               std::size_t n_batches) {
  SSVBR_REQUIRE(n_batches >= 2, "need at least two batches");
  SSVBR_REQUIRE(observations.size() >= n_batches,
                "need at least one observation per batch");
  const std::size_t batch_size = observations.size() / n_batches;

  std::vector<double> means(n_batches);
  for (std::size_t b = 0; b < n_batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < batch_size; ++i) {
      sum += observations[b * batch_size + i];
    }
    means[b] = sum / static_cast<double>(batch_size);
  }

  BatchMeansEstimate est;
  est.n_batches = n_batches;
  est.batch_size = batch_size;
  est.mean = stats::mean(means);
  est.batch_variance = stats::variance(means);
  // Normal-approximation CI on the grand mean (t_{0.975} ~ 2 for the
  // batch counts used in practice).
  est.ci95_halfwidth =
      2.0 * std::sqrt(est.batch_variance / static_cast<double>(n_batches));
  // Lag-1 correlation of the batch means.
  if (n_batches >= 4 && est.batch_variance > 0.0) {
    est.batch_mean_lag1_correlation = stats::autocorrelation(means, 1)[1];
  }
  return est;
}

BatchMeansEstimate steady_state_overflow_batch_means(std::span<const double> arrivals,
                                                     double service_rate, double buffer,
                                                     std::size_t n_batches,
                                                     std::size_t warmup) {
  SSVBR_REQUIRE(arrivals.size() > warmup, "need arrivals beyond the warmup period");
  SSVBR_REQUIRE(buffer >= 0.0, "buffer must be non-negative");
  LindleyQueue queue(service_rate);
  std::vector<double> indicators;
  indicators.reserve(arrivals.size() - warmup);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const double q = queue.step(arrivals[i]);
    if (i >= warmup) indicators.push_back(q > buffer ? 1.0 : 0.0);
  }
  return batch_means(indicators, n_batches);
}

}  // namespace ssvbr::queueing
