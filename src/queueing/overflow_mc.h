// ssvbr/queueing/overflow_mc.h
//
// Plain (non-importance-sampled) Monte-Carlo estimation of buffer
// overflow probabilities — the reference estimator against which the
// importance-sampling engine of src/is is validated, and the estimator
// used for the trace-driven curves of Figs. 16-17 (where the paper runs
// a single long replication of the empirical trace).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dist/random.h"
#include "queueing/arrival.h"
#include "queueing/lindley.h"

namespace ssvbr::queueing {

/// Which overflow event a transient estimate targets.
enum class OverflowEvent {
  /// {Q_k > b}: the queue (Lindley recursion from `initial_occupancy`)
  /// exceeds b at the stopping time exactly — the Fig. 15 quantity.
  kTerminal,
  /// {sup_{0<=i<=k} W_i > b} with W the total workload process
  /// W_i = sum_{j<=i} (Y_j - mu). By the duality of eq. (17) this equals
  /// P(Q_k > b) for a queue started empty, and it is the event the
  /// paper's IS procedure (steps 1-8 of Section 4) counts by stopping at
  /// the first crossing. `initial_occupancy` is ignored in this mode
  /// (the duality assumes Q_0 = 0).
  kFirstPassage,
};

/// A Monte-Carlo probability estimate with its precision.
struct OverflowEstimate {
  double probability = 0.0;
  double estimator_variance = 0.0;   ///< var of the mean estimator
  double normalized_variance = 0.0;  ///< estimator variance / probability^2
  double ci95_halfwidth = 0.0;
  std::size_t replications = 0;
  std::size_t hits = 0;
};

/// Assemble the Bernoulli estimate statistics from raw counts (shared
/// by the serial estimator and the engine's parallel front-end; all
/// fields stay finite at zero hits and at a single replication).
/// Requires replications >= 1.
OverflowEstimate make_overflow_estimate(std::size_t hits, std::size_t replications);

/// One MC overflow replication drawing from `rng`: returns whether the
/// targeted event occurred. `queue` is reusable scratch (reset
/// internally in kTerminal mode). Shared by the serial estimator and
/// the engine's parallel front-end.
bool run_overflow_replication(ArrivalProcess& arrivals, LindleyQueue& queue,
                              double service_rate, double buffer, std::size_t k,
                              RandomEngine& rng, OverflowEvent event,
                              double initial_occupancy);

/// Estimate P(overflow by/at slot k) over independent replications.
///
/// Streams: replication i draws from `rng` advanced i times with
/// RandomEngine::jump(); on return `rng` has been advanced
/// `replications` jumps. The engine's parallel front-end uses the same
/// layout, so serial and parallel runs draw identical variates (and
/// hence count identical hits) per replication.
OverflowEstimate estimate_overflow_mc(ArrivalProcess& arrivals, double service_rate,
                                      double buffer, std::size_t k,
                                      std::size_t replications, RandomEngine& rng,
                                      OverflowEvent event = OverflowEvent::kFirstPassage,
                                      double initial_occupancy = 0.0);

/// Steady-state P(Q > b) from one long run: the fraction of post-warmup
/// slots in which the infinite-buffer queue exceeds b.
struct SteadyStateEstimate {
  double probability = 0.0;
  std::size_t slots = 0;
};

SteadyStateEstimate steady_state_overflow(ArrivalProcess& arrivals, double service_rate,
                                          double buffer, std::size_t slots,
                                          std::size_t warmup, RandomEngine& rng);

/// Single-pass steady-state P(Q > b) for many buffer levels at once:
/// runs the infinite-buffer queue over `arrivals` once and counts level
/// exceedances for every entry of `buffers`. This is how the
/// trace-driven series of Fig. 16 is produced (the same trace serves
/// all buffer sizes, as the paper notes).
std::vector<double> steady_state_overflow_multi(std::span<const double> arrivals,
                                                double service_rate,
                                                std::span<const double> buffers,
                                                std::size_t warmup = 0);

}  // namespace ssvbr::queueing
