#include "queueing/lindley.h"

#include <algorithm>

#include "common/error.h"

namespace ssvbr::queueing {

LindleyQueue::LindleyQueue(double service_rate, double initial_occupancy)
    : mu_(service_rate), q_(initial_occupancy), peak_(initial_occupancy) {
  SSVBR_REQUIRE(service_rate > 0.0, "service rate must be positive");
  SSVBR_REQUIRE(initial_occupancy >= 0.0, "initial occupancy must be non-negative");
}

double LindleyQueue::step(double y) {
  SSVBR_REQUIRE(y >= 0.0, "arrivals must be non-negative");
  q_ = std::max(q_ + y - mu_, 0.0);
  peak_ = std::max(peak_, q_);
  ++slots_;
  return q_;
}

void LindleyQueue::reset(double initial_occupancy) {
  SSVBR_REQUIRE(initial_occupancy >= 0.0, "initial occupancy must be non-negative");
  q_ = initial_occupancy;
  peak_ = initial_occupancy;
  slots_ = 0;
}

FiniteBufferQueue::FiniteBufferQueue(double service_rate, double buffer_size,
                                     double initial_occupancy)
    : mu_(service_rate), b_(buffer_size), q_(std::min(initial_occupancy, buffer_size)) {
  SSVBR_REQUIRE(service_rate > 0.0, "service rate must be positive");
  SSVBR_REQUIRE(buffer_size > 0.0, "buffer size must be positive");
  SSVBR_REQUIRE(initial_occupancy >= 0.0, "initial occupancy must be non-negative");
}

double FiniteBufferQueue::step(double y) {
  SSVBR_REQUIRE(y >= 0.0, "arrivals must be non-negative");
  arrived_ += y;
  // Serve first, then admit up to the buffer limit (departures-first
  // slot convention; consistent with the Lindley recursion).
  double q = std::max(q_ - mu_, 0.0) + y;
  double drop = 0.0;
  if (q > b_) {
    drop = q - b_;
    q = b_;
  }
  q_ = q;
  dropped_ += drop;
  ++slots_;
  return drop;
}

double FiniteBufferQueue::loss_ratio() const noexcept {
  return arrived_ > 0.0 ? dropped_ / arrived_ : 0.0;
}

void FiniteBufferQueue::reset(double initial_occupancy) {
  SSVBR_REQUIRE(initial_occupancy >= 0.0, "initial occupancy must be non-negative");
  q_ = std::min(initial_occupancy, b_);
  arrived_ = 0.0;
  dropped_ = 0.0;
  slots_ = 0;
}

}  // namespace ssvbr::queueing
