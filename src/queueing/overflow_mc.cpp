#include "queueing/overflow_mc.h"

#include <cmath>

#include "common/error.h"
#include "obs/instrument.h"
#include "queueing/lindley.h"

namespace ssvbr::queueing {

OverflowEstimate make_overflow_estimate(std::size_t hits, std::size_t replications) {
  OverflowEstimate est;
  est.replications = replications;
  est.hits = hits;
  const double n = static_cast<double>(replications);
  est.probability = n > 0.0 ? static_cast<double>(hits) / n : 0.0;
  // Bernoulli estimator variance p(1-p)/n; 0 at p = 0 and p = 1, so
  // zero-hit and single-replication runs yield all-finite statistics.
  est.estimator_variance = n > 0.0 ? est.probability * (1.0 - est.probability) / n : 0.0;
  est.normalized_variance = est.probability > 0.0
                                ? est.estimator_variance / (est.probability * est.probability)
                                : 0.0;
  est.ci95_halfwidth = 1.96 * std::sqrt(est.estimator_variance);
  return est;
}

bool run_overflow_replication(ArrivalProcess& arrivals, LindleyQueue& queue,
                              double service_rate, double buffer, std::size_t k,
                              RandomEngine& rng, OverflowEvent event,
                              double initial_occupancy) {
  SSVBR_TIMER("mc.replication");
  SSVBR_COUNTER_ADD("mc.replications", 1);
  arrivals.begin_replication(rng, k);
  if (event == OverflowEvent::kFirstPassage) {
    // Track the total workload W_i = sum (Y_j - mu) and stop at the
    // first crossing of b (eq. (17) duality with {Q_k > b}, Q_0 = 0).
    double w = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      w += arrivals.next() - service_rate;
      if (w > buffer) {
        SSVBR_COUNTER_ADD("mc.lindley_slots", i + 1);
        SSVBR_COUNTER_ADD("mc.hits", 1);
        return true;
      }
    }
    SSVBR_COUNTER_ADD("mc.lindley_slots", k);
    return false;
  }
  queue.reset(initial_occupancy);
  for (std::size_t i = 0; i < k; ++i) queue.step(arrivals.next());
  SSVBR_COUNTER_ADD("mc.lindley_slots", k);
  const bool hit = queue.size() > buffer;
  if (hit) SSVBR_COUNTER_ADD("mc.hits", 1);
  return hit;
}

OverflowEstimate estimate_overflow_mc(ArrivalProcess& arrivals, double service_rate,
                                      double buffer, std::size_t k,
                                      std::size_t replications, RandomEngine& rng,
                                      OverflowEvent event, double initial_occupancy) {
  SSVBR_REQUIRE(replications >= 1, "need at least one replication");
  SSVBR_REQUIRE(k >= 1, "stopping time must be at least one slot");
  SSVBR_REQUIRE(buffer >= 0.0, "buffer must be non-negative");

  std::size_t hits = 0;
  LindleyQueue queue(service_rate, initial_occupancy);
  for (std::size_t rep = 0; rep < replications; ++rep) {
    RandomEngine replication_stream = rng;  // stream i = caller engine jumped i times
    if (run_overflow_replication(arrivals, queue, service_rate, buffer, k,
                                 replication_stream, event, initial_occupancy)) {
      ++hits;
    }
    rng.jump();
  }
  return make_overflow_estimate(hits, replications);
}

SteadyStateEstimate steady_state_overflow(ArrivalProcess& arrivals, double service_rate,
                                          double buffer, std::size_t slots,
                                          std::size_t warmup, RandomEngine& rng) {
  SSVBR_REQUIRE(slots > warmup, "need slots beyond the warmup period");
  arrivals.begin_replication(rng, slots);
  LindleyQueue queue(service_rate);
  std::size_t exceed = 0;
  for (std::size_t i = 0; i < slots; ++i) {
    const double q = queue.step(arrivals.next());
    if (i >= warmup && q > buffer) ++exceed;
  }
  SteadyStateEstimate est;
  est.slots = slots - warmup;
  est.probability = static_cast<double>(exceed) / static_cast<double>(est.slots);
  return est;
}

std::vector<double> steady_state_overflow_multi(std::span<const double> arrivals,
                                                double service_rate,
                                                std::span<const double> buffers,
                                                std::size_t warmup) {
  SSVBR_REQUIRE(arrivals.size() > warmup, "need arrivals beyond the warmup period");
  LindleyQueue queue(service_rate);
  std::vector<std::size_t> exceed(buffers.size(), 0);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const double q = queue.step(arrivals[i]);
    if (i < warmup) continue;
    for (std::size_t j = 0; j < buffers.size(); ++j) {
      if (q > buffers[j]) ++exceed[j];
    }
  }
  const double n = static_cast<double>(arrivals.size() - warmup);
  std::vector<double> out(buffers.size());
  for (std::size_t j = 0; j < buffers.size(); ++j) {
    out[j] = static_cast<double>(exceed[j]) / n;
  }
  return out;
}

}  // namespace ssvbr::queueing
