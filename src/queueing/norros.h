// ssvbr/queueing/norros.h
//
// Norros' fractional-Brownian storage model (reference [23] of the
// paper): closed-form asymptotics for the overflow probability of a
// queue fed by fractional Gaussian noise.
//
// For slotted arrivals with mean m, per-slot standard deviation sigma,
// Hurst parameter H, and service rate C > m, the stationary queue
// satisfies the Weibull-type approximation
//
//   P(Q > b) ~= exp( - (C - m)^{2H} b^{2-2H}
//                     / ( 2 H^{2H} (1 - H)^{2-2H} sigma^2 ) ),
//
// obtained from the most-likely overflow time scale
// t*(b) = b H / ((C - m)(1 - H)). For H = 1/2 this reduces to the
// classical exponential large-buffer decay; for H > 1/2 the decay is
// sub-exponential — the paper's (and Fig. 17's) central point about the
// danger of SRD-only models.
#pragma once

namespace ssvbr::queueing {

/// Parameters of the fBm storage approximation.
struct NorrosParameters {
  double mean_rate = 0.0;   ///< m, work per slot
  double stddev = 1.0;      ///< sigma, per-slot standard deviation
  double hurst = 0.5;       ///< H in (0, 1)
  double service_rate = 1.0;  ///< C > m
};

/// The most likely time scale over which an overflow of level b builds
/// up: t*(b) = b H / ((C - m)(1 - H)).
double norros_critical_time_scale(const NorrosParameters& params, double buffer);

/// The overflow probability approximation P(Q > b) above. Requires
/// C > m, b >= 0, H in (0, 1), sigma > 0.
double norros_overflow_approximation(const NorrosParameters& params, double buffer);

/// log of the approximation (numerically safe for very small values).
double norros_log_overflow_approximation(const NorrosParameters& params, double buffer);

}  // namespace ssvbr::queueing
