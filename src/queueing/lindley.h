// ssvbr/queueing/lindley.h
//
// The slotted-time single-server queue of Section 4: deterministic
// service rate mu per slot, arrivals Y_k, queue evolution by the
// Lindley recursion (eq. (16))
//
//     Q_k = max(Q_{k-1} + Y_k - mu, 0).
//
// Both an infinite-buffer queue (overflow = level crossing, the
// quantity P(Q_k > b) the paper estimates) and a finite-buffer variant
// (cells beyond the buffer are dropped and counted, the ATM multiplexer
// behaviour) are provided.
#pragma once

#include <cstddef>

namespace ssvbr::queueing {

/// Infinite-buffer slotted queue.
class LindleyQueue {
 public:
  /// `service_rate` is the deterministic per-slot service mu > 0;
  /// `initial_occupancy` sets Q_0 (the paper's Fig. 15 contrasts empty
  /// and full initial buffers).
  explicit LindleyQueue(double service_rate, double initial_occupancy = 0.0);

  /// Advance one slot with arrival `y >= 0`; returns the new queue size.
  double step(double y);

  double size() const noexcept { return q_; }
  double service_rate() const noexcept { return mu_; }
  std::size_t slots() const noexcept { return slots_; }

  /// Largest queue size observed since construction/reset.
  double peak() const noexcept { return peak_; }

  /// Reset to a fresh replication with occupancy q0.
  void reset(double initial_occupancy = 0.0);

 private:
  double mu_;
  double q_;
  double peak_;
  std::size_t slots_ = 0;
};

/// Finite-buffer slotted queue: work beyond `buffer_size` is dropped.
class FiniteBufferQueue {
 public:
  FiniteBufferQueue(double service_rate, double buffer_size,
                    double initial_occupancy = 0.0);

  /// Advance one slot; returns the amount of work dropped this slot.
  double step(double y);

  double size() const noexcept { return q_; }
  double buffer_size() const noexcept { return b_; }
  double total_arrived() const noexcept { return arrived_; }
  double total_dropped() const noexcept { return dropped_; }
  std::size_t slots() const noexcept { return slots_; }

  /// Work loss ratio so far (dropped / arrived); 0 before any arrival.
  double loss_ratio() const noexcept;

  void reset(double initial_occupancy = 0.0);

 private:
  double mu_;
  double b_;
  double q_;
  double arrived_ = 0.0;
  double dropped_ = 0.0;
  std::size_t slots_ = 0;
};

}  // namespace ssvbr::queueing
