#include "queueing/norros.h"

#include <cmath>

#include "common/error.h"

namespace ssvbr::queueing {

namespace {
void validate(const NorrosParameters& params, double buffer) {
  SSVBR_REQUIRE(params.hurst > 0.0 && params.hurst < 1.0, "Hurst must lie in (0, 1)");
  SSVBR_REQUIRE(params.stddev > 0.0, "stddev must be positive");
  SSVBR_REQUIRE(params.service_rate > params.mean_rate,
                "service rate must exceed the mean arrival rate");
  SSVBR_REQUIRE(buffer >= 0.0, "buffer must be non-negative");
}
}  // namespace

double norros_critical_time_scale(const NorrosParameters& params, double buffer) {
  validate(params, buffer);
  const double drift = params.service_rate - params.mean_rate;
  return buffer * params.hurst / (drift * (1.0 - params.hurst));
}

double norros_log_overflow_approximation(const NorrosParameters& params, double buffer) {
  validate(params, buffer);
  if (buffer == 0.0) return 0.0;
  const double h = params.hurst;
  const double drift = params.service_rate - params.mean_rate;
  const double numerator =
      std::pow(drift, 2.0 * h) * std::pow(buffer, 2.0 - 2.0 * h);
  const double denominator = 2.0 * std::pow(h, 2.0 * h) *
                             std::pow(1.0 - h, 2.0 - 2.0 * h) * params.stddev *
                             params.stddev;
  return -numerator / denominator;
}

double norros_overflow_approximation(const NorrosParameters& params, double buffer) {
  return std::exp(norros_log_overflow_approximation(params, buffer));
}

}  // namespace ssvbr::queueing
