// ssvbr/stats/linear_fit.h
//
// Ordinary least-squares line fit, the workhorse behind the paper's
// variance-time plot slope, R/S pox-diagram slope, and the log-domain
// fits of the SRD (exponential) and LRD (power-law) autocorrelation
// components.
#pragma once

#include <span>

namespace ssvbr::stats {

/// Result of fitting y = slope * x + intercept by least squares.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination
  double residual_stddev = 0.0;
};

/// Least-squares fit of y over x. Requires at least two points and
/// non-constant x.
LineFit fit_line(std::span<const double> x, std::span<const double> y);

/// Fit y = A * exp(slope * x): log-linear least squares on log(y).
/// Points with y <= 0 are skipped; at least two valid points required.
LineFit fit_exponential(std::span<const double> x, std::span<const double> y);

/// Fit y = A * x^slope: log-log least squares. Points with x <= 0 or
/// y <= 0 are skipped; at least two valid points required.
LineFit fit_power_law(std::span<const double> x, std::span<const double> y);

}  // namespace ssvbr::stats
