// ssvbr/stats/descriptive.h
//
// Descriptive statistics over frame-size series: moments, sample
// autocorrelation (direct and FFT-accelerated), and the aggregated
// series X^(m) used by the variance-time Hurst estimator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ssvbr::stats {

/// Numerically stable streaming moments (Welford). Suitable for the
/// hundreds-of-thousands-of-frames traces in this repository.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (n - 1 denominator); 0 for n < 2.
  double variance() const noexcept;
  /// Population variance (n denominator); 0 for n < 1.
  double population_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Sample skewness (g1); 0 for n < 3 or zero variance.
  double skewness() const noexcept;
  /// Sample excess kurtosis (g2); 0 for n < 4 or zero variance.
  double excess_kurtosis() const noexcept;

  /// The complete internal state, exposed for exact serialization (the
  /// replication engine checkpoints per-shard moments and must restore
  /// them bit-identically; rounding through decimal text would break
  /// the resume-equals-uninterrupted guarantee).
  struct State {
    std::size_t n = 0;
    double mean = 0.0, m2 = 0.0, m3 = 0.0, m4 = 0.0, min = 0.0, max = 0.0;
  };

  State state() const noexcept { return {n_, mean_, m2_, m3_, m4_, min_, max_}; }

  static RunningStats from_state(const State& s) noexcept {
    RunningStats out;
    out.n_ = s.n;
    out.mean_ = s.mean;
    out.m2_ = s.m2;
    out.m3_ = s.m3;
    out.m4_ = s.m4;
    out.min_ = s.min;
    out.max_ = s.max;
    return out;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample mean of `xs`; 0 for empty input.
double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance of `xs`; 0 for fewer than two samples.
double variance(std::span<const double> xs) noexcept;

/// Population (n-denominator) variance of `xs`.
double population_variance(std::span<const double> xs) noexcept;

double stddev(std::span<const double> xs) noexcept;

/// Sample autocorrelation r(k) for k = 0..max_lag using the biased
/// (1/n) autocovariance estimator standard in time-series analysis.
/// Direct O(n * max_lag) evaluation; prefer autocorrelation_fft for
/// max_lag in the hundreds on long traces.
std::vector<double> autocorrelation(std::span<const double> xs, std::size_t max_lag);

/// Same estimator computed in O(n log n) via the Wiener-Khinchin
/// theorem (periodogram of the zero-padded, demeaned series).
std::vector<double> autocorrelation_fft(std::span<const double> xs, std::size_t max_lag);

/// Sample autocovariance c(k), biased (1/n) estimator, k = 0..max_lag.
std::vector<double> autocovariance(std::span<const double> xs, std::size_t max_lag);

/// The m-aggregated series X^(m)_k = mean(X_{km-m+1} .. X_{km}) of the
/// paper's variance-time analysis. Trailing partial blocks are dropped.
std::vector<double> aggregate_series(std::span<const double> xs, std::size_t m);

/// p-quantile (type-7 / linear interpolation, the R default) of a
/// *sorted* sample. Requires non-empty input and p in [0, 1].
double quantile_sorted(std::span<const double> sorted, double p);

/// Convenience: sorts a copy and delegates to quantile_sorted.
double quantile(std::span<const double> xs, double p);

}  // namespace ssvbr::stats
