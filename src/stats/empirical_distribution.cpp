#include "stats/empirical_distribution.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "stats/descriptive.h"

namespace ssvbr::stats {

EmpiricalDistribution::EmpiricalDistribution(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  SSVBR_REQUIRE(!sorted_.empty(), "empirical distribution needs a non-empty sample");
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = stats::mean(sorted_);
  variance_ = stats::variance(sorted_);
}

double EmpiricalDistribution::cdf(double y) const {
  const std::size_t n = sorted_.size();
  if (y <= sorted_.front()) return y < sorted_.front() ? 0.0 : 0.5 / static_cast<double>(n);
  if (y >= sorted_.back()) {
    return y > sorted_.back() ? 1.0
                              : (static_cast<double>(n) - 0.5) / static_cast<double>(n);
  }
  // Find the bracketing order statistics and interpolate the Hazen
  // plotting positions p_i = (i + 0.5) / n (0-based i).
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), y);
  const std::size_t j = static_cast<std::size_t>(it - sorted_.begin());  // sorted_[j-1] <= y < sorted_[j]
  const double x0 = sorted_[j - 1];
  const double x1 = sorted_[j];
  const double p0 = (static_cast<double>(j - 1) + 0.5) / static_cast<double>(n);
  const double p1 = (static_cast<double>(j) + 0.5) / static_cast<double>(n);
  if (x1 == x0) return p1;
  return p0 + (p1 - p0) * (y - x0) / (x1 - x0);
}

double EmpiricalDistribution::pdf(double y) const {
  const double h = (sorted_.back() - sorted_.front()) /
                   std::max<std::size_t>(std::size_t{1}, sorted_.size() / 10);
  if (h <= 0.0) return 0.0;
  return (cdf(y + 0.5 * h) - cdf(y - 0.5 * h)) / h;
}

double EmpiricalDistribution::quantile(double p) const {
  SSVBR_REQUIRE(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
  const std::size_t n = sorted_.size();
  // Invert the Hazen-interpolated ECDF: h = p * n - 0.5 indexes between
  // order statistics.
  const double h = p * static_cast<double>(n) - 0.5;
  if (h <= 0.0) return sorted_.front();
  if (h >= static_cast<double>(n - 1)) return sorted_.back();
  const std::size_t lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

std::string EmpiricalDistribution::describe() const {
  std::ostringstream os;
  os << "Empirical(n=" << sorted_.size() << ", mean=" << mean_ << ", range=["
     << sorted_.front() << ", " << sorted_.back() << "])";
  return os.str();
}

std::vector<QqPoint> qq_points(const Distribution& x, const Distribution& y,
                               std::size_t n_points) {
  SSVBR_REQUIRE(n_points > 0, "need at least one Q-Q point");
  std::vector<QqPoint> out;
  out.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(n_points);
    out.push_back({p, x.quantile(p), y.quantile(p)});
  }
  return out;
}

std::vector<QqPoint> qq_points(std::span<const double> x_sample,
                               std::span<const double> y_sample, std::size_t n_points) {
  const EmpiricalDistribution fx(x_sample);
  const EmpiricalDistribution fy(y_sample);
  return qq_points(fx, fy, n_points);
}

}  // namespace ssvbr::stats
