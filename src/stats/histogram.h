// ssvbr/stats/histogram.h
//
// Fixed-width histogram over a closed range, the representation behind
// Figs. 1 and 12 of the paper and an input to the histogram-inversion
// marginal transform.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ssvbr::stats {

/// Equal-width binning histogram. Samples outside [lo, hi] are clamped
/// into the first/last bin so that total mass is conserved (frame-size
/// traces occasionally contain extreme outliers that would otherwise be
/// silently dropped).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Build a histogram spanning [min(xs), max(xs)] with `bins` bins.
  static Histogram from_samples(std::span<const double> xs, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  double bin_width() const noexcept { return width_; }

  /// Left edge of bin i.
  double bin_left(std::size_t i) const;
  /// Center of bin i.
  double bin_center(std::size_t i) const;
  /// Raw count of bin i.
  std::size_t count(std::size_t i) const;
  /// Relative frequency of bin i (count / total); 0 when empty.
  double frequency(std::size_t i) const;
  /// Density estimate of bin i (frequency / bin width).
  double density(std::size_t i) const;

  /// All relative frequencies, in bin order.
  std::vector<double> frequencies() const;

  /// Total-variation distance between the frequency vectors of two
  /// histograms with identical binning. In [0, 1]; 0 means identical.
  static double total_variation_distance(const Histogram& a, const Histogram& b);

 private:
  std::size_t bin_index(double x) const noexcept;

  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ssvbr::stats
