#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ssvbr::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  SSVBR_REQUIRE(bins > 0, "histogram needs at least one bin");
  SSVBR_REQUIRE(hi > lo, "histogram range must be non-degenerate");
}

Histogram Histogram::from_samples(std::span<const double> xs, std::size_t bins) {
  SSVBR_REQUIRE(!xs.empty(), "cannot infer histogram range from empty sample");
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  double lo = *mn;
  double hi = *mx;
  if (hi <= lo) hi = lo + 1.0;  // degenerate (constant) sample
  Histogram h(lo, hi, bins);
  h.add_all(xs);
  return h;
}

std::size_t Histogram::bin_index(double x) const noexcept {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const auto i = static_cast<std::size_t>((x - lo_) / width_);
  return std::min(i, counts_.size() - 1);
}

void Histogram::add(double x) noexcept {
  ++counts_[bin_index(x)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (const double x : xs) add(x);
}

double Histogram::bin_left(std::size_t i) const {
  SSVBR_REQUIRE(i < counts_.size(), "bin index out of range");
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::bin_center(std::size_t i) const { return bin_left(i) + 0.5 * width_; }

std::size_t Histogram::count(std::size_t i) const {
  SSVBR_REQUIRE(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double Histogram::frequency(std::size_t i) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(count(i)) / static_cast<double>(total_);
}

double Histogram::density(std::size_t i) const { return frequency(i) / width_; }

std::vector<double> Histogram::frequencies() const {
  std::vector<double> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) out[i] = frequency(i);
  return out;
}

double Histogram::total_variation_distance(const Histogram& a, const Histogram& b) {
  SSVBR_REQUIRE(a.bin_count() == b.bin_count() && a.lo() == b.lo() && a.hi() == b.hi(),
                "histograms must share identical binning");
  double tv = 0.0;
  for (std::size_t i = 0; i < a.bin_count(); ++i) {
    tv += std::fabs(a.frequency(i) - b.frequency(i));
  }
  return 0.5 * tv;
}

}  // namespace ssvbr::stats
