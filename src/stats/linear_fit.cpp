#include "stats/linear_fit.h"

#include <cmath>
#include <vector>

#include "common/error.h"

namespace ssvbr::stats {

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  SSVBR_REQUIRE(x.size() == y.size(), "x and y must have equal length");
  SSVBR_REQUIRE(x.size() >= 2, "need at least two points to fit a line");
  const double n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  SSVBR_REQUIRE(sxx > 0.0, "x values must not be constant");
  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double resid = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += resid * resid;
  }
  fit.r_squared = syy > 0.0 ? 1.0 - ss_res / syy : 1.0;
  fit.residual_stddev =
      x.size() > 2 ? std::sqrt(ss_res / static_cast<double>(x.size() - 2)) : 0.0;
  return fit;
}

namespace {

LineFit fit_log_transformed(std::span<const double> x, std::span<const double> y,
                            bool log_x) {
  SSVBR_REQUIRE(x.size() == y.size(), "x and y must have equal length");
  std::vector<double> tx;
  std::vector<double> ty;
  tx.reserve(x.size());
  ty.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (y[i] <= 0.0) continue;
    if (log_x && x[i] <= 0.0) continue;
    tx.push_back(log_x ? std::log(x[i]) : x[i]);
    ty.push_back(std::log(y[i]));
  }
  SSVBR_REQUIRE(tx.size() >= 2, "need at least two positive points for a log-domain fit");
  return fit_line(tx, ty);
}

}  // namespace

LineFit fit_exponential(std::span<const double> x, std::span<const double> y) {
  // Returned slope is the exponential rate; intercept is log(A).
  return fit_log_transformed(x, y, /*log_x=*/false);
}

LineFit fit_power_law(std::span<const double> x, std::span<const double> y) {
  // Returned slope is the power-law exponent; intercept is log(A).
  return fit_log_transformed(x, y, /*log_x=*/true);
}

}  // namespace ssvbr::stats
