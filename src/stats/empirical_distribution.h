// ssvbr/stats/empirical_distribution.h
//
// Empirical distribution function and quantile function built from a
// sample. This is the "inverting the empirical distribution directly"
// option the paper chooses for F_Y in the transform
// Y = F_Y^{-1}(Phi(X)) (Section 3.1), as opposed to a parametric fit.
//
// The quantile function interpolates linearly between order statistics,
// which makes the resulting transform h continuous and strictly
// monotone wherever the sample has distinct values — the regularity the
// Appendix A invariance theorem needs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dist/distribution.h"

namespace ssvbr::stats {

/// Empirical distribution of a one-dimensional sample.
class EmpiricalDistribution final : public Distribution {
 public:
  /// Builds from a sample (copied and sorted). Requires non-empty input.
  explicit EmpiricalDistribution(std::span<const double> sample);

  /// ECDF with the Hazen plotting position ((i - 0.5) / n), linearly
  /// interpolated between order statistics.
  double cdf(double y) const override;

  /// Kernel-free density estimate: finite difference of the interpolated
  /// ECDF. Adequate for diagnostics; not used by the transform.
  double pdf(double y) const override;

  /// Interpolated quantile function; the exact inverse of cdf() in the
  /// interior of the sample range. Requires p in (0, 1).
  double quantile(double p) const override;

  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::string describe() const override;

  std::size_t size() const noexcept { return sorted_.size(); }
  double min() const noexcept { return sorted_.front(); }
  double max() const noexcept { return sorted_.back(); }
  std::span<const double> sorted_sample() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_;
  double variance_;
};

/// Pairs (empirical quantile, model quantile) evaluated at the Hazen
/// plotting positions of `n_points` probabilities — the data behind the
/// paper's Q-Q plot (Fig. 13).
struct QqPoint {
  double probability;
  double x_quantile;
  double y_quantile;
};

std::vector<QqPoint> qq_points(const Distribution& x, const Distribution& y,
                               std::size_t n_points);

/// Q-Q points directly from two samples (sorted internally).
std::vector<QqPoint> qq_points(std::span<const double> x_sample,
                               std::span<const double> y_sample, std::size_t n_points);

}  // namespace ssvbr::stats
