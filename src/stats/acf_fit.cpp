#include "stats/acf_fit.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"

namespace ssvbr::stats {

double CompositeAcfFit::evaluate(double k) const {
  if (k <= 0.0) return 1.0;
  if (k < static_cast<double>(knee)) {
    return srd_scale * std::exp(-lambda * k);
  }
  return lrd_scale * std::pow(k, -beta);
}

namespace {

struct BranchFits {
  LineFit exp_fit;
  LineFit pow_fit;
  bool valid = false;
};

// Fit exp branch on lags [1, knee) and power branch on [knee, n).
BranchFits fit_branches(std::span<const double> acf, std::size_t knee,
                        double min_beta, double max_beta) {
  const std::size_t n = acf.size();
  if (knee < 3 || knee + 3 > n) return {};
  std::vector<double> x_lo;
  std::vector<double> y_lo;
  std::vector<double> x_hi;
  std::vector<double> y_hi;
  for (std::size_t k = 1; k < knee; ++k) {
    if (acf[k] > 0.0) {
      x_lo.push_back(static_cast<double>(k));
      y_lo.push_back(acf[k]);
    }
  }
  for (std::size_t k = knee; k < n; ++k) {
    if (acf[k] > 0.0) {
      x_hi.push_back(static_cast<double>(k));
      y_hi.push_back(acf[k]);
    }
  }
  if (x_lo.size() < 2 || x_hi.size() < 2) return {};
  BranchFits out;
  out.exp_fit = fit_exponential(x_lo, y_lo);
  out.pow_fit = fit_power_law(x_hi, y_hi);
  const double beta = -out.pow_fit.slope;
  out.valid = out.exp_fit.slope < 0.0 && beta >= min_beta && beta <= max_beta;
  return out;
}

CompositeAcfFit assemble(std::span<const double> acf, std::size_t knee,
                         const BranchFits& branches) {
  CompositeAcfFit fit;
  fit.knee = knee;
  fit.lambda = -branches.exp_fit.slope;
  fit.srd_scale = std::exp(branches.exp_fit.intercept);
  fit.beta = -branches.pow_fit.slope;
  fit.lrd_scale = std::exp(branches.pow_fit.intercept);
  fit.exp_fit = branches.exp_fit;
  fit.pow_fit = branches.pow_fit;
  double sse = 0.0;
  for (std::size_t k = 1; k < acf.size(); ++k) {
    const double e = acf[k] - fit.evaluate(static_cast<double>(k));
    sse += e * e;
  }
  fit.sse = sse;
  return fit;
}

// Lag at which the fitted exponential crosses the fitted power law from
// above — the knee the paper reads off ("the intersection point of the
// two fitting curves"). g(k) = log(exp branch) - log(power branch) is
// typically negative at k = 1 (a power law with L > 1 starts above the
// exponential), turns positive, and goes negative again once the
// exponential dies; the descending zero is the knee. We scan integer
// lags for the *last* positive-to-negative sign change.
std::size_t intersection_knee(const CompositeAcfFit& fit, std::size_t n,
                              std::size_t fallback) {
  auto g = [&](double k) {
    return std::log(fit.srd_scale) - fit.lambda * k -
           (std::log(fit.lrd_scale) - fit.beta * std::log(k));
  };
  std::size_t knee = 0;
  for (std::size_t k = 1; k + 1 < n; ++k) {
    if (g(static_cast<double>(k)) > 0.0 && g(static_cast<double>(k + 1)) <= 0.0) {
      knee = k + 1;
    }
  }
  return knee == 0 ? fallback : knee;
}

}  // namespace

CompositeAcfFit fit_composite_acf(std::span<const double> acf,
                                  const CompositeAcfFitOptions& options) {
  const std::size_t n = acf.size();
  SSVBR_REQUIRE(n >= 16, "need at least 16 ACF lags to fit the composite model");
  SSVBR_REQUIRE(std::fabs(acf[0] - 1.0) < 1e-6, "acf[0] must equal 1");

  if (!options.exhaustive_knee_search) {
    // Paper procedure: fit once around the visual knee, then relocate
    // the knee to the intersection of the two fitted curves (the paper
    // picks Kt = 60 as "the intersection point of the two fitting
    // curves") and keep the branch parameters.
    const std::size_t hint = std::min(options.hint_knee, n - 4);
    const BranchFits branches = fit_branches(acf, hint, options.min_beta, options.max_beta);
    SSVBR_REQUIRE(branches.valid,
                  "composite ACF fit failed: branches not both decaying at hint knee");
    CompositeAcfFit fit = assemble(acf, hint, branches);
    fit.knee = intersection_knee(fit, n, hint);
    // Recompute the SSE with the relocated knee.
    double sse = 0.0;
    for (std::size_t k = 1; k < n; ++k) {
      const double e = acf[k] - fit.evaluate(static_cast<double>(k));
      sse += e * e;
    }
    fit.sse = sse;
    return fit;
  }

  const std::size_t max_knee =
      options.max_knee == 0 ? n / 2 : std::min(options.max_knee, n - 4);
  SSVBR_REQUIRE(options.min_knee >= 3, "min_knee must be at least 3");
  SSVBR_REQUIRE(options.min_knee <= max_knee, "empty knee search range");

  CompositeAcfFit best;
  double best_sse = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t knee = options.min_knee; knee <= max_knee; ++knee) {
    const BranchFits branches = fit_branches(acf, knee, options.min_beta, options.max_beta);
    if (!branches.valid) continue;
    const CompositeAcfFit fit = assemble(acf, knee, branches);
    if (fit.sse < best_sse) {
      best_sse = fit.sse;
      best = fit;
      found = true;
    }
  }
  if (!found) {
    throw NumericalError(
        "composite ACF fit failed: no knee candidate yields two decaying branches");
  }
  return best;
}

double fit_srd_rate(std::span<const double> acf, std::size_t max_lag) {
  SSVBR_REQUIRE(max_lag >= 2 && max_lag < acf.size(), "invalid SRD fit range");
  std::vector<double> x;
  std::vector<double> y;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    if (acf[k] > 0.0) {
      x.push_back(static_cast<double>(k));
      y.push_back(acf[k]);
    }
  }
  SSVBR_REQUIRE(x.size() >= 2, "too few positive ACF values for an SRD fit");
  const LineFit fit = fit_exponential(x, y);
  SSVBR_REQUIRE(fit.slope < 0.0, "SRD fit did not produce a decaying exponential");
  return -fit.slope;
}

}  // namespace ssvbr::stats
