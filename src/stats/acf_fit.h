// ssvbr/stats/acf_fit.h
//
// Fitting the paper's composite SRD+LRD autocorrelation model
// (Section 3.2, Step 2, eqs. (10)-(13)) to an estimated autocorrelation
// function:
//
//     R(k) = exp(-lambda * k)   for k <  Kt   (short-range part)
//     R(k) = L * k^(-beta)      for k >= Kt   (long-range part)
//
// The paper observes a "knee" in the empirical ACF around lag 60-80,
// fits a decaying exponential below it and a power law above it by
// least squares, and sets Kt to the intersection of the two fitted
// curves. `fit_composite_acf` automates exactly that procedure and also
// supports an exhaustive knee search that minimizes total squared error.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/linear_fit.h"

namespace ssvbr::stats {

/// Fitted parameters of the composite autocorrelation (one-exponential
/// SRD as in the paper's final model, eq. (13)).
struct CompositeAcfFit {
  double lambda = 0.0;    ///< SRD exponential rate (> 0)
  double srd_scale = 1.0; ///< SRD amplitude A in A*exp(-lambda k) (paper uses A ~= 1)
  double lrd_scale = 0.0; ///< LRD amplitude L
  double beta = 0.0;      ///< LRD exponent in (0, 1); Hurst H = 1 - beta/2
  std::size_t knee = 0;   ///< Kt, first lag governed by the LRD branch
  double sse = 0.0;       ///< total squared error of the fit over all lags
  LineFit exp_fit;        ///< underlying log-linear SRD fit diagnostics
  LineFit pow_fit;        ///< underlying log-log LRD fit diagnostics

  /// Evaluate the fitted model at integer lag k >= 0 (R(0) = 1).
  double evaluate(double k) const;

  /// Hurst parameter implied by the LRD exponent, H = 1 - beta / 2.
  double hurst() const { return 1.0 - beta / 2.0; }
};

/// Options controlling the composite fit.
struct CompositeAcfFitOptions {
  /// Knee candidates searched are [min_knee, max_knee]. max_knee = 0
  /// means "half the available lags".
  std::size_t min_knee = 10;
  std::size_t max_knee = 0;
  /// When true, pick the knee minimizing total SSE over all candidates;
  /// when false, fit the two branches once using `hint_knee` as the
  /// split and then move the knee to the intersection of the two fitted
  /// curves — the procedure described in the paper.
  bool exhaustive_knee_search = true;
  /// Split point for the single-pass (paper-style) fit.
  std::size_t hint_knee = 60;
  /// Accepted range of the LRD exponent. Knee candidates whose tail fit
  /// falls outside [min_beta, max_beta] are rejected: eq. (10) requires
  /// 0 < beta <= 1 for a long-range-dependent tail, and an unconstrained
  /// fit on a noisy, nearly-vanishing tail can run away.
  double min_beta = 0.01;
  double max_beta = 1.0;
};

/// Fit the composite model to acf[k], k = 0..N-1 (acf[0] must be 1).
/// Lag 0 is excluded from both branch fits. Throws NumericalError when
/// the ACF has non-positive values in the fitted region (take max_lag
/// small enough that the ACF is still clearly positive, as the paper
/// does by fitting over lags 1..500).
CompositeAcfFit fit_composite_acf(std::span<const double> acf,
                                  const CompositeAcfFitOptions& options = {});

/// Convenience: fit only the exponential branch over lags [1, max_lag]
/// and return the rate lambda (used by the SRD-only baseline model of
/// Fig. 17).
double fit_srd_rate(std::span<const double> acf, std::size_t max_lag);

}  // namespace ssvbr::stats
