#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>

#include "common/error.h"
#include "common/math_util.h"
#include "fft/fft.h"

namespace ssvbr::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ + delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 = m4_ + other.m4_ +
                    delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
                    6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
                    4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::population_variance() const noexcept {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::skewness() const noexcept {
  if (n_ < 3 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningStats::excess_kurtosis() const noexcept {
  if (n_ < 4 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (const double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

double population_variance(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (const double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

std::vector<double> autocovariance(std::span<const double> xs, std::size_t max_lag) {
  SSVBR_REQUIRE(!xs.empty(), "autocovariance of empty series");
  SSVBR_REQUIRE(max_lag < xs.size(), "max_lag must be smaller than the series length");
  const std::size_t n = xs.size();
  const double m = mean(xs);
  std::vector<double> c(max_lag + 1, 0.0);
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double sum = 0.0;
    for (std::size_t i = 0; i + k < n; ++i) {
      sum += (xs[i] - m) * (xs[i + k] - m);
    }
    c[k] = sum / static_cast<double>(n);
  }
  return c;
}

std::vector<double> autocorrelation(std::span<const double> xs, std::size_t max_lag) {
  std::vector<double> c = autocovariance(xs, max_lag);
  SSVBR_REQUIRE(c[0] > 0.0, "autocorrelation of a constant series is undefined");
  const double c0 = c[0];
  for (double& v : c) v /= c0;
  return c;
}

std::vector<double> autocorrelation_fft(std::span<const double> xs, std::size_t max_lag) {
  SSVBR_REQUIRE(!xs.empty(), "autocorrelation of empty series");
  SSVBR_REQUIRE(max_lag < xs.size(), "max_lag must be smaller than the series length");
  const std::size_t n = xs.size();
  const double m = mean(xs);
  // Zero-pad to >= 2n to turn the circular convolution into a linear
  // one. Both transforms run through the real-input half-size plan; the
  // buffers persist per thread so repeated estimation (e.g. per-scene
  // trace analysis) does not reallocate.
  const std::size_t padded = next_power_of_two(2 * n);
  // Size-keyed per-thread plan slot: repeated estimation at one length
  // (the common case) resolves the plan without touching the global
  // cache or its lock.
  static thread_local std::shared_ptr<const fft::FftPlan> plan;
  if (!plan || plan->size() != padded) plan = fft::FftPlan::get(padded);
  static thread_local std::vector<double> buf;
  static thread_local std::vector<fft::Complex> spec;
  static thread_local std::vector<fft::Complex> scratch;
  buf.assign(padded, 0.0);
  spec.resize(padded);
  for (std::size_t i = 0; i < n; ++i) buf[i] = xs[i] - m;
  plan->forward_real(buf, spec, scratch);
  // The power spectrum is real and even, so its (unnormalized) inverse
  // transform is exactly the real synthesis sum_k |X_k|^2 e^{-2 pi ijk/m};
  // only the non-redundant half is needed.
  const std::size_t half = padded / 2;
  for (std::size_t k = 0; k <= half; ++k) {
    spec[k] = fft::Complex(std::norm(spec[k]), 0.0);
  }
  plan->synthesize_real(std::span<const fft::Complex>(spec).first(half + 1), buf,
                        scratch);
  std::vector<double> r(max_lag + 1);
  // The synthesis is unnormalized (factor `padded`); the biased estimator
  // divides by n. Normalize by c(0) at the end so both factors cancel.
  const double c0 = buf[0];
  SSVBR_REQUIRE(c0 > 0.0, "autocorrelation of a constant series is undefined");
  for (std::size_t k = 0; k <= max_lag; ++k) r[k] = buf[k] / c0;
  return r;
}

std::vector<double> aggregate_series(std::span<const double> xs, std::size_t m) {
  SSVBR_REQUIRE(m > 0, "aggregation level must be positive");
  const std::size_t blocks = xs.size() / m;
  std::vector<double> out;
  out.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    double sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) sum += xs[b * m + j];
    out.push_back(sum / static_cast<double>(m));
  }
  return out;
}

double quantile_sorted(std::span<const double> sorted, double p) {
  SSVBR_REQUIRE(!sorted.empty(), "quantile of empty sample");
  SSVBR_REQUIRE(p >= 0.0 && p <= 1.0, "quantile probability must lie in [0, 1]");
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double h = p * static_cast<double>(n - 1);
  const std::size_t lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return sorted[n - 1];
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double quantile(std::span<const double> xs, double p) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, p);
}

}  // namespace ssvbr::stats
