// ssvbr/fractal/hurst.h
//
// Hurst-parameter estimation: the two graphical estimators the paper
// uses in Step 1 of its modeling procedure (Section 3.2), plus the
// Modified Allan Variance estimator used to adjudicate approximate
// synthesis:
//
//   * variance-time plots — the variance of the m-aggregated series
//     X^(m) decays like m^(-beta) for a self-similar process; the
//     least-squares slope of log10 var(X^(m)) vs log10 m gives
//     beta_hat and H_hat = 1 - beta_hat / 2 (Fig. 3);
//
//   * R/S analysis — E[R(n)/S(n)] ~ c n^H (Hurst effect, eq. (8)-(9));
//     the pox diagram plots log10 R/S of K non-overlapping blocks
//     against log10 n and fits a line (Fig. 4);
//
//   * Modified Allan Variance — the time-domain clock-stability
//     statistic repurposed as an LRD estimator (PAPERS.md: arxiv
//     cs/0510006, Bregni & Primerano): for a stationary series with
//     power-law correlation, MAVAR(n) ~ n^mu and H = (mu + 4) / 2.
//     Independent of both the R/S and periodogram machinery, which is
//     exactly why the conformance suite uses it as the third
//     adjudicator for approximate-vs-exact fGn synthesis.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/linear_fit.h"

namespace ssvbr::fractal {

/// One (x, y) point of a log-log diagnostic plot (base-10 logs, as in
/// the paper's figures).
struct LogLogPoint {
  double log_x;
  double log_y;
};

/// Result of the variance-time analysis.
struct VarianceTimeResult {
  std::vector<LogLogPoint> points;  ///< (log10 m, log10 var(X^(m)))
  stats::LineFit fit;               ///< fitted over points with m >= fit_min_m
  double beta = 0.0;                ///< -slope of the fit
  double hurst = 0.5;               ///< 1 - beta / 2
};

struct VarianceTimeOptions {
  /// Aggregation levels are log-spaced between min_m and max_m
  /// (max_m = 0 means n / 10).
  std::size_t min_m = 1;
  std::size_t max_m = 0;
  std::size_t n_levels = 30;
  /// Only levels with m >= fit_min_m enter the line fit ("ignoring the
  /// small values for m", as the paper puts it). The paper's Fig. 3
  /// fits over log10 m in roughly [2, 4], i.e. m >= 100.
  std::size_t fit_min_m = 100;
};

VarianceTimeResult variance_time_analysis(std::span<const double> xs,
                                          const VarianceTimeOptions& options = {});

/// Result of the R/S (rescaled adjusted range) analysis.
struct RsResult {
  std::vector<LogLogPoint> points;  ///< pox diagram: (log10 n, log10 R/S)
  stats::LineFit fit;
  double hurst = 0.5;  ///< slope of the fit
};

struct RsOptions {
  /// Number of non-overlapping starting points per block size.
  std::size_t n_blocks = 10;
  /// Block sizes are log-spaced between min_n and max_n
  /// (max_n = 0 means series length / 4).
  std::size_t min_n = 16;
  std::size_t max_n = 0;
  std::size_t n_sizes = 25;
};

RsResult rs_analysis(std::span<const double> xs, const RsOptions& options = {});

/// R/S statistic of a single block (eq. (8)): the rescaled adjusted
/// range of xs. Requires at least two samples and non-zero variance.
double rescaled_adjusted_range(std::span<const double> xs);

/// Result of the Modified Allan Variance analysis.
struct MavarResult {
  std::vector<LogLogPoint> points;  ///< (log10 n, log10 MAVAR(n))
  stats::LineFit fit;
  double mu = 0.0;     ///< slope of the fit
  double hurst = 0.5;  ///< (mu + 4) / 2
};

struct MavarOptions {
  /// Averaging factors n are log-spaced between min_n and max_n
  /// (max_n = 0 means series length / 5; the statistic needs 3n + 1
  /// samples, so max_n must satisfy 3 * max_n < xs.size()).
  std::size_t min_n = 1;
  std::size_t max_n = 0;
  std::size_t n_levels = 25;
};

/// MAVAR(n) of the series at averaging factor n (unit base sampling
/// interval), treating xs as the phase samples of cs/0510006 eq. (2):
///
///   MAVAR(n) = 1 / (2 n^4 (N - 3n + 1)) *
///              sum_j [ sum_{i=j}^{j+n-1} (x_{i+2n} - 2 x_{i+n} + x_i) ]^2.
///
/// Computed in O(N) per level via prefix sums (each inner sum is a
/// second difference of three adjacent n-blocks). Requires 3n < N.
double modified_allan_variance(std::span<const double> xs, std::size_t n);

/// Log-log fit of MAVAR(n) over log-spaced averaging factors. For a
/// stationary LRD series with Hurst parameter H the slope is
/// mu = 2H - 4 (white noise: -3; H -> 1: -2), inverted as
/// H = (mu + 4) / 2.
MavarResult mavar_analysis(std::span<const double> xs,
                           const MavarOptions& options = {});

}  // namespace ssvbr::fractal
