// ssvbr/fractal/hurst.h
//
// Hurst-parameter estimation: the two graphical estimators the paper
// uses in Step 1 of its modeling procedure (Section 3.2):
//
//   * variance-time plots — the variance of the m-aggregated series
//     X^(m) decays like m^(-beta) for a self-similar process; the
//     least-squares slope of log10 var(X^(m)) vs log10 m gives
//     beta_hat and H_hat = 1 - beta_hat / 2 (Fig. 3);
//
//   * R/S analysis — E[R(n)/S(n)] ~ c n^H (Hurst effect, eq. (8)-(9));
//     the pox diagram plots log10 R/S of K non-overlapping blocks
//     against log10 n and fits a line (Fig. 4).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/linear_fit.h"

namespace ssvbr::fractal {

/// One (x, y) point of a log-log diagnostic plot (base-10 logs, as in
/// the paper's figures).
struct LogLogPoint {
  double log_x;
  double log_y;
};

/// Result of the variance-time analysis.
struct VarianceTimeResult {
  std::vector<LogLogPoint> points;  ///< (log10 m, log10 var(X^(m)))
  stats::LineFit fit;               ///< fitted over points with m >= fit_min_m
  double beta = 0.0;                ///< -slope of the fit
  double hurst = 0.5;               ///< 1 - beta / 2
};

struct VarianceTimeOptions {
  /// Aggregation levels are log-spaced between min_m and max_m
  /// (max_m = 0 means n / 10).
  std::size_t min_m = 1;
  std::size_t max_m = 0;
  std::size_t n_levels = 30;
  /// Only levels with m >= fit_min_m enter the line fit ("ignoring the
  /// small values for m", as the paper puts it). The paper's Fig. 3
  /// fits over log10 m in roughly [2, 4], i.e. m >= 100.
  std::size_t fit_min_m = 100;
};

VarianceTimeResult variance_time_analysis(std::span<const double> xs,
                                          const VarianceTimeOptions& options = {});

/// Result of the R/S (rescaled adjusted range) analysis.
struct RsResult {
  std::vector<LogLogPoint> points;  ///< pox diagram: (log10 n, log10 R/S)
  stats::LineFit fit;
  double hurst = 0.5;  ///< slope of the fit
};

struct RsOptions {
  /// Number of non-overlapping starting points per block size.
  std::size_t n_blocks = 10;
  /// Block sizes are log-spaced between min_n and max_n
  /// (max_n = 0 means series length / 4).
  std::size_t min_n = 16;
  std::size_t max_n = 0;
  std::size_t n_sizes = 25;
};

RsResult rs_analysis(std::span<const double> xs, const RsOptions& options = {});

/// R/S statistic of a single block (eq. (8)): the rescaled adjusted
/// range of xs. Requires at least two samples and non-zero variance.
double rescaled_adjusted_range(std::span<const double> xs);

}  // namespace ssvbr::fractal
