// ssvbr/fractal/spectral.h
//
// Autocorrelation models defined through their spectral density.
//
// The paper notes that "an ARIMA(p, d, q) model can be used to model
// both LRD and SRD at the same time, [but] it may be difficult to
// obtain accurate estimates of the p and q parameters" — that remark is
// the launching point for its direct autocorrelation modeling. This
// module makes the comparison concrete by providing general
// F-ARIMA(p, d, q) correlations: the spectral density
//
//   f(lambda) = |1 - e^{-i lambda}|^{-2d}
//               * |theta(e^{-i lambda})|^2 / |phi(e^{-i lambda})|^2
//
// is integrated against cos(k lambda) with an FFT-accelerated midpoint
// rule (the midpoint grid avoids the LRD singularity at lambda = 0) to
// tabulate r(k); fractional lags interpolate linearly, so the models
// compose with the GOP rescaling like every other correlation.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "fractal/autocorrelation.h"

namespace ssvbr::fractal {

/// Correlation tabulated from a user-supplied spectral density on
/// (0, pi). The density needs only be integrable (LRD poles at 0 are
/// fine); it is evaluated on a large midpoint grid once.
class SpectralAutocorrelation : public AutocorrelationModel {
 public:
  /// `density` is f(lambda) for lambda in (0, pi); `max_lag` bounds the
  /// tabulated range (evaluation beyond it clamps to the last value);
  /// `grid_size` is the number of midpoint samples (power of two
  /// recommended; default 1 << 18).
  SpectralAutocorrelation(std::function<double(double)> density, std::size_t max_lag,
                          std::string description, std::size_t grid_size = 1 << 18);

  double operator()(double tau) const override;
  std::string describe() const override;

  std::size_t max_lag() const noexcept { return table_.size() - 1; }

 private:
  std::vector<double> table_;  // r(0..max_lag)
  std::string description_;
};

/// Full fractional ARIMA(p, d, q) correlation. `ar` holds the AR
/// polynomial coefficients (phi_1..phi_p of 1 - phi_1 B - ... ), `ma`
/// the MA coefficients (theta_1..theta_q of 1 + theta_1 B + ...).
/// d in [0, 0.5); d = 0 gives a plain ARMA correlation.
class FarimaPdqAutocorrelation final : public SpectralAutocorrelation {
 public:
  FarimaPdqAutocorrelation(double d, std::vector<double> ar, std::vector<double> ma,
                           std::size_t max_lag = 4096);

  double d() const noexcept { return d_; }
  double hurst() const noexcept { return d_ + 0.5; }
  const std::vector<double>& ar() const noexcept { return ar_; }
  const std::vector<double>& ma() const noexcept { return ma_; }

 private:
  double d_;
  std::vector<double> ar_;
  std::vector<double> ma_;
};

}  // namespace ssvbr::fractal
