#include "fractal/spectral.h"

#include <cmath>
#include <complex>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/math_util.h"
#include "fft/fft.h"

namespace ssvbr::fractal {

SpectralAutocorrelation::SpectralAutocorrelation(std::function<double(double)> density,
                                                 std::size_t max_lag,
                                                 std::string description,
                                                 std::size_t grid_size)
    : description_(std::move(description)) {
  SSVBR_REQUIRE(density != nullptr, "spectral density must not be null");
  SSVBR_REQUIRE(max_lag >= 1, "need at least one lag");
  SSVBR_REQUIRE(grid_size >= 4 * max_lag,
                "grid must be much finer than the requested lag range");
  const std::size_t m = next_power_of_two(grid_size);
  const double delta = kPi / static_cast<double>(m);

  // Midpoint samples f(lambda_j), lambda_j = (j + 1/2) pi / m, for
  // cells j >= 1; cell 0 (which contains the LRD pole at lambda = 0,
  // where a single midpoint badly underestimates the integrable
  // singularity's mass) is handled by geometric refinement below.
  std::vector<double> f(m);
  f[0] = 0.0;
  for (std::size_t j = 1; j < m; ++j) {
    const double lambda = (static_cast<double>(j) + 0.5) * delta;
    const double v = density(lambda);
    SSVBR_REQUIRE(std::isfinite(v) && v >= 0.0,
                  "spectral density must be finite and non-negative on the grid");
    f[j] = v;
  }

  // r(k) proportional to sum_j f_j cos(k lambda_j) * delta
  //      = delta * Re[ e^{i k pi / (2m)} sum_j f_j e^{i pi k j / m} ],
  // and the inner sum is bin k of a length-2m FFT of (f, 0-padding).
  std::vector<fft::Complex> buf(2 * m, fft::Complex(0.0, 0.0));
  for (std::size_t j = 0; j < m; ++j) buf[j] = fft::Complex(f[j], 0.0);
  fft::inverse_pow2(buf);  // unnormalized sum_j x_j e^{+2 pi i k j / (2m)}

  // Geometric refinement of cell 0: subcells (delta 2^{-(g+1)},
  // delta 2^{-g}] resolve any integrable power-law pole.
  struct Subcell {
    double mid;
    double width;
    double value;
  };
  std::vector<Subcell> pole_cells;
  double width = 0.5 * delta;
  double right = delta;
  for (int g = 0; g < 60 && width > 1e-18; ++g) {
    const double mid = right - 0.5 * width;
    const double v = density(mid);
    SSVBR_REQUIRE(std::isfinite(v) && v >= 0.0,
                  "spectral density must be finite and non-negative near zero");
    pole_cells.push_back({mid, width, v});
    right -= width;
    width *= 0.5;
  }

  table_.resize(max_lag + 1);
  for (std::size_t k = 0; k <= max_lag; ++k) {
    const double phase = static_cast<double>(k) * kPi / (2.0 * static_cast<double>(m));
    const fft::Complex rot(std::cos(phase), std::sin(phase));
    double value = delta * (rot * buf[k]).real();
    for (const Subcell& cell : pole_cells) {
      value += cell.value * std::cos(static_cast<double>(k) * cell.mid) * cell.width;
    }
    table_[k] = value;
  }
  SSVBR_REQUIRE(table_[0] > 0.0, "spectral density integrates to zero");
  const double r0 = table_[0];
  for (double& v : table_) v /= r0;
}

double SpectralAutocorrelation::operator()(double tau) const {
  const double k = std::fabs(tau);
  const double max_k = static_cast<double>(table_.size() - 1);
  if (k >= max_k) return table_.back();
  const auto lo = static_cast<std::size_t>(k);
  const double frac = k - static_cast<double>(lo);
  return table_[lo] + frac * (table_[lo + 1] - table_[lo]);
}

std::string SpectralAutocorrelation::describe() const { return description_; }

namespace {

std::string describe_farima(double d, const std::vector<double>& ar,
                            const std::vector<double>& ma) {
  std::ostringstream os;
  os << "FARIMA(p=" << ar.size() << ", d=" << d << ", q=" << ma.size() << ")";
  return os.str();
}

// |poly(e^{-i lambda})|^2 for poly(z) = 1 + c_1 z + c_2 z^2 + ...
double polynomial_power(const std::vector<double>& coeffs, double lambda) {
  std::complex<double> value(1.0, 0.0);
  for (std::size_t j = 0; j < coeffs.size(); ++j) {
    const double angle = -lambda * static_cast<double>(j + 1);
    value += coeffs[j] * std::complex<double>(std::cos(angle), std::sin(angle));
  }
  return std::norm(value);
}

std::function<double(double)> farima_density(double d, std::vector<double> ar,
                                             std::vector<double> ma) {
  SSVBR_REQUIRE(d >= 0.0 && d < 0.5, "FARIMA requires d in [0, 0.5)");
  // AR polynomial is 1 - phi_1 z - ...: negate for polynomial_power's
  // 1 + c z convention.
  for (double& c : ar) c = -c;
  return [d, ar = std::move(ar), ma = std::move(ma)](double lambda) {
    const double s = 2.0 * std::sin(0.5 * lambda);
    const double lrd = d > 0.0 ? std::pow(s, -2.0 * d) : 1.0;
    const double ar_power = polynomial_power(ar, lambda);
    SSVBR_REQUIRE(ar_power > 1e-12, "AR polynomial has a root on the unit circle");
    return lrd * polynomial_power(ma, lambda) / ar_power;
  };
}

}  // namespace

FarimaPdqAutocorrelation::FarimaPdqAutocorrelation(double d, std::vector<double> ar,
                                                   std::vector<double> ma,
                                                   std::size_t max_lag)
    : SpectralAutocorrelation(farima_density(d, ar, ma), max_lag,
                              describe_farima(d, ar, ma)),
      d_(d),
      ar_(std::move(ar)),
      ma_(std::move(ma)) {}

}  // namespace ssvbr::fractal
