// ssvbr/fractal/autocorrelation.h
//
// Autocorrelation models for stationary Gaussian background processes.
//
// Hosking's generation method (Section 2 of the paper) works for *any*
// causal Gaussian process once its autocorrelation function r(k) is
// known. The paper exploits this by plugging in a composite SRD+LRD
// correlation (eq. (10)-(13)) instead of the usual FGN/F-ARIMA forms.
// This header provides all correlation families used in the paper:
//
//   * FgnAutocorrelation          — exactly self-similar fractional
//                                   Gaussian noise, the Fig. 17
//                                   "LRD-only" baseline;
//   * FarimaAutocorrelation       — F-ARIMA(0, d, 0), the Garrett &
//                                   Willinger background (d = H - 1/2);
//   * ExponentialAutocorrelation  — AR(1)-like SRD-only baseline;
//   * CompositeSrdLrdAutocorrelation — the paper's unified model;
//   * RescaledAutocorrelation     — r(k) = inner(k / K), the I-frame
//                                   period rescaling of eq. (15);
//   * ScaledAutocorrelation       — r(k) / a for k >= 1, the
//                                   attenuation compensation of Step 4.
//
// All models evaluate at continuous lag tau >= 0 with r(0) = 1 so that
// the GOP rescaling (which produces fractional lags) is well defined.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace ssvbr::fractal {

/// Stationary autocorrelation function r(tau), tau >= 0, r(0) = 1.
class AutocorrelationModel {
 public:
  virtual ~AutocorrelationModel() = default;

  /// Correlation at continuous lag tau >= 0.
  virtual double operator()(double tau) const = 0;

  /// Human-readable description.
  virtual std::string describe() const = 0;

  /// Tabulate r(0..max_lag) at integer lags.
  std::vector<double> tabulate(std::size_t max_lag) const;
};

using AutocorrelationPtr = std::shared_ptr<const AutocorrelationModel>;

/// Exact fractional-Gaussian-noise correlation:
///   r(k) = ( |k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H} ) / 2.
class FgnAutocorrelation final : public AutocorrelationModel {
 public:
  explicit FgnAutocorrelation(double hurst);
  double operator()(double tau) const override;
  std::string describe() const override;
  double hurst() const { return hurst_; }

 private:
  double hurst_;
};

/// F-ARIMA(0, d, 0) correlation (Hosking 1981):
///   r(k) = Gamma(1-d) Gamma(k+d) / ( Gamma(d) Gamma(k+1-d) ),
/// asymptotically self-similar with H = d + 1/2.
class FarimaAutocorrelation final : public AutocorrelationModel {
 public:
  explicit FarimaAutocorrelation(double d);
  double operator()(double tau) const override;
  std::string describe() const override;
  double d() const { return d_; }
  double hurst() const { return d_ + 0.5; }

 private:
  double d_;
};

/// Pure exponential decay r(k) = exp(-lambda k): the SRD-only model of
/// Fig. 17 (equivalently the correlation of a Gaussian AR(1) with
/// coefficient exp(-lambda)).
class ExponentialAutocorrelation final : public AutocorrelationModel {
 public:
  explicit ExponentialAutocorrelation(double lambda);
  double operator()(double tau) const override;
  std::string describe() const override;
  double lambda() const { return lambda_; }

 private:
  double lambda_;
};

/// The paper's composite model (one SRD exponential, eq. (13)):
///   r(k) = exp(-lambda k)   for k <  knee
///   r(k) = L k^{-beta}      for k >= knee
/// The constructor does not force continuity at the knee; use
/// `with_continuity` to re-solve lambda from eq. (14).
class CompositeSrdLrdAutocorrelation final : public AutocorrelationModel {
 public:
  CompositeSrdLrdAutocorrelation(double lambda, double lrd_scale, double beta,
                                 double knee);

  /// Paper Step 4 / eq. (14): given the LRD branch and the knee, choose
  /// lambda so that exp(-lambda * knee) equals the LRD branch value at
  /// the knee — making the composite continuous.
  static CompositeSrdLrdAutocorrelation with_continuity(double lrd_scale, double beta,
                                                        double knee);

  double operator()(double tau) const override;
  std::string describe() const override;

  double lambda() const { return lambda_; }
  double lrd_scale() const { return lrd_scale_; }
  double beta() const { return beta_; }
  double knee() const { return knee_; }
  double hurst() const { return 1.0 - beta_ / 2.0; }

 private:
  double lambda_;
  double lrd_scale_;
  double beta_;
  double knee_;
};

/// GOP rescaling of eq. (15): r(tau) = inner(tau / period). Models the
/// frame-level correlation implied by an I-frame-level correlation when
/// I frames recur every `period` frames.
class RescaledAutocorrelation final : public AutocorrelationModel {
 public:
  RescaledAutocorrelation(AutocorrelationPtr inner, double period);
  double operator()(double tau) const override;
  std::string describe() const override;

 private:
  AutocorrelationPtr inner_;
  double period_;
};

/// Attenuation compensation of Step 4: r(tau) = min(1, inner(tau) / a)
/// for tau > 0. The clamp keeps the function a correlation when the
/// measured attenuation would push early lags above 1.
class ScaledAutocorrelation final : public AutocorrelationModel {
 public:
  ScaledAutocorrelation(AutocorrelationPtr inner, double attenuation);
  double operator()(double tau) const override;
  std::string describe() const override;

 private:
  AutocorrelationPtr inner_;
  double attenuation_;
};

/// Check that r(0..horizon) defines a positive-definite covariance by
/// running the Durbin-Levinson recursion and verifying every partial
/// correlation lies in (-1, 1). Returns false (rather than throwing) on
/// failure so callers can probe candidate fits.
bool is_valid_correlation(const AutocorrelationModel& model, std::size_t horizon);

}  // namespace ssvbr::fractal
