// ssvbr/fractal/davies_harte.h
//
// Davies-Harte (circulant embedding) exact sampling of a stationary
// zero-mean, unit-variance Gaussian process with prescribed
// autocorrelation, in O(n log n) per path after an O(n log n) setup.
//
// Hosking's method (Section 2) costs O(n^2) per path, which the paper
// itself notes is "computationally quite demanding". For the bulk trace
// synthesis behind Figs. 7-13 (tens of thousands of frames) this
// generator produces statistically identical output at a fraction of
// the cost; Hosking remains the engine for the importance-sampling
// queueing experiments because IS needs the sequential conditional law.
//
// Requirement: the circulant embedding of the covariance must be
// non-negative definite. This holds for FGN and F-ARIMA; for the
// composite SRD+LRD model slight negative eigenvalues can occur, which
// are clipped to zero when their total mass is below `tolerance`
// (Wood-Chan approximation), otherwise construction throws.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dist/random.h"
#include "fft/fft.h"
#include "fractal/autocorrelation.h"

namespace ssvbr::fractal {

/// Exact (circulant-embedding) Gaussian process generator.
class DaviesHarteModel {
 public:
  /// Reusable per-thread scratch for sample_path: the normal draws, the
  /// half-spectrum, the half-size FFT buffer, and the full embedding
  /// path. One workspace per thread removes every steady-state heap
  /// allocation from path generation.
  struct Workspace {
    std::vector<double> normals;
    std::vector<fft::Complex> spec;
    std::vector<fft::Complex> fft_scratch;
    std::vector<double> path;
  };

  /// Prepare eigenvalues for paths of length `n`. `tolerance` bounds the
  /// acceptable relative mass of clipped negative eigenvalues.
  DaviesHarteModel(const AutocorrelationModel& model, std::size_t n,
                   double tolerance = 1e-6);

  std::size_t path_length() const noexcept { return n_; }

  /// Fraction of (absolute) eigenvalue mass that was negative and
  /// clipped; 0 for an exactly embeddable covariance.
  double clipped_mass() const noexcept { return clipped_mass_; }

  /// Draw one path of length path_length() into `out`
  /// (out.size() >= path_length() required; extra entries untouched).
  /// Uses a per-thread workspace keyed by the embedding size (so
  /// threads alternating between models of different sizes stay
  /// allocation-free in steady state); bit-identical to the explicit
  /// workspace overload for the same engine state.
  void sample_path(RandomEngine& rng, std::span<double> out) const;

  /// Same draw with caller-owned scratch (resized as needed).
  void sample_path(RandomEngine& rng, std::span<double> out, Workspace& ws) const;

  /// Convenience: allocate and return one path.
  std::vector<double> sample(RandomEngine& rng) const;

 private:
  std::size_t n_;       // requested path length
  std::size_t m_;       // embedding size (power of two >= 2n)
  std::vector<double> scaled_sqrt_eigenvalues_;  // sqrt(lambda_k) / sqrt(m)
  std::shared_ptr<const fft::FftPlan> plan_;     // size-m synthesis plan
  double clipped_mass_ = 0.0;
};

}  // namespace ssvbr::fractal
