#include "fractal/davies_harte.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "fft/fft.h"
#include "obs/instrument.h"

namespace ssvbr::fractal {

DaviesHarteModel::DaviesHarteModel(const AutocorrelationModel& model, std::size_t n,
                                   double tolerance)
    : n_(n) {
  SSVBR_REQUIRE(n >= 2, "path length must be at least 2");
  SSVBR_SPAN("fractal.davies_harte.setup");
  // Embed r(0..half) into a circulant of power-of-two size m = 2*half so
  // the radix-2 kernel applies directly: c_j = r(j) for j <= half,
  // c_j = r(m - j) for j > half. half >= n guarantees the first n
  // samples carry the exact target covariance.
  m_ = next_power_of_two(2 * n);
  const std::size_t half = m_ / 2;
  const std::vector<double> r = model.tabulate(half);
  std::vector<fft::Complex> c(m_);
  for (std::size_t j = 0; j <= half; ++j) c[j] = fft::Complex(r[j], 0.0);
  for (std::size_t j = half + 1; j < m_; ++j) c[j] = fft::Complex(r[m_ - j], 0.0);
  fft::forward_pow2(c);

  sqrt_eigenvalues_.resize(m_);
  double neg_mass = 0.0;
  double total_mass = 0.0;
  for (std::size_t k = 0; k < m_; ++k) {
    const double lambda = c[k].real();
    total_mass += std::fabs(lambda);
    if (lambda < 0.0) {
      neg_mass += -lambda;
      sqrt_eigenvalues_[k] = 0.0;
    } else {
      sqrt_eigenvalues_[k] = std::sqrt(lambda);
    }
  }
  clipped_mass_ = total_mass > 0.0 ? neg_mass / total_mass : 0.0;
  if (clipped_mass_ > tolerance) {
    throw NumericalError("circulant embedding of '" + model.describe() +
                         "' has negative eigenvalue mass " +
                         std::to_string(clipped_mass_) + " beyond tolerance");
  }
}

void DaviesHarteModel::sample_path(RandomEngine& rng, std::span<double> out) const {
  SSVBR_REQUIRE(out.size() >= n_, "output span shorter than path length");
  SSVBR_TIMER("fractal.davies_harte.sample_path");
  SSVBR_COUNTER_ADD("fractal.davies_harte.paths", 1);
  SSVBR_COUNTER_ADD("fractal.davies_harte.points", n_);
  // Hermitian-symmetric spectral synthesis: Z_0 and Z_{m/2} are real;
  // interior bins get independent complex Gaussians with half variance.
  std::vector<fft::Complex> z(m_);
  const std::size_t half = m_ / 2;
  z[0] = fft::Complex(sqrt_eigenvalues_[0] * rng.normal(), 0.0);
  z[half] = fft::Complex(sqrt_eigenvalues_[half] * rng.normal(), 0.0);
  const double inv_sqrt2 = 1.0 / kSqrt2;
  for (std::size_t k = 1; k < half; ++k) {
    const double a = rng.normal() * inv_sqrt2;
    const double b = rng.normal() * inv_sqrt2;
    z[k] = sqrt_eigenvalues_[k] * fft::Complex(a, b);
    z[m_ - k] = std::conj(z[k]);
  }
  fft::forward_pow2(z);
  const double scale = 1.0 / std::sqrt(static_cast<double>(m_));
  for (std::size_t j = 0; j < n_; ++j) out[j] = z[j].real() * scale;
}

std::vector<double> DaviesHarteModel::sample(RandomEngine& rng) const {
  std::vector<double> out(n_);
  sample_path(rng, out);
  return out;
}

}  // namespace ssvbr::fractal
