#include "fractal/davies_harte.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/math_util.h"
#include "obs/instrument.h"

namespace ssvbr::fractal {

DaviesHarteModel::DaviesHarteModel(const AutocorrelationModel& model, std::size_t n,
                                   double tolerance)
    : n_(n) {
  SSVBR_REQUIRE(n >= 2, "path length must be at least 2");
  SSVBR_SPAN("fractal.davies_harte.setup");
  // Embed r(0..half) into a circulant of power-of-two size m = 2*half so
  // the radix-2 kernel applies directly: c_j = r(j) for j <= half,
  // c_j = r(m - j) for j > half. half >= n guarantees the first n
  // samples carry the exact target covariance.
  m_ = next_power_of_two(2 * n);
  plan_ = fft::FftPlan::get(m_);
  const std::size_t half = m_ / 2;
  const std::vector<double> r = model.tabulate(half);
  std::vector<fft::Complex> c(m_);
  for (std::size_t j = 0; j <= half; ++j) c[j] = fft::Complex(r[j], 0.0);
  for (std::size_t j = half + 1; j < m_; ++j) c[j] = fft::Complex(r[m_ - j], 0.0);
  plan_->forward(c);

  // The synthesis scale 1/sqrt(m) is folded into the eigenvalue roots so
  // the sampling loop multiplies once per bin instead of once per output.
  scaled_sqrt_eigenvalues_.resize(m_);
  const double scale = 1.0 / std::sqrt(static_cast<double>(m_));
  double neg_mass = 0.0;
  double total_mass = 0.0;
  for (std::size_t k = 0; k < m_; ++k) {
    const double lambda = c[k].real();
    total_mass += std::fabs(lambda);
    if (lambda < 0.0) {
      neg_mass += -lambda;
      scaled_sqrt_eigenvalues_[k] = 0.0;
    } else {
      scaled_sqrt_eigenvalues_[k] = std::sqrt(lambda) * scale;
    }
  }
  clipped_mass_ = total_mass > 0.0 ? neg_mass / total_mass : 0.0;
  if (clipped_mass_ > tolerance) {
    throw NumericalError("circulant embedding of '" + model.describe() +
                         "' has negative eigenvalue mass " +
                         std::to_string(clipped_mass_) + " beyond tolerance");
  }
}

namespace {

// Per-thread workspace cache keyed by embedding size. One shared
// thread_local Workspace used to serve every model, so a thread
// alternating between models of different sizes re-allocated (resized)
// all four buffers on every call; keying by m keeps one warm workspace
// per distinct size and makes the steady state allocation-free
// regardless of how many models a worker interleaves. A worker touches
// a handful of sizes at most, so a linear scan beats a map.
DaviesHarteModel::Workspace& thread_workspace(std::size_t m) {
  static thread_local std::vector<
      std::pair<std::size_t, std::unique_ptr<DaviesHarteModel::Workspace>>>
      cache;
  for (auto& [size, ws] : cache) {
    if (size == m) return *ws;
  }
  cache.emplace_back(m, std::make_unique<DaviesHarteModel::Workspace>());
  return *cache.back().second;
}

}  // namespace

void DaviesHarteModel::sample_path(RandomEngine& rng, std::span<double> out) const {
  sample_path(rng, out, thread_workspace(m_));
}

void DaviesHarteModel::sample_path(RandomEngine& rng, std::span<double> out,
                                   Workspace& ws) const {
  SSVBR_REQUIRE(out.size() >= n_, "output span shorter than path length");
  SSVBR_TIMER("fractal.davies_harte.sample_path");
  SSVBR_COUNTER_ADD("fractal.davies_harte.paths", 1);
  SSVBR_COUNTER_ADD("fractal.davies_harte.points", n_);
  const std::size_t half = m_ / 2;
  // Hermitian-symmetric spectral synthesis: Z_0 and Z_{m/2} are real;
  // interior bins get independent complex Gaussians with half variance.
  // Only the non-redundant bins 0..m/2 are materialised — the real
  // synthesis reads nothing else — and the normals come from one
  // ziggurat batch instead of m Box-Muller calls.
  ws.normals.resize(m_);
  ws.spec.resize(half + 1);
  ws.path.resize(m_);
  rng.fill_normal(ws.normals);
  const double* nb = ws.normals.data();
  const double* se = scaled_sqrt_eigenvalues_.data();
  ws.spec[0] = fft::Complex(se[0] * nb[0], 0.0);
  ws.spec[half] = fft::Complex(se[half] * nb[m_ - 1], 0.0);
  const double inv_sqrt2 = 1.0 / kSqrt2;
  for (std::size_t k = 1; k < half; ++k) {
    const double s = se[k] * inv_sqrt2;
    ws.spec[k] = fft::Complex(s * nb[2 * k - 1], s * nb[2 * k]);
  }
  plan_->synthesize_real(ws.spec, ws.path, ws.fft_scratch);
  for (std::size_t j = 0; j < n_; ++j) out[j] = ws.path[j];
}

std::vector<double> DaviesHarteModel::sample(RandomEngine& rng) const {
  std::vector<double> out(n_);
  sample_path(rng, out);
  return out;
}

}  // namespace ssvbr::fractal
