// ssvbr/fractal/durbin_levinson.h
//
// The Durbin-Levinson recursion shared by HoskingModel (which stores
// every coefficient row) and hosking_sample_streaming (which keeps only
// the latest row). Centralising the recursion keeps the
// positive-definiteness and innovation-variance checks — and their
// failure diagnostics — identical for both consumers.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ssvbr::fractal {

/// Incremental Durbin-Levinson recursion over a tabulated correlation
/// r(0..n-1) with r(0) = 1. After construction the state describes step
/// k = 0 (no regression, innovation variance 1); each advance() moves
/// to the next step and returns the regression row phi_{k,1..k}.
class DurbinLevinson {
 public:
  /// `r` must outlive the recursion. `label` names the correlation in
  /// failure diagnostics (typically AutocorrelationModel::describe()).
  DurbinLevinson(std::span<const double> r, std::string label);

  /// Step the recursion advances to next (1 after construction).
  std::size_t next_step() const noexcept { return k_ + 1; }

  /// Innovation variance v_k of the current step.
  double variance() const noexcept { return v_; }

  /// Advance to step k+1 and return phi_{k+1,1..k+1} (phi[j-1] is the
  /// weight of x_{k+1-j}). The span is valid until the next advance().
  /// Throws NumericalError when the correlation fails positive
  /// definiteness or the innovation variance vanishes.
  std::span<const double> advance();

 private:
  std::span<const double> r_;
  std::string label_;
  std::vector<double> prev_;  // phi_{k,1..k} after advance()
  std::vector<double> cur_;
  double v_ = 1.0;
  std::size_t k_ = 0;
};

}  // namespace ssvbr::fractal
