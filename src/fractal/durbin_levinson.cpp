#include "fractal/durbin_levinson.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/simd.h"

namespace ssvbr::fractal {

DurbinLevinson::DurbinLevinson(std::span<const double> r, std::string label)
    : r_(r), label_(std::move(label)) {
  SSVBR_REQUIRE(!r_.empty(), "correlation table must be non-empty");
  prev_.reserve(r_.size());
  cur_.reserve(r_.size());
}

std::span<const double> DurbinLevinson::advance() {
  const std::size_t k = ++k_;
  SSVBR_REQUIRE(k < r_.size(), "Durbin-Levinson advanced past the correlation table");
  const double num =
      r_[k] - simd::dot_reversed(prev_.data(), r_.data() + 1, k - 1);
  const double phi_kk = num / v_;
  if (!(phi_kk > -1.0 && phi_kk < 1.0) || !std::isfinite(phi_kk)) {
    throw NumericalError("correlation '" + label_ +
                         "' is not positive definite at lag " + std::to_string(k));
  }
  cur_.resize(k);
  for (std::size_t j = 1; j < k; ++j) {
    cur_[j - 1] = prev_[j - 1] - phi_kk * prev_[k - j - 1];
  }
  cur_[k - 1] = phi_kk;
  v_ *= 1.0 - phi_kk * phi_kk;
  if (!(v_ > 0.0)) {
    throw NumericalError("innovation variance vanished at lag " + std::to_string(k) +
                         " for correlation '" + label_ + "'");
  }
  std::swap(prev_, cur_);
  return {prev_.data(), k};
}

}  // namespace ssvbr::fractal
