// ssvbr/fractal/hosking.h
//
// Hosking's exact method for sampling a stationary zero-mean,
// unit-variance Gaussian process with a prescribed autocorrelation
// (Section 2 of the paper; Hosking 1984). The Durbin-Levinson recursion
// produces, for every step k, the partial linear regression
// coefficients phi_{k,j} and the innovation variance v_k such that
//
//   X_k | x_{k-1},...,x_0  ~  N( sum_j phi_{k,j} x_{k-j},  v_k ).
//
// Because the coefficients depend only on r(.), they are computed once
// per (model, horizon) pair and shared across all replications of a
// simulation study — the dominant cost saving in the paper's queueing
// experiments, where 1000 replications reuse one coefficient table.
//
// The incremental `HoskingSampler` exposes the conditional mean and
// variance of each generated step; the importance-sampling engine uses
// these to accumulate the likelihood ratio of eqs. (42)-(48).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dist/random.h"
#include "fractal/autocorrelation.h"

namespace ssvbr::fractal {

/// Precomputed Durbin-Levinson coefficient table for a correlation
/// model over a fixed horizon. Immutable after construction; safe to
/// share across threads and replications.
class HoskingModel {
 public:
  /// Runs Durbin-Levinson for r(0..horizon-1). Throws NumericalError if
  /// the correlation is not positive definite over the horizon.
  /// Memory: horizon^2 / 2 doubles (25 MB at horizon 2500).
  HoskingModel(const AutocorrelationModel& model, std::size_t horizon);

  std::size_t horizon() const noexcept { return horizon_; }

  /// Innovation variance v_k of step k (v_0 = 1).
  double innovation_variance(std::size_t k) const;

  /// sqrt(v_k), cached at construction so samplers do not recompute the
  /// square root once per step per replication.
  double innovation_sd(std::size_t k) const;

  /// Regression coefficients phi_{k,1..k} of step k >= 1 (phi_row(k)[j-1]
  /// is phi_{k,j}, the weight of x_{k-j}).
  std::span<const double> phi_row(std::size_t k) const;

  /// sum_j phi_{k,j} — appears in the twisted conditional mean
  /// m* + sum_j phi_{k,j}(x'_{k-j} - m*) = m*(1 - S_k) + m_k and hence
  /// in the likelihood ratio. S_0 = 0 by convention.
  double phi_row_sum(std::size_t k) const;

  /// Conditional mean of step k given `history` (history[i] = x_i,
  /// i < k): sum_j phi_{k,j} * history[k-j].
  double conditional_mean(std::size_t k, std::span<const double> history) const;

  /// Conditional means of step k for `count` paths stored time-major in
  /// one interleaved buffer: history[t * stride + s] is x^(s)_t for
  /// path s < count, t < k. Traverses the phi row once, applying each
  /// coefficient to all paths — the superposed-source batch kernel of
  /// the IS replication loop. `out` receives count means.
  void conditional_means_batch(std::size_t k, const double* history,
                               std::size_t stride, std::size_t count,
                               double* out) const;

  /// Draw a complete path of length min(out.size(), horizon); the
  /// marginal of each X_k is N(0, 1).
  void sample_path(RandomEngine& rng, std::span<double> out) const;

  /// The tabulated correlation used to build the table.
  std::span<const double> correlation() const noexcept { return r_; }

 private:
  std::size_t horizon_;
  std::vector<double> r_;        // r(0..horizon-1)
  std::vector<double> v_;        // innovation variances v_0..v_{horizon-1}
  std::vector<double> sd_;       // sqrt(v_k), cached for samplers
  std::vector<double> row_sum_;  // S_0..S_{horizon-1}
  std::vector<double> phi_;      // packed triangular rows, row k at offset k(k-1)/2
};

/// One step of a Hosking sample path, with the conditional law the step
/// was drawn from — everything the IS likelihood ratio needs.
struct HoskingStep {
  double value = 0.0;             ///< x_k
  double conditional_mean = 0.0;  ///< m_k = sum_j phi_{k,j} x_{k-j}
  double variance = 1.0;          ///< v_k
};

/// Incremental sampler over a shared HoskingModel. Each call to next()
/// extends the path by one step; the sampler owns the path history.
/// Supports an optional constant mean shift m* ("twist"): the generated
/// process is X'_k = X_k + m*, whose conditional mean given its own past
/// is m*(1 - S_k) + sum_j phi_{k,j} x'_{k-j} (paper eq. (35)-(36)).
class HoskingSampler {
 public:
  explicit HoskingSampler(const HoskingModel& model, double mean_shift = 0.0);

  /// Number of steps generated so far.
  std::size_t position() const noexcept { return history_.size(); }

  /// Generate the next step; valid while position() < model.horizon().
  HoskingStep next(RandomEngine& rng);

  /// Path generated so far (x'_0 .. x'_{position()-1}).
  std::span<const double> history() const noexcept { return history_; }

  /// Reset to an empty path (reuse across replications).
  void reset() noexcept { history_.clear(); }

  double mean_shift() const noexcept { return mean_shift_; }
  const HoskingModel& model() const noexcept { return *model_; }

 private:
  const HoskingModel* model_;
  double mean_shift_;
  std::vector<double> history_;
};

/// One-shot Hosking path without a stored coefficient table: the
/// Durbin-Levinson rows are rebuilt inline, giving O(n) memory and
/// O(n^2) time. Use for single long paths (e.g. synthesizing a
/// 20k-frame trace) where the O(n^2/2) table of HoskingModel would not
/// fit; use HoskingModel when many replications share one horizon.
std::vector<double> hosking_sample_streaming(const AutocorrelationModel& model,
                                             std::size_t n, RandomEngine& rng);

}  // namespace ssvbr::fractal
