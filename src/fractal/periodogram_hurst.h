// ssvbr/fractal/periodogram_hurst.h
//
// Frequency-domain Hurst estimation: the log-periodogram (GPH,
// Geweke & Porter-Hudak) regression estimator.
//
// For a long-range-dependent process the spectral density behaves like
// f(lambda) ~ c |lambda|^{-2d} with d = H - 1/2 as lambda -> 0, so a
// least-squares regression of log I(lambda_j) on log(4 sin^2(lambda_j/2))
// over the lowest m frequencies estimates -d in its slope. This is the
// third classical estimator (besides variance-time and R/S) recommended
// in the self-similarity literature the paper builds on, and gives the
// library an independent cross-check for Step 1.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fractal/hurst.h"
#include "stats/linear_fit.h"

namespace ssvbr::fractal {

/// Result of the GPH log-periodogram regression.
struct PeriodogramHurstResult {
  /// (log(4 sin^2(lambda_j / 2)), log I(lambda_j)) regression points.
  std::vector<LogLogPoint> points;
  stats::LineFit fit;
  double d = 0.0;      ///< fractional differencing estimate, -slope
  double hurst = 0.5;  ///< d + 1/2
};

struct PeriodogramHurstOptions {
  /// Number of low frequencies used; 0 means floor(n^power).
  std::size_t n_frequencies = 0;
  /// Bandwidth exponent when n_frequencies == 0 (the classical choice
  /// is m = n^0.5).
  double power = 0.5;
};

/// GPH estimator over the series xs (demeaned internally). Requires at
/// least 128 samples.
PeriodogramHurstResult periodogram_hurst(std::span<const double> xs,
                                         const PeriodogramHurstOptions& options = {});

}  // namespace ssvbr::fractal
