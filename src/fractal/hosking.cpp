#include "fractal/hosking.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "common/simd.h"
#include "fractal/durbin_levinson.h"
#include "obs/instrument.h"

namespace ssvbr::fractal {

namespace {
// Offset of packed triangular row k (k >= 1): rows 1..k-1 occupy
// 1 + 2 + ... + (k-1) = k(k-1)/2 slots.
constexpr std::size_t row_offset(std::size_t k) noexcept { return k * (k - 1) / 2; }
}  // namespace

HoskingModel::HoskingModel(const AutocorrelationModel& model, std::size_t horizon)
    : horizon_(horizon) {
  SSVBR_REQUIRE(horizon >= 1, "horizon must be at least 1");
  // The O(horizon^2) coefficient table is the expensive, build-once part
  // of every Hosking study; surface it as a span so slow setup is
  // distinguishable from slow sampling.
  SSVBR_SPAN("fractal.hosking.durbin_levinson");
  r_ = model.tabulate(horizon);  // r(0..horizon); one extra lag is harmless
  v_.resize(horizon);
  sd_.resize(horizon);
  row_sum_.resize(horizon);
  phi_.resize(row_offset(horizon));

  v_[0] = 1.0;
  sd_[0] = 1.0;
  row_sum_[0] = 0.0;
  DurbinLevinson dl(r_, model.describe());
  for (std::size_t k = 1; k < horizon; ++k) {
    const std::span<const double> row = dl.advance();
    v_[k] = dl.variance();
    sd_[k] = std::sqrt(v_[k]);
    double s = 0.0;
    for (const double c : row) s += c;
    row_sum_[k] = s;
    double* dst = phi_.data() + row_offset(k);
    for (std::size_t j = 0; j < k; ++j) dst[j] = row[j];
  }
}

double HoskingModel::innovation_variance(std::size_t k) const {
  SSVBR_REQUIRE(k < horizon_, "step index out of horizon");
  return v_[k];
}

double HoskingModel::innovation_sd(std::size_t k) const {
  SSVBR_REQUIRE(k < horizon_, "step index out of horizon");
  return sd_[k];
}

std::span<const double> HoskingModel::phi_row(std::size_t k) const {
  SSVBR_REQUIRE(k >= 1 && k < horizon_, "phi rows exist for 1 <= k < horizon");
  return {phi_.data() + row_offset(k), k};
}

double HoskingModel::phi_row_sum(std::size_t k) const {
  SSVBR_REQUIRE(k < horizon_, "step index out of horizon");
  return row_sum_[k];
}

double HoskingModel::conditional_mean(std::size_t k,
                                      std::span<const double> history) const {
  if (k == 0) return 0.0;
  SSVBR_REQUIRE(history.size() >= k, "history shorter than step index");
  const std::span<const double> row = phi_row(k);
  return simd::dot_reversed(row.data(), history.data(), k);
}

void HoskingModel::conditional_means_batch(std::size_t k, const double* history,
                                           std::size_t stride, std::size_t count,
                                           double* out) const {
  for (std::size_t s = 0; s < count; ++s) out[s] = 0.0;
  if (k == 0) return;
  const std::span<const double> row = phi_row(k);
  SSVBR_REQUIRE(stride >= count, "history stride narrower than the batch");
  for (std::size_t j = 1; j <= k; ++j) {
    simd::axpy(row[j - 1], history + (k - j) * stride, out, count);
  }
}

void HoskingModel::sample_path(RandomEngine& rng, std::span<double> out) const {
  const std::size_t n = out.size() < horizon_ ? out.size() : horizon_;
  if (n == 0) return;
  SSVBR_TIMER("fractal.hosking.sample_path");
  SSVBR_COUNTER_ADD("fractal.hosking.steps", n);
  out[0] = rng.normal(0.0, 1.0);
  const double* phi = phi_.data();
  for (std::size_t k = 1; k < n; ++k) {
    const double m = simd::dot_reversed(phi + row_offset(k), out.data(), k);
    out[k] = rng.normal(m, sd_[k]);
  }
}

HoskingSampler::HoskingSampler(const HoskingModel& model, double mean_shift)
    : model_(&model), mean_shift_(mean_shift) {
  history_.reserve(model.horizon());
}

HoskingStep HoskingSampler::next(RandomEngine& rng) {
  const std::size_t k = history_.size();
  SSVBR_REQUIRE(k < model_->horizon(), "sampler exhausted its horizon");
  SSVBR_COUNTER_ADD("fractal.hosking.steps", 1);
  HoskingStep step;
  step.variance = model_->innovation_variance(k);
  if (k == 0) {
    step.conditional_mean = mean_shift_;
  } else {
    // Conditional mean of the shifted process X' = X + m* given its own
    // past x'_0..x'_{k-1}: m* + sum_j phi_{k,j} (x'_{k-j} - m*)
    //                    = m*(1 - S_k) + sum_j phi_{k,j} x'_{k-j}.
    const double m = model_->conditional_mean(k, history_);
    step.conditional_mean = mean_shift_ * (1.0 - model_->phi_row_sum(k)) + m;
  }
  step.value = rng.normal(step.conditional_mean, model_->innovation_sd(k));
  history_.push_back(step.value);
  return step;
}

std::vector<double> hosking_sample_streaming(const AutocorrelationModel& model,
                                             std::size_t n, RandomEngine& rng) {
  SSVBR_REQUIRE(n >= 1, "path length must be at least 1");
  SSVBR_TIMER("fractal.hosking.sample_streaming");
  SSVBR_COUNTER_ADD("fractal.hosking.steps", n);
  const std::vector<double> r = model.tabulate(n);
  std::vector<double> x(n);
  x[0] = rng.normal(0.0, 1.0);
  DurbinLevinson dl(r, model.describe());
  for (std::size_t k = 1; k < n; ++k) {
    const std::span<const double> row = dl.advance();
    const double m = simd::dot_reversed(row.data(), x.data(), k);
    x[k] = rng.normal(m, std::sqrt(dl.variance()));
  }
  return x;
}

}  // namespace ssvbr::fractal
