#include "fractal/hosking.h"

#include <cmath>

#include "common/error.h"
#include "obs/instrument.h"

namespace ssvbr::fractal {

namespace {
// Offset of packed triangular row k (k >= 1): rows 1..k-1 occupy
// 1 + 2 + ... + (k-1) = k(k-1)/2 slots.
constexpr std::size_t row_offset(std::size_t k) noexcept { return k * (k - 1) / 2; }
}  // namespace

HoskingModel::HoskingModel(const AutocorrelationModel& model, std::size_t horizon)
    : horizon_(horizon) {
  SSVBR_REQUIRE(horizon >= 1, "horizon must be at least 1");
  // The O(horizon^2) coefficient table is the expensive, build-once part
  // of every Hosking study; surface it as a span so slow setup is
  // distinguishable from slow sampling.
  SSVBR_SPAN("fractal.hosking.durbin_levinson");
  r_ = model.tabulate(horizon);  // r(0..horizon); one extra lag is harmless
  v_.resize(horizon);
  row_sum_.resize(horizon);
  phi_.resize(row_offset(horizon));

  v_[0] = 1.0;
  row_sum_[0] = 0.0;
  std::vector<double> prev;  // phi_{k-1, 1..k-1}
  std::vector<double> cur;
  prev.reserve(horizon);
  cur.reserve(horizon);
  for (std::size_t k = 1; k < horizon; ++k) {
    double num = r_[k];
    for (std::size_t j = 1; j < k; ++j) num -= prev[j - 1] * r_[k - j];
    const double phi_kk = num / v_[k - 1];
    if (!(phi_kk > -1.0 && phi_kk < 1.0) || !std::isfinite(phi_kk)) {
      throw NumericalError("correlation '" + model.describe() +
                           "' is not positive definite at lag " + std::to_string(k));
    }
    cur.resize(k);
    for (std::size_t j = 1; j < k; ++j) {
      cur[j - 1] = prev[j - 1] - phi_kk * prev[k - j - 1];
    }
    cur[k - 1] = phi_kk;

    v_[k] = v_[k - 1] * (1.0 - phi_kk * phi_kk);
    if (!(v_[k] > 0.0)) {
      throw NumericalError("innovation variance vanished at lag " + std::to_string(k) +
                           " for correlation '" + model.describe() + "'");
    }
    double s = 0.0;
    for (const double c : cur) s += c;
    row_sum_[k] = s;

    double* dst = phi_.data() + row_offset(k);
    for (std::size_t j = 0; j < k; ++j) dst[j] = cur[j];
    std::swap(prev, cur);
  }
}

double HoskingModel::innovation_variance(std::size_t k) const {
  SSVBR_REQUIRE(k < horizon_, "step index out of horizon");
  return v_[k];
}

std::span<const double> HoskingModel::phi_row(std::size_t k) const {
  SSVBR_REQUIRE(k >= 1 && k < horizon_, "phi rows exist for 1 <= k < horizon");
  return {phi_.data() + row_offset(k), k};
}

double HoskingModel::phi_row_sum(std::size_t k) const {
  SSVBR_REQUIRE(k < horizon_, "step index out of horizon");
  return row_sum_[k];
}

double HoskingModel::conditional_mean(std::size_t k,
                                      std::span<const double> history) const {
  if (k == 0) return 0.0;
  SSVBR_REQUIRE(history.size() >= k, "history shorter than step index");
  const std::span<const double> row = phi_row(k);
  double m = 0.0;
  for (std::size_t j = 1; j <= k; ++j) m += row[j - 1] * history[k - j];
  return m;
}

void HoskingModel::sample_path(RandomEngine& rng, std::span<double> out) const {
  const std::size_t n = out.size() < horizon_ ? out.size() : horizon_;
  if (n == 0) return;
  SSVBR_TIMER("fractal.hosking.sample_path");
  SSVBR_COUNTER_ADD("fractal.hosking.steps", n);
  out[0] = rng.normal(0.0, 1.0);
  for (std::size_t k = 1; k < n; ++k) {
    const std::span<const double> row = phi_row(k);
    double m = 0.0;
    for (std::size_t j = 1; j <= k; ++j) m += row[j - 1] * out[k - j];
    out[k] = rng.normal(m, std::sqrt(v_[k]));
  }
}

HoskingSampler::HoskingSampler(const HoskingModel& model, double mean_shift)
    : model_(&model), mean_shift_(mean_shift) {
  history_.reserve(model.horizon());
}

HoskingStep HoskingSampler::next(RandomEngine& rng) {
  const std::size_t k = history_.size();
  SSVBR_REQUIRE(k < model_->horizon(), "sampler exhausted its horizon");
  SSVBR_COUNTER_ADD("fractal.hosking.steps", 1);
  HoskingStep step;
  step.variance = model_->innovation_variance(k);
  if (k == 0) {
    step.conditional_mean = mean_shift_;
  } else {
    // Conditional mean of the shifted process X' = X + m* given its own
    // past x'_0..x'_{k-1}: m* + sum_j phi_{k,j} (x'_{k-j} - m*)
    //                    = m*(1 - S_k) + sum_j phi_{k,j} x'_{k-j}.
    const double m = model_->conditional_mean(k, history_);
    step.conditional_mean = mean_shift_ * (1.0 - model_->phi_row_sum(k)) + m;
  }
  step.value = rng.normal(step.conditional_mean, std::sqrt(step.variance));
  history_.push_back(step.value);
  return step;
}

std::vector<double> hosking_sample_streaming(const AutocorrelationModel& model,
                                             std::size_t n, RandomEngine& rng) {
  SSVBR_REQUIRE(n >= 1, "path length must be at least 1");
  SSVBR_TIMER("fractal.hosking.sample_streaming");
  SSVBR_COUNTER_ADD("fractal.hosking.steps", n);
  const std::vector<double> r = model.tabulate(n);
  std::vector<double> x(n);
  x[0] = rng.normal(0.0, 1.0);
  std::vector<double> prev;
  std::vector<double> cur;
  prev.reserve(n);
  cur.reserve(n);
  double v = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    double num = r[k];
    for (std::size_t j = 1; j < k; ++j) num -= prev[j - 1] * r[k - j];
    const double phi_kk = num / v;
    if (!(phi_kk > -1.0 && phi_kk < 1.0) || !std::isfinite(phi_kk)) {
      throw NumericalError("correlation '" + model.describe() +
                           "' is not positive definite at lag " + std::to_string(k));
    }
    cur.resize(k);
    for (std::size_t j = 1; j < k; ++j) {
      cur[j - 1] = prev[j - 1] - phi_kk * prev[k - j - 1];
    }
    cur[k - 1] = phi_kk;
    v *= 1.0 - phi_kk * phi_kk;
    if (!(v > 0.0)) {
      throw NumericalError("innovation variance vanished at lag " + std::to_string(k));
    }
    double m = 0.0;
    for (std::size_t j = 1; j <= k; ++j) m += cur[j - 1] * x[k - j];
    x[k] = rng.normal(m, std::sqrt(v));
    std::swap(prev, cur);
  }
  return x;
}

}  // namespace ssvbr::fractal
