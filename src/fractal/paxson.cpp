#include "fractal/paxson.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/error.h"
#include "common/math_util.h"
#include "obs/instrument.h"

namespace ssvbr::fractal {

double PaxsonModel::fgn_spectral_density(double lambda, double hurst) {
  SSVBR_REQUIRE(lambda > 0.0 && lambda <= kPi,
                "fGn spectral density is evaluated on (0, pi]");
  SSVBR_REQUIRE(hurst > 0.0 && hurst < 1.0, "Hurst parameter must be in (0, 1)");
  // f(lambda; H) = 2 c_f (1 - cos lambda) [ lambda^{-2H-1} + B3(lambda, H) ]
  // with c_f = sin(pi H) Gamma(2H + 1) / (2 pi). B3 is the Appendix-A
  // approximation of the aliased tail sum_{j != 0} |2 pi j + lambda|^{-2H-1}:
  // the first three image terms plus an Euler-Maclaurin integral
  // correction for the remainder.
  const double cf = std::sin(kPi * hurst) * std::tgamma(2.0 * hurst + 1.0) /
                    kTwoPi;
  const double d = -2.0 * hurst - 1.0;
  const double dprime = -2.0 * hurst;
  double b3 = 0.0;
  for (int j = 1; j <= 3; ++j) {
    const double a = kTwoPi * j + lambda;
    const double b = kTwoPi * j - lambda;
    b3 += std::pow(a, d) + std::pow(b, d);
  }
  const double a3 = kTwoPi * 3.0 + lambda;
  const double b3t = kTwoPi * 3.0 - lambda;
  const double a4 = kTwoPi * 4.0 + lambda;
  const double b4 = kTwoPi * 4.0 - lambda;
  b3 += (std::pow(a3, dprime) + std::pow(b3t, dprime) + std::pow(a4, dprime) +
         std::pow(b4, dprime)) /
        (8.0 * hurst * kPi);
  return 2.0 * cf * (1.0 - std::cos(lambda)) * (std::pow(lambda, d) + b3);
}

PaxsonModel::PaxsonModel(const AutocorrelationModel& model, std::size_t window)
    : m_(next_power_of_two(window)) {
  SSVBR_REQUIRE(window >= 2, "synthesis window must be at least 2");
  SSVBR_SPAN("fractal.paxson.setup");
  plan_ = fft::FftPlan::get(m_);
  const std::size_t half = m_ / 2;
  std::vector<double> eigen(m_);
  double neg_mass = 0.0;
  double total_mass = 0.0;
  if (const auto* fgn = dynamic_cast<const FgnAutocorrelation*>(&model)) {
    // Closed-form branch: eigenvalues are the spectral density sampled
    // at the Fourier frequencies, lambda_k ~ 2 pi f(2 pi k / m; H). The
    // k = 0 bin sits on the |lambda|^{-2H-1} pole for H > 1/2; it is
    // zeroed (the synthesized window is mean-free) and its share of the
    // variance is restored by the renormalization below.
    closed_form_ = true;
    const double hurst = fgn->hurst();
    eigen[0] = 0.0;
    for (std::size_t k = 1; k <= half; ++k) {
      const double lambda =
          kTwoPi * static_cast<double>(k) / static_cast<double>(m_);
      eigen[k] = kTwoPi * fgn_spectral_density(lambda, hurst);
      if (k < half) eigen[m_ - k] = eigen[k];  // f is even
    }
  } else {
    // Tabulated-circulant branch: the Davies-Harte eigenvalue
    // construction over the fixed window, with unconditional clipping —
    // this generator is approximate by contract, so negative mass is
    // recorded in clipped_mass() instead of thrown.
    const std::vector<double> r = model.tabulate(half);
    std::vector<fft::Complex> c(m_);
    for (std::size_t j = 0; j <= half; ++j) c[j] = fft::Complex(r[j], 0.0);
    for (std::size_t j = half + 1; j < m_; ++j) {
      c[j] = fft::Complex(r[m_ - j], 0.0);
    }
    plan_->forward(c);
    for (std::size_t k = 0; k < m_; ++k) {
      const double lambda = c[k].real();
      total_mass += std::fabs(lambda);
      if (lambda < 0.0) {
        neg_mass += -lambda;
        eigen[k] = 0.0;
      } else {
        eigen[k] = lambda;
      }
    }
  }
  clipped_mass_ = total_mass > 0.0 ? neg_mass / total_mass : 0.0;

  // Renormalize to an exactly unit marginal: the achieved variance of
  // the synthesized window is (1/m) sum_k lambda_k, which the truncated
  // spectrum / zeroed DC bin / clipped eigenvalues all bias away from
  // r(0) = 1 (about -13% for raw closed-form H = 0.9 at m = 2^16).
  double achieved = 0.0;
  for (const double lambda : eigen) achieved += lambda;
  achieved /= static_cast<double>(m_);
  SSVBR_ENSURE(achieved > 0.0, "Paxson eigenvalue table has no positive mass");
  const double scale =
      1.0 / std::sqrt(achieved * static_cast<double>(m_));
  scaled_sqrt_eigenvalues_.resize(m_);
  for (std::size_t k = 0; k < m_; ++k) {
    scaled_sqrt_eigenvalues_[k] = std::sqrt(eigen[k]) * scale;
  }
}

namespace {

// Per-thread workspace cache keyed by window size, mirroring the
// Davies-Harte cache: one warm workspace per distinct size keeps a
// worker interleaving several models allocation-free in steady state.
PaxsonModel::Workspace& thread_workspace(std::size_t m) {
  static thread_local std::vector<
      std::pair<std::size_t, std::unique_ptr<PaxsonModel::Workspace>>>
      cache;
  for (auto& [size, ws] : cache) {
    if (size == m) return *ws;
  }
  cache.emplace_back(m, std::make_unique<PaxsonModel::Workspace>());
  return *cache.back().second;
}

}  // namespace

void PaxsonModel::synthesize_window(RandomEngine& rng, std::span<double> out) const {
  synthesize_window(rng, out, thread_workspace(m_));
}

void PaxsonModel::synthesize_window(RandomEngine& rng, std::span<double> out,
                                    Workspace& ws) const {
  SSVBR_REQUIRE(out.size() >= m_, "output span shorter than the window");
  SSVBR_TIMER("fractal.paxson.synthesize_window");
  SSVBR_COUNTER_ADD("fractal.paxson.windows", 1);
  SSVBR_COUNTER_ADD("fractal.paxson.points", m_);
  const std::size_t half = m_ / 2;
  // Hermitian-symmetric spectral synthesis, exactly as in Davies-Harte:
  // real Z_0 and Z_{m/2}, independent complex Gaussians with half
  // variance in the interior bins. (Paxson draws exponential powers
  // with uniform phases; complex Gaussians have the same distribution
  // bin by bin and reuse the ziggurat batch fill.) Every one of the m
  // synthesized samples is kept, so the FFT writes straight into `out`.
  ws.normals.resize(m_);
  ws.spec.resize(half + 1);
  rng.fill_normal(ws.normals);
  const double* nb = ws.normals.data();
  const double* se = scaled_sqrt_eigenvalues_.data();
  ws.spec[0] = fft::Complex(se[0] * nb[0], 0.0);
  ws.spec[half] = fft::Complex(se[half] * nb[m_ - 1], 0.0);
  const double inv_sqrt2 = 1.0 / kSqrt2;
  for (std::size_t k = 1; k < half; ++k) {
    const double s = se[k] * inv_sqrt2;
    ws.spec[k] = fft::Complex(s * nb[2 * k - 1], s * nb[2 * k]);
  }
  plan_->synthesize_real(ws.spec, out.first(m_), ws.fft_scratch);
}

double PaxsonModel::implied_correlation(std::size_t lag) const {
  SSVBR_REQUIRE(lag < m_, "lag must be inside the window");
  // se_k = sqrt(lambda'_k) / sqrt(m) with (1/m) sum lambda'_k = 1, so
  // cov(lag) = sum_k se_k^2 cos(2 pi k lag / m) and cov(0) = 1 exactly.
  double cov = 0.0;
  for (std::size_t k = 0; k < m_; ++k) {
    const double se = scaled_sqrt_eigenvalues_[k];
    cov += se * se *
           std::cos(kTwoPi * static_cast<double>(k) * static_cast<double>(lag) /
                    static_cast<double>(m_));
  }
  return cov;
}

std::vector<double> PaxsonModel::sample(RandomEngine& rng) const {
  std::vector<double> out(m_);
  synthesize_window(rng, out);
  return out;
}

}  // namespace ssvbr::fractal
