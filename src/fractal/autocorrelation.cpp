#include "fractal/autocorrelation.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "dist/special_functions.h"

namespace ssvbr::fractal {

std::vector<double> AutocorrelationModel::tabulate(std::size_t max_lag) const {
  std::vector<double> r(max_lag + 1);
  for (std::size_t k = 0; k <= max_lag; ++k) r[k] = (*this)(static_cast<double>(k));
  return r;
}

// -------------------------------------------------------------------- FGN

FgnAutocorrelation::FgnAutocorrelation(double hurst) : hurst_(hurst) {
  SSVBR_REQUIRE(hurst > 0.0 && hurst < 1.0, "Hurst parameter must lie in (0, 1)");
}

double FgnAutocorrelation::operator()(double tau) const {
  if (tau == 0.0) return 1.0;
  const double h2 = 2.0 * hurst_;
  const double k = std::fabs(tau);
  return 0.5 * (std::pow(k + 1.0, h2) - 2.0 * std::pow(k, h2) +
                std::pow(std::fabs(k - 1.0), h2));
}

std::string FgnAutocorrelation::describe() const {
  std::ostringstream os;
  os << "FGN(H=" << hurst_ << ")";
  return os.str();
}

// ----------------------------------------------------------------- FARIMA

FarimaAutocorrelation::FarimaAutocorrelation(double d) : d_(d) {
  SSVBR_REQUIRE(d > 0.0 && d < 0.5, "F-ARIMA(0,d,0) requires d in (0, 0.5)");
}

double FarimaAutocorrelation::operator()(double tau) const {
  if (tau == 0.0) return 1.0;
  const double k = std::fabs(tau);
  // r(k) = Gamma(1-d) Gamma(k+d) / ( Gamma(d) Gamma(k+1-d) ), evaluated
  // through log-gamma for numerical range (the thread-safe wrapper:
  // autocorrelations are evaluated from engine worker threads).
  const double logr = log_gamma(1.0 - d_) + log_gamma(k + d_) - log_gamma(d_) -
                      log_gamma(k + 1.0 - d_);
  return std::exp(logr);
}

std::string FarimaAutocorrelation::describe() const {
  std::ostringstream os;
  os << "FARIMA(0, d=" << d_ << ", 0)";
  return os.str();
}

// ------------------------------------------------------------ Exponential

ExponentialAutocorrelation::ExponentialAutocorrelation(double lambda) : lambda_(lambda) {
  SSVBR_REQUIRE(lambda > 0.0, "exponential decay rate must be positive");
}

double ExponentialAutocorrelation::operator()(double tau) const {
  return std::exp(-lambda_ * std::fabs(tau));
}

std::string ExponentialAutocorrelation::describe() const {
  std::ostringstream os;
  os << "Exponential(lambda=" << lambda_ << ")";
  return os.str();
}

// -------------------------------------------------------------- Composite

CompositeSrdLrdAutocorrelation::CompositeSrdLrdAutocorrelation(double lambda,
                                                               double lrd_scale,
                                                               double beta, double knee)
    : lambda_(lambda), lrd_scale_(lrd_scale), beta_(beta), knee_(knee) {
  SSVBR_REQUIRE(lambda > 0.0, "SRD rate lambda must be positive");
  SSVBR_REQUIRE(lrd_scale > 0.0, "LRD scale L must be positive");
  SSVBR_REQUIRE(beta > 0.0 && beta < 1.0,
                "LRD exponent beta must lie in (0, 1) for long-range dependence");
  SSVBR_REQUIRE(knee >= 1.0, "knee lag must be at least 1");
  SSVBR_REQUIRE(lrd_scale * std::pow(knee, -beta) <= 1.0 + 1e-12,
                "LRD branch exceeds 1 at the knee; not a correlation");
}

CompositeSrdLrdAutocorrelation CompositeSrdLrdAutocorrelation::with_continuity(
    double lrd_scale, double beta, double knee) {
  SSVBR_REQUIRE(knee >= 1.0, "knee lag must be at least 1");
  const double value_at_knee = lrd_scale * std::pow(knee, -beta);
  SSVBR_REQUIRE(value_at_knee > 0.0 && value_at_knee < 1.0,
                "LRD branch value at the knee must lie in (0, 1) to solve eq. (14)");
  const double lambda = -std::log(value_at_knee) / knee;  // eq. (14)
  return CompositeSrdLrdAutocorrelation(lambda, lrd_scale, beta, knee);
}

double CompositeSrdLrdAutocorrelation::operator()(double tau) const {
  if (tau == 0.0) return 1.0;
  const double k = std::fabs(tau);
  if (k < knee_) return std::exp(-lambda_ * k);
  return lrd_scale_ * std::pow(k, -beta_);
}

std::string CompositeSrdLrdAutocorrelation::describe() const {
  std::ostringstream os;
  os << "CompositeSrdLrd(lambda=" << lambda_ << ", L=" << lrd_scale_ << ", beta=" << beta_
     << ", knee=" << knee_ << ")";
  return os.str();
}

// --------------------------------------------------------------- Rescaled

RescaledAutocorrelation::RescaledAutocorrelation(AutocorrelationPtr inner, double period)
    : inner_(std::move(inner)), period_(period) {
  SSVBR_REQUIRE(inner_ != nullptr, "inner correlation must not be null");
  SSVBR_REQUIRE(period > 0.0, "rescaling period must be positive");
}

double RescaledAutocorrelation::operator()(double tau) const {
  return (*inner_)(std::fabs(tau) / period_);
}

std::string RescaledAutocorrelation::describe() const {
  std::ostringstream os;
  os << "Rescaled(" << inner_->describe() << ", period=" << period_ << ")";
  return os.str();
}

// ----------------------------------------------------------------- Scaled

ScaledAutocorrelation::ScaledAutocorrelation(AutocorrelationPtr inner, double attenuation)
    : inner_(std::move(inner)), attenuation_(attenuation) {
  SSVBR_REQUIRE(inner_ != nullptr, "inner correlation must not be null");
  SSVBR_REQUIRE(attenuation > 0.0 && attenuation <= 1.0,
                "attenuation factor must lie in (0, 1]");
}

double ScaledAutocorrelation::operator()(double tau) const {
  if (tau == 0.0) return 1.0;
  const double v = (*inner_)(tau) / attenuation_;
  return v > 1.0 ? 1.0 : v;
}

std::string ScaledAutocorrelation::describe() const {
  std::ostringstream os;
  os << "Scaled(" << inner_->describe() << ", a=" << attenuation_ << ")";
  return os.str();
}

// --------------------------------------------------------------- Validity

bool is_valid_correlation(const AutocorrelationModel& model, std::size_t horizon) {
  // Durbin-Levinson with only the previous row retained: the covariance
  // r(0..horizon) is positive definite iff every partial correlation
  // phi_kk lies strictly inside (-1, 1).
  if (horizon < 1) return true;
  const std::vector<double> r = model.tabulate(horizon);
  std::vector<double> phi_prev(horizon + 1, 0.0);
  std::vector<double> phi(horizon + 1, 0.0);
  double v = 1.0;
  for (std::size_t k = 1; k <= horizon; ++k) {
    double num = r[k];
    for (std::size_t j = 1; j < k; ++j) num -= phi_prev[j] * r[k - j];
    const double phi_kk = num / v;
    if (!(phi_kk > -1.0 && phi_kk < 1.0) || !std::isfinite(phi_kk)) return false;
    for (std::size_t j = 1; j < k; ++j) {
      phi[j] = phi_prev[j] - phi_kk * phi_prev[k - j];
    }
    phi[k] = phi_kk;
    v *= 1.0 - phi_kk * phi_kk;
    if (!(v > 0.0)) return false;
    std::swap(phi, phi_prev);
  }
  return true;
}

}  // namespace ssvbr::fractal
