#include "fractal/hurst.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "stats/descriptive.h"

namespace ssvbr::fractal {

namespace {

// Log-spaced distinct integer levels in [lo, hi].
std::vector<std::size_t> log_spaced_levels(std::size_t lo, std::size_t hi,
                                           std::size_t count) {
  SSVBR_REQUIRE(lo >= 1 && hi >= lo, "invalid level range");
  std::set<std::size_t> levels;
  const double llo = std::log(static_cast<double>(lo));
  const double lhi = std::log(static_cast<double>(hi));
  for (std::size_t i = 0; i < count; ++i) {
    const double t = count > 1 ? static_cast<double>(i) / static_cast<double>(count - 1)
                               : 0.0;
    levels.insert(static_cast<std::size_t>(std::lround(std::exp(llo + t * (lhi - llo)))));
  }
  return {levels.begin(), levels.end()};
}

}  // namespace

VarianceTimeResult variance_time_analysis(std::span<const double> xs,
                                          const VarianceTimeOptions& options) {
  SSVBR_REQUIRE(xs.size() >= 100, "variance-time analysis needs at least 100 samples");
  const std::size_t max_m = options.max_m == 0 ? xs.size() / 10 : options.max_m;
  SSVBR_REQUIRE(max_m > options.min_m, "empty aggregation range");

  VarianceTimeResult result;
  std::vector<double> fit_x;
  std::vector<double> fit_y;
  for (const std::size_t m : log_spaced_levels(options.min_m, max_m, options.n_levels)) {
    const std::vector<double> agg = stats::aggregate_series(xs, m);
    if (agg.size() < 2) continue;
    const double var = stats::variance(agg);
    if (var <= 0.0) continue;
    const double lx = std::log10(static_cast<double>(m));
    const double ly = std::log10(var);
    result.points.push_back({lx, ly});
    if (m >= options.fit_min_m) {
      fit_x.push_back(lx);
      fit_y.push_back(ly);
    }
  }
  SSVBR_REQUIRE(fit_x.size() >= 2,
                "too few aggregation levels above fit_min_m for a variance-time fit");
  result.fit = stats::fit_line(fit_x, fit_y);
  result.beta = -result.fit.slope;
  result.hurst = 1.0 - result.beta / 2.0;
  return result;
}

double rescaled_adjusted_range(std::span<const double> xs) {
  SSVBR_REQUIRE(xs.size() >= 2, "R/S needs at least two samples");
  const std::size_t n = xs.size();
  const double m = stats::mean(xs);
  const double s = std::sqrt(stats::population_variance(xs));
  SSVBR_REQUIRE(s > 0.0, "R/S of a constant block is undefined");
  double w = 0.0;
  double w_max = 0.0;  // max(0, W_1..W_n)
  double w_min = 0.0;  // min(0, W_1..W_n)
  for (std::size_t k = 0; k < n; ++k) {
    w += xs[k] - m;
    w_max = std::max(w_max, w);
    w_min = std::min(w_min, w);
  }
  return (w_max - w_min) / s;
}

RsResult rs_analysis(std::span<const double> xs, const RsOptions& options) {
  SSVBR_REQUIRE(xs.size() >= 64, "R/S analysis needs at least 64 samples");
  const std::size_t max_n = options.max_n == 0 ? xs.size() / 4 : options.max_n;
  SSVBR_REQUIRE(max_n > options.min_n, "empty block-size range");
  SSVBR_REQUIRE(options.n_blocks >= 1, "need at least one block per size");

  RsResult result;
  std::vector<double> fit_x;
  std::vector<double> fit_y;
  for (const std::size_t n : log_spaced_levels(options.min_n, max_n, options.n_sizes)) {
    // K non-overlapping starting points t_i = i * N / K, keeping only
    // those with a full block (t_i + n <= N), as in the paper.
    const std::size_t stride = xs.size() / options.n_blocks;
    for (std::size_t b = 0; b < options.n_blocks; ++b) {
      const std::size_t start = b * stride;
      if (start + n > xs.size()) break;
      const std::span<const double> block = xs.subspan(start, n);
      if (stats::population_variance(block) <= 0.0) continue;
      const double rs = rescaled_adjusted_range(block);
      if (rs <= 0.0) continue;
      const double lx = std::log10(static_cast<double>(n));
      const double ly = std::log10(rs);
      result.points.push_back({lx, ly});
      fit_x.push_back(lx);
      fit_y.push_back(ly);
    }
  }
  SSVBR_REQUIRE(fit_x.size() >= 2, "too few R/S points for a pox-diagram fit");
  result.fit = stats::fit_line(fit_x, fit_y);
  result.hurst = result.fit.slope;
  return result;
}

namespace {

// MAVAR(n) from precomputed prefix sums p (p[k] = sum of xs[0..k-1]).
// The inner sum over i in [j, j+n) of the second differences
// x_{i+2n} - 2 x_{i+n} + x_i telescopes into a second difference of
// three adjacent n-block sums, each a prefix-sum difference.
double mavar_from_prefix(std::span<const double> p, std::size_t n) {
  const std::size_t size = p.size() - 1;  // number of samples
  SSVBR_REQUIRE(n >= 1 && 3 * n < size,
                "MAVAR averaging factor needs 3n + 1 samples");
  const std::size_t terms = size - 3 * n + 1;
  double sum_sq = 0.0;
  for (std::size_t j = 0; j < terms; ++j) {
    const double b0 = p[j + n] - p[j];
    const double b1 = p[j + 2 * n] - p[j + n];
    const double b2 = p[j + 3 * n] - p[j + 2 * n];
    const double s = b2 - 2.0 * b1 + b0;
    sum_sq += s * s;
  }
  const double nd = static_cast<double>(n);
  return sum_sq / (2.0 * nd * nd * nd * nd * static_cast<double>(terms));
}

std::vector<double> prefix_sums(std::span<const double> xs) {
  std::vector<double> p(xs.size() + 1, 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) p[i + 1] = p[i] + xs[i];
  return p;
}

}  // namespace

double modified_allan_variance(std::span<const double> xs, std::size_t n) {
  SSVBR_REQUIRE(xs.size() >= 4, "MAVAR needs at least 4 samples");
  return mavar_from_prefix(prefix_sums(xs), n);
}

MavarResult mavar_analysis(std::span<const double> xs,
                           const MavarOptions& options) {
  SSVBR_REQUIRE(xs.size() >= 64, "MAVAR analysis needs at least 64 samples");
  const std::size_t max_n = options.max_n == 0 ? xs.size() / 5 : options.max_n;
  SSVBR_REQUIRE(max_n >= options.min_n && 3 * max_n < xs.size(),
                "empty or oversized MAVAR averaging range");

  const std::vector<double> p = prefix_sums(xs);
  MavarResult result;
  std::vector<double> fit_x;
  std::vector<double> fit_y;
  for (const std::size_t n : log_spaced_levels(options.min_n, max_n, options.n_levels)) {
    const double mavar = mavar_from_prefix(p, n);
    if (mavar <= 0.0) continue;
    const double lx = std::log10(static_cast<double>(n));
    const double ly = std::log10(mavar);
    result.points.push_back({lx, ly});
    fit_x.push_back(lx);
    fit_y.push_back(ly);
  }
  SSVBR_REQUIRE(fit_x.size() >= 2, "too few MAVAR levels for a log-log fit");
  result.fit = stats::fit_line(fit_x, fit_y);
  result.mu = result.fit.slope;
  result.hurst = (result.mu + 4.0) / 2.0;
  return result;
}

}  // namespace ssvbr::fractal
