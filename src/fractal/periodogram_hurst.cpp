#include "fractal/periodogram_hurst.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "fft/fft.h"
#include "stats/descriptive.h"

namespace ssvbr::fractal {

PeriodogramHurstResult periodogram_hurst(std::span<const double> xs,
                                         const PeriodogramHurstOptions& options) {
  const std::size_t n = xs.size();
  SSVBR_REQUIRE(n >= 128, "GPH estimation needs at least 128 samples");

  std::size_t m = options.n_frequencies;
  if (m == 0) {
    m = static_cast<std::size_t>(
        std::floor(std::pow(static_cast<double>(n), options.power)));
  }
  SSVBR_REQUIRE(m >= 4, "need at least four frequencies");
  SSVBR_REQUIRE(m < n / 2, "bandwidth exceeds the Nyquist range");

  // Demean and compute the periodogram I(lambda_j) = |X(j)|^2 / (2 pi n).
  const double mean = stats::mean(xs);
  std::vector<double> centered(xs.begin(), xs.end());
  for (double& v : centered) v -= mean;
  const std::vector<double> pg = fft::periodogram(centered);

  PeriodogramHurstResult result;
  std::vector<double> reg_x;
  std::vector<double> reg_y;
  reg_x.reserve(m);
  reg_y.reserve(m);
  for (std::size_t j = 1; j <= m; ++j) {
    const double lambda = kTwoPi * static_cast<double>(j) / static_cast<double>(n);
    const double intensity = pg[j] / kTwoPi;
    if (intensity <= 0.0) continue;
    const double s = std::sin(0.5 * lambda);
    const double x = std::log(4.0 * s * s);
    const double y = std::log(intensity);
    result.points.push_back({x, y});
    reg_x.push_back(x);
    reg_y.push_back(y);
  }
  SSVBR_REQUIRE(reg_x.size() >= 4, "too few positive periodogram ordinates");
  result.fit = stats::fit_line(reg_x, reg_y);
  result.d = -result.fit.slope;
  result.hurst = clamp(result.d + 0.5, 0.0, 1.5);
  return result;
}

}  // namespace ssvbr::fractal
