// ssvbr/is/twist_search.h
//
// Heuristic search for the near-optimal twisting parameter m*.
//
// After the marginal transform, a closed-form optimization of the twist
// is intractable (Section 4), so the paper scans m* and reads off the
// "valley" of the estimator's normalized variance (Fig. 14); the valley
// bottom (m* ~= 3.2 in the paper's setting) is the near-optimal twist
// giving ~1000x variance reduction. `sweep_twist` reproduces that scan
// and `find_best_twist` returns the valley bottom.
#pragma once

#include <cstddef>
#include <vector>

#include "is/is_estimator.h"

namespace ssvbr::is {

/// One point of the Fig. 14 scan.
struct TwistSweepPoint {
  double twisted_mean = 0.0;
  IsOverflowEstimate estimate;
};

/// Evaluate the IS estimator on a grid of twists. `settings.twisted_mean`
/// is ignored; every other field applies to each grid point. Grid point
/// j draws from `rng` advanced j times with RandomEngine::jump_long()
/// (the engine's parallel sweep uses the identical stream layout); on
/// return `rng` has been advanced by one long jump per grid point.
std::vector<TwistSweepPoint> sweep_twist(const core::UnifiedVbrModel& model,
                                         const fractal::HoskingModel& background,
                                         IsOverflowSettings settings,
                                         const std::vector<double>& twists,
                                         RandomEngine& rng);

/// The sweep point with the smallest *positive* normalized variance
/// among points that registered at least one hit (a twist too small to
/// produce any overflow is useless even though its sample variance is
/// zero). Throws InvalidArgument for an empty sweep and NumericalError
/// if no point qualifies.
const TwistSweepPoint& find_best_twist(const std::vector<TwistSweepPoint>& sweep);

}  // namespace ssvbr::is
