// ssvbr/is/likelihood.h
//
// Sequential likelihood-ratio accumulation for mean-twisted Gaussian
// background processes (Appendix B.2 of the paper, eqs. (42)-(48)).
//
// The twisted process is X'_k = X_k + m*. Conditionally on the same
// realized history (x'_0 ... x'_{k-1}), both the original and the
// twisted model prescribe a Gaussian next-step law with identical
// variance v_k and means that differ by exactly
//
//     delta_k = m* (1 - S_k),       S_k = sum_j phi_{k,j}
//
// (eqs. (35)-(40)). The per-step log likelihood ratio of the original
// over the twisted density at the realized point x is therefore
//
//     log L_k = [ (x - m_twisted)^2 - (x - m_original)^2 ] / (2 v_k),
//
// with m_original = m_twisted - delta_k. Accumulation happens in log
// space: over thousands of steps the ratio spans hundreds of orders of
// magnitude and would overflow/underflow a plain product.
#pragma once

#include <cmath>

namespace ssvbr::is {

/// Running log-likelihood ratio of the original measure against the
/// twisted sampling measure.
class LikelihoodRatioAccumulator {
 public:
  /// Account for one generated step.
  /// `x`            — the realized value x'_k,
  /// `twisted_mean` — the conditional mean it was sampled from,
  /// `mean_delta`   — twisted_mean - original_mean = m* (1 - S_k),
  /// `variance`     — the (shared) conditional variance v_k.
  void add_step(double x, double twisted_mean, double mean_delta,
                double variance) noexcept {
    const double d_twist = x - twisted_mean;
    const double d_orig = d_twist + mean_delta;  // x - (twisted_mean - delta)
    log_l_ += (d_twist * d_twist - d_orig * d_orig) / (2.0 * variance);
  }

  double log_likelihood() const noexcept { return log_l_; }
  double likelihood() const noexcept { return std::exp(log_l_); }

  void reset() noexcept { log_l_ = 0.0; }

 private:
  double log_l_ = 0.0;
};

}  // namespace ssvbr::is
