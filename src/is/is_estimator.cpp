#include "is/is_estimator.h"

#include <cmath>

#include "common/error.h"
#include "is/likelihood.h"
#include "queueing/lindley.h"

namespace ssvbr::is {

IsOverflowEstimate estimate_overflow_is_superposed(const core::UnifiedVbrModel& model,
                                                   const fractal::HoskingModel& background,
                                                   std::size_t n_sources,
                                                   const IsOverflowSettings& settings,
                                                   RandomEngine& rng) {
  SSVBR_REQUIRE(n_sources >= 1, "need at least one source");
  SSVBR_REQUIRE(settings.replications >= 1, "need at least one replication");
  SSVBR_REQUIRE(settings.stop_time >= 1, "stop time must be at least one slot");
  SSVBR_REQUIRE(settings.stop_time <= background.horizon(),
                "background coefficient table shorter than the stop time");
  SSVBR_REQUIRE(settings.buffer >= 0.0, "buffer must be non-negative");

  const core::MarginalTransform& h = model.transform();
  const double m_star = settings.twisted_mean;

  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t hits = 0;

  std::vector<fractal::HoskingSampler> samplers;
  samplers.reserve(n_sources);
  for (std::size_t s = 0; s < n_sources; ++s) samplers.emplace_back(background, m_star);
  queueing::LindleyQueue queue(settings.service_rate, settings.initial_occupancy);
  LikelihoodRatioAccumulator lr;  // product over sources = sum of logs

  for (std::size_t rep = 0; rep < settings.replications; ++rep) {
    for (auto& s : samplers) s.reset();
    queue.reset(settings.initial_occupancy);
    lr.reset();
    bool hit = false;
    double w = 0.0;
    for (std::size_t i = 0; i < settings.stop_time; ++i) {
      const double delta =
          m_star * (1.0 - (i == 0 ? 0.0 : background.phi_row_sum(i)));
      double y_total = 0.0;
      for (auto& sampler : samplers) {
        const fractal::HoskingStep step = sampler.next(rng);
        lr.add_step(step.value, step.conditional_mean, delta, step.variance);
        y_total += h(step.value);
      }
      if (settings.event == queueing::OverflowEvent::kFirstPassage) {
        w += y_total - settings.service_rate;
        if (w > settings.buffer) {
          hit = true;
          break;
        }
      } else {
        queue.step(y_total);
      }
    }
    if (settings.event == queueing::OverflowEvent::kTerminal) {
      hit = queue.size() > settings.buffer;
    }
    const double score = hit ? lr.likelihood() : 0.0;
    if (hit) ++hits;
    sum += score;
    sum_sq += score * score;
  }

  IsOverflowEstimate est;
  est.replications = settings.replications;
  est.hits = hits;
  const double n = static_cast<double>(settings.replications);
  est.probability = sum / n;
  const double mean_sq = est.probability * est.probability;
  const double sample_var = n > 1.0 ? (sum_sq - n * mean_sq) / (n - 1.0) : 0.0;
  est.estimator_variance = sample_var > 0.0 ? sample_var / n : 0.0;
  est.normalized_variance =
      est.probability > 0.0 ? est.estimator_variance / mean_sq : 0.0;
  est.ci95_halfwidth = 1.96 * std::sqrt(est.estimator_variance);
  if (est.estimator_variance > 0.0 && est.probability > 0.0 && est.probability < 1.0) {
    const double mc_var = est.probability * (1.0 - est.probability) / n;
    est.variance_reduction_vs_mc = mc_var / est.estimator_variance;
  }
  return est;
}

IsOverflowEstimate estimate_overflow_is(const core::UnifiedVbrModel& model,
                                        const fractal::HoskingModel& background,
                                        const IsOverflowSettings& settings,
                                        RandomEngine& rng) {
  SSVBR_REQUIRE(settings.replications >= 1, "need at least one replication");
  SSVBR_REQUIRE(settings.stop_time >= 1, "stop time must be at least one slot");
  SSVBR_REQUIRE(settings.stop_time <= background.horizon(),
                "background coefficient table shorter than the stop time");
  SSVBR_REQUIRE(settings.buffer >= 0.0, "buffer must be non-negative");

  const core::MarginalTransform& h = model.transform();
  const double m_star = settings.twisted_mean;

  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t hits = 0;

  fractal::HoskingSampler sampler(background, m_star);
  queueing::LindleyQueue queue(settings.service_rate, settings.initial_occupancy);
  LikelihoodRatioAccumulator lr;

  for (std::size_t rep = 0; rep < settings.replications; ++rep) {
    sampler.reset();
    queue.reset(settings.initial_occupancy);
    lr.reset();
    bool hit = false;
    double w = 0.0;  // total workload W_i = sum (Y_j - mu)
    for (std::size_t i = 0; i < settings.stop_time; ++i) {
      const fractal::HoskingStep step = sampler.next(rng);
      // twisted_mean - original_mean = m* (1 - S_i); S_0 = 0.
      const double delta =
          m_star * (1.0 - (i == 0 ? 0.0 : background.phi_row_sum(i)));
      lr.add_step(step.value, step.conditional_mean, delta, step.variance);

      const double y = h(step.value);
      if (settings.event == queueing::OverflowEvent::kFirstPassage) {
        // Paper steps 4-7: track the total workload and stop at the
        // first crossing of b; the stopped likelihood ratio keeps the
        // estimator unbiased (eq. (17): P(Q_k > b) = P(sup W_i > b)).
        w += y - settings.service_rate;
        if (w > settings.buffer) {
          hit = true;
          break;
        }
      } else {
        queue.step(y);
      }
    }
    if (settings.event == queueing::OverflowEvent::kTerminal) {
      hit = queue.size() > settings.buffer;
    }
    const double score = hit ? lr.likelihood() : 0.0;
    if (hit) ++hits;
    sum += score;
    sum_sq += score * score;
  }

  IsOverflowEstimate est;
  est.replications = settings.replications;
  est.hits = hits;
  const double n = static_cast<double>(settings.replications);
  est.probability = sum / n;
  // Sample variance of the per-replication scores, then variance of
  // their mean.
  const double mean_sq = est.probability * est.probability;
  const double sample_var =
      n > 1.0 ? (sum_sq - n * mean_sq) / (n - 1.0) : 0.0;
  est.estimator_variance = sample_var > 0.0 ? sample_var / n : 0.0;
  est.normalized_variance =
      est.probability > 0.0 ? est.estimator_variance / mean_sq : 0.0;
  est.ci95_halfwidth = 1.96 * std::sqrt(est.estimator_variance);
  if (est.estimator_variance > 0.0 && est.probability > 0.0 && est.probability < 1.0) {
    const double mc_var = est.probability * (1.0 - est.probability) / n;
    est.variance_reduction_vs_mc = mc_var / est.estimator_variance;
  }
  return est;
}

}  // namespace ssvbr::is
