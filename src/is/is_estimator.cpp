#include "is/is_estimator.h"

#include <cmath>

#include "common/error.h"
#include "obs/instrument.h"
#include "stats/descriptive.h"

namespace ssvbr::is {

namespace {

void validate(const fractal::HoskingModel& background, const IsOverflowSettings& settings,
              std::size_t n_sources) {
  SSVBR_REQUIRE(n_sources >= 1, "need at least one source");
  SSVBR_REQUIRE(settings.replications >= 1, "need at least one replication");
  SSVBR_REQUIRE(settings.stop_time >= 1, "stop time must be at least one slot");
  SSVBR_REQUIRE(settings.stop_time <= background.horizon(),
                "background coefficient table shorter than the stop time");
  SSVBR_REQUIRE(settings.buffer >= 0.0, "buffer must be non-negative");
}

}  // namespace

IsOverflowEstimate make_is_overflow_estimate(double mean_score, double sample_variance,
                                             std::size_t hits, std::size_t replications) {
  IsOverflowEstimate est;
  est.replications = replications;
  est.hits = hits;
  est.probability = mean_score;
  const double n = static_cast<double>(replications);
  // sample_variance is 0 for n < 2 and may be 0 (or a tiny negative
  // from cancellation upstream) at zero hits; clamp so every derived
  // field stays finite.
  est.estimator_variance = sample_variance > 0.0 && n > 0.0 ? sample_variance / n : 0.0;
  const double mean_sq = est.probability * est.probability;
  est.normalized_variance =
      est.probability > 0.0 ? est.estimator_variance / mean_sq : 0.0;
  est.ci95_halfwidth = 1.96 * std::sqrt(est.estimator_variance);
  if (est.estimator_variance > 0.0 && est.probability > 0.0 && est.probability < 1.0) {
    const double mc_var = est.probability * (1.0 - est.probability) / n;
    est.variance_reduction_vs_mc = mc_var / est.estimator_variance;
  }
  // Kish ESS from the score moments: sum w = n * mean and
  // sum w^2 = (n-1) * s^2 + n * mean^2 (exact for n = 1, where s^2 = 0).
  const double sum_w = mean_score * n;
  const double sum_w2 = sample_variance * (n - 1.0) + mean_score * mean_score * n;
  est.effective_sample_size = sum_w2 > 0.0 ? sum_w * sum_w / sum_w2 : 0.0;
  SSVBR_GAUGE_SET("is.ess", est.effective_sample_size);
  SSVBR_GAUGE_SET("is.hit_fraction",
                  n > 0.0 ? static_cast<double>(hits) / n : 0.0);
  return est;
}

IsReplicationKernel::IsReplicationKernel(const core::UnifiedVbrModel& model,
                                         const fractal::HoskingModel& background,
                                         std::size_t n_sources,
                                         const IsOverflowSettings& settings)
    : transform_(&model.transform()),
      background_(&background),
      settings_(settings),
      n_sources_(n_sources),
      queue_(settings.service_rate, settings.initial_occupancy),
      history_(settings.stop_time * n_sources),
      means_(n_sources) {}

IsReplicationKernel::Outcome IsReplicationKernel::run_one(RandomEngine& rng) {
  SSVBR_TIMER("is.replication");
  const double m_star = settings_.twisted_mean;
  const std::size_t n_sources = n_sources_;
  queue_.reset(settings_.initial_occupancy);
  lr_.reset();
  bool hit = false;
  double w = 0.0;  // total workload W_i = sum (Y_j - mu)
  for (std::size_t i = 0; i < settings_.stop_time; ++i) {
    // twisted_mean - original_mean = m* (1 - S_i); S_0 = 0.
    const double delta = m_star * (1.0 - background_->phi_row_sum(i));
    // One phi-row traversal computes sum_j phi_{i,j} x'_{i-j} for every
    // source; the twisted conditional mean is delta plus that (the
    // shifted-process law of HoskingSampler::next). A single source has
    // a contiguous history, where the blocked reversed dot beats the
    // coefficient-major batch traversal.
    if (n_sources == 1) {
      means_[0] = background_->conditional_mean(i, {history_.data(), i});
    } else {
      background_->conditional_means_batch(i, history_.data(), n_sources, n_sources,
                                           means_.data());
    }
    const double sd = background_->innovation_sd(i);
    const double variance = background_->innovation_variance(i);
    double* slot = history_.data() + i * n_sources;
    double y_total = 0.0;
    for (std::size_t s = 0; s < n_sources; ++s) {
      const double twisted_mean = delta + means_[s];
      const double x = rng.normal(twisted_mean, sd);
      lr_.add_step(x, twisted_mean, delta, variance);
      slot[s] = x;
      y_total += (*transform_)(x);
    }
    if (settings_.event == queueing::OverflowEvent::kFirstPassage) {
      // Paper steps 4-7: track the total workload and stop at the
      // first crossing of b; the stopped likelihood ratio keeps the
      // estimator unbiased (eq. (17): P(Q_k > b) = P(sup W_i > b)).
      w += y_total - settings_.service_rate;
      if (w > settings_.buffer) {
        hit = true;
        break;
      }
    } else {
      queue_.step(y_total);
    }
  }
  if (settings_.event == queueing::OverflowEvent::kTerminal) {
    hit = queue_.size() > settings_.buffer;
  }
  const double score = hit ? lr_.likelihood() : 0.0;
  SSVBR_COUNTER_ADD("is.replications", 1);
  if (hit) {
    SSVBR_COUNTER_ADD("is.hits", 1);
    SSVBR_HIST_RECORD("is.weight", score);
  } else {
    // Zero-score replications: the twisted path never produced the rare
    // event, so the replication contributed nothing to the estimate.
    SSVBR_COUNTER_ADD("is.zero_weight", 1);
  }
  return Outcome{score, hit};
}

IsOverflowEstimate estimate_overflow_is_superposed(const core::UnifiedVbrModel& model,
                                                   const fractal::HoskingModel& background,
                                                   std::size_t n_sources,
                                                   const IsOverflowSettings& settings,
                                                   RandomEngine& rng) {
  validate(background, settings, n_sources);

  IsReplicationKernel kernel(model, background, n_sources, settings);
  stats::RunningStats scores;
  std::size_t hits = 0;
  for (std::size_t rep = 0; rep < settings.replications; ++rep) {
    RandomEngine replication_stream = rng;  // stream i = caller engine jumped i times
    const IsReplicationKernel::Outcome out = kernel.run_one(replication_stream);
    rng.jump();
    scores.add(out.score);
    if (out.hit) ++hits;
  }
  return make_is_overflow_estimate(scores.mean(), scores.variance(), hits,
                                   settings.replications);
}

IsOverflowEstimate estimate_overflow_is(const core::UnifiedVbrModel& model,
                                        const fractal::HoskingModel& background,
                                        const IsOverflowSettings& settings,
                                        RandomEngine& rng) {
  return estimate_overflow_is_superposed(model, background, 1, settings, rng);
}

}  // namespace ssvbr::is
