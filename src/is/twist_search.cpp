#include "is/twist_search.h"

#include <limits>

#include "common/error.h"
#include "obs/instrument.h"

namespace ssvbr::is {

std::vector<TwistSweepPoint> sweep_twist(const core::UnifiedVbrModel& model,
                                         const fractal::HoskingModel& background,
                                         IsOverflowSettings settings,
                                         const std::vector<double>& twists,
                                         RandomEngine& rng) {
  SSVBR_REQUIRE(!twists.empty(), "twist grid must be non-empty");
  SSVBR_SPAN("is.twist_sweep");
  std::vector<TwistSweepPoint> out;
  out.reserve(twists.size());
  for (const double m_star : twists) {
    settings.twisted_mean = m_star;
    // Grid point j's stream family starts at the caller's engine
    // long-jumped j times (2^192 apart); the IS estimator spaces its
    // replication streams 2^128 apart inside that band. The engine's
    // parallel sweep uses the same layout.
    RandomEngine sub = rng;
    rng.jump_long();
    TwistSweepPoint point;
    point.twisted_mean = m_star;
    point.estimate = estimate_overflow_is(model, background, settings, sub);
    // Per-point ESS distribution: the Fig. 14 valley bottom is exactly
    // the twist whose weights stay non-degenerate.
    SSVBR_HIST_RECORD("is.sweep.ess", point.estimate.effective_sample_size);
    SSVBR_COUNTER_ADD("is.sweep.points", 1);
    out.push_back(point);
  }
  return out;
}

const TwistSweepPoint& find_best_twist(const std::vector<TwistSweepPoint>& sweep) {
  // An empty sweep is a caller bug (an unrun or discarded scan), not a
  // numerical degeneracy — distinguish it from the "every twist missed"
  // case below so the fix is obvious from the message.
  SSVBR_REQUIRE(!sweep.empty(), "cannot pick a twist from an empty sweep");
  const TwistSweepPoint* best = nullptr;
  double best_nv = std::numeric_limits<double>::infinity();
  for (const TwistSweepPoint& p : sweep) {
    if (p.estimate.hits == 0) continue;
    if (p.estimate.normalized_variance <= 0.0) continue;
    if (p.estimate.normalized_variance < best_nv) {
      best_nv = p.estimate.normalized_variance;
      best = &p;
    }
  }
  if (best == nullptr) {
    throw NumericalError("no twist in the sweep produced a usable estimate");
  }
  return *best;
}

}  // namespace ssvbr::is
