// ssvbr/is/is_estimator.h
//
// Importance-sampling estimation of buffer overflow probabilities for a
// slotted queue fed by the transformed self-similar background process
// — the simulation procedure of Section 4, steps 1-8.
//
// Each replication:
//   1. generates the twisted background path x'_i = Hosking step + m*,
//   2. transforms it to the twisted foreground y'_i = h(x'_i),
//   3. advances the workload / queue,
//   4. on overflow, scores the indicator weighted by the likelihood
//      ratio of the background processes (only the background ratio is
//      needed: h is a deterministic bijection, eq. (7) commentary in
//      Appendix B.2).
//
// The estimate P_hat = (1/N) sum I_n L_n is unbiased for any twist m*;
// the twist only controls the variance (Fig. 14's "valley").
#pragma once

#include <cstddef>
#include <memory>

#include "core/unified_model.h"
#include "dist/random.h"
#include "fractal/hosking.h"
#include "queueing/overflow_mc.h"

namespace ssvbr::is {

/// Importance-sampling estimate with precision diagnostics.
struct IsOverflowEstimate {
  double probability = 0.0;
  double estimator_variance = 0.0;   ///< var of the mean estimator
  double normalized_variance = 0.0;  ///< estimator variance / probability^2
  double ci95_halfwidth = 0.0;
  std::size_t replications = 0;
  std::size_t hits = 0;              ///< replications that overflowed
  /// Variance-reduction factor against crude Monte Carlo with the same
  /// replication count: [p(1-p)/N] / estimator_variance.
  double variance_reduction_vs_mc = 1.0;
};

/// Parameters of one IS experiment.
struct IsOverflowSettings {
  double twisted_mean = 0.0;   ///< m*, background mean shift
  double service_rate = 1.0;   ///< mu per slot
  double buffer = 0.0;         ///< overflow level b
  std::size_t stop_time = 1;   ///< k
  std::size_t replications = 1000;
  queueing::OverflowEvent event = queueing::OverflowEvent::kFirstPassage;
  double initial_occupancy = 0.0;  ///< Q_0 (Fig. 15 uses 0 and b)
};

/// Run the IS simulation. `background` must have horizon >= stop_time
/// and be built from the same correlation as `model`; callers build it
/// once and reuse it across sweeps (the coefficient table is the
/// expensive part).
IsOverflowEstimate estimate_overflow_is(const core::UnifiedVbrModel& model,
                                        const fractal::HoskingModel& background,
                                        const IsOverflowSettings& settings,
                                        RandomEngine& rng);

/// Multi-source variant: the queue is fed by `n_sources` independent
/// copies of the model (the ATM multiplexer scenario the paper
/// motivates). Every source's background is twisted by the same m*, and
/// since the sources are independent the total likelihood ratio is the
/// product of the per-source ratios. `settings.service_rate` and
/// `settings.buffer` refer to the aggregate stream.
IsOverflowEstimate estimate_overflow_is_superposed(const core::UnifiedVbrModel& model,
                                                   const fractal::HoskingModel& background,
                                                   std::size_t n_sources,
                                                   const IsOverflowSettings& settings,
                                                   RandomEngine& rng);

}  // namespace ssvbr::is
