// ssvbr/is/is_estimator.h
//
// Importance-sampling estimation of buffer overflow probabilities for a
// slotted queue fed by the transformed self-similar background process
// — the simulation procedure of Section 4, steps 1-8.
//
// Each replication:
//   1. generates the twisted background path x'_i = Hosking step + m*,
//   2. transforms it to the twisted foreground y'_i = h(x'_i),
//   3. advances the workload / queue,
//   4. on overflow, scores the indicator weighted by the likelihood
//      ratio of the background processes (only the background ratio is
//      needed: h is a deterministic bijection, eq. (7) commentary in
//      Appendix B.2).
//
// The estimate P_hat = (1/N) sum I_n L_n is unbiased for any twist m*;
// the twist only controls the variance (Fig. 14's "valley").
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/unified_model.h"
#include "dist/random.h"
#include "fractal/hosking.h"
#include "is/likelihood.h"
#include "queueing/lindley.h"
#include "queueing/overflow_mc.h"

namespace ssvbr::is {

/// Importance-sampling estimate with precision diagnostics.
struct IsOverflowEstimate {
  double probability = 0.0;
  double estimator_variance = 0.0;   ///< var of the mean estimator
  double normalized_variance = 0.0;  ///< estimator variance / probability^2
  double ci95_halfwidth = 0.0;
  std::size_t replications = 0;
  std::size_t hits = 0;              ///< replications that overflowed
  /// Variance-reduction factor against crude Monte Carlo with the same
  /// replication count: [p(1-p)/N] / estimator_variance.
  double variance_reduction_vs_mc = 1.0;
  /// Kish effective sample size of the likelihood-ratio weights,
  /// (sum w)^2 / sum w^2 over all N replications (non-hits score 0).
  /// The standard IS health check: near N the twist is wasting no work;
  /// near 1 a single weight dominates the estimate and the variance
  /// numbers cannot be trusted (the Fig. 14 valley walls show exactly
  /// this degeneracy). 0 when no replication scored.
  double effective_sample_size = 0.0;
};

/// Parameters of one IS experiment.
struct IsOverflowSettings {
  double twisted_mean = 0.0;   ///< m*, background mean shift
  double service_rate = 1.0;   ///< mu per slot
  double buffer = 0.0;         ///< overflow level b
  std::size_t stop_time = 1;   ///< k
  std::size_t replications = 1000;
  queueing::OverflowEvent event = queueing::OverflowEvent::kFirstPassage;
  double initial_occupancy = 0.0;  ///< Q_0 (Fig. 15 uses 0 and b)
};

/// Assemble the IS estimate statistics from the score moments (shared
/// by the serial estimators and the engine's parallel front-ends, so
/// both handle the zero-hit / single-replication edge cases the same
/// way: every field stays finite, never NaN). `mean_score` is the mean
/// of the per-replication likelihood-ratio scores, `sample_variance`
/// their unbiased sample variance (0 for fewer than two replications).
IsOverflowEstimate make_is_overflow_estimate(double mean_score, double sample_variance,
                                             std::size_t hits, std::size_t replications);

/// One replication of the Section 4 IS procedure, reusable across
/// replications and shared by the serial and parallel front-ends. Holds
/// the per-replication scratch state (path history, queue, likelihood
/// accumulator), all preallocated at construction so the replication
/// loop itself performs zero heap allocation; `model` and `background`
/// must outlive the kernel. `n_sources` independent twisted sources
/// feed the queue (1 = the paper's single-source experiments); their
/// histories are stored time-major in one interleaved buffer so each
/// step traverses the phi row once for all sources
/// (HoskingModel::conditional_means_batch) instead of once per source.
class IsReplicationKernel {
 public:
  IsReplicationKernel(const core::UnifiedVbrModel& model,
                      const fractal::HoskingModel& background, std::size_t n_sources,
                      const IsOverflowSettings& settings);

  struct Outcome {
    double score = 0.0;  ///< I * L: likelihood ratio if the event hit, else 0
    bool hit = false;
  };

  /// Run one independent replication drawing from `rng`. Draws one
  /// normal per (step, source) in source-major order within each step —
  /// the same stream layout as a bank of per-source HoskingSamplers.
  Outcome run_one(RandomEngine& rng);

 private:
  const core::MarginalTransform* transform_;
  const fractal::HoskingModel* background_;
  IsOverflowSettings settings_;
  std::size_t n_sources_;
  queueing::LindleyQueue queue_;
  LikelihoodRatioAccumulator lr_;
  std::vector<double> history_;  ///< stop_time x n_sources, time-major
  std::vector<double> means_;    ///< per-source conditional means scratch
};

/// Run the IS simulation. `background` must have horizon >= stop_time
/// and be built from the same correlation as `model`; callers build it
/// once and reuse it across sweeps (the coefficient table is the
/// expensive part).
///
/// Streams: replication i draws from `rng` advanced i times with
/// RandomEngine::jump(); on return `rng` has been advanced
/// `replications` jumps. The engine's parallel front-end uses the same
/// layout, so serial and parallel runs draw identical variates per
/// replication.
IsOverflowEstimate estimate_overflow_is(const core::UnifiedVbrModel& model,
                                        const fractal::HoskingModel& background,
                                        const IsOverflowSettings& settings,
                                        RandomEngine& rng);

/// Multi-source variant: the queue is fed by `n_sources` independent
/// copies of the model (the ATM multiplexer scenario the paper
/// motivates). Every source's background is twisted by the same m*, and
/// since the sources are independent the total likelihood ratio is the
/// product of the per-source ratios. `settings.service_rate` and
/// `settings.buffer` refer to the aggregate stream.
IsOverflowEstimate estimate_overflow_is_superposed(const core::UnifiedVbrModel& model,
                                                   const fractal::HoskingModel& background,
                                                   std::size_t n_sources,
                                                   const IsOverflowSettings& settings,
                                                   RandomEngine& rng);

}  // namespace ssvbr::is
