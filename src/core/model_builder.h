// ssvbr/core/model_builder.h
//
// End-to-end implementation of the paper's four-step modeling procedure
// (Section 3.2):
//
//   Step 1  Estimate the Hurst parameter H from the empirical series
//           (variance-time plot and R/S analysis; the paper combines
//           H_vt = 0.89 and H_rs = 0.92 into H = 0.9).
//   Step 2  Fit the composite SRD+LRD autocorrelation
//           r_hat(k) = exp(-lambda k) 1{k < Kt} + L k^{-beta} 1{k >= Kt}.
//   Step 3  Measure the attenuation factor a of the marginal transform
//           (analytically here, by simulation in the paper; both are
//           available — see MarginalTransform).
//   Step 4  Compensate: feed Hosking's method the background correlation
//           r(k) = r_hat(k) / a for k >= Kt and re-solve lambda from
//           exp(-lambda Kt) = r_hat(Kt) / a (eq. (14)).
//
// The result is a UnifiedVbrModel whose foreground process matches both
// the empirical marginal (exactly, by construction) and the empirical
// autocorrelation (asymptotically, by the compensation).
#pragma once

#include <cstddef>
#include <span>

#include "core/unified_model.h"
#include "fractal/hurst.h"
#include "stats/acf_fit.h"

namespace ssvbr::core {

/// Knobs of the fitting pipeline.
struct ModelBuilderOptions {
  /// Longest lag of the estimated autocorrelation (the paper fits over
  /// lags 1..500).
  std::size_t acf_max_lag = 500;
  /// Options of the composite ACF fit (knee search etc.).
  stats::CompositeAcfFitOptions acf_fit;
  /// Variance-time and R/S estimator settings.
  fractal::VarianceTimeOptions variance_time;
  fractal::RsOptions rs;
  /// When true (paper behaviour), the LRD exponent of the background
  /// correlation is taken from the ACF fit; when false it is derived
  /// from the Step 1 Hurst estimate (beta = 2 - 2H).
  bool beta_from_acf_fit = true;
  /// Skip the attenuation compensation of Steps 3-4 (ablation switch;
  /// reproduces the mismatch of Fig. 7 when disabled).
  bool compensate_attenuation = true;
  /// Horizon over which the compensated background correlation must be
  /// positive definite. Full compensation r(k) = r_hat(k) / a can be
  /// infeasible when the empirical ACF is very high at the knee (the
  /// lifted function stops being a valid correlation); in that case the
  /// builder applies the strongest feasible partial compensation. The
  /// paper's milder numbers (knee value 0.7, a = 0.94) never hit this.
  std::size_t pd_check_horizon = 2048;
};

/// Everything the pipeline measured along the way — the numbers behind
/// Figs. 3-8 of the paper.
struct FitReport {
  fractal::VarianceTimeResult variance_time;  ///< Fig. 3
  fractal::RsResult rs;                       ///< Fig. 4
  double hurst_combined = 0.5;                ///< average of the two estimates
  stats::CompositeAcfFit acf_fit;             ///< Fig. 6
  std::vector<double> empirical_acf;          ///< Fig. 5 (lags 0..acf_max_lag)
  double attenuation = 1.0;                   ///< Step 3 (Fig. 7)
  double background_lambda = 0.0;             ///< Step 4, eq. (14)
  double background_lrd_scale = 0.0;          ///< L / a
  double background_beta = 0.0;
  double knee = 0.0;
};

/// Result of fitting: the generative model plus its diagnostics.
struct FittedModel {
  UnifiedVbrModel model;
  FitReport report;
};

/// Fit the unified model to an empirical series (e.g. the I-frame
/// byte-per-frame series of a trace). The marginal is the inverted
/// empirical distribution of `series`.
FittedModel fit_unified_model(std::span<const double> series,
                              const ModelBuilderOptions& options = {});

/// The compensated background correlation implied by an ACF fit and an
/// attenuation factor — Steps 3-4 in isolation, exposed for tests and
/// the ablation bench. When dividing by `attenuation` would break
/// positive definiteness over `pd_check_horizon` lags, the strongest
/// feasible partial compensation (found by bisection on the effective
/// attenuation) is applied instead.
fractal::AutocorrelationPtr compensated_background_correlation(
    const stats::CompositeAcfFit& fit, double attenuation,
    std::size_t pd_check_horizon = 2048);

}  // namespace ssvbr::core
