#include "core/marginal_transform.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/math_util.h"
#include "core/tabulated_transform.h"
#include "dist/special_functions.h"
#include "fractal/davies_harte.h"
#include "fractal/hosking.h"
#include "obs/instrument.h"
#include "stats/descriptive.h"

namespace ssvbr::core {

MarginalTransform::MarginalTransform(DistributionPtr target) : target_(std::move(target)) {
  SSVBR_REQUIRE(target_ != nullptr, "marginal transform needs a target distribution");
}

double MarginalTransform::operator()(double x) const {
  if (lut_) return (*lut_)(x);
  return exact_value(x);
}

double MarginalTransform::exact_value(double x) const {
  return target_->quantile(clamped_normal_cdf(x));
}

void MarginalTransform::apply(std::span<const double> xs, std::span<double> out) const {
  SSVBR_REQUIRE(out.size() >= xs.size(), "output span too short");
  SSVBR_TIMER("core.transform.apply");
  SSVBR_COUNTER_ADD("core.transform.points", xs.size());
  if (lut_) {
    lut_->apply(xs, out);
    return;
  }
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = exact_value(xs[i]);
}

void MarginalTransform::enable_tabulated(std::size_t intervals, double max_rel_error) {
  if (lut_ && lut_->intervals() == intervals) return;
  // Build from a LUT-free view of this transform so the table samples
  // the exact values even when re-tabulating.
  MarginalTransform exact(target_);
  lut_ = std::make_shared<const TabulatedTransform>(exact, intervals, max_rel_error);
}

std::vector<double> MarginalTransform::apply(std::span<const double> xs) const {
  std::vector<double> out(xs.size());
  apply(xs, out);
  return out;
}

void MarginalTransform::ensure_moments() const {
  if (moments_ready_) return;
  // Composite Simpson integration of h(x) * {1, x, h(x)} * phi(x) over
  // [-8, 8]; outside that range the normal weight is < 1e-14.
  constexpr int kPanels = 4096;  // even
  constexpr double kLo = -8.0;
  constexpr double kHi = 8.0;
  const double dx = (kHi - kLo) / kPanels;
  double s0 = 0.0;  // E[h]
  double s1 = 0.0;  // E[h X]
  double s2 = 0.0;  // E[h^2]
  for (int i = 0; i <= kPanels; ++i) {
    const double x = kLo + dx * i;
    const double w = (i == 0 || i == kPanels) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    const double phi = normal_pdf(x);
    // One exact h evaluation per node feeds all three integrands; the
    // moment cache must not inherit tabulation error.
    const double h = exact_value(x);
    s0 += w * h * phi;
    s1 += w * h * x * phi;
    s2 += w * h * h * phi;
  }
  const double scale = dx / 3.0;
  mean_ = s0 * scale;
  c1_ = s1 * scale;
  const double second_moment = s2 * scale;
  variance_ = second_moment - mean_ * mean_;
  moments_ready_ = true;
}

double MarginalTransform::attenuation() const {
  ensure_moments();
  SSVBR_REQUIRE(variance_ > 0.0, "transform output has zero variance");
  const double a = c1_ * c1_ / variance_;
  // By the Schwarz inequality a <= 1 (eq. (31)); numerical error can
  // push it epsilon above.
  return a > 1.0 ? 1.0 : a;
}

double MarginalTransform::hermite_c1() const {
  ensure_moments();
  return c1_;
}

double MarginalTransform::output_mean() const {
  ensure_moments();
  return mean_;
}

double MarginalTransform::output_variance() const {
  ensure_moments();
  return variance_;
}

EmpiricalAttenuation measure_attenuation_empirical(
    const fractal::AutocorrelationModel& correlation, const MarginalTransform& transform,
    std::size_t path_length, std::size_t lag_lo, std::size_t lag_hi, RandomEngine& rng,
    std::size_t replications) {
  SSVBR_REQUIRE(lag_lo >= 1 && lag_lo <= lag_hi, "need 1 <= lag_lo <= lag_hi");
  SSVBR_REQUIRE(lag_hi < path_length, "lag range exceeds path length");
  SSVBR_REQUIRE(replications >= 1, "need at least one replication");

  // Davies-Harte for bulk paths; composite correlations may need a
  // permissive clipping tolerance, which only perturbs the covariance
  // by the clipped eigenvalue mass.
  const fractal::DaviesHarteModel generator(correlation, path_length, /*tolerance=*/0.05);

  std::vector<double> bg_acf_sum(lag_hi + 1, 0.0);
  std::vector<double> fg_acf_sum(lag_hi + 1, 0.0);
  std::vector<double> x(path_length);
  for (std::size_t rep = 0; rep < replications; ++rep) {
    generator.sample_path(rng, x);
    const std::vector<double> y = transform.apply(x);
    const std::vector<double> rx = stats::autocorrelation_fft(x, lag_hi);
    const std::vector<double> ry = stats::autocorrelation_fft(y, lag_hi);
    for (std::size_t k = 0; k <= lag_hi; ++k) {
      bg_acf_sum[k] += rx[k];
      fg_acf_sum[k] += ry[k];
    }
  }
  EmpiricalAttenuation out;
  out.background_acf.resize(lag_hi + 1);
  out.foreground_acf.resize(lag_hi + 1);
  for (std::size_t k = 0; k <= lag_hi; ++k) {
    out.background_acf[k] = bg_acf_sum[k] / static_cast<double>(replications);
    out.foreground_acf[k] = fg_acf_sum[k] / static_cast<double>(replications);
  }
  // Ratio r_h / r averaged over the requested large-lag window,
  // ignoring lags where the background ACF is too small for a stable
  // ratio.
  double ratio_sum = 0.0;
  std::size_t ratio_count = 0;
  for (std::size_t k = lag_lo; k <= lag_hi; ++k) {
    if (out.background_acf[k] > 0.05) {
      ratio_sum += out.foreground_acf[k] / out.background_acf[k];
      ++ratio_count;
    }
  }
  SSVBR_REQUIRE(ratio_count > 0,
                "background ACF too small over the requested lag window");
  out.attenuation = clamp(ratio_sum / static_cast<double>(ratio_count), 1e-3, 1.0);
  return out;
}

}  // namespace ssvbr::core
