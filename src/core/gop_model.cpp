#include "core/gop_model.h"

#include <memory>
#include <utility>

#include "common/error.h"
#include "core/background_sampler.h"
#include "stats/empirical_distribution.h"

namespace ssvbr::core {

GopVbrModel::GopVbrModel(fractal::AutocorrelationPtr frame_level_correlation,
                         MarginalTransform transform_i, MarginalTransform transform_p,
                         MarginalTransform transform_b, trace::GopStructure gop)
    : correlation_(std::move(frame_level_correlation)),
      transform_i_(std::move(transform_i)),
      transform_p_(std::move(transform_p)),
      transform_b_(std::move(transform_b)),
      gop_(std::move(gop)) {
  SSVBR_REQUIRE(correlation_ != nullptr, "background correlation must not be null");
}

const MarginalTransform& GopVbrModel::transform(trace::FrameType type) const {
  switch (type) {
    case trace::FrameType::I: return transform_i_;
    case trace::FrameType::P: return transform_p_;
    case trace::FrameType::B: return transform_b_;
  }
  throw InternalError("unknown frame type");
}

trace::VideoTrace GopVbrModel::generate(std::size_t n_frames, RandomEngine& rng,
                                        BackgroundGenerator generator) const {
  SSVBR_REQUIRE(n_frames >= 1, "cannot generate an empty trace");
  // One background process for the whole composite stream (the paper's
  // construction): per-frame correlation at the frame level, then the
  // per-type transform picks the histogram of the slot's frame type.
  // Generator resolution is BackgroundPathSampler's job (the single
  // validated code path); this model just draws through it.
  const BackgroundPathSampler sampler(correlation_, n_frames, generator);
  std::vector<double> x(n_frames);
  sampler.sample(rng, x);
  std::vector<double> sizes(n_frames);
  for (std::size_t i = 0; i < n_frames; ++i) {
    sizes[i] = transform(gop_.type_at(i))(x[i]);
  }
  trace::TraceMetadata meta;
  meta.title = "ssvbr GopVbrModel synthetic trace";
  meta.coder = "ssvbr unified model";
  return trace::VideoTrace(std::move(sizes), gop_, std::move(meta));
}

double GopVbrModel::mean_frame_size() const {
  const double n = static_cast<double>(gop_.size());
  return (static_cast<double>(gop_.count(trace::FrameType::I)) * transform_i_.output_mean() +
          static_cast<double>(gop_.count(trace::FrameType::P)) * transform_p_.output_mean() +
          static_cast<double>(gop_.count(trace::FrameType::B)) * transform_b_.output_mean()) /
         n;
}

FittedGopModel fit_gop_model(const trace::VideoTrace& trace,
                             const ModelBuilderOptions& options) {
  // Step 1: model the I-frame process with the Section 3.2 pipeline.
  const std::vector<double> i_series = trace.i_frame_series();
  FittedModel i_model = fit_unified_model(i_series, options);

  // Step 2: rescale the compensated I-frame correlation to frame level.
  auto frame_corr = std::make_shared<fractal::RescaledAutocorrelation>(
      i_model.model.background_correlation_ptr(),
      static_cast<double>(trace.gop().i_period()));

  // Step 3: per-type marginal transforms from per-type histograms.
  const std::vector<double> p_series = trace.sizes_of(trace::FrameType::P);
  const std::vector<double> b_series = trace.sizes_of(trace::FrameType::B);
  SSVBR_REQUIRE(!p_series.empty() && !b_series.empty(),
                "GOP model needs P and B frames in the trace");
  MarginalTransform h_i(std::make_shared<stats::EmpiricalDistribution>(i_series));
  MarginalTransform h_p(std::make_shared<stats::EmpiricalDistribution>(p_series));
  MarginalTransform h_b(std::make_shared<stats::EmpiricalDistribution>(b_series));

  GopVbrModel model(std::move(frame_corr), std::move(h_i), std::move(h_p), std::move(h_b),
                    trace.gop());
  return FittedGopModel{std::move(model), std::move(i_model.report)};
}

}  // namespace ssvbr::core
