#include "core/activity_model.h"

#include <cmath>
#include <utility>

#include "common/error.h"

namespace ssvbr::core {

ActivityModulatedModel::ActivityModulatedModel(
    std::shared_ptr<const UnifiedVbrModel> inner, ActivityConfig config)
    : inner_(std::move(inner)), config_(config) {
  SSVBR_REQUIRE(inner_ != nullptr, "activity modulation needs an inner model");
  SSVBR_REQUIRE(config_.busy_mean_frames >= 1.0,
                "mean busy period must be at least one frame");
  SSVBR_REQUIRE(config_.idle_mean_frames >= 1.0,
                "mean idle period must be at least one frame");
  SSVBR_REQUIRE(config_.idle_rate >= 0.0, "idle rate must be non-negative");
  busy_fraction_ = config_.busy_mean_frames /
                   (config_.busy_mean_frames + config_.idle_mean_frames);
  exit_busy_ = 1.0 / config_.busy_mean_frames;
  exit_idle_ = 1.0 / config_.idle_mean_frames;
  gate_rho_ = 1.0 - exit_busy_ - exit_idle_;
}

double ActivityModulatedModel::mean() const {
  return config_.idle_rate +
         busy_fraction_ * (inner_->mean() - config_.idle_rate);
}

double ActivityModulatedModel::variance() const {
  const double p = busy_fraction_;
  const double d = inner_->mean() - config_.idle_rate;
  return p * inner_->variance() + p * (1.0 - p) * d * d;
}

double ActivityModulatedModel::predicted_autocorrelation(double lag) const {
  const double p = busy_fraction_;
  const double d = inner_->mean() - config_.idle_rate;
  // E[S_t S_{t+k}] for the stationary two-state chain.
  const double ss = p * p + p * (1.0 - p) * std::pow(gate_rho_, lag);
  // E[(Y_t - c)(Y_{t+k} - c)] with c = idle_rate, via the inner
  // foreground ACF (exact for a Gaussian marginal, Appendix A
  // attenuation approximation otherwise).
  const double r_y = lag == 0.0 ? 1.0 : inner_->predicted_foreground_acf(lag);
  const double yy = inner_->variance() * r_y + d * d;
  const double cov = ss * yy - p * p * d * d;
  const double var = variance();
  return var > 0.0 ? cov / var : 0.0;
}

void ActivityModulatedModel::modulate_in_place(std::span<double> path,
                                               RandomEngine& rng) const {
  bool busy = false;
  for (std::size_t t = 0; t < path.size(); ++t) {
    const double u = rng.uniform();
    if (t == 0) {
      // Stationary start: the predicted marginal/ACF formulas hold from
      // the first frame.
      busy = u < busy_fraction_;
    } else {
      busy = busy ? (u >= exit_busy_) : (u < exit_idle_);
    }
    if (!busy) path[t] = config_.idle_rate;
  }
}

std::vector<double> ActivityModulatedModel::generate(
    std::size_t n, RandomEngine& rng, BackgroundGenerator generator) const {
  std::vector<double> path = inner_->generate(n, rng, generator);
  modulate_in_place(path, rng);
  return path;
}

}  // namespace ssvbr::core
