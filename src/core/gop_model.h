// ssvbr/core/gop_model.h
//
// The interframe (I/B/P) extension of the unified model (Section 3.3):
// one stationary background Gaussian process X carrying both SRD and
// LRD, and three marginal transforms h_I, h_B, h_P — one per frame type,
// built from the per-type histograms — applied according to the GOP
// pattern. The background correlation is the I-frame-level correlation
// rescaled by the I-frame period: r(k) = r_I(k / K_I) (eq. (15)).
#pragma once

#include <cstddef>
#include <vector>

#include "core/model_builder.h"
#include "core/unified_model.h"
#include "trace/video_trace.h"

namespace ssvbr::core {

/// Composite I-B-P VBR video model.
class GopVbrModel {
 public:
  GopVbrModel(fractal::AutocorrelationPtr frame_level_correlation,
              MarginalTransform transform_i, MarginalTransform transform_p,
              MarginalTransform transform_b, trace::GopStructure gop);

  /// Synthesize a composite frame-size trace of `n_frames` frames.
  trace::VideoTrace generate(std::size_t n_frames, RandomEngine& rng,
                             BackgroundGenerator generator =
                                 BackgroundGenerator::kDaviesHarte) const;

  const fractal::AutocorrelationModel& background_correlation() const {
    return *correlation_;
  }
  const MarginalTransform& transform(trace::FrameType type) const;
  const trace::GopStructure& gop() const { return gop_; }

  /// Mean bytes/frame of the composite stream (weighted over the GOP).
  double mean_frame_size() const;

 private:
  fractal::AutocorrelationPtr correlation_;
  MarginalTransform transform_i_;
  MarginalTransform transform_p_;
  MarginalTransform transform_b_;
  trace::GopStructure gop_;
};

/// Fitted GOP model plus the I-frame pipeline diagnostics.
struct FittedGopModel {
  GopVbrModel model;
  FitReport i_frame_report;  ///< the Section 3.2 pipeline on I frames
};

/// Section 3.3 procedure:
///   1. isolate I frames and run the Section 3.2 pipeline on them;
///   2. rescale the compensated I-frame correlation by K_I (eq. (15));
///   3. build h_I, h_P, h_B from the per-type empirical histograms.
FittedGopModel fit_gop_model(const trace::VideoTrace& trace,
                             const ModelBuilderOptions& options = {});

}  // namespace ssvbr::core
