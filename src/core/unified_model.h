// ssvbr/core/unified_model.h
//
// The paper's unified VBR video model: a background self-similar
// Gaussian process with an explicitly specified SRD+LRD autocorrelation,
// pushed through the histogram-inversion transform to acquire the
// empirical marginal (Sections 3.1-3.2).
#pragma once

#include <cstddef>
#include <vector>

#include "core/marginal_transform.h"
#include "dist/random.h"
#include "fractal/autocorrelation.h"

namespace ssvbr::core {

/// Which Gaussian generator synthesizes the background process.
enum class BackgroundGenerator {
  kDaviesHarte,  ///< exact, O(n log n); materializes the whole path
  kHosking,      ///< exact, O(n^2) streaming; always applicable
  kPaxson,       ///< approximate FFT synthesis in fixed windows; the only
                 ///< backend whose memory is bounded by its synthesis
                 ///< window instead of the horizon (fractal/paxson.h)
};

/// Background correlation + marginal transform = synthetic VBR source.
class UnifiedVbrModel {
 public:
  UnifiedVbrModel(fractal::AutocorrelationPtr background_correlation,
                  MarginalTransform transform);

  /// Synthesize a foreground trace Y_0..Y_{n-1} (bytes per frame).
  std::vector<double> generate(std::size_t n, RandomEngine& rng,
                               BackgroundGenerator generator =
                                   BackgroundGenerator::kDaviesHarte) const;

  /// Synthesize the background Gaussian path only (diagnostics, Fig. 7).
  std::vector<double> generate_background(std::size_t n, RandomEngine& rng,
                                          BackgroundGenerator generator =
                                              BackgroundGenerator::kDaviesHarte) const;

  const fractal::AutocorrelationModel& background_correlation() const {
    return *correlation_;
  }
  fractal::AutocorrelationPtr background_correlation_ptr() const { return correlation_; }
  const MarginalTransform& transform() const { return transform_; }

  /// Opt-in: switch generate() — and every kernel that reads
  /// transform(), including the IS replication loop — to the tabulated
  /// fast marginal transform (see TabulatedTransform). The default
  /// stays the exact inverse-CDF evaluation; the table's relative
  /// error bound is enforced at construction.
  void enable_tabulated_transform(std::size_t intervals = 4096,
                                  double max_rel_error = 1e-6) {
    transform_.enable_tabulated(intervals, max_rel_error);
  }

  /// Mean/variance of the foreground marginal (from the transform).
  double mean() const { return transform_.output_mean(); }
  double variance() const { return transform_.output_variance(); }

  /// Predicted asymptotic foreground ACF: a * r(k) (Appendix A).
  double predicted_foreground_acf(double lag) const;

 private:
  fractal::AutocorrelationPtr correlation_;
  MarginalTransform transform_;
};

}  // namespace ssvbr::core
