// ssvbr/core/iterative_calibration.h
//
// Iterative refinement of the background autocorrelation so that the
// *foreground* process matches a target autocorrelation.
//
// The paper's Step 4 compensates the attenuation with the asymptotic
// factor a and then "systematically iterates until the SRD part of the
// foreground process matches that of the empirical stream"; an
// "automatic search for the best background autocorrelation structure"
// is flagged as work in progress. This module implements that search:
//
//   repeat:
//     1. simulate foreground paths and estimate their ACF;
//     2. compare against the target ACF at an SRD anchor lag (inside the
//        knee) and an LRD anchor lag (deep in the tail);
//     3. nudge the background composite parameters — the exponential
//        rate lambda from the SRD mismatch, the power-law amplitude L
//        from the LRD mismatch — with damping;
//     4. reject any step that would leave the family of valid
//        (positive-definite) correlations.
//
// The result is the best-seen model under the mean-absolute ACF error.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/unified_model.h"
#include "dist/random.h"

namespace ssvbr::core {

/// Knobs of the calibration loop.
struct IterativeCalibrationOptions {
  std::size_t iterations = 5;
  /// Length of each simulated foreground path used for measurement.
  std::size_t path_length = 16384;
  /// Paths averaged per ACF measurement (LRD estimates are noisy).
  std::size_t replications = 4;
  /// Lags 1..acf_max_lag enter the error metric (must be shorter than
  /// the target ACF and path_length).
  std::size_t acf_max_lag = 300;
  /// Fraction of each measured log-mismatch applied per iteration.
  double damping = 0.7;
  /// Horizon of the positive-definiteness check guarding each step.
  std::size_t pd_check_horizon = 2048;
};

/// One iteration's state, for diagnostics and the ablation bench.
struct CalibrationIteration {
  double lambda = 0.0;
  double lrd_scale = 0.0;
  double acf_error = 0.0;  ///< MAE(foreground ACF, target ACF) over 1..max_lag
};

/// Calibration outcome: the best-seen model plus the trajectory.
struct CalibrationResult {
  UnifiedVbrModel model;
  std::vector<CalibrationIteration> history;
  double initial_error = 0.0;
  double final_error = 0.0;
};

/// Refine `initial` (whose background must be a
/// CompositeSrdLrdAutocorrelation, as produced by fit_unified_model)
/// so its foreground ACF matches `target_acf` (target_acf[k] = r(k),
/// target_acf[0] == 1).
CalibrationResult calibrate_foreground_acf(const UnifiedVbrModel& initial,
                                           std::span<const double> target_acf,
                                           const IterativeCalibrationOptions& options,
                                           RandomEngine& rng);

}  // namespace ssvbr::core
