#include "core/model_builder.h"

#include <cmath>
#include <memory>

#include "common/error.h"
#include "common/math_util.h"
#include "stats/descriptive.h"
#include "stats/empirical_distribution.h"

namespace ssvbr::core {

namespace {

// Build the Step 4 composite for one candidate effective attenuation,
// pushing the knee outward if the lifted value would reach 1.
fractal::CompositeSrdLrdAutocorrelation make_compensated(const stats::CompositeAcfFit& fit,
                                                         double attenuation) {
  double knee = static_cast<double>(fit.knee);
  const double lrd_scale = fit.lrd_scale / attenuation;
  double value_at_knee = lrd_scale * std::pow(knee, -fit.beta);
  while (value_at_knee >= 0.999 && knee < 1e6) {
    knee *= 1.25;
    value_at_knee = lrd_scale * std::pow(knee, -fit.beta);
  }
  SSVBR_REQUIRE(value_at_knee < 1.0, "compensated ACF cannot be made a correlation");
  return fractal::CompositeSrdLrdAutocorrelation::with_continuity(lrd_scale, fit.beta,
                                                                  knee);
}

}  // namespace

fractal::AutocorrelationPtr compensated_background_correlation(
    const stats::CompositeAcfFit& fit, double attenuation,
    std::size_t pd_check_horizon) {
  SSVBR_REQUIRE(attenuation > 0.0 && attenuation <= 1.0,
                "attenuation must lie in (0, 1]");
  // Step 4: r(k) = r_hat(k) / a for k >= Kt. Dividing the LRD branch by
  // a multiplies L; the knee value r_hat(Kt)/a then re-solves lambda
  // via eq. (14).
  {
    const auto full = make_compensated(fit, attenuation);
    if (fractal::is_valid_correlation(full, pd_check_horizon)) {
      return std::make_shared<fractal::CompositeSrdLrdAutocorrelation>(full);
    }
  }
  // Full compensation lifts the ACF beyond what any stationary Gaussian
  // process can realize (e.g. r near 1 over the whole SRD range but a
  // power-law drop afterwards violates positive definiteness). Bisect
  // the effective attenuation in (attenuation, 1]: larger values
  // compensate less and are more feasible.
  double lo = attenuation;  // infeasible
  double hi = 1.0;          // assumed feasible (the fitted ACF itself)
  if (!fractal::is_valid_correlation(make_compensated(fit, hi), pd_check_horizon)) {
    throw NumericalError(
        "fitted composite ACF is not positive definite even without compensation");
  }
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (fractal::is_valid_correlation(make_compensated(fit, mid), pd_check_horizon)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Back off slightly from the feasibility boundary for numerical
  // headroom in downstream Durbin-Levinson runs.
  const double a_eff = std::min(1.0, hi + 0.02 * (1.0 - attenuation));
  return std::make_shared<fractal::CompositeSrdLrdAutocorrelation>(
      make_compensated(fit, a_eff));
}

FittedModel fit_unified_model(std::span<const double> series,
                              const ModelBuilderOptions& options) {
  SSVBR_REQUIRE(series.size() > options.acf_max_lag * 2,
                "series too short for the requested ACF lag range");

  FitReport report;

  // Step 1: Hurst estimation.
  report.variance_time = fractal::variance_time_analysis(series, options.variance_time);
  report.rs = fractal::rs_analysis(series, options.rs);
  report.hurst_combined = 0.5 * (report.variance_time.hurst + report.rs.hurst);

  // Step 2: autocorrelation estimation and composite fit.
  report.empirical_acf = stats::autocorrelation_fft(series, options.acf_max_lag);
  stats::CompositeAcfFit fit = stats::fit_composite_acf(report.empirical_acf,
                                                        options.acf_fit);
  if (!options.beta_from_acf_fit) {
    // Re-anchor the LRD branch on the Step 1 Hurst estimate, keeping the
    // fitted amplitude at the knee unchanged.
    const double beta = clamp(2.0 - 2.0 * report.hurst_combined, 0.02, 0.98);
    const double knee = static_cast<double>(fit.knee);
    const double value_at_knee = fit.lrd_scale * std::pow(knee, -fit.beta);
    fit.lrd_scale = value_at_knee * std::pow(knee, beta);
    fit.beta = beta;
  }
  report.acf_fit = fit;

  // The marginal transform: invert the empirical distribution directly.
  auto marginal = std::make_shared<stats::EmpiricalDistribution>(series);
  MarginalTransform transform(marginal);

  // Step 3: attenuation factor.
  report.attenuation = options.compensate_attenuation ? transform.attenuation() : 1.0;

  // Step 4: compensated background correlation.
  fractal::AutocorrelationPtr background =
      compensated_background_correlation(fit, report.attenuation, options.pd_check_horizon);
  const auto* composite =
      static_cast<const fractal::CompositeSrdLrdAutocorrelation*>(background.get());
  report.background_lambda = composite->lambda();
  report.background_lrd_scale = composite->lrd_scale();
  report.background_beta = composite->beta();
  report.knee = composite->knee();

  return FittedModel{UnifiedVbrModel(std::move(background), std::move(transform)),
                     std::move(report)};
}

}  // namespace ssvbr::core
