// ssvbr/core/tabulated_transform.h
//
// Opt-in fast path for the marginal transform h(x) = F_Y^{-1}(Phi(x)).
//
// The exact transform costs one normal CDF plus one quantile per point;
// for parametric targets the quantile is itself an iterative inversion
// (regularized incomplete gamma, etc.), and the transform dominates the
// foreground-synthesis profile once the Gaussian generator is fast.
// Because h is a fixed monotone function of one variable, it tabulates
// perfectly: this class precomputes h on a dense uniform grid over
// [-8, 8] (beyond which Phi is saturated to the clamping constants in
// marginal_transform.h) and interpolates with the Fritsch-Carlson
// monotone cubic Hermite scheme, so the interpolant is monotone
// whenever h is — order statistics of the output are preserved.
//
// Accuracy is enforced, not assumed: the constructor evaluates the
// interpolant against the exact transform at every cell midpoint and
// throws NumericalError if the relative error exceeds the bound
// (default 1e-6). The default 4096-interval grid lands around 1e-10
// for the paper's gamma / gamma-Pareto marginals.
//
// One caveat feeds the check: near x = +8 the probability p = Phi(x)
// sits within a few ulps of 1.0, so the *exact* transform is itself a
// staircase in x — one ulp of p moves a heavy-tailed quantile by a
// relative 1e-3 there. The midpoint check therefore discounts the
// reference's own resolution (the quantile moved by one ulp of p in
// either direction) before applying the relative bound; demanding more
// accuracy than the exact path itself carries would be meaningless.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/simd.h"
#include "core/marginal_transform.h"

namespace ssvbr::core {

/// Grid-tabulated monotone interpolant of a MarginalTransform.
/// Immutable after construction; safe to share across threads.
class TabulatedTransform {
 public:
  /// Tabulates `exact` (via its exact_value()) on `intervals` uniform
  /// cells over [-8, 8] and verifies the midpoint relative error is
  /// <= `max_rel_error`, throwing NumericalError otherwise.
  explicit TabulatedTransform(const MarginalTransform& exact,
                              std::size_t intervals = 4096,
                              double max_rel_error = 1e-6);

  /// Interpolated h(x); exact evaluation outside [-8, 8] (where draws
  /// are ~1e-15 rare under any twist the paper uses).
  double operator()(double x) const;

  /// Vectorised elementwise application: out[i] = h(xs[i]).
  void apply(std::span<const double> xs, std::span<double> out) const;

  /// Largest midpoint relative error observed during construction.
  double max_rel_error_observed() const noexcept { return observed_error_; }

  double grid_lo() const noexcept { return kLo; }
  double grid_hi() const noexcept { return kHi; }
  std::size_t intervals() const noexcept { return y_.size() - 1; }

  static constexpr double kLo = -8.0;
  static constexpr double kHi = 8.0;

 private:
  double interpolate(double x) const;
  simd::HermiteTable table_view() const noexcept;

  DistributionPtr target_;   // for the exact tail fallback
  std::vector<double> y_;    // h at the grid nodes
  std::vector<double> d_;    // limited Hermite slopes at the nodes
  double inv_step_ = 0.0;
  double step_ = 0.0;
  double observed_error_ = 0.0;
};

}  // namespace ssvbr::core
