// ssvbr/core/marginal_transform.h
//
// The histogram-inversion transform at the heart of the unified model
// (Section 3.1, eq. (7)):
//
//     Y_k = h(X_k) = F_Y^{-1}( Phi(X_k) ),
//
// mapping a zero-mean unit-variance Gaussian background process X into
// a foreground process Y with an arbitrary prescribed marginal F_Y
// while — by the Appendix A theorem — preserving the Hurst parameter.
//
// The transform attenuates the autocorrelation asymptotically by
//
//     a = (E[h(X) X])^2 / Var(h(X))        (eq. (30)),
//
// the square of the first Hermite coefficient over the output variance.
// `attenuation()` computes this analytically by Gauss-Legendre
// integration against the normal density; `measure_attenuation_empirical`
// reproduces the paper's simulation-based measurement (Step 3, Fig. 7).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/math_util.h"
#include "dist/distribution.h"
#include "dist/random.h"
#include "dist/special_functions.h"
#include "fractal/autocorrelation.h"

namespace ssvbr::core {

class TabulatedTransform;

/// Phi(x) clamped away from {0, 1} so a quantile evaluation stays
/// strictly inside its domain. Phi saturates in double precision around
/// |x| ~ 8.3; this is the one place the clamping constants live — the
/// exact transform, the moment integrals, and the tabulated fast path
/// all saturate identically through it.
inline double clamped_normal_cdf(double x) {
  constexpr double kTiny = 1e-16;
  return clamp(normal_cdf(x), kTiny, 1.0 - kTiny);
}

/// Monotone marginal transform h(x) = F_Y^{-1}(Phi(x)).
class MarginalTransform {
 public:
  /// `target` supplies F_Y^{-1}; typically a stats::EmpiricalDistribution
  /// built from the trace ("inverting the empirical distribution
  /// directly", as the paper does) or a parametric fit.
  explicit MarginalTransform(DistributionPtr target);

  /// h(x) for a single point. Uses the tabulated fast path when one has
  /// been enabled, the exact inverse-CDF evaluation otherwise.
  double operator()(double x) const;

  /// h(x) evaluated exactly (quantile of the clamped normal CDF),
  /// bypassing any enabled tabulation. This is the reference the
  /// tabulated path is verified against.
  double exact_value(double x) const;

  /// Apply h elementwise: out[i] = h(xs[i]).
  void apply(std::span<const double> xs, std::span<double> out) const;
  std::vector<double> apply(std::span<const double> xs) const;

  /// Opt in to the tabulated fast path (see TabulatedTransform):
  /// h is precomputed on a dense grid over [-8, 8] with monotone-cubic
  /// interpolation and a construction-time max-relative-error check.
  /// Default is off — the exact transform. Copies of this transform made
  /// after the call share the table.
  void enable_tabulated(std::size_t intervals = 4096, double max_rel_error = 1e-6);

  /// True when the tabulated fast path is active.
  bool tabulated() const noexcept { return lut_ != nullptr; }

  /// Analytic attenuation factor a = c1^2 / Var(h(X)) in (0, 1],
  /// integrated numerically against the standard normal density.
  double attenuation() const;

  /// First Hermite coefficient c1 = E[h(X) X].
  double hermite_c1() const;

  /// Mean and variance of Y = h(X) under X ~ N(0,1) (numerical).
  double output_mean() const;
  double output_variance() const;

  const Distribution& target() const { return *target_; }
  DistributionPtr target_ptr() const { return target_; }

 private:
  void ensure_moments() const;

  DistributionPtr target_;
  std::shared_ptr<const TabulatedTransform> lut_;  // null = exact path
  // Lazily computed moment cache (mutable: computing moments does not
  // change the observable transform).
  mutable bool moments_ready_ = false;
  mutable double c1_ = 0.0;
  mutable double mean_ = 0.0;
  mutable double variance_ = 0.0;
};

/// Paper Step 3: measure the attenuation by simulation. Generates a
/// background path with the given correlation, pushes it through the
/// transform, and returns the ratio of foreground to background ACF
/// averaged over lags [lag_lo, lag_hi] (the paper reads the ratio "at a
/// large lag" and obtains a = 0.94).
struct EmpiricalAttenuation {
  double attenuation = 1.0;
  std::vector<double> background_acf;  ///< r(k) of X, k = 0..lag_hi
  std::vector<double> foreground_acf;  ///< r_h(k) of Y = h(X)
};

EmpiricalAttenuation measure_attenuation_empirical(
    const fractal::AutocorrelationModel& correlation, const MarginalTransform& transform,
    std::size_t path_length, std::size_t lag_lo, std::size_t lag_hi, RandomEngine& rng,
    std::size_t replications = 4);

}  // namespace ssvbr::core
