#include "core/iterative_calibration.h"

#include <cmath>
#include <memory>
#include <optional>

#include "common/error.h"
#include "common/math_util.h"
#include "stats/descriptive.h"

namespace ssvbr::core {

namespace {

// Measure the average foreground ACF of `model` over a few paths.
std::vector<double> measure_foreground_acf(const UnifiedVbrModel& model,
                                           std::size_t path_length, std::size_t max_lag,
                                           std::size_t replications, RandomEngine& rng) {
  std::vector<double> acf(max_lag + 1, 0.0);
  for (std::size_t rep = 0; rep < replications; ++rep) {
    const std::vector<double> y = model.generate(path_length, rng);
    const std::vector<double> a = stats::autocorrelation_fft(y, max_lag);
    for (std::size_t k = 0; k <= max_lag; ++k) {
      acf[k] += a[k] / static_cast<double>(replications);
    }
  }
  return acf;
}

double acf_mae(std::span<const double> measured, std::span<const double> target,
               std::size_t max_lag) {
  double mae = 0.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    mae += std::fabs(measured[k] - target[k]);
  }
  return mae / static_cast<double>(max_lag);
}

// Geometric-mean ratio target/measured over a lag window, using only
// lags where both values are solidly positive.
double log_ratio(std::span<const double> target, std::span<const double> measured,
                 std::size_t lo, std::size_t hi) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t k = lo; k <= hi; ++k) {
    if (target[k] > 0.02 && measured[k] > 0.02) {
      sum += std::log(target[k] / measured[k]);
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

// Build a knee-continuous composite from (L, beta, knee), with lambda
// slaved to continuity (eq. (14)); nullopt when the knee value is not a
// usable correlation level.
std::optional<fractal::CompositeSrdLrdAutocorrelation> make_continuous_composite(
    double lrd_scale, double beta, double knee) {
  if (knee < 2.0) return std::nullopt;
  const double value_at_knee = lrd_scale * std::pow(knee, -beta);
  if (!(value_at_knee > 0.005 && value_at_knee < 0.995)) return std::nullopt;
  return fractal::CompositeSrdLrdAutocorrelation::with_continuity(lrd_scale, beta, knee);
}

}  // namespace

CalibrationResult calibrate_foreground_acf(const UnifiedVbrModel& initial,
                                           std::span<const double> target_acf,
                                           const IterativeCalibrationOptions& options,
                                           RandomEngine& rng) {
  SSVBR_REQUIRE(options.acf_max_lag >= 8, "need at least 8 lags to calibrate");
  SSVBR_REQUIRE(target_acf.size() > options.acf_max_lag,
                "target ACF shorter than the calibration lag range");
  SSVBR_REQUIRE(options.path_length > 2 * options.acf_max_lag,
                "path_length too short for the calibration lag range");
  SSVBR_REQUIRE(options.replications >= 1, "need at least one replication");
  SSVBR_REQUIRE(options.damping > 0.0 && options.damping <= 1.0,
                "damping must lie in (0, 1]");

  const auto* composite = dynamic_cast<const fractal::CompositeSrdLrdAutocorrelation*>(
      &initial.background_correlation());
  SSVBR_REQUIRE(composite != nullptr,
                "calibration requires a CompositeSrdLrd background correlation");

  // The loop works in the paper's natural parametrization: the LRD
  // branch (L, beta) plus the knee Kt, with the SRD rate lambda always
  // re-solved from continuity (eq. (14)). The LRD mismatch drives L;
  // the SRD mismatch drives the knee (a later knee lowers lambda and
  // lifts the whole SRD range).
  double lambda = composite->lambda();
  double lrd_scale = composite->lrd_scale();
  const double beta = composite->beta();
  double knee = composite->knee();

  // Anchor windows: the SRD anchor sits inside the initial knee, the
  // LRD anchor deep in the tail.
  const auto srd_lo = static_cast<std::size_t>(std::fmax(2.0, 0.25 * knee));
  const auto srd_hi = static_cast<std::size_t>(
      std::fmin(static_cast<double>(options.acf_max_lag) - 1.0, 0.9 * knee));
  const std::size_t lrd_lo = std::min<std::size_t>(
      options.acf_max_lag - 1, static_cast<std::size_t>(std::fmax(knee * 1.5, knee + 2.0)));
  const std::size_t lrd_hi = options.acf_max_lag;

  CalibrationResult result{initial, {}, 0.0, 0.0};
  double best_error = -1.0;

  UnifiedVbrModel current = initial;
  for (std::size_t it = 0; it < options.iterations; ++it) {
    const std::vector<double> measured = measure_foreground_acf(
        current, options.path_length, options.acf_max_lag, options.replications, rng);
    const double error = acf_mae(measured, target_acf, options.acf_max_lag);
    if (it == 0) result.initial_error = error;
    result.history.push_back({lambda, lrd_scale, error});
    if (best_error < 0.0 || error < best_error) {
      best_error = error;
      result.model = current;
    }

    if (it + 1 == options.iterations) break;

    // Parameter updates from the two anchor mismatches.
    const double srd_gap = srd_hi > srd_lo
                               ? log_ratio(target_acf, measured, srd_lo, srd_hi)
                               : 0.0;
    const double lrd_gap = log_ratio(target_acf, measured, lrd_lo, lrd_hi);
    // Tail too low (gap > 0): raise L. SRD range too low: push the knee
    // out, which lowers the continuity-implied lambda and lifts the
    // whole exponential branch.
    double new_lrd = lrd_scale * std::exp(options.damping * lrd_gap);
    double new_knee = knee * std::exp(2.0 * options.damping * srd_gap);
    new_knee = clamp(new_knee, 4.0, 3000.0);

    // Accept the strongest feasible version of the step: the candidate
    // must be a usable correlation level at the knee and positive
    // definite; halve the step (in log domain) on failure.
    for (int attempt = 0; attempt < 6; ++attempt) {
      // The power branch must be below 1 at the knee; pull the knee out
      // past L^(1/beta) when the raised amplitude demands it.
      const double min_knee = std::pow(new_lrd, 1.0 / beta) * 1.05;
      const double knee_try = std::fmax(new_knee, min_knee);
      const auto candidate = make_continuous_composite(new_lrd, beta, knee_try);
      if (candidate &&
          fractal::is_valid_correlation(*candidate, options.pd_check_horizon)) {
        current = UnifiedVbrModel(
            std::make_shared<fractal::CompositeSrdLrdAutocorrelation>(*candidate),
            current.transform());
        lambda = candidate->lambda();
        lrd_scale = candidate->lrd_scale();
        knee = candidate->knee();
        break;
      }
      new_lrd = std::sqrt(new_lrd * lrd_scale);
      new_knee = std::sqrt(new_knee * knee);
    }
    // If no step was accepted the loop simply re-measures with fresh
    // randomness; the damped anchors will propose a different step.
  }

  result.final_error = best_error;
  return result;
}

}  // namespace ssvbr::core
