#include "core/unified_model.h"

#include <utility>

#include "common/error.h"
#include "core/background_sampler.h"

namespace ssvbr::core {

UnifiedVbrModel::UnifiedVbrModel(fractal::AutocorrelationPtr background_correlation,
                                 MarginalTransform transform)
    : correlation_(std::move(background_correlation)), transform_(std::move(transform)) {
  SSVBR_REQUIRE(correlation_ != nullptr, "background correlation must not be null");
}

std::vector<double> UnifiedVbrModel::generate_background(
    std::size_t n, RandomEngine& rng, BackgroundGenerator generator) const {
  SSVBR_REQUIRE(n >= 1, "cannot generate an empty path");
  // One-shot synthesis goes through the same resolution path as the
  // replication engines: BackgroundPathSampler owns the Davies-Harte
  // embeddability probe and the Hosking table-vs-streaming split, so
  // this function no longer re-derives either.
  const BackgroundPathSampler sampler(correlation_, n, generator);
  std::vector<double> out(n);
  sampler.sample(rng, out);
  return out;
}

std::vector<double> UnifiedVbrModel::generate(std::size_t n, RandomEngine& rng,
                                              BackgroundGenerator generator) const {
  std::vector<double> x = generate_background(n, rng, generator);
  transform_.apply(x, x);
  return x;
}

double UnifiedVbrModel::predicted_foreground_acf(double lag) const {
  if (lag == 0.0) return 1.0;
  return transform_.attenuation() * (*correlation_)(lag);
}

}  // namespace ssvbr::core
