#include "core/unified_model.h"

#include <utility>

#include "common/error.h"
#include "fractal/davies_harte.h"
#include "fractal/hosking.h"

namespace ssvbr::core {

UnifiedVbrModel::UnifiedVbrModel(fractal::AutocorrelationPtr background_correlation,
                                 MarginalTransform transform)
    : correlation_(std::move(background_correlation)), transform_(std::move(transform)) {
  SSVBR_REQUIRE(correlation_ != nullptr, "background correlation must not be null");
}

std::vector<double> UnifiedVbrModel::generate_background(
    std::size_t n, RandomEngine& rng, BackgroundGenerator generator) const {
  SSVBR_REQUIRE(n >= 1, "cannot generate an empty path");
  switch (generator) {
    case BackgroundGenerator::kDaviesHarte:
      try {
        const fractal::DaviesHarteModel dh(*correlation_, n, /*tolerance=*/0.05);
        return dh.sample(rng);
      } catch (const NumericalError&) {
        // Some composite correlations (notably knee-discontinuous ones
        // produced by iterative calibration steps) are positive definite
        // but not circulant-embeddable within tolerance; Hosking's
        // method applies to any valid correlation.
        return fractal::hosking_sample_streaming(*correlation_, n, rng);
      }
    case BackgroundGenerator::kHosking:
      return fractal::hosking_sample_streaming(*correlation_, n, rng);
  }
  throw InternalError("unknown background generator");
}

std::vector<double> UnifiedVbrModel::generate(std::size_t n, RandomEngine& rng,
                                              BackgroundGenerator generator) const {
  std::vector<double> x = generate_background(n, rng, generator);
  transform_.apply(x, x);
  return x;
}

double UnifiedVbrModel::predicted_foreground_acf(double lag) const {
  if (lag == 0.0) return 1.0;
  return transform_.attenuation() * (*correlation_)(lag);
}

}  // namespace ssvbr::core
