// ssvbr/core/activity_model.h
//
// Busy/idle activity modulation for conferencing-style VBR sources
// (SNIPPETS.md snippet 3 territory): a video-conference source emits
// frames only while its participant is active, alternating busy periods
// (frames synthesized by the unified model) with idle periods (silence,
// or a low constant fill rate).
//
// Construction: a two-state busy/idle Markov chain S_t with geometric
// sojourns (per-frame exit probabilities 1/busy_mean and 1/idle_mean),
// independent of the unified model's foreground Y_t = h(X_t):
//
//     Z_t = S_t Y_t + (1 - S_t) idle_rate.
//
// Everything about Z has a closed form in terms of the chain and the
// inner model: with p = busy / (busy + idle) the stationary busy
// fraction and rho_s = 1 - 1/busy_mean - 1/idle_mean the chain's
// second eigenvalue,
//
//     E[S_t S_{t+k}] = p^2 + p (1 - p) rho_s^k,
//
// which the activity_marginal_acf conformance check exploits: for a
// Gaussian inner marginal the predicted mean, variance, zero fraction,
// busy-slot marginal, and lag-k ACF are all exact (the attenuation of a
// linear transform is 1), so the generator is gated against formulas,
// not against itself.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/unified_model.h"
#include "dist/random.h"

namespace ssvbr::core {

/// Two-state busy/idle chain parameters, in frame intervals.
struct ActivityConfig {
  /// Mean busy-period length in frames (>= 1).
  double busy_mean_frames = 1.0;
  /// Mean idle-period length in frames (>= 1).
  double idle_mean_frames = 1.0;
  /// Constant emission during idle frames (>= 0; 0 = silent).
  double idle_rate = 0.0;
};

/// A unified VBR model gated by an independent busy/idle chain.
class ActivityModulatedModel {
 public:
  ActivityModulatedModel(std::shared_ptr<const UnifiedVbrModel> inner,
                         ActivityConfig config);

  const UnifiedVbrModel& inner() const noexcept { return *inner_; }
  std::shared_ptr<const UnifiedVbrModel> inner_ptr() const noexcept {
    return inner_;
  }
  const ActivityConfig& config() const noexcept { return config_; }

  /// Stationary busy fraction p = busy / (busy + idle).
  double busy_fraction() const noexcept { return busy_fraction_; }
  /// Second eigenvalue of the chain, rho_s = 1 - 1/busy - 1/idle.
  double gate_correlation() const noexcept { return gate_rho_; }

  /// Long-run mean idle_rate + p (m - idle_rate). Exact.
  double mean() const;
  /// Long-run variance p Var(Y) + p (1 - p) (m - idle_rate)^2. Exact.
  double variance() const;

  /// Predicted lag-k autocorrelation of Z (k >= 1):
  ///   cov(k) = (p^2 + p(1-p) rho_s^k)(Var(Y) r_Y(k) + d^2) - p^2 d^2,
  /// with d = m - idle_rate and r_Y the inner model's predicted
  /// foreground ACF. Exact for a Gaussian inner marginal; attenuation-
  /// approximate otherwise (Appendix A).
  double predicted_autocorrelation(double lag) const;

  /// Apply the gate to an already-transformed foreground path in place,
  /// consuming exactly path.size() uniforms (one per frame: the first
  /// draws the stationary initial state, the rest the transitions).
  /// Allocation-free.
  void modulate_in_place(std::span<double> path, RandomEngine& rng) const;

  /// Convenience: synthesize a modulated foreground path of length n
  /// (inner generate, then the gate; same draw order as the net layer).
  std::vector<double> generate(std::size_t n, RandomEngine& rng,
                               BackgroundGenerator generator =
                                   BackgroundGenerator::kDaviesHarte) const;

 private:
  std::shared_ptr<const UnifiedVbrModel> inner_;
  ActivityConfig config_;
  double busy_fraction_;
  double gate_rho_;
  double exit_busy_;  // per-frame P(busy -> idle) = 1 / busy_mean
  double exit_idle_;  // per-frame P(idle -> busy) = 1 / idle_mean
};

}  // namespace ssvbr::core
