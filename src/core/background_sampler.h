// ssvbr/core/background_sampler.h
//
// Replication-ready background path generation, built once per
// (correlation, horizon) pair and reused across replications — and,
// since PR 9, the ONE place that resolves a BackgroundGenerator choice
// into a concrete backend. UnifiedVbrModel::generate_background,
// GopVbrModel, ModelArrivalProcess, PopulationSampler and
// ScenarioKernel all construct a sampler and draw through it; the
// Davies-Harte embeddability check and its Hosking fallback live only
// here.
//
// Backends (all seeded-deterministic; draws depend only on engine
// state, never on blocking):
//   * kDaviesHarte — exact. Eigenvalue table + FFT plan built once;
//     falls back to Hosking when the correlation is not
//     circulant-embeddable within tolerance. O(horizon) memory.
//   * kHosking — exact. The Durbin-Levinson coefficient table is
//     precomputed when it fits in kMaxHoskingTableBytes (table-driven
//     dot products per replication); beyond that, the O(n) memory /
//     O(n^2) time streaming recursion. O(horizon) memory either way
//     (the conditional law needs the full history).
//   * kPaxson — approximate spectral synthesis in fixed windows
//     (fractal/paxson.h). The only backend whose peak memory is
//     bounded by the synthesis window rather than the horizon, which
//     is what makes >= 10^7-frame streamed paths affordable.
//
// The streaming API: begin_stream(rng, ws) returns a Stream session
// that yields the path in caller-sized blocks via next_block. The
// concatenation of blocks is bit-identical for ANY blocking of the
// same horizon (block sizes 1, 64, 4096, or one full-horizon block)
// because synthesis granularity is fixed per backend — whole-path for
// the exact backends, whole-window for Paxson — and the engine is
// consumed at synthesis time only. One-shot sample() is a thin wrapper
// over begin_stream + one full-horizon block.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/unified_model.h"
#include "dist/random.h"
#include "fractal/davies_harte.h"
#include "fractal/paxson.h"

namespace ssvbr::fractal {
class HoskingModel;
}  // namespace ssvbr::fractal

namespace ssvbr::core {

/// Caller-owned scratch for BackgroundPathSampler sampling and
/// streaming. Long-lived consumers (one arrival process per engine
/// worker, one per streamed source class) own one apiece, so the
/// replication steady state touches no thread_local lookup and no
/// state shared between workers (DESIGN.md §7f). A workspace may be
/// lent to at most one active Stream at a time.
struct BackgroundWorkspace {
  fractal::DaviesHarteModel::Workspace davies_harte;
  fractal::PaxsonModel::Workspace paxson;
  /// Staged synthesis output a Stream hands out block by block: the
  /// whole path for the exact backends, one window for kPaxson.
  std::vector<double> stage;
};

/// Background generator with all per-horizon setup precomputed.
/// Immutable after construction; safe to share across threads (each
/// thread brings its own RandomEngine + BackgroundWorkspace).
class BackgroundPathSampler {
 public:
  /// Largest Hosking coefficient table the sampler will precompute
  /// (~4 * horizon^2 bytes; 32 MB covers horizons up to ~2800). Beyond
  /// this the kHosking path falls back to streaming generation.
  static constexpr std::size_t kMaxHoskingTableBytes = 32u << 20;

  /// One in-progress background path, delivered in blocks. Borrows the
  /// sampler, the engine and the workspace passed to begin_stream —
  /// all three must outlive the stream, and the (rng, ws) pair must
  /// not be shared with another live stream. No heap state of its own.
  class Stream {
   public:
    /// Samples not yet delivered.
    std::size_t remaining() const noexcept {
      return sampler_->horizon() - produced_;
    }
    /// Samples delivered so far.
    std::size_t produced() const noexcept { return produced_; }

    /// Deliver the next min(out.size(), remaining()) samples of the
    /// path into the front of `out`; returns the count written (0 once
    /// the horizon is exhausted). The concatenation across calls is
    /// independent of the block sizes chosen. Steady-state
    /// allocation-free once the workspace is warm (kPaxson), or after
    /// the one staged-path synthesis (exact backends).
    std::size_t next_block(std::span<double> out);

   private:
    friend class BackgroundPathSampler;
    Stream(const BackgroundPathSampler& sampler, RandomEngine& rng,
           BackgroundWorkspace& ws)
        : sampler_(&sampler), rng_(&rng), ws_(&ws) {}

    void refill();

    const BackgroundPathSampler* sampler_;
    RandomEngine* rng_;
    BackgroundWorkspace* ws_;
    std::size_t produced_ = 0;   // samples delivered to the caller
    std::size_t staged_ = 0;     // valid samples in ws_->stage
    std::size_t stage_pos_ = 0;  // consumed prefix of the stage
  };

  /// Resolve `generator` for `correlation` over `horizon`. This is the
  /// single validated resolution path: Davies-Harte embeddability and
  /// the Hosking table-vs-streaming split are decided here and nowhere
  /// else.
  BackgroundPathSampler(fractal::AutocorrelationPtr correlation,
                        std::size_t horizon,
                        BackgroundGenerator generator =
                            BackgroundGenerator::kDaviesHarte);

  /// Convenience: sample the background process of a unified model.
  BackgroundPathSampler(const UnifiedVbrModel& model, std::size_t horizon,
                        BackgroundGenerator generator =
                            BackgroundGenerator::kDaviesHarte);

  std::size_t horizon() const noexcept { return horizon_; }
  /// The generator that was requested (the Davies-Harte fallback does
  /// not change it; see hosking_fallback()).
  BackgroundGenerator generator() const noexcept { return generator_; }
  /// True when kDaviesHarte was requested but the correlation is not
  /// circulant-embeddable, so Hosking generates instead.
  bool hosking_fallback() const noexcept {
    return generator_ == BackgroundGenerator::kDaviesHarte && !davies_harte_;
  }
  /// True when peak sampling memory is bounded by the synthesis window
  /// rather than the horizon (the kPaxson backend).
  bool window_bounded_memory() const noexcept { return paxson_ != nullptr; }
  /// Synthesis window of the kPaxson backend; 0 for exact backends.
  std::size_t window() const noexcept {
    return paxson_ ? paxson_->window() : 0;
  }

  /// Open a block-streaming session: the returned Stream yields one
  /// horizon()-length path through next_block. Consumes `rng` only as
  /// blocks are produced; the total consumption per completed stream
  /// is a fixed function of (correlation, horizon, generator).
  Stream begin_stream(RandomEngine& rng, BackgroundWorkspace& ws) const {
    return Stream(*this, rng, ws);
  }

  /// Draw one background path x_0..x_{horizon-1} into `out`
  /// (out.size() >= horizon() required; extra entries untouched): a
  /// thin wrapper over begin_stream + one full-horizon block. Uses a
  /// per-thread workspace cache; bit-identical to the
  /// explicit-workspace overload.
  void sample(RandomEngine& rng, std::span<double> out) const;

  /// Same draw with caller-owned scratch (resized as needed) — the
  /// form the parallel engine's per-worker arrival processes use.
  void sample(RandomEngine& rng, std::span<double> out,
              BackgroundWorkspace& ws) const;

 private:
  /// One whole-horizon draw straight into `out` (out.size() ==
  /// horizon()): the Stream's full-block fast path. Engine consumption
  /// is identical to any blocked delivery of the same horizon.
  void synthesize_full(RandomEngine& rng, std::span<double> out,
                       BackgroundWorkspace& ws) const;

  std::size_t horizon_;
  BackgroundGenerator generator_;
  fractal::AutocorrelationPtr correlation_;
  std::shared_ptr<const fractal::DaviesHarteModel> davies_harte_;
  std::shared_ptr<const fractal::HoskingModel> hosking_;
  std::shared_ptr<const fractal::PaxsonModel> paxson_;
};

}  // namespace ssvbr::core
