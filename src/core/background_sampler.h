// ssvbr/core/background_sampler.h
//
// Replication-ready background path generator, built once per
// (model, horizon) pair and reused across replications.
//
// UnifiedVbrModel::generate_background resolves the generator choice —
// including the Davies-Harte embeddability check and its Hosking
// fallback — on every call, and the Hosking path rebuilds the
// Durbin-Levinson recursion from scratch each time. That is the right
// trade-off for one-shot synthesis but wrong for a replication study,
// where thousands of paths share one (correlation, horizon): the setup
// cost and the per-call allocations dominate.
//
// BackgroundPathSampler hoists all of that to construction time:
//   * Davies-Harte: eigenvalue table + FFT plan built once; sampling
//     reuses the model's per-thread workspace (allocation-free).
//   * Hosking: the Durbin-Levinson coefficient table is built once when
//     it fits in kMaxHoskingTableBytes, turning each replication from
//     O(n^2) recursion + allocation into table-driven dot products; the
//     streaming one-shot path remains as the large-horizon fallback.
// Draw sequences are identical to generate_background for the same
// engine state, so swapping one for the other never changes results.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "core/unified_model.h"
#include "dist/random.h"
#include "fractal/davies_harte.h"

namespace ssvbr::fractal {
class HoskingModel;
}  // namespace ssvbr::fractal

namespace ssvbr::core {

/// Caller-owned scratch for BackgroundPathSampler::sample. Long-lived
/// consumers (one arrival process per engine worker) own one apiece, so
/// the replication steady state touches no thread_local lookup and no
/// state shared between workers — each worker's buffers stay hot in its
/// own cache lines (DESIGN.md §7f).
struct BackgroundWorkspace {
  fractal::DaviesHarteModel::Workspace davies_harte;
};

/// Background generator with all per-horizon setup precomputed.
/// Immutable after construction; safe to share across threads.
class BackgroundPathSampler {
 public:
  /// Largest Hosking coefficient table the sampler will precompute
  /// (~4 * horizon^2 bytes; 32 MB covers horizons up to ~2800). Beyond
  /// this the kHosking path falls back to streaming generation.
  static constexpr std::size_t kMaxHoskingTableBytes = 32u << 20;

  BackgroundPathSampler(const UnifiedVbrModel& model, std::size_t horizon,
                        BackgroundGenerator generator =
                            BackgroundGenerator::kDaviesHarte);

  std::size_t horizon() const noexcept { return horizon_; }

  /// Draw one background path x_0..x_{horizon-1} into `out`
  /// (out.size() >= horizon() required; extra entries untouched).
  /// Steady-state allocation-free except in the streaming fallback.
  /// Uses the per-thread workspace cache; bit-identical to the
  /// explicit-workspace overload.
  void sample(RandomEngine& rng, std::span<double> out) const;

  /// Same draw with caller-owned scratch (resized as needed) — the
  /// form the parallel engine's per-worker arrival processes use.
  void sample(RandomEngine& rng, std::span<double> out,
              BackgroundWorkspace& ws) const;

 private:
  std::size_t horizon_;
  fractal::AutocorrelationPtr correlation_;
  std::shared_ptr<const fractal::DaviesHarteModel> davies_harte_;
  std::shared_ptr<const fractal::HoskingModel> hosking_;
};

}  // namespace ssvbr::core
