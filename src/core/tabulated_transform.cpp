#include "core/tabulated_transform.h"

#include <cmath>
#include <string>

#include "common/error.h"

namespace ssvbr::core {

TabulatedTransform::TabulatedTransform(const MarginalTransform& exact,
                                       std::size_t intervals, double max_rel_error) {
  SSVBR_REQUIRE(intervals >= 8, "tabulated transform needs at least 8 intervals");
  SSVBR_REQUIRE(max_rel_error > 0.0, "error bound must be positive");
  target_ = exact.target_ptr();
  const std::size_t n = intervals;
  step_ = (kHi - kLo) / static_cast<double>(n);
  inv_step_ = 1.0 / step_;
  y_.resize(n + 1);
  d_.resize(n + 1);
  double y_scale = 0.0;
  for (std::size_t i = 0; i <= n; ++i) {
    y_[i] = exact.exact_value(kLo + step_ * static_cast<double>(i));
    const double a = std::fabs(y_[i]);
    if (a > y_scale) y_scale = a;
  }

  // Fritsch-Carlson limited slopes: start from the secant averages, then
  // cap (alpha, beta) inside the circle of radius 3 so each cell's cubic
  // is monotone wherever the data are. h is nondecreasing, so all
  // secants are >= 0 and the result is a nondecreasing interpolant.
  std::vector<double> secant(n);
  for (std::size_t i = 0; i < n; ++i) secant[i] = (y_[i + 1] - y_[i]) * inv_step_;
  d_[0] = secant[0];
  d_[n] = secant[n - 1];
  for (std::size_t i = 1; i < n; ++i) d_[i] = 0.5 * (secant[i - 1] + secant[i]);
  for (std::size_t i = 0; i < n; ++i) {
    if (secant[i] == 0.0) {
      d_[i] = 0.0;
      d_[i + 1] = 0.0;
      continue;
    }
    const double alpha = d_[i] / secant[i];
    const double beta = d_[i + 1] / secant[i];
    const double r2 = alpha * alpha + beta * beta;
    if (r2 > 9.0) {
      const double tau = 3.0 / std::sqrt(r2);
      d_[i] = tau * alpha * secant[i];
      d_[i + 1] = tau * beta * secant[i];
    }
  }

  // Enforce the error bound at every cell midpoint (where the cubic's
  // interpolation error peaks). The relative-error floor keeps a
  // sign-crossing target (e.g. a normal marginal, where h passes
  // through zero) from demanding infinite relative precision at the
  // crossing; there the comparison degrades to an absolute bound of
  // max_rel_error * max|h|.
  const double abs_floor = max_rel_error * y_scale;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = kLo + step_ * (static_cast<double>(i) + 0.5);
    const double truth = exact.exact_value(x);
    // The exact path evaluates the quantile at the double nearest to
    // Phi(x); near +8 that probability has only a few ulps of headroom
    // below 1, so the reference is a staircase. Discount the quantile
    // movement caused by one ulp of p at the midpoint plus one more for
    // the bracketing nodes' own quantization — the interpolant cannot
    // (and need not) resolve below the reference's granularity.
    const double p = clamped_normal_cdf(x);
    const double p_up = std::fmin(std::nextafter(p, 1.0), 1.0 - 1e-16);
    const double p_dn = std::fmax(std::nextafter(p, 0.0), 1e-16);
    const double noise = std::fmax(std::fabs(target_->quantile(p_up) - truth),
                                   std::fabs(target_->quantile(p_dn) - truth));
    const double err = std::fabs(interpolate(x) - truth);
    const double excess = err > 2.0 * noise ? err - 2.0 * noise : 0.0;
    const double rel = excess / std::fmax(std::fabs(truth), abs_floor);
    if (rel > observed_error_) observed_error_ = rel;
  }
  if (observed_error_ > max_rel_error) {
    throw NumericalError("tabulated transform of '" + target_->describe() +
                         "' has relative error " + std::to_string(observed_error_) +
                         " beyond the " + std::to_string(max_rel_error) + " bound at " +
                         std::to_string(n) + " intervals");
  }
}

simd::HermiteTable TabulatedTransform::table_view() const noexcept {
  return simd::HermiteTable{y_.data(), d_.data(), y_.size() - 2,
                            kLo,       kHi,       step_,
                            inv_step_};
}

double TabulatedTransform::interpolate(double x) const {
  // One shared Hermite evaluation (common/simd.h) keeps the scalar
  // operator() and the vectorised apply() from ever drifting apart.
  return simd::hermite_eval(table_view(), x);
}

double TabulatedTransform::operator()(double x) const {
  if (x < kLo || x > kHi) {
    // Saturated region: identical to the exact transform's clamping.
    return target_->quantile(clamped_normal_cdf(x));
  }
  return interpolate(x);
}

namespace {

// Exact-tail callback for the grid-exterior lanes of the SIMD apply:
// identical to operator()'s saturated branch.
double exact_tail(const void* ctx, double x) {
  const auto* target = static_cast<const Distribution*>(ctx);
  return target->quantile(clamped_normal_cdf(x));
}

}  // namespace

void TabulatedTransform::apply(std::span<const double> xs, std::span<double> out) const {
  SSVBR_REQUIRE(out.size() >= xs.size(), "output span too short");
  simd::hermite_apply(table_view(), xs.data(), xs.size(), out.data(),
                      &exact_tail, target_.get());
}

}  // namespace ssvbr::core
