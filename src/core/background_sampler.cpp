#include "core/background_sampler.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "fractal/davies_harte.h"
#include "fractal/hosking.h"

namespace ssvbr::core {

BackgroundPathSampler::BackgroundPathSampler(const UnifiedVbrModel& model,
                                             std::size_t horizon,
                                             BackgroundGenerator generator)
    : horizon_(horizon), correlation_(model.background_correlation_ptr()) {
  SSVBR_REQUIRE(horizon >= 1, "sampler horizon must be positive");
  if (generator == BackgroundGenerator::kDaviesHarte) {
    try {
      davies_harte_ = std::make_shared<const fractal::DaviesHarteModel>(
          *correlation_, horizon, /*tolerance=*/0.05);
      return;
    } catch (const NumericalError&) {
      // Not circulant-embeddable within tolerance; same fallback as
      // UnifiedVbrModel::generate_background.
    }
  }
  // Hosking: precompute the coefficient table when it fits; the packed
  // triangular phi rows dominate at horizon^2 / 2 doubles.
  const std::size_t table_bytes = horizon * (horizon - 1) / 2 * sizeof(double);
  if (table_bytes <= kMaxHoskingTableBytes) {
    hosking_ = std::make_shared<const fractal::HoskingModel>(*correlation_, horizon);
  }
}

void BackgroundPathSampler::sample(RandomEngine& rng, std::span<double> out) const {
  SSVBR_REQUIRE(out.size() >= horizon_, "output span shorter than the horizon");
  if (davies_harte_) {
    davies_harte_->sample_path(rng, out);
    return;
  }
  if (hosking_) {
    hosking_->sample_path(rng, out.first(horizon_));
    return;
  }
  // Streaming fallback for horizons whose coefficient table would not
  // fit: identical draw sequence, O(n) memory.
  const std::vector<double> x =
      fractal::hosking_sample_streaming(*correlation_, horizon_, rng);
  std::copy(x.begin(), x.end(), out.begin());
}

void BackgroundPathSampler::sample(RandomEngine& rng, std::span<double> out,
                                   BackgroundWorkspace& ws) const {
  SSVBR_REQUIRE(out.size() >= horizon_, "output span shorter than the horizon");
  if (davies_harte_) {
    davies_harte_->sample_path(rng, out, ws.davies_harte);
    return;
  }
  // Hosking and the streaming fallback write straight into `out`; no
  // scratch needed, so the overloads coincide (and stay bit-identical).
  if (hosking_) {
    hosking_->sample_path(rng, out.first(horizon_));
    return;
  }
  const std::vector<double> x =
      fractal::hosking_sample_streaming(*correlation_, horizon_, rng);
  std::copy(x.begin(), x.end(), out.begin());
}

}  // namespace ssvbr::core
