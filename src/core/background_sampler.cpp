#include "core/background_sampler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/math_util.h"
#include "fractal/davies_harte.h"
#include "fractal/hosking.h"

namespace ssvbr::core {

BackgroundPathSampler::BackgroundPathSampler(
    fractal::AutocorrelationPtr correlation, std::size_t horizon,
    BackgroundGenerator generator)
    : horizon_(horizon),
      generator_(generator),
      correlation_(std::move(correlation)) {
  SSVBR_REQUIRE(correlation_ != nullptr, "sampler needs a correlation model");
  SSVBR_REQUIRE(horizon >= 1, "sampler horizon must be positive");
  switch (generator) {
    case BackgroundGenerator::kDaviesHarte:
      try {
        davies_harte_ = std::make_shared<const fractal::DaviesHarteModel>(
            *correlation_, horizon, /*tolerance=*/0.05);
        return;
      } catch (const NumericalError&) {
        // Not circulant-embeddable within tolerance (notably the
        // knee-discontinuous composites produced by iterative
        // calibration steps); Hosking applies to any valid correlation.
        break;
      }
    case BackgroundGenerator::kHosking:
      break;
    case BackgroundGenerator::kPaxson: {
      // Single classic Paxson window when the horizon fits in one;
      // otherwise the default window streams the horizon in
      // fixed-size chunks with horizon-independent memory.
      const std::size_t window =
          std::max<std::size_t>(2, std::min(next_power_of_two(horizon),
                                            fractal::PaxsonModel::kDefaultWindow));
      paxson_ =
          std::make_shared<const fractal::PaxsonModel>(*correlation_, window);
      return;
    }
  }
  // Hosking resolution: precompute the coefficient table when it fits
  // (the packed triangular phi rows dominate at horizon^2 / 2 doubles);
  // otherwise the streaming recursion generates on demand.
  const std::size_t table_bytes = horizon * (horizon - 1) / 2 * sizeof(double);
  if (table_bytes <= kMaxHoskingTableBytes) {
    hosking_ =
        std::make_shared<const fractal::HoskingModel>(*correlation_, horizon);
  }
}

BackgroundPathSampler::BackgroundPathSampler(const UnifiedVbrModel& model,
                                             std::size_t horizon,
                                             BackgroundGenerator generator)
    : BackgroundPathSampler(model.background_correlation_ptr(), horizon,
                            generator) {}

void BackgroundPathSampler::synthesize_full(RandomEngine& rng,
                                            std::span<double> out,
                                            BackgroundWorkspace& ws) const {
  if (davies_harte_) {
    davies_harte_->sample_path(rng, out, ws.davies_harte);
    return;
  }
  if (paxson_) {
    // Window-granular synthesis even for a whole-horizon request, so
    // the engine consumption (ceil(horizon / window) windows) — and
    // hence the produced path — is identical to any blocked delivery.
    const std::size_t m = paxson_->window();
    std::size_t t = 0;
    while (out.size() - t >= m) {
      paxson_->synthesize_window(rng, out.subspan(t), ws.paxson);
      t += m;
    }
    if (t < out.size()) {
      ws.stage.resize(m);
      paxson_->synthesize_window(rng, ws.stage, ws.paxson);
      std::copy(ws.stage.begin(),
                ws.stage.begin() + static_cast<std::ptrdiff_t>(out.size() - t),
                out.begin() + static_cast<std::ptrdiff_t>(t));
    }
    return;
  }
  if (hosking_) {
    hosking_->sample_path(rng, out);
    return;
  }
  // Streaming fallback for horizons whose coefficient table would not
  // fit: identical draw sequence, O(n) memory.
  const std::vector<double> x =
      fractal::hosking_sample_streaming(*correlation_, horizon_, rng);
  std::copy(x.begin(), x.end(), out.begin());
}

void BackgroundPathSampler::Stream::refill() {
  const BackgroundPathSampler& s = *sampler_;
  BackgroundWorkspace& ws = *ws_;
  stage_pos_ = 0;
  if (s.paxson_) {
    // One fixed window per refill, independent of the caller's block
    // sizes — the source of block-size bit-invariance and of the
    // horizon-independent memory bound.
    const std::size_t m = s.paxson_->window();
    ws.stage.resize(m);
    s.paxson_->synthesize_window(*rng_, ws.stage, ws.paxson);
    staged_ = m;
    return;
  }
  // Exact backends synthesize the whole path once and hand it out in
  // blocks (their memory is horizon-bound regardless; see the header).
  SSVBR_ENSURE(produced_ == 0, "exact-backend stage exhausted early");
  ws.stage.resize(s.horizon_);
  s.synthesize_full(*rng_, ws.stage, ws);
  staged_ = s.horizon_;
}

std::size_t BackgroundPathSampler::Stream::next_block(std::span<double> out) {
  const std::size_t want = std::min(out.size(), remaining());
  if (want == 0) return 0;
  // Full-horizon fast path (the one-shot sample() shape): dispatch
  // straight into the caller's span, skipping the stage copy.
  if (produced_ == 0 && staged_ == 0 && want == sampler_->horizon_) {
    sampler_->synthesize_full(*rng_, out.first(want), *ws_);
    produced_ = want;
    return want;
  }
  std::size_t written = 0;
  while (written < want) {
    if (stage_pos_ == staged_) refill();
    const std::size_t n = std::min(want - written, staged_ - stage_pos_);
    const double* src = ws_->stage.data() + stage_pos_;
    std::copy(src, src + n, out.data() + written);
    stage_pos_ += n;
    written += n;
    produced_ += n;
  }
  return want;
}

namespace {

// Per-thread workspace cache for the convenience (no-workspace) sample
// overload, keyed by horizon — mirrors the Davies-Harte per-size cache
// so a thread alternating between samplers of different horizons stays
// allocation-free in steady state.
BackgroundWorkspace& thread_workspace(std::size_t horizon) {
  static thread_local std::vector<
      std::pair<std::size_t, std::unique_ptr<BackgroundWorkspace>>>
      cache;
  for (auto& [size, ws] : cache) {
    if (size == horizon) return *ws;
  }
  cache.emplace_back(horizon, std::make_unique<BackgroundWorkspace>());
  return *cache.back().second;
}

}  // namespace

void BackgroundPathSampler::sample(RandomEngine& rng, std::span<double> out) const {
  sample(rng, out, thread_workspace(horizon_));
}

void BackgroundPathSampler::sample(RandomEngine& rng, std::span<double> out,
                                   BackgroundWorkspace& ws) const {
  SSVBR_REQUIRE(out.size() >= horizon_, "output span shorter than the horizon");
  Stream stream = begin_stream(rng, ws);
  stream.next_block(out.first(horizon_));
}

}  // namespace ssvbr::core
