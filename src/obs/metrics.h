// ssvbr/obs/metrics.h
//
// Thread-sharded metrics registry: counters, gauges, and log-bucketed
// histograms for runtime diagnostics of the simulation pipeline.
//
// Design. Every recording thread owns a private shard (a fixed-size
// block of relaxed atomics, created lazily on first record and cached
// through a thread-local pointer), so the hot path — Counter::add,
// Histogram::record — is one TLS read plus one or two relaxed atomic
// read-modify-writes on cache lines no other thread writes: a few
// nanoseconds, and race-free under TSan because snapshot() only ever
// *loads* those atomics while structural changes (shard creation,
// metric registration) are serialized by the registry mutex.
// snapshot() merges all shards into plain value types that can be
// rendered as JSON (SSVBR_METRICS_JSON) or a plain-text summary.
//
// Compile-time gating. When the library is configured without
// -DSSVBR_OBS=ON the macro SSVBR_OBS_ENABLED is 0 and this header
// provides empty mirror classes whose methods are constexpr no-ops:
// instrumented code compiles unchanged and the recording calls vanish
// entirely, so default builds pay nothing and produce bit-identical
// simulation output.
//
// Histogram policy (log-bucketed, one bucket per power of two over
// [2^kHistMinExp, 2^kHistMaxExp)):
//   - NaN: counted in nan_count only; never touches count/sum/min/max.
//   - v <= 0 (including -0 and -inf): counted in count and zero_count;
//     updates min/max; added to sum only if finite.
//   - +inf: counted in count and overflow; sets max; excluded from sum.
//   - positive finite v: bucket floor(log2 v) clamped into underflow /
//     overflow counts at the range ends (denormals land in underflow).
// Invariant: count == zero_count + underflow + overflow + sum(buckets).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if !defined(SSVBR_OBS_ENABLED)
#define SSVBR_OBS_ENABLED 0
#endif

namespace ssvbr::obs {

/// Log-bucket exponent range: bucket b covers [2^(kHistMinExp + b),
/// 2^(kHistMinExp + b + 1)).
inline constexpr int kHistMinExp = -64;
inline constexpr int kHistMaxExp = 64;
inline constexpr std::size_t kHistBuckets =
    static_cast<std::size_t>(kHistMaxExp - kHistMinExp);

/// Capacity limits of one registry (fixed so shard storage never
/// reallocates while other threads read it).
inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 64;

/// Merged view of one histogram, as produced by snapshot().
struct SnapshotHistogram {
  struct Bucket {
    double lo = 0.0;   ///< inclusive lower edge, 2^e
    double hi = 0.0;   ///< exclusive upper edge, 2^(e+1)
    std::uint64_t count = 0;
  };

  std::string name;
  std::uint64_t count = 0;      ///< all non-NaN records
  double sum = 0.0;             ///< sum of finite records
  double min = 0.0;             ///< 0 when count == 0
  double max = 0.0;             ///< 0 when count == 0
  std::uint64_t zero_count = 0; ///< records <= 0
  std::uint64_t underflow = 0;  ///< positive records below 2^kHistMinExp
  std::uint64_t overflow = 0;   ///< records >= 2^kHistMaxExp (incl. +inf)
  std::uint64_t nan_count = 0;  ///< NaN records (excluded from count)
  std::vector<Bucket> buckets;  ///< non-empty buckets, ascending

  /// Mean of the finite records; 0 when empty.
  double mean() const noexcept;
  /// Approximate quantile (q in [0, 1]) read off the bucket boundaries
  /// (geometric bucket midpoint); exact only up to bucket resolution.
  double quantile(double q) const noexcept;
};

/// Merged view of an entire registry at one instant.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< sorted by name
  std::vector<std::pair<std::string, double>> gauges;           ///< sorted by name
  std::vector<SnapshotHistogram> histograms;                    ///< sorted by name

  /// Lookup helpers; nullptr when the metric does not exist.
  const std::uint64_t* counter(std::string_view name) const noexcept;
  const double* gauge(std::string_view name) const noexcept;
  const SnapshotHistogram* histogram(std::string_view name) const noexcept;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Render a snapshot as a JSON document (schema checked by
/// scripts/check_metrics_schema.py); includes ssvbr::build_info().
std::string to_json(const MetricsSnapshot& snap);

/// Render a snapshot as a human-readable table (counters, gauges, and
/// per-histogram count/total/mean/p50/p99).
std::string to_text(const MetricsSnapshot& snap);

#if SSVBR_OBS_ENABLED

class MetricsRegistry;

/// Cheap copyable handle to a registered counter. Valid while its
/// registry is alive; safe to share across threads.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const noexcept;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Cheap copyable handle to a registered gauge (last write wins).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const noexcept;
  void add(double delta) const noexcept;  ///< not atomic across threads

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Cheap copyable handle to a registered log-bucketed histogram.
class Histogram {
 public:
  Histogram() = default;
  void record(double v) const noexcept;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::uint32_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::uint32_t id_ = 0;
};

/// The registry. Usable as independent instances (tests) or through the
/// process-wide instance() that the SSVBR_* instrumentation macros use.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry (never destroyed, so exit-time dumps and
  /// worker threads can never observe a dead registry).
  static MetricsRegistry& instance();

  /// Register-or-look-up by name. Throws InvalidArgument when the
  /// per-kind capacity (kMaxCounters/kMaxGauges/kMaxHistograms) is
  /// exhausted. Idempotent: the same name always yields the same handle.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// Merge every thread's shard into one consistent-enough view (values
  /// recorded concurrently with the snapshot may or may not be
  /// included; all loads are race-free).
  MetricsSnapshot snapshot() const;

  /// Zero all recorded values, keeping registrations and shards.
  void reset() noexcept;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  struct Shard;
  struct Impl;

  Shard& local_shard() const;

  Impl* impl_;
};

/// Install (once) a std::atexit hook that honours the environment:
///   SSVBR_METRICS_JSON=<path>  write to_json(instance().snapshot())
///   SSVBR_TRACE_JSON=<path>    write the Chrome trace-event export
///   SSVBR_OBS_SUMMARY=1        print to_text(...) to stderr
/// No-op (and cheap) when none of the variables is set.
void install_env_exit_dump();

#else  // !SSVBR_OBS_ENABLED — constexpr no-op mirrors.

class MetricsRegistry;

class Counter {
 public:
  constexpr Counter() = default;
  constexpr void add(std::uint64_t = 1) const noexcept {}
};

class Gauge {
 public:
  constexpr Gauge() = default;
  constexpr void set(double) const noexcept {}
  constexpr void add(double) const noexcept {}
};

class Histogram {
 public:
  constexpr Histogram() = default;
  constexpr void record(double) const noexcept {}
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  static MetricsRegistry& instance() {
    static MetricsRegistry reg;
    return reg;
  }
  Counter counter(std::string_view) { return {}; }
  Gauge gauge(std::string_view) { return {}; }
  Histogram histogram(std::string_view) { return {}; }
  MetricsSnapshot snapshot() const { return {}; }
  void reset() noexcept {}
};

inline void install_env_exit_dump() {}

#endif  // SSVBR_OBS_ENABLED

}  // namespace ssvbr::obs
