// ssvbr/obs/telemetry.h
//
// Shard-level run telemetry for the replication engine, and the scaling
// analysis built on top of it.
//
// The metrics registry (obs/metrics.h) answers "how much, in total":
// counters and histograms merged across threads. This layer answers the
// question the flat thread-scaling numbers posed — *where did the
// thread-seconds go* — by recording one structured event per executed
// shard (claiming thread, queue wait since that worker's previous
// shard, the stream-repositioning setup vs replication-loop split) plus
// per-worker sampler-construction time and the run-level merge and
// checkpoint-I/O costs. The aggregate is a plain RunTelemetry value
// attached to RunResult / TopologyRunResult, and optionally emitted as
// a JSONL event log:
//
//   SSVBR_TELEMETRY_JSONL=<path>   append one "run" line, one "worker"
//                                  line per pool worker, and one
//                                  "shard" line per executed shard,
//                                  after every engine run
//
// Shard events carry a claim timestamp relative to the run start, so a
// tail of the log is a live per-shard heartbeat — the straggler-
// detection signal the planned distributed tier needs.
//
// ScalingReport turns a thread sweep (one RunTelemetry per thread
// count, same workload) into a decomposition of parallel inefficiency:
// an Amdahl fit for the serial fraction, per-cell load imbalance,
// setup amortization, and pool idle time, with the dominant causes
// named. The report types and the analysis are pure value math and are
// available in every build; scripts/analyze_telemetry.py performs the
// same decomposition offline from a JSONL log.
//
// Build gating matches the rest of src/obs: without -DSSVBR_OBS=ON the
// TelemetryCollector collapses to a constexpr no-op mirror, RunTelemetry
// values stay empty (enabled == false), and recording cannot perturb a
// single simulated bit. With it ON, recording is a handful of
// steady-clock reads per shard on worker-private state — estimates are
// bit-identical either way because telemetry consumes no randomness and
// never touches the accumulation order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ssvbr::obs {

// ---------------------------------------------------------------------------
// Value types (available in both build modes, like MetricsSnapshot).
// ---------------------------------------------------------------------------

/// One executed shard, as seen by the worker that claimed it.
struct ShardTelemetry {
  std::uint64_t shard = 0;  ///< shard index (global index for run_many)
  std::uint64_t task = 0;   ///< run_many task; 0 for single-study runs
  std::uint32_t thread = 0; ///< pool worker id
  std::uint64_t replications = 0;
  std::uint64_t claim_ns = 0;  ///< claim time since run start (heartbeat)
  std::uint64_t wait_ns = 0;   ///< gap since this worker's previous shard
  std::uint64_t setup_ns = 0;  ///< stream repositioning (forward jumps)
  std::uint64_t loop_ns = 0;   ///< the replication loop itself

  std::uint64_t exec_ns() const noexcept { return setup_ns + loop_ns; }
};

/// Per-pool-worker totals for one run.
struct WorkerTelemetry {
  std::uint32_t thread = 0;
  std::uint64_t setup_ns = 0;  ///< make_worker(): sampler/kernel construction
  std::uint64_t busy_ns = 0;   ///< sum of shard exec (setup + loop)
  std::uint64_t shards = 0;
  std::uint64_t replications = 0;
};

/// Everything one engine run recorded. Empty (enabled == false) when
/// the library is built without -DSSVBR_OBS=ON.
struct RunTelemetry {
  bool enabled = false;
  std::string study;          ///< front-door label ("overflow_is", "topology", ...)
  std::uint64_t run_id = 0;   ///< process-wide run sequence number
  std::uint32_t threads = 0;
  std::uint64_t shard_size = 0;
  std::uint64_t shards_total = 0;     ///< the campaign's shard plan
  std::uint64_t shards_executed = 0;  ///< computed this call (restored excluded)
  std::uint64_t replications = 0;     ///< executed this call
  double wall_seconds = 0.0;
  double merge_seconds = 0.0;       ///< in-order shard merge (serial)
  double checkpoint_seconds = 0.0;  ///< snapshot serialization + file I/O
  std::vector<WorkerTelemetry> workers;      ///< one per pool worker
  std::vector<ShardTelemetry> shard_events;  ///< per worker, in claim order

  /// Σ shard exec across workers, seconds.
  double busy_seconds() const noexcept;
  /// Σ make_worker() construction time, seconds.
  double worker_setup_seconds() const noexcept;
  /// Σ per-shard stream-repositioning time, seconds.
  double shard_setup_seconds() const noexcept;
  /// Σ per-shard replication-loop time, seconds.
  double loop_seconds() const noexcept;
  /// Thread-seconds not accounted for by work, setup, merge, or
  /// checkpoint I/O: threads * wall - busy - worker_setup - merge -
  /// checkpoint, clamped at 0 (pool wakeup latency, waits, stragglers).
  double idle_seconds() const noexcept;
  /// 1 - mean(worker busy) / max(worker busy); 0 for <= 1 busy worker.
  double load_imbalance() const noexcept;

  /// Fold another run into this one (used by the controlled twist-sweep
  /// path, which runs one engine campaign per grid point): scalars add,
  /// worker totals merge by thread id, shard events concatenate.
  void accumulate(const RunTelemetry& other);
};

/// Render one run as a JSON object (single line, no trailing newline).
std::string to_json(const RunTelemetry& t);

// ---------------------------------------------------------------------------
// Scaling analysis (pure value math; both build modes).
// ---------------------------------------------------------------------------

/// One thread-count measurement of a fixed workload, with the
/// thread-second budget decomposed into named fractions (each in
/// [0, 1], of threads * wall_seconds).
struct ScalingCell {
  unsigned threads = 0;
  double wall_seconds = 0.0;
  double speedup = 0.0;     ///< T(1) / T(n)
  double efficiency = 0.0;  ///< speedup / n
  double loop_fraction = 0.0;          ///< replication work
  double shard_setup_fraction = 0.0;   ///< stream repositioning (jumps)
  double worker_setup_fraction = 0.0;  ///< per-worker sampler construction
  double merge_fraction = 0.0;         ///< serial in-order merge
  double checkpoint_fraction = 0.0;    ///< snapshot I/O
  double idle_fraction = 0.0;          ///< unaccounted (waits, stragglers)
  double load_imbalance = 0.0;         ///< 1 - mean/max worker busy
};

/// Named attribution of the inefficiency at the largest thread count.
struct ScalingAttribution {
  double serial_fraction = 0.0;  ///< Amdahl fit over the sweep
  double load_imbalance = 0.0;
  double setup_cost = 0.0;  ///< shard repositioning + worker construction
  double pool_idle = 0.0;
};

/// Decomposition of a thread sweep. Produced by from_runs() from the
/// telemetry of one fixed workload at several thread counts.
struct ScalingReport {
  std::vector<ScalingCell> cells;  ///< ascending by threads
  /// Amdahl fit T(n) = T1 * (s + (1 - s)/n) over the sweep; s clamped
  /// to [0, 1]. Meaningful only when the sweep spans >= 2 thread counts.
  double serial_fraction = 0.0;
  double amdahl_r2 = 0.0;  ///< goodness of the fit (1 = perfect)
  ScalingAttribution attribution;   ///< at the largest thread count
  std::vector<std::string> causes;  ///< dominant causes, ranked, human-readable

  /// Build a report from one RunTelemetry per thread count (any order;
  /// duplicates of a thread count keep the first). Entries with
  /// enabled == false contribute wall-clock-only cells (no breakdown).
  static ScalingReport from_runs(const std::vector<RunTelemetry>& runs);

  /// Render as a JSON object (single line, no trailing newline).
  std::string to_json() const;
};

// ---------------------------------------------------------------------------
// Collector (engine-facing recording surface).
// ---------------------------------------------------------------------------
#if SSVBR_OBS_ENABLED

/// Records one engine run. Created by ReplicationEngine at the top of a
/// run; workers record through per-worker handles onto worker-private
/// slots (no shared mutable state until finish(), which runs after the
/// pool joined), so recording is TSan-clean by construction.
class TelemetryCollector {
 public:
  /// `threads` sizes the per-worker slots; `shards_total` / `shard_size`
  /// / `study` flow through to the aggregate.
  TelemetryCollector(std::string_view study, unsigned threads,
                     std::uint64_t shards_total, std::uint64_t shard_size);

  /// Worker-thread recording handle. Bound to one worker slot; all
  /// methods touch only that slot plus the shared monotonic clock.
  class Worker {
   public:
    Worker() = default;

    /// Call around make_worker() — the per-worker sampler/kernel setup.
    void begin_setup() noexcept;
    void end_setup() noexcept;

    /// Call when a runnable shard has been claimed (restored shards are
    /// skipped silently and extend the next wait).
    void claimed() noexcept;
    /// Call when stream repositioning is done and the loop starts.
    void loop_started() noexcept;
    /// Call when the shard's replications are accumulated.
    void shard_done(std::uint64_t shard, std::uint64_t task,
                    std::uint64_t replications);

   private:
    friend class TelemetryCollector;
    Worker(TelemetryCollector* col, std::uint32_t thread)
        : col_(col), thread_(thread) {}
    TelemetryCollector* col_ = nullptr;
    std::uint32_t thread_ = 0;
    std::uint64_t mark_ns_ = 0;        // begin_setup timestamp
    std::uint64_t claim_ns_ = 0;       // current shard's claim timestamp
    std::uint64_t loop_start_ns_ = 0;  // current shard's loop start
    std::uint64_t last_end_ns_ = 0;    // previous shard end (wait baseline)
  };

  Worker worker(unsigned thread_id) noexcept { return Worker(this, thread_id); }

  /// Run-level serial costs, recorded on whichever thread incurs them
  /// (checkpoint saves happen under the engine's save mutex).
  void add_merge_ns(std::uint64_t ns) noexcept;
  void add_checkpoint_ns(std::uint64_t ns) noexcept;

  /// Aggregate everything recorded, emit the JSONL log if
  /// SSVBR_TELEMETRY_JSONL is set, and return the run's telemetry.
  /// Call once, after the pool joined.
  RunTelemetry finish(std::uint64_t shards_executed, std::uint64_t replications);

 private:
  // One slot per pool worker, written on every shard_done by that
  // worker alone. alignas(64) keeps neighbouring slots out of each
  // other's cache lines: without it, slot i's totals and slot i+1's
  // event-vector header pack into one line and every record ping-pongs
  // it between the two workers (DESIGN.md §7f) — worker-private data
  // must also be cache-line-private.
  struct alignas(64) Slot {
    WorkerTelemetry totals;
    std::vector<ShardTelemetry> events;
  };

  std::string study_;
  std::uint64_t run_id_ = 0;
  std::uint32_t threads_ = 0;
  std::uint64_t shards_total_ = 0;
  std::uint64_t shard_size_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t merge_ns_ = 0;
  std::uint64_t checkpoint_ns_ = 0;  // serialized by the engine's save mutex
  std::vector<Slot> slots_;
};

/// Append the run's event lines to `path` (one JSON object per line,
/// schema validated by scripts/analyze_telemetry.py). Process-wide
/// serialized; exposed for tests.
void append_telemetry_jsonl(const std::string& path, const RunTelemetry& t);

#else  // !SSVBR_OBS_ENABLED — constexpr no-op mirrors.

class TelemetryCollector {
 public:
  constexpr TelemetryCollector(std::string_view, unsigned, std::uint64_t,
                               std::uint64_t) noexcept {}

  class Worker {
   public:
    constexpr Worker() = default;
    constexpr void begin_setup() const noexcept {}
    constexpr void end_setup() const noexcept {}
    constexpr void claimed() const noexcept {}
    constexpr void loop_started() const noexcept {}
    constexpr void shard_done(std::uint64_t, std::uint64_t,
                              std::uint64_t) const noexcept {}
  };

  constexpr Worker worker(unsigned) const noexcept { return {}; }
  constexpr void add_merge_ns(std::uint64_t) const noexcept {}
  constexpr void add_checkpoint_ns(std::uint64_t) const noexcept {}
  RunTelemetry finish(std::uint64_t, std::uint64_t) { return {}; }
};

inline void append_telemetry_jsonl(const std::string&, const RunTelemetry&) {}

#endif  // SSVBR_OBS_ENABLED

}  // namespace ssvbr::obs
