// ssvbr/obs/trace.h
//
// RAII span tracing with per-thread ring buffers, exportable as Chrome
// trace-event JSON (open at ui.perfetto.dev or chrome://tracing) and as
// a plain-text per-span summary.
//
// Each recording thread owns a fixed-capacity ring of relaxed-atomic
// slots; record() is two clock reads plus three relaxed stores, and the
// ring overwrites its oldest events when full (dropped() reports how
// many). Readers never block writers: an export taken while spans are
// still being recorded is race-free (all slot fields are atomics) but
// may observe a slot mid-overwrite, mixing fields of two events — take
// exports at quiescent points (the SSVBR_TRACE_JSON atexit dump does).
//
// Span names must have static storage duration (string literals): the
// ring stores the pointer, not a copy.
//
// When the library is built without -DSSVBR_OBS=ON the classes collapse
// to empty no-ops, matching obs/metrics.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ssvbr::obs {

#if SSVBR_OBS_ENABLED

/// Monotonic nanoseconds since the first call in this process.
std::uint64_t now_ns() noexcept;

/// Process-wide store of completed spans.
class TraceBuffer {
 public:
  /// Events kept per recording thread before the ring wraps.
  static constexpr std::size_t kRingCapacity = 8192;

  struct Event {
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;  ///< small per-thread index, stable per ring
  };

  TraceBuffer();
  ~TraceBuffer();
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Process-wide buffer (never destroyed).
  static TraceBuffer& instance();

  /// Record one completed span. `name` must point to static storage.
  void record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns) noexcept;

  /// All retained events across threads, ordered by start time.
  std::vector<Event> events() const;

  /// Events lost to ring wrap-around since construction/reset.
  std::uint64_t dropped() const noexcept;

  /// Chrome trace-event JSON ("traceEvents" array of complete events).
  std::string chrome_trace_json() const;

  /// Per-name aggregation (count, total/mean/max duration) of the
  /// retained events.
  std::string summary_text() const;

  /// Discard all retained events (keeps thread rings allocated).
  void reset() noexcept;

 private:
  struct Ring;
  struct Impl;

  Ring& local_ring() const;

  Impl* impl_;
};

/// RAII span: on destruction records into TraceBuffer::instance() and,
/// when a histogram handle is supplied, the duration in seconds into it.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram hist = {}) noexcept
      : name_(name), hist_(hist), start_(now_ns()) {}
  ~ScopedSpan() {
    const std::uint64_t end = now_ns();
    TraceBuffer::instance().record(name_, start_, end);
    hist_.record(1e-9 * static_cast<double>(end - start_));
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Histogram hist_;
  std::uint64_t start_;
};

/// RAII timer: histogram-only (no ring event). Use for per-replication
/// scopes that would otherwise flood the trace ring.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram hist) noexcept : hist_(hist), start_(now_ns()) {}
  ~ScopedTimer() { hist_.record(1e-9 * static_cast<double>(now_ns() - start_)); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram hist_;
  std::uint64_t start_;
};

#else  // !SSVBR_OBS_ENABLED — no-op mirrors.

inline std::uint64_t now_ns() noexcept { return 0; }

class TraceBuffer {
 public:
  static constexpr std::size_t kRingCapacity = 0;
  struct Event {
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
  };
  static TraceBuffer& instance() {
    static TraceBuffer buf;
    return buf;
  }
  void record(const char*, std::uint64_t, std::uint64_t) noexcept {}
  std::vector<Event> events() const { return {}; }
  std::uint64_t dropped() const noexcept { return 0; }
  std::string chrome_trace_json() const { return "{\"traceEvents\": []}\n"; }
  std::string summary_text() const { return ""; }
  void reset() noexcept {}
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*, Histogram = {}) noexcept {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif  // SSVBR_OBS_ENABLED

}  // namespace ssvbr::obs
