// ssvbr/obs/instrument.h
//
// Hot-path instrumentation macros. Each macro caches its registry
// handle in a function-local static (one registration per call site,
// then a few ns per record); name arguments must be string literals.
// When the library is configured without -DSSVBR_OBS=ON every macro
// expands to nothing — arguments are NOT evaluated — so default builds
// carry zero recording cost and bit-identical outputs.
//
//   SSVBR_COUNTER_ADD("engine.replications", n);   // monotonic counter
//   SSVBR_GAUGE_SET("engine.reps_per_sec", v);     // last-write-wins
//   SSVBR_HIST_RECORD("is.weight", w);             // log-bucket histogram
//   SSVBR_SPAN("engine.run");                      // RAII: trace ring event
//                                                  //  + "<name>.seconds" histogram
//   SSVBR_TIMER("is.replication");                 // RAII: histogram only
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

#if SSVBR_OBS_ENABLED

#define SSVBR_OBS_CONCAT_INNER(a, b) a##b
#define SSVBR_OBS_CONCAT(a, b) SSVBR_OBS_CONCAT_INNER(a, b)

#define SSVBR_COUNTER_ADD(name, n)                                         \
  do {                                                                     \
    static const ::ssvbr::obs::Counter ssvbr_obs_counter_ =                \
        ::ssvbr::obs::MetricsRegistry::instance().counter(name);           \
    ssvbr_obs_counter_.add(n);                                             \
  } while (false)

#define SSVBR_GAUGE_SET(name, v)                                           \
  do {                                                                     \
    static const ::ssvbr::obs::Gauge ssvbr_obs_gauge_ =                    \
        ::ssvbr::obs::MetricsRegistry::instance().gauge(name);             \
    ssvbr_obs_gauge_.set(v);                                               \
  } while (false)

#define SSVBR_HIST_RECORD(name, v)                                         \
  do {                                                                     \
    static const ::ssvbr::obs::Histogram ssvbr_obs_hist_ =                 \
        ::ssvbr::obs::MetricsRegistry::instance().histogram(name);         \
    ssvbr_obs_hist_.record(v);                                             \
  } while (false)

// Declares a scoped RAII object: the span covers the rest of the
// enclosing block. One span per block (the variable name is fixed per
// line).
#define SSVBR_SPAN(name)                                                   \
  static const ::ssvbr::obs::Histogram SSVBR_OBS_CONCAT(                   \
      ssvbr_obs_span_hist_, __LINE__) =                                    \
      ::ssvbr::obs::MetricsRegistry::instance().histogram(name ".seconds"); \
  const ::ssvbr::obs::ScopedSpan SSVBR_OBS_CONCAT(ssvbr_obs_span_, __LINE__)( \
      name, SSVBR_OBS_CONCAT(ssvbr_obs_span_hist_, __LINE__))

#define SSVBR_TIMER(name)                                                  \
  static const ::ssvbr::obs::Histogram SSVBR_OBS_CONCAT(                   \
      ssvbr_obs_timer_hist_, __LINE__) =                                   \
      ::ssvbr::obs::MetricsRegistry::instance().histogram(name ".seconds"); \
  const ::ssvbr::obs::ScopedTimer SSVBR_OBS_CONCAT(ssvbr_obs_timer_, __LINE__)( \
      SSVBR_OBS_CONCAT(ssvbr_obs_timer_hist_, __LINE__))

#else  // !SSVBR_OBS_ENABLED

#define SSVBR_COUNTER_ADD(name, n) ((void)0)
#define SSVBR_GAUGE_SET(name, v) ((void)0)
#define SSVBR_HIST_RECORD(name, v) ((void)0)
#define SSVBR_SPAN(name) ((void)0)
#define SSVBR_TIMER(name) ((void)0)

#endif  // SSVBR_OBS_ENABLED
