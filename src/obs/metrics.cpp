#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/version.h"

#if SSVBR_OBS_ENABLED
#include <array>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "common/error.h"
#include "obs/trace.h"
#endif

namespace ssvbr::obs {

// ---------------------------------------------------------------------------
// Snapshot value types and renderers (available in both build modes).
// ---------------------------------------------------------------------------

double SnapshotHistogram::mean() const noexcept {
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double SnapshotHistogram::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank <= zero_count) return min < 0.0 ? min : 0.0;
  rank -= zero_count;
  if (rank <= underflow) return std::ldexp(1.0, kHistMinExp);
  rank -= underflow;
  for (const Bucket& b : buckets) {
    if (rank <= b.count) return std::sqrt(b.lo * b.hi);  // geometric midpoint
    rank -= b.count;
  }
  return std::isfinite(max) && max > 0.0 ? max : std::ldexp(1.0, kHistMaxExp);
}

const std::uint64_t* MetricsSnapshot::counter(std::string_view name) const noexcept {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const double* MetricsSnapshot::gauge(std::string_view name) const noexcept {
  for (const auto& [n, v] : gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

const SnapshotHistogram* MetricsSnapshot::histogram(std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// JSON has no inf/nan literals; non-finite values render as null.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snap) {
  const BuildInfo& build = build_info();
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": 1,\n  \"obs_enabled\": ";
  out += SSVBR_OBS_ENABLED ? "true" : "false";
  out += ",\n  \"build\": {\"version\": \"";
  append_escaped(out, build.version);
  out += "\", \"git_sha\": \"";
  append_escaped(out, build.git_sha);
  out += "\", \"build_type\": \"";
  append_escaped(out, build.build_type);
  out += "\"},\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_escaped(out, snap.counters[i].first);
    out += "\": ";
    append_number(out, snap.counters[i].second);
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_escaped(out, snap.gauges[i].first);
    out += "\": ";
    append_number(out, snap.gauges[i].second);
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const SnapshotHistogram& h = snap.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_escaped(out, h.name);
    out += "\": {\"count\": ";
    append_number(out, h.count);
    out += ", \"sum\": ";
    append_number(out, h.sum);
    out += ", \"min\": ";
    append_number(out, h.min);
    out += ", \"max\": ";
    append_number(out, h.max);
    out += ", \"mean\": ";
    append_number(out, h.mean());
    out += ", \"p50\": ";
    append_number(out, h.quantile(0.50));
    out += ", \"p90\": ";
    append_number(out, h.quantile(0.90));
    out += ", \"p99\": ";
    append_number(out, h.quantile(0.99));
    out += ", \"zero_count\": ";
    append_number(out, h.zero_count);
    out += ", \"underflow\": ";
    append_number(out, h.underflow);
    out += ", \"overflow\": ";
    append_number(out, h.overflow);
    out += ", \"nan_count\": ";
    append_number(out, h.nan_count);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "[";
      append_number(out, h.buckets[b].lo);
      out += ", ";
      append_number(out, h.buckets[b].hi);
      out += ", ";
      append_number(out, h.buckets[b].count);
      out += "]";
    }
    out += "]}";
  }
  out += snap.histograms.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string to_text(const MetricsSnapshot& snap) {
  std::string out;
  char buf[256];
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, v] : snap.counters) {
      std::snprintf(buf, sizeof buf, "  %-44s %20llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out += buf;
    }
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, v] : snap.gauges) {
      std::snprintf(buf, sizeof buf, "  %-44s %20.6g\n", name.c_str(), v);
      out += buf;
    }
  }
  if (!snap.histograms.empty()) {
    out += "histograms:                                         "
           "count          sum         mean          p50          p99\n";
    for (const auto& h : snap.histograms) {
      std::snprintf(buf, sizeof buf, "  %-44s %10llu %12.5g %12.5g %12.5g %12.5g\n",
                    h.name.c_str(), static_cast<unsigned long long>(h.count), h.sum,
                    h.mean(), h.quantile(0.50), h.quantile(0.99));
      out += buf;
    }
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

// ---------------------------------------------------------------------------
// Registry implementation (instrumented builds only).
// ---------------------------------------------------------------------------
#if SSVBR_OBS_ENABLED

struct MetricsRegistry::Shard {
  struct Hist {
    // No stored total: snapshot() derives count as zero + under + over +
    // sum(buckets), so the bucket-sum invariant holds on any concurrent
    // interleaving (a separate total could be observed one ahead of its
    // bucket mid-record).
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<std::uint64_t> zero{0};
    std::atomic<std::uint64_t> under{0};
    std::atomic<std::uint64_t> over{0};
    std::atomic<std::uint64_t> nan{0};
    // sum/min/max use owner-only load+store (each shard has exactly one
    // writer thread, so the read-modify-write cannot lose updates).
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };

  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<Hist, kMaxHistograms> hists{};
};

struct MetricsRegistry::Impl {
  std::uint64_t gen = 0;  // process-unique; keys the thread-local cache
  mutable std::mutex mu;
  std::map<std::string, std::uint32_t, std::less<>> counter_ids;
  std::map<std::string, std::uint32_t, std::less<>> gauge_ids;
  std::map<std::string, std::uint32_t, std::less<>> hist_ids;
  std::array<std::atomic<double>, kMaxGauges> gauges{};
  // One shard per recording thread (a thread that alternates between
  // registries re-registers and may own several; snapshot merges all).
  mutable std::vector<std::unique_ptr<Shard>> shards;
};

namespace {

struct TlsShardCache {
  std::uint64_t gen = 0;
  void* shard = nullptr;  // MetricsRegistry::Shard* (private nested type)
};
thread_local TlsShardCache tls_shard_cache;
std::atomic<std::uint64_t> next_registry_gen{1};

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {
  impl_->gen = next_registry_gen.fetch_add(1, kRelaxed);
}

MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: worker threads and atexit dumps must never
  // observe a destroyed registry.
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() const {
  if (tls_shard_cache.gen == impl_->gen) {
    return *static_cast<Shard*>(tls_shard_cache.shard);
  }
  std::lock_guard lock(impl_->mu);
  impl_->shards.push_back(std::make_unique<Shard>());
  Shard* shard = impl_->shards.back().get();
  tls_shard_cache = {impl_->gen, shard};
  return *shard;
}

namespace {

std::uint32_t register_name(std::map<std::string, std::uint32_t, std::less<>>& ids,
                            std::string_view name, std::size_t capacity,
                            const char* kind) {
  if (const auto it = ids.find(name); it != ids.end()) return it->second;
  SSVBR_REQUIRE(ids.size() < capacity,
                std::string("metrics registry is out of ") + kind + " slots");
  const auto id = static_cast<std::uint32_t>(ids.size());
  ids.emplace(std::string(name), id);
  return id;
}

}  // namespace

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(impl_->mu);
  return Counter(this, register_name(impl_->counter_ids, name, kMaxCounters, "counter"));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(impl_->mu);
  return Gauge(this, register_name(impl_->gauge_ids, name, kMaxGauges, "gauge"));
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(impl_->mu);
  return Histogram(this, register_name(impl_->hist_ids, name, kMaxHistograms, "histogram"));
}

void Counter::add(std::uint64_t n) const noexcept {
  if (reg_ == nullptr) return;
  reg_->local_shard().counters[id_].fetch_add(n, kRelaxed);
}

void Gauge::set(double v) const noexcept {
  if (reg_ == nullptr) return;
  reg_->impl_->gauges[id_].store(v, kRelaxed);
}

void Gauge::add(double delta) const noexcept {
  if (reg_ == nullptr) return;
  auto& g = reg_->impl_->gauges[id_];
  g.store(g.load(kRelaxed) + delta, kRelaxed);
}

void Histogram::record(double v) const noexcept {
  if (reg_ == nullptr) return;
  auto& h = reg_->local_shard().hists[id_];
  if (std::isnan(v)) {
    h.nan.fetch_add(1, kRelaxed);
    return;
  }
  if (v < h.min.load(kRelaxed)) h.min.store(v, kRelaxed);
  if (v > h.max.load(kRelaxed)) h.max.store(v, kRelaxed);
  if (std::isfinite(v)) h.sum.store(h.sum.load(kRelaxed) + v, kRelaxed);
  if (v <= 0.0) {
    h.zero.fetch_add(1, kRelaxed);
    return;
  }
  if (std::isinf(v)) {
    h.over.fetch_add(1, kRelaxed);
    return;
  }
  const int e = std::ilogb(v);  // exact floor(log2 v), denormals included
  if (e < kHistMinExp) {
    h.under.fetch_add(1, kRelaxed);
  } else if (e >= kHistMaxExp) {
    h.over.fetch_add(1, kRelaxed);
  } else {
    h.buckets[static_cast<std::size_t>(e - kHistMinExp)].fetch_add(1, kRelaxed);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(impl_->mu);

  snap.counters.reserve(impl_->counter_ids.size());
  for (const auto& [name, id] : impl_->counter_ids) {
    std::uint64_t total = 0;
    for (const auto& shard : impl_->shards) total += shard->counters[id].load(kRelaxed);
    snap.counters.emplace_back(name, total);
  }

  snap.gauges.reserve(impl_->gauge_ids.size());
  for (const auto& [name, id] : impl_->gauge_ids) {
    snap.gauges.emplace_back(name, impl_->gauges[id].load(kRelaxed));
  }

  snap.histograms.reserve(impl_->hist_ids.size());
  for (const auto& [name, id] : impl_->hist_ids) {
    SnapshotHistogram out;
    out.name = name;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    std::array<std::uint64_t, kHistBuckets> buckets{};
    for (const auto& shard : impl_->shards) {
      const Shard::Hist& h = shard->hists[id];
      out.zero_count += h.zero.load(kRelaxed);
      out.underflow += h.under.load(kRelaxed);
      out.overflow += h.over.load(kRelaxed);
      out.nan_count += h.nan.load(kRelaxed);
      out.sum += h.sum.load(kRelaxed);
      mn = std::min(mn, h.min.load(kRelaxed));
      mx = std::max(mx, h.max.load(kRelaxed));
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        buckets[b] += h.buckets[b].load(kRelaxed);
      }
    }
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t b : buckets) bucket_total += b;
    out.count = out.zero_count + out.underflow + out.overflow + bucket_total;
    out.min = out.count > 0 ? mn : 0.0;
    out.max = out.count > 0 ? mx : 0.0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (buckets[b] == 0) continue;
      const int e = kHistMinExp + static_cast<int>(b);
      out.buckets.push_back({std::ldexp(1.0, e), std::ldexp(1.0, e + 1), buckets[b]});
    }
    snap.histograms.push_back(std::move(out));
  }
  return snap;  // std::map iteration already yields names in sorted order
}

void MetricsRegistry::reset() noexcept {
  std::lock_guard lock(impl_->mu);
  for (auto& g : impl_->gauges) g.store(0.0, kRelaxed);
  for (const auto& shard : impl_->shards) {
    for (auto& c : shard->counters) c.store(0, kRelaxed);
    for (auto& h : shard->hists) {
      for (auto& b : h.buckets) b.store(0, kRelaxed);
      h.zero.store(0, kRelaxed);
      h.under.store(0, kRelaxed);
      h.over.store(0, kRelaxed);
      h.nan.store(0, kRelaxed);
      h.sum.store(0.0, kRelaxed);
      h.min.store(std::numeric_limits<double>::infinity(), kRelaxed);
      h.max.store(-std::numeric_limits<double>::infinity(), kRelaxed);
    }
  }
}

namespace {

void write_text_file(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ssvbr: cannot write '%s'\n", path);
    return;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

void env_exit_dump() {
  if (const char* path = std::getenv("SSVBR_METRICS_JSON")) {
    write_text_file(path, to_json(MetricsRegistry::instance().snapshot()));
  }
  if (const char* path = std::getenv("SSVBR_TRACE_JSON")) {
    write_text_file(path, TraceBuffer::instance().chrome_trace_json());
  }
  if (std::getenv("SSVBR_OBS_SUMMARY") != nullptr) {
    const std::string text = to_text(MetricsRegistry::instance().snapshot());
    std::fputs(text.c_str(), stderr);
    const std::string spans = TraceBuffer::instance().summary_text();
    std::fputs(spans.c_str(), stderr);
  }
}

}  // namespace

void install_env_exit_dump() {
  // Re-check the environment on every call: library front doors call
  // this unconditionally, possibly before the caller has exported any
  // SSVBR_* knob. A first no-knob call must not latch the dump off for
  // the rest of the process (it used to, via a static-init lambda).
  if (std::getenv("SSVBR_METRICS_JSON") == nullptr &&
      std::getenv("SSVBR_TRACE_JSON") == nullptr &&
      std::getenv("SSVBR_OBS_SUMMARY") == nullptr) {
    return;
  }
  static std::once_flag once;
  std::call_once(once, [] {
    // Touch the leaked singletons before registering so the atexit hook
    // can never run against uninitialized state.
    MetricsRegistry::instance();
    TraceBuffer::instance();
    std::atexit(env_exit_dump);
  });
}

#endif  // SSVBR_OBS_ENABLED

}  // namespace ssvbr::obs
