#include "obs/trace.h"

#if SSVBR_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace ssvbr::obs {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}

std::uint64_t now_ns() noexcept {
  static const auto base = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - base)
                                        .count());
}

struct TraceBuffer::Ring {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> start{0};
    std::atomic<std::uint64_t> dur{0};
  };

  std::vector<Slot> slots{kRingCapacity};
  std::atomic<std::uint64_t> head{0};  // total events ever recorded here
  std::uint32_t tid = 0;
};

struct TraceBuffer::Impl {
  std::uint64_t gen = 0;
  mutable std::mutex mu;
  mutable std::vector<std::unique_ptr<Ring>> rings;
};

namespace {

struct TlsRingCache {
  std::uint64_t gen = 0;
  void* ring = nullptr;  // TraceBuffer::Ring* (private nested type)
};
thread_local TlsRingCache tls_ring_cache;
std::atomic<std::uint64_t> next_buffer_gen{1};

}  // namespace

TraceBuffer::TraceBuffer() : impl_(new Impl) {
  impl_->gen = next_buffer_gen.fetch_add(1, kRelaxed);
}

TraceBuffer::~TraceBuffer() { delete impl_; }

TraceBuffer& TraceBuffer::instance() {
  static TraceBuffer* buf = new TraceBuffer();  // leaked; see MetricsRegistry
  return *buf;
}

TraceBuffer::Ring& TraceBuffer::local_ring() const {
  if (tls_ring_cache.gen == impl_->gen) {
    return *static_cast<Ring*>(tls_ring_cache.ring);
  }
  std::lock_guard lock(impl_->mu);
  impl_->rings.push_back(std::make_unique<Ring>());
  Ring* ring = impl_->rings.back().get();
  ring->tid = static_cast<std::uint32_t>(impl_->rings.size());
  tls_ring_cache = {impl_->gen, ring};
  return *ring;
}

void TraceBuffer::record(const char* name, std::uint64_t start_ns,
                         std::uint64_t end_ns) noexcept {
  Ring& ring = local_ring();
  const std::uint64_t h = ring.head.load(kRelaxed);
  Ring::Slot& slot = ring.slots[h % kRingCapacity];
  slot.name.store(name, kRelaxed);
  slot.start.store(start_ns, kRelaxed);
  slot.dur.store(end_ns >= start_ns ? end_ns - start_ns : 0, kRelaxed);
  ring.head.store(h + 1, kRelaxed);
}

std::vector<TraceBuffer::Event> TraceBuffer::events() const {
  std::vector<Event> out;
  std::lock_guard lock(impl_->mu);
  for (const auto& ring : impl_->rings) {
    const std::uint64_t n = std::min<std::uint64_t>(ring->head.load(kRelaxed),
                                                    kRingCapacity);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Ring::Slot& slot = ring->slots[i];
      const char* name = slot.name.load(kRelaxed);
      if (name == nullptr) continue;
      out.push_back(Event{name, slot.start.load(kRelaxed), slot.dur.load(kRelaxed),
                          ring->tid});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.start_ns < b.start_ns; });
  return out;
}

std::uint64_t TraceBuffer::dropped() const noexcept {
  std::uint64_t dropped = 0;
  std::lock_guard lock(impl_->mu);
  for (const auto& ring : impl_->rings) {
    const std::uint64_t h = ring->head.load(kRelaxed);
    if (h > kRingCapacity) dropped += h - kRingCapacity;
  }
  return dropped;
}

std::string TraceBuffer::chrome_trace_json() const {
  const std::vector<Event> evs = events();
  std::string out;
  out.reserve(64 + evs.size() * 96);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[192];
  for (std::size_t i = 0; i < evs.size(); ++i) {
    // Complete ("X") events; ts/dur are microseconds per the trace-event
    // format spec.
    std::snprintf(buf, sizeof buf,
                  "%s\n  {\"name\": \"%s\", \"cat\": \"ssvbr\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
                  i == 0 ? "" : ",", evs[i].name.c_str(),
                  static_cast<double>(evs[i].start_ns) / 1000.0,
                  static_cast<double>(evs[i].dur_ns) / 1000.0, evs[i].tid);
    out += buf;
  }
  out += evs.empty() ? "]}\n" : "\n]}\n";
  return out;
}

std::string TraceBuffer::summary_text() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const Event& e : events()) {
    Agg& a = by_name[e.name];
    ++a.count;
    a.total_ns += e.dur_ns;
    a.max_ns = std::max(a.max_ns, e.dur_ns);
  }
  if (by_name.empty()) return "";
  std::string out = "spans (retained):                                   "
                    "count     total_ms      mean_ms       max_ms\n";
  char buf[192];
  for (const auto& [name, a] : by_name) {
    std::snprintf(buf, sizeof buf, "  %-44s %10llu %12.3f %12.3f %12.3f\n",
                  name.c_str(), static_cast<unsigned long long>(a.count),
                  static_cast<double>(a.total_ns) / 1e6,
                  static_cast<double>(a.total_ns) / 1e6 / static_cast<double>(a.count),
                  static_cast<double>(a.max_ns) / 1e6);
    out += buf;
  }
  if (const std::uint64_t d = dropped(); d > 0) {
    std::snprintf(buf, sizeof buf, "  (%llu older events dropped by ring wrap)\n",
                  static_cast<unsigned long long>(d));
    out += buf;
  }
  return out;
}

void TraceBuffer::reset() noexcept {
  std::lock_guard lock(impl_->mu);
  for (const auto& ring : impl_->rings) {
    for (auto& slot : ring->slots) slot.name.store(nullptr, kRelaxed);
    ring->head.store(0, kRelaxed);
  }
}

}  // namespace ssvbr::obs

#endif  // SSVBR_OBS_ENABLED
