// ssvbr/obs/telemetry.cpp
#include "obs/telemetry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace ssvbr::obs {

namespace {

constexpr double kNsToSec = 1e-9;

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_num(std::string& out, double v) {
  char buf[40];
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_num(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_field(std::string& out, const char* key, double v) {
  out += '"';
  out += key;
  out += "\":";
  append_num(out, v);
}

void append_field(std::string& out, const char* key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  append_num(out, v);
}

std::string worker_json(const WorkerTelemetry& w) {
  std::string out = "{";
  append_field(out, "thread", static_cast<std::uint64_t>(w.thread));
  out += ',';
  append_field(out, "setup_seconds", kNsToSec * static_cast<double>(w.setup_ns));
  out += ',';
  append_field(out, "busy_seconds", kNsToSec * static_cast<double>(w.busy_ns));
  out += ',';
  append_field(out, "shards", w.shards);
  out += ',';
  append_field(out, "replications", w.replications);
  out += '}';
  return out;
}

std::string shard_json(const ShardTelemetry& e) {
  std::string out = "{";
  append_field(out, "shard", e.shard);
  out += ',';
  append_field(out, "task", e.task);
  out += ',';
  append_field(out, "thread", static_cast<std::uint64_t>(e.thread));
  out += ',';
  append_field(out, "replications", e.replications);
  out += ',';
  append_field(out, "claim_seconds", kNsToSec * static_cast<double>(e.claim_ns));
  out += ',';
  append_field(out, "wait_seconds", kNsToSec * static_cast<double>(e.wait_ns));
  out += ',';
  append_field(out, "setup_seconds", kNsToSec * static_cast<double>(e.setup_ns));
  out += ',';
  append_field(out, "loop_seconds", kNsToSec * static_cast<double>(e.loop_ns));
  out += '}';
  return out;
}

void append_run_scalars(std::string& out, const RunTelemetry& t) {
  out += "\"study\":\"";
  out += json_escape(t.study);
  out += "\",";
  append_field(out, "run", t.run_id);
  out += ',';
  append_field(out, "threads", static_cast<std::uint64_t>(t.threads));
  out += ',';
  append_field(out, "shard_size", t.shard_size);
  out += ',';
  append_field(out, "shards_total", t.shards_total);
  out += ',';
  append_field(out, "shards_executed", t.shards_executed);
  out += ',';
  append_field(out, "replications", t.replications);
  out += ',';
  append_field(out, "wall_seconds", t.wall_seconds);
  out += ',';
  append_field(out, "merge_seconds", t.merge_seconds);
  out += ',';
  append_field(out, "checkpoint_seconds", t.checkpoint_seconds);
}

}  // namespace

// ---------------------------------------------------------------------------
// RunTelemetry derived quantities.
// ---------------------------------------------------------------------------

double RunTelemetry::busy_seconds() const noexcept {
  std::uint64_t ns = 0;
  for (const auto& w : workers) ns += w.busy_ns;
  return kNsToSec * static_cast<double>(ns);
}

double RunTelemetry::worker_setup_seconds() const noexcept {
  std::uint64_t ns = 0;
  for (const auto& w : workers) ns += w.setup_ns;
  return kNsToSec * static_cast<double>(ns);
}

double RunTelemetry::shard_setup_seconds() const noexcept {
  std::uint64_t ns = 0;
  for (const auto& e : shard_events) ns += e.setup_ns;
  return kNsToSec * static_cast<double>(ns);
}

double RunTelemetry::loop_seconds() const noexcept {
  std::uint64_t ns = 0;
  for (const auto& e : shard_events) ns += e.loop_ns;
  return kNsToSec * static_cast<double>(ns);
}

double RunTelemetry::idle_seconds() const noexcept {
  const double budget = static_cast<double>(threads) * wall_seconds;
  const double used = busy_seconds() + worker_setup_seconds() + merge_seconds +
                      checkpoint_seconds;
  return std::max(0.0, budget - used);
}

double RunTelemetry::load_imbalance() const noexcept {
  std::uint64_t max_busy = 0;
  std::uint64_t sum_busy = 0;
  std::size_t busy_workers = 0;
  for (const auto& w : workers) {
    if (w.busy_ns == 0) continue;
    ++busy_workers;
    sum_busy += w.busy_ns;
    max_busy = std::max(max_busy, w.busy_ns);
  }
  if (busy_workers <= 1 || max_busy == 0) return 0.0;
  const double mean = static_cast<double>(sum_busy) /
                      static_cast<double>(busy_workers);
  return 1.0 - mean / static_cast<double>(max_busy);
}

void RunTelemetry::accumulate(const RunTelemetry& other) {
  if (!other.enabled) return;
  if (!enabled) {
    *this = other;
    return;
  }
  threads = std::max(threads, other.threads);
  shard_size = shard_size != 0 ? shard_size : other.shard_size;
  shards_total += other.shards_total;
  shards_executed += other.shards_executed;
  replications += other.replications;
  wall_seconds += other.wall_seconds;
  merge_seconds += other.merge_seconds;
  checkpoint_seconds += other.checkpoint_seconds;
  for (const auto& ow : other.workers) {
    auto it = std::find_if(workers.begin(), workers.end(),
                           [&](const WorkerTelemetry& w) {
                             return w.thread == ow.thread;
                           });
    if (it == workers.end()) {
      workers.push_back(ow);
    } else {
      it->setup_ns += ow.setup_ns;
      it->busy_ns += ow.busy_ns;
      it->shards += ow.shards;
      it->replications += ow.replications;
    }
  }
  shard_events.insert(shard_events.end(), other.shard_events.begin(),
                      other.shard_events.end());
}

std::string to_json(const RunTelemetry& t) {
  std::string out = "{\"enabled\":";
  out += t.enabled ? "true" : "false";
  out += ',';
  append_run_scalars(out, t);
  out += ',';
  append_field(out, "busy_seconds", t.busy_seconds());
  out += ',';
  append_field(out, "worker_setup_seconds", t.worker_setup_seconds());
  out += ',';
  append_field(out, "shard_setup_seconds", t.shard_setup_seconds());
  out += ',';
  append_field(out, "loop_seconds", t.loop_seconds());
  out += ',';
  append_field(out, "idle_seconds", t.idle_seconds());
  out += ',';
  append_field(out, "load_imbalance", t.load_imbalance());
  out += ",\"workers\":[";
  for (std::size_t i = 0; i < t.workers.size(); ++i) {
    if (i != 0) out += ',';
    out += worker_json(t.workers[i]);
  }
  out += "],";
  append_field(out, "shard_events",
               static_cast<std::uint64_t>(t.shard_events.size()));
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// ScalingReport.
// ---------------------------------------------------------------------------

ScalingReport ScalingReport::from_runs(const std::vector<RunTelemetry>& runs) {
  ScalingReport report;
  std::vector<const RunTelemetry*> ordered;
  ordered.reserve(runs.size());
  for (const auto& r : runs) {
    if (r.threads == 0 || r.wall_seconds <= 0.0) continue;
    const bool dup = std::any_of(ordered.begin(), ordered.end(),
                                 [&](const RunTelemetry* p) {
                                   return p->threads == r.threads;
                                 });
    if (!dup) ordered.push_back(&r);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const RunTelemetry* a, const RunTelemetry* b) {
              return a->threads < b->threads;
            });
  if (ordered.empty()) return report;

  const double base_wall = ordered.front()->wall_seconds;
  const double base_threads = static_cast<double>(ordered.front()->threads);
  for (const RunTelemetry* r : ordered) {
    ScalingCell cell;
    cell.threads = r->threads;
    cell.wall_seconds = r->wall_seconds;
    cell.speedup = base_wall / r->wall_seconds;
    cell.efficiency =
        cell.speedup * base_threads / static_cast<double>(r->threads);
    if (r->enabled) {
      const double budget =
          static_cast<double>(r->threads) * r->wall_seconds;
      if (budget > 0.0) {
        cell.loop_fraction = r->loop_seconds() / budget;
        cell.shard_setup_fraction = r->shard_setup_seconds() / budget;
        cell.worker_setup_fraction = r->worker_setup_seconds() / budget;
        cell.merge_fraction = r->merge_seconds / budget;
        cell.checkpoint_fraction = r->checkpoint_seconds / budget;
        cell.idle_fraction = r->idle_seconds() / budget;
      }
      cell.load_imbalance = r->load_imbalance();
    }
    report.cells.push_back(cell);
  }

  // Amdahl fit: T(n) = a + b / n, least squares in x = 1/n. The serial
  // fraction is a / (a + b) — the share of the single-thread time that
  // does not shrink with n.
  if (report.cells.size() >= 2) {
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    const double m = static_cast<double>(report.cells.size());
    for (const auto& c : report.cells) {
      const double x = 1.0 / static_cast<double>(c.threads);
      sx += x;
      sy += c.wall_seconds;
      sxx += x * x;
      sxy += x * c.wall_seconds;
    }
    const double det = m * sxx - sx * sx;
    if (det > 0.0) {
      const double b = (m * sxy - sx * sy) / det;  // parallel part
      const double a = (sy - b * sx) / m;          // serial part
      double ss_res = 0.0, ss_tot = 0.0;
      const double mean_y = sy / m;
      for (const auto& c : report.cells) {
        const double fit = a + b / static_cast<double>(c.threads);
        ss_res += (c.wall_seconds - fit) * (c.wall_seconds - fit);
        ss_tot += (c.wall_seconds - mean_y) * (c.wall_seconds - mean_y);
      }
      if (a + b > 0.0) {
        report.serial_fraction = std::clamp(a / (a + b), 0.0, 1.0);
      }
      report.amdahl_r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    }
  }

  const ScalingCell& top = report.cells.back();
  report.attribution.serial_fraction = report.serial_fraction;
  report.attribution.load_imbalance = top.load_imbalance;
  report.attribution.setup_cost =
      top.shard_setup_fraction + top.worker_setup_fraction;
  report.attribution.pool_idle = top.idle_fraction;

  // Rank the named causes; keep everything above 2% of the top cell's
  // thread-second budget so the report names real effects, not noise.
  struct Cause {
    const char* fmt;
    double value;
  };
  char buf[160];
  std::vector<Cause> causes = {
      {"serial fraction %.1f%% (Amdahl fit over the sweep, r2=%.3f)",
       report.attribution.serial_fraction},
      {"load imbalance %.1f%% (1 - mean/max worker busy at the top cell)",
       report.attribution.load_imbalance},
      {"setup cost %.1f%% of thread-seconds (stream repositioning + "
       "per-worker sampler construction)",
       report.attribution.setup_cost},
      {"pool idle %.1f%% of thread-seconds (waits, wakeup latency, "
       "stragglers)",
       report.attribution.pool_idle},
  };
  std::stable_sort(causes.begin(), causes.end(),
                   [](const Cause& a, const Cause& b) {
                     return a.value > b.value;
                   });
  for (const auto& c : causes) {
    if (c.value < 0.02) continue;
    if (std::string_view(c.fmt).find("r2") != std::string_view::npos) {
      std::snprintf(buf, sizeof buf, c.fmt, 100.0 * c.value, report.amdahl_r2);
    } else {
      std::snprintf(buf, sizeof buf, c.fmt, 100.0 * c.value);
    }
    report.causes.push_back(buf);
  }
  if (report.causes.empty()) {
    report.causes.push_back("no single cause above 2% of thread-seconds");
  }
  return report;
}

std::string ScalingReport::to_json() const {
  std::string out = "{\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out += ',';
    const ScalingCell& c = cells[i];
    out += '{';
    append_field(out, "threads", static_cast<std::uint64_t>(c.threads));
    out += ',';
    append_field(out, "wall_seconds", c.wall_seconds);
    out += ',';
    append_field(out, "speedup", c.speedup);
    out += ',';
    append_field(out, "efficiency", c.efficiency);
    out += ',';
    append_field(out, "loop_fraction", c.loop_fraction);
    out += ',';
    append_field(out, "shard_setup_fraction", c.shard_setup_fraction);
    out += ',';
    append_field(out, "worker_setup_fraction", c.worker_setup_fraction);
    out += ',';
    append_field(out, "merge_fraction", c.merge_fraction);
    out += ',';
    append_field(out, "checkpoint_fraction", c.checkpoint_fraction);
    out += ',';
    append_field(out, "idle_fraction", c.idle_fraction);
    out += ',';
    append_field(out, "load_imbalance", c.load_imbalance);
    out += '}';
  }
  out += "],";
  append_field(out, "serial_fraction", serial_fraction);
  out += ',';
  append_field(out, "amdahl_r2", amdahl_r2);
  out += ",\"attribution\":{";
  append_field(out, "serial_fraction", attribution.serial_fraction);
  out += ',';
  append_field(out, "load_imbalance", attribution.load_imbalance);
  out += ',';
  append_field(out, "setup_cost", attribution.setup_cost);
  out += ',';
  append_field(out, "pool_idle", attribution.pool_idle);
  out += "},\"causes\":[";
  for (std::size_t i = 0; i < causes.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += json_escape(causes[i]);
    out += '"';
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Collector.
// ---------------------------------------------------------------------------
#if SSVBR_OBS_ENABLED

namespace {

std::uint64_t next_run_id() {
  static std::atomic<std::uint64_t> seq{0};
  return seq.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::mutex& jsonl_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

TelemetryCollector::TelemetryCollector(std::string_view study, unsigned threads,
                                       std::uint64_t shards_total,
                                       std::uint64_t shard_size)
    : study_(study),
      run_id_(next_run_id()),
      threads_(threads),
      shards_total_(shards_total),
      shard_size_(shard_size),
      start_ns_(now_ns()),
      slots_(threads == 0 ? 1 : threads) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].totals.thread = static_cast<std::uint32_t>(i);
  }
}

void TelemetryCollector::Worker::begin_setup() noexcept {
  mark_ns_ = now_ns();
}

void TelemetryCollector::Worker::end_setup() noexcept {
  if (col_ == nullptr) return;
  const std::uint64_t end = now_ns();
  auto& slot = col_->slots_[thread_ % col_->slots_.size()];
  slot.totals.setup_ns += end - mark_ns_;
  last_end_ns_ = end;
}

void TelemetryCollector::Worker::claimed() noexcept {
  claim_ns_ = now_ns();
  loop_start_ns_ = claim_ns_;
}

void TelemetryCollector::Worker::loop_started() noexcept {
  loop_start_ns_ = now_ns();
}

void TelemetryCollector::Worker::shard_done(std::uint64_t shard,
                                            std::uint64_t task,
                                            std::uint64_t replications) {
  if (col_ == nullptr) return;
  const std::uint64_t end = now_ns();
  auto& slot = col_->slots_[thread_ % col_->slots_.size()];
  ShardTelemetry ev;
  ev.shard = shard;
  ev.task = task;
  ev.thread = thread_;
  ev.replications = replications;
  ev.claim_ns = claim_ns_ - std::min(claim_ns_, col_->start_ns_);
  const std::uint64_t baseline =
      last_end_ns_ != 0 ? last_end_ns_ : col_->start_ns_;
  ev.wait_ns = claim_ns_ > baseline ? claim_ns_ - baseline : 0;
  ev.setup_ns = loop_start_ns_ - std::min(loop_start_ns_, claim_ns_);
  ev.loop_ns = end - std::min(end, loop_start_ns_);
  slot.events.push_back(ev);
  slot.totals.busy_ns += ev.exec_ns();
  slot.totals.shards += 1;
  slot.totals.replications += replications;
  last_end_ns_ = end;
}

void TelemetryCollector::add_merge_ns(std::uint64_t ns) noexcept {
  merge_ns_ += ns;
}

void TelemetryCollector::add_checkpoint_ns(std::uint64_t ns) noexcept {
  checkpoint_ns_ += ns;
}

RunTelemetry TelemetryCollector::finish(std::uint64_t shards_executed,
                                        std::uint64_t replications) {
  RunTelemetry t;
  t.enabled = true;
  t.study = study_;
  t.run_id = run_id_;
  t.threads = threads_;
  t.shard_size = shard_size_;
  t.shards_total = shards_total_;
  t.shards_executed = shards_executed;
  t.replications = replications;
  t.wall_seconds = kNsToSec * static_cast<double>(now_ns() - start_ns_);
  t.merge_seconds = kNsToSec * static_cast<double>(merge_ns_);
  t.checkpoint_seconds = kNsToSec * static_cast<double>(checkpoint_ns_);
  std::size_t total_events = 0;
  for (const auto& slot : slots_) total_events += slot.events.size();
  t.workers.reserve(slots_.size());
  t.shard_events.reserve(total_events);
  for (const auto& slot : slots_) {
    t.workers.push_back(slot.totals);
    t.shard_events.insert(t.shard_events.end(), slot.events.begin(),
                          slot.events.end());
  }
  if (const char* path = std::getenv("SSVBR_TELEMETRY_JSONL")) {
    append_telemetry_jsonl(path, t);
  }
  return t;
}

void append_telemetry_jsonl(const std::string& path, const RunTelemetry& t) {
  std::string out;
  out.reserve(256 + 128 * t.shard_events.size());
  out += "{\"event\":\"run\",\"schema\":1,";
  append_run_scalars(out, t);
  out += "}\n";
  for (const auto& w : t.workers) {
    out += "{\"event\":\"worker\",";
    append_field(out, "run", t.run_id);
    out += ',';
    // Re-use the worker object body minus its braces.
    const std::string body = worker_json(w);
    out.append(body, 1, body.size() - 2);
    out += "}\n";
  }
  for (const auto& e : t.shard_events) {
    out += "{\"event\":\"shard\",";
    append_field(out, "run", t.run_id);
    out += ',';
    const std::string body = shard_json(e);
    out.append(body, 1, body.size() - 2);
    out += "}\n";
  }
  const std::lock_guard<std::mutex> lock(jsonl_mutex());
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "ssvbr: cannot append telemetry to '%s'\n",
                 path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

#endif  // SSVBR_OBS_ENABLED

}  // namespace ssvbr::obs
