#include "fft/fft.h"

#include <cmath>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/math_util.h"
#include "obs/instrument.h"

namespace ssvbr::fft {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  SSVBR_REQUIRE(is_power_of_two(n), "FFT length must be a power of two");
  rev_.resize(n);
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    rev_[i] = static_cast<std::uint32_t>(j);
  }
  // One table w_j = e^{-2*pi*i*j/n}, j < n/2, covers every stage: the
  // butterfly at offset k of a length-`len` block uses w_{k * n/len}.
  // Each entry is evaluated directly so the table carries no
  // accumulated rounding error.
  twiddle_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    twiddle_[k] = Complex(std::cos(angle), std::sin(angle));
  }
  if (n >= 2) half_ = get(n / 2);
}

std::shared_ptr<const FftPlan> FftPlan::get(std::size_t n) {
  // Readers share the lock: after warm-up every thread's lookup takes
  // the uncontended shared path instead of serializing on the exclusive
  // mutex the cache used to hold. (Long-lived samplers additionally
  // cache the resolved shared_ptr — e.g. DaviesHarteModel::plan_ and
  // the per-thread plan slot in stats::autocorrelation_fft — so the
  // steady state of a replication loop does not touch this map at all.)
  static std::shared_mutex mutex;
  static std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>> cache;
  {
    const std::shared_lock<std::shared_mutex> lock(mutex);
    const auto it = cache.find(n);
    if (it != cache.end()) return it->second;
  }
  // Build OUTSIDE any lock: the constructor recurses into get(n / 2)
  // for the half-size plan, which would self-deadlock a held
  // shared_mutex (the old recursive_mutex existed for this call chain).
  // Two threads may race to build the same size; the first insert wins
  // and the loser's copy is dropped — plans are immutable, so both are
  // interchangeable.
  auto plan = std::make_shared<const FftPlan>(n);
  const std::unique_lock<std::shared_mutex> lock(mutex);
  return cache.emplace(n, std::move(plan)).first->second;
}

void FftPlan::transform(std::span<Complex> data, bool inverse) const {
  SSVBR_REQUIRE(data.size() == n_, "FFT input does not match the plan size");
  SSVBR_COUNTER_ADD("fft.transforms", 1);
  SSVBR_COUNTER_ADD("fft.points", n_);
  Complex* const x = data.data();
  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t r = rev_[i];
    if (i < r) std::swap(x[i], x[r]);
  }
  const Complex* const w = twiddle_.data();
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n_ / len;
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex wk = w[k * stride];
        const Complex u = x[i + k];
        const Complex t = x[i + k + half];
        // v = t * wk (or t * conj(wk) for the inverse), expanded so the
        // conjugation costs a sign instead of a temporary.
        const double vr = inverse ? t.real() * wk.real() + t.imag() * wk.imag()
                                  : t.real() * wk.real() - t.imag() * wk.imag();
        const double vi = inverse ? t.imag() * wk.real() - t.real() * wk.imag()
                                  : t.imag() * wk.real() + t.real() * wk.imag();
        x[i + k] = Complex(u.real() + vr, u.imag() + vi);
        x[i + k + half] = Complex(u.real() - vr, u.imag() - vi);
      }
    }
  }
}

void FftPlan::forward(std::span<Complex> data) const { transform(data, false); }

void FftPlan::inverse(std::span<Complex> data) const { transform(data, true); }

void FftPlan::forward_real(std::span<const double> in, std::span<Complex> out,
                           std::vector<Complex>& scratch) const {
  SSVBR_REQUIRE(n_ >= 2, "real-input transform needs length >= 2");
  SSVBR_REQUIRE(in.size() == n_ && out.size() == n_,
                "real-input transform spans must match the plan size");
  const std::size_t m = n_ / 2;
  scratch.resize(m);
  for (std::size_t k = 0; k < m; ++k) scratch[k] = Complex(in[2 * k], in[2 * k + 1]);
  half_->forward(scratch);
  // Unpack: with Z the half-size transform of evens + i*odds,
  //   E_k = (Z_k + conj(Z_{m-k})) / 2   (spectrum of the even samples)
  //   O_k = -i (Z_k - conj(Z_{m-k})) / 2 (spectrum of the odd samples)
  //   X_k = E_k + w^k O_k, X_{k+m} = E_k - w^k O_k, w = e^{-2*pi*i/n}.
  const double re0 = scratch[0].real();
  const double im0 = scratch[0].imag();
  out[0] = Complex(re0 + im0, 0.0);
  out[m] = Complex(re0 - im0, 0.0);
  for (std::size_t k = 1; k < m; ++k) {
    const Complex zk = scratch[k];
    const Complex zc = std::conj(scratch[m - k]);
    const Complex e = 0.5 * (zk + zc);
    const Complex o = Complex(0.0, -0.5) * (zk - zc);
    const Complex wo = twiddle_[k] * o;
    out[k] = e + wo;
    out[k + m] = e - wo;
  }
}

void FftPlan::synthesize_real(std::span<const Complex> spec, std::span<double> out,
                              std::vector<Complex>& scratch) const {
  SSVBR_REQUIRE(n_ >= 2, "real synthesis needs length >= 2");
  SSVBR_REQUIRE(spec.size() >= n_ / 2 + 1 && out.size() == n_,
                "real synthesis needs n/2+1 spectrum bins and n outputs");
  // Target: out[j] = Re( sum_k spec_k e^{-2*pi*i*jk/n} ). With
  // Y = conj(spec) this is the unnormalized inverse DFT of Y, i.e. the
  // real sequence whose forward spectrum is n*Y. Inverting the
  // forward_real unpacking (X_k = E_k + w^k O_k, X Hermitian) packs the
  // half-size inverse input as
  //   scratch_k = (Y_k + conj(Y_{m-k})) + i * w^{-k} (Y_k - conj(Y_{m-k}));
  // the scale factors cancel so the unpack below needs none.
  const std::size_t m = n_ / 2;
  scratch.resize(m);
  {
    // k = 0 uses Y_0 and Y_m, both real for a Hermitian spectrum.
    const Complex y0 = std::conj(spec[0]);
    const Complex ym = std::conj(spec[m]);
    scratch[0] = (y0 + ym) + Complex(0.0, 1.0) * (y0 - ym);
  }
  for (std::size_t k = 1; k < m; ++k) {
    const Complex yk = std::conj(spec[k]);
    const Complex yc = spec[m - k];  // conj(Y_{m-k})
    const Complex winv = std::conj(twiddle_[k]);  // e^{+2*pi*i*k/n}
    scratch[k] = (yk + yc) + Complex(0.0, 1.0) * (winv * (yk - yc));
  }
  half_->inverse(scratch);
  for (std::size_t j = 0; j < m; ++j) {
    out[2 * j] = scratch[j].real();
    out[2 * j + 1] = scratch[j].imag();
  }
}

void forward_pow2(std::span<Complex> data) {
  SSVBR_REQUIRE(!data.empty(), "FFT input must be non-empty");
  FftPlan::get(data.size())->forward(data);
}

void inverse_pow2(std::span<Complex> data) {
  SSVBR_REQUIRE(!data.empty(), "FFT input must be non-empty");
  FftPlan::get(data.size())->inverse(data);
}

std::vector<Complex> forward(std::span<const Complex> data) {
  const std::size_t n = data.size();
  SSVBR_REQUIRE(n > 0, "FFT input must be non-empty");
  if (is_power_of_two(n)) {
    std::vector<Complex> out(data.begin(), data.end());
    forward_pow2(out);
    return out;
  }
  // Bluestein: x_k * chirp_k convolved with the conjugate chirp.
  // chirp_k = e^{-i*pi*k^2/n}; indices are reduced mod 2n to keep the
  // chirp argument bounded (k^2 overflows double precision of the angle
  // for large k otherwise).
  const std::size_t m = next_power_of_two(2 * n + 1);
  const std::shared_ptr<const FftPlan> plan = FftPlan::get(m);
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = -kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }
  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    b[m - k] = std::conj(chirp[k]);
  }
  plan->forward(a);
  plan->forward(b);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  plan->inverse(a);
  std::vector<Complex> out(n);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * scale * chirp[k];
  return out;
}

std::vector<Complex> inverse(std::span<const Complex> data) {
  const std::size_t n = data.size();
  SSVBR_REQUIRE(n > 0, "FFT input must be non-empty");
  // inverse(x) = conj(forward(conj(x))) / n
  std::vector<Complex> tmp(n);
  for (std::size_t k = 0; k < n; ++k) tmp[k] = std::conj(data[k]);
  std::vector<Complex> fwd = forward(tmp);
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) fwd[k] = std::conj(fwd[k]) * scale;
  return fwd;
}

std::vector<Complex> forward_real(std::span<const double> data) {
  const std::size_t n = data.size();
  SSVBR_REQUIRE(n > 0, "FFT input must be non-empty");
  if (n >= 2 && is_power_of_two(n)) {
    std::vector<Complex> out(n);
    std::vector<Complex> scratch;
    FftPlan::get(n)->forward_real(data, out, scratch);
    return out;
  }
  std::vector<Complex> tmp(n);
  for (std::size_t k = 0; k < n; ++k) tmp[k] = Complex(data[k], 0.0);
  return forward(tmp);
}

std::vector<Complex> circular_convolution(std::span<const Complex> a,
                                          std::span<const Complex> b) {
  SSVBR_REQUIRE(a.size() == b.size(), "circular convolution needs equal lengths");
  std::vector<Complex> fa = forward(a);
  const std::vector<Complex> fb = forward(b);
  for (std::size_t k = 0; k < fa.size(); ++k) fa[k] *= fb[k];
  return inverse(fa);
}

std::vector<double> periodogram(std::span<const double> data) {
  const std::vector<Complex> f = forward_real(data);
  std::vector<double> out(f.size());
  const double scale = 1.0 / static_cast<double>(data.size());
  for (std::size_t k = 0; k < f.size(); ++k) out[k] = std::norm(f[k]) * scale;
  return out;
}

}  // namespace ssvbr::fft
