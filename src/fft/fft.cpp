#include "fft/fft.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "obs/instrument.h"

namespace ssvbr::fft {

namespace {

// Bit-reversal permutation for the iterative radix-2 kernel.
void bit_reverse_permute(std::span<Complex> data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

// Radix-2 Cooley-Tukey; `sign` is -1 for the forward transform and +1
// for the inverse (mathematics convention e^{sign * 2*pi*i*k/n}).
void fft_pow2(std::span<Complex> data, int sign) {
  const std::size_t n = data.size();
  SSVBR_REQUIRE(is_power_of_two(n), "FFT length must be a power of two");
  SSVBR_COUNTER_ADD("fft.transforms", 1);
  SSVBR_COUNTER_ADD("fft.points", n);
  bit_reverse_permute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = static_cast<double>(sign) * kTwoPi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void forward_pow2(std::span<Complex> data) { fft_pow2(data, -1); }

void inverse_pow2(std::span<Complex> data) { fft_pow2(data, +1); }

std::vector<Complex> forward(std::span<const Complex> data) {
  const std::size_t n = data.size();
  SSVBR_REQUIRE(n > 0, "FFT input must be non-empty");
  if (is_power_of_two(n)) {
    std::vector<Complex> out(data.begin(), data.end());
    forward_pow2(out);
    return out;
  }
  // Bluestein: x_k * chirp_k convolved with the conjugate chirp.
  // chirp_k = e^{-i*pi*k^2/n}; indices are reduced mod 2n to keep the
  // chirp argument bounded (k^2 overflows double precision of the angle
  // for large k otherwise).
  const std::size_t m = next_power_of_two(2 * n + 1);
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = -kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }
  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    b[m - k] = std::conj(chirp[k]);
  }
  forward_pow2(a);
  forward_pow2(b);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  inverse_pow2(a);
  std::vector<Complex> out(n);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * scale * chirp[k];
  return out;
}

std::vector<Complex> inverse(std::span<const Complex> data) {
  const std::size_t n = data.size();
  SSVBR_REQUIRE(n > 0, "FFT input must be non-empty");
  // inverse(x) = conj(forward(conj(x))) / n
  std::vector<Complex> tmp(n);
  for (std::size_t k = 0; k < n; ++k) tmp[k] = std::conj(data[k]);
  std::vector<Complex> fwd = forward(tmp);
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) fwd[k] = std::conj(fwd[k]) * scale;
  return fwd;
}

std::vector<Complex> forward_real(std::span<const double> data) {
  std::vector<Complex> tmp(data.size());
  for (std::size_t k = 0; k < data.size(); ++k) tmp[k] = Complex(data[k], 0.0);
  return forward(tmp);
}

std::vector<Complex> circular_convolution(std::span<const Complex> a,
                                          std::span<const Complex> b) {
  SSVBR_REQUIRE(a.size() == b.size(), "circular convolution needs equal lengths");
  std::vector<Complex> fa = forward(a);
  const std::vector<Complex> fb = forward(b);
  for (std::size_t k = 0; k < fa.size(); ++k) fa[k] *= fb[k];
  return inverse(fa);
}

std::vector<double> periodogram(std::span<const double> data) {
  const std::vector<Complex> f = forward_real(data);
  std::vector<double> out(f.size());
  const double scale = 1.0 / static_cast<double>(data.size());
  for (std::size_t k = 0; k < f.size(); ++k) out[k] = std::norm(f[k]) * scale;
  return out;
}

}  // namespace ssvbr::fft
