// ssvbr/fft/fft.h
//
// Minimal self-contained FFT substrate.
//
// Provides:
//   * an iterative radix-2 decimation-in-time complex FFT,
//   * a Bluestein (chirp-z) transform for arbitrary lengths,
//   * convenience helpers for real input and circular convolution.
//
// This substrate backs two users in the library:
//   * the Davies-Harte exact fractional-Gaussian-noise generator
//     (circulant embedding of the target covariance), and
//   * O(n log n) estimation of long autocorrelation functions from
//     multi-hundred-thousand-frame traces.
//
// The implementation is deliberately dependency-free; for the problem
// sizes in this repository (n <= ~2^22) the plain radix-2 kernel is more
// than fast enough.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace ssvbr::fft {

using Complex = std::complex<double>;

/// In-place forward FFT of `data`; size must be a power of two.
/// Unnormalized: inverse(forward(x)) == n * x.
void forward_pow2(std::span<Complex> data);

/// In-place inverse FFT (unnormalized) of `data`; size must be a power of two.
void inverse_pow2(std::span<Complex> data);

/// Forward DFT of arbitrary length via Bluestein's algorithm.
/// Returns the transform; input is unmodified. Unnormalized.
std::vector<Complex> forward(std::span<const Complex> data);

/// Inverse DFT of arbitrary length (normalized by 1/n so that
/// inverse(forward(x)) == x).
std::vector<Complex> inverse(std::span<const Complex> data);

/// Forward DFT of real input of arbitrary length. Returns all n complex bins.
std::vector<Complex> forward_real(std::span<const double> data);

/// Circular convolution of two equal-length complex sequences via FFT.
std::vector<Complex> circular_convolution(std::span<const Complex> a,
                                          std::span<const Complex> b);

/// Power spectrum |F{x}|^2 / n of a real sequence, used by the
/// Wiener-Khinchin autocorrelation estimator.
std::vector<double> periodogram(std::span<const double> data);

}  // namespace ssvbr::fft
