// ssvbr/fft/fft.h
//
// Minimal self-contained FFT substrate.
//
// Provides:
//   * FftPlan — a per-size execution plan for the iterative radix-2
//     decimation-in-time complex FFT, holding the twiddle-factor and
//     bit-reversal tables so the butterfly loop performs no
//     trigonometry and no recurrence accumulation,
//   * a thread-safe process-wide plan cache keyed by length,
//   * real-input forward and Hermitian-input synthesis transforms via
//     the half-size complex-FFT trick,
//   * a Bluestein (chirp-z) transform for arbitrary lengths,
//   * convenience helpers for real input and circular convolution.
//
// This substrate backs two users in the library:
//   * the Davies-Harte exact fractional-Gaussian-noise generator
//     (circulant embedding of the target covariance), and
//   * O(n log n) estimation of long autocorrelation functions from
//     multi-hundred-thousand-frame traces.
//
// Twiddle factors are tabulated once per size by direct cos/sin
// evaluation of each angle. Besides removing a complex multiply per
// butterfly, this eliminates the numerical drift of the former
// per-butterfly `w *= wlen` recurrence, whose error grew with the
// transform length.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace ssvbr::fft {

using Complex = std::complex<double>;

/// Precomputed execution plan for power-of-two FFTs of one size.
/// Immutable after construction; safe to share across threads. Obtain
/// shared instances through FftPlan::get() — the cache makes repeated
/// transforms of the same length (the common case in replication
/// studies) pay the table setup exactly once per process.
class FftPlan {
 public:
  /// Build the tables for transforms of length `n` (a power of two).
  explicit FftPlan(std::size_t n);

  /// Shared plan for length `n` from the process-wide cache
  /// (thread-safe; the first caller per size builds the tables).
  static std::shared_ptr<const FftPlan> get(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// In-place forward FFT (unnormalized, e^{-2*pi*i*jk/n} convention);
  /// data.size() must equal size().
  void forward(std::span<Complex> data) const;

  /// In-place inverse FFT (unnormalized: inverse(forward(x)) == n*x).
  void inverse(std::span<Complex> data) const;

  /// Forward DFT of real input via one half-size complex FFT: packs
  /// in[2j] + i*in[2j+1], transforms with the size-n/2 plan, and
  /// unpacks to the full Hermitian spectrum. `in` and `out` must both
  /// have size() elements and may not alias. Requires size() >= 2.
  /// `scratch` provides the n/2 complex workspace (resized as needed).
  void forward_real(std::span<const double> in, std::span<Complex> out,
                    std::vector<Complex>& scratch) const;

  /// Synthesis of a real sequence from a Hermitian spectrum with the
  /// forward sign convention: out[j] = Re( sum_k spec[k] e^{-2*pi*i*jk/n} ),
  /// exact when spec[n-k] == conj(spec[k]). Computed with one half-size
  /// complex FFT — the transform Davies-Harte sampling needs. Only the
  /// non-redundant bins spec[0..n/2] are read (spec.size() >= n/2 + 1);
  /// `out` must have size() elements and may not alias `spec`.
  /// Requires size() >= 2.
  void synthesize_real(std::span<const Complex> spec, std::span<double> out,
                       std::vector<Complex>& scratch) const;

 private:
  void transform(std::span<Complex> data, bool inverse) const;

  std::size_t n_;
  std::vector<std::uint32_t> rev_;   // bit-reversal permutation
  std::vector<Complex> twiddle_;     // w_j = e^{-2*pi*i*j/n}, j < n/2
  std::shared_ptr<const FftPlan> half_;  // size n/2 plan for the real tricks
};

/// In-place forward FFT of `data`; size must be a power of two.
/// Unnormalized: inverse(forward(x)) == n * x. Uses the cached plan for
/// data.size().
void forward_pow2(std::span<Complex> data);

/// In-place inverse FFT (unnormalized) of `data`; size must be a power of two.
void inverse_pow2(std::span<Complex> data);

/// Forward DFT of arbitrary length via Bluestein's algorithm.
/// Returns the transform; input is unmodified. Unnormalized.
std::vector<Complex> forward(std::span<const Complex> data);

/// Inverse DFT of arbitrary length (normalized by 1/n so that
/// inverse(forward(x)) == x).
std::vector<Complex> inverse(std::span<const Complex> data);

/// Forward DFT of real input of arbitrary length. Returns all n complex
/// bins; power-of-two lengths >= 2 use the half-size real-input plan.
std::vector<Complex> forward_real(std::span<const double> data);

/// Circular convolution of two equal-length complex sequences via FFT.
std::vector<Complex> circular_convolution(std::span<const Complex> a,
                                          std::span<const Complex> b);

/// Power spectrum |F{x}|^2 / n of a real sequence, used by the
/// Wiener-Khinchin autocorrelation estimator.
std::vector<double> periodogram(std::span<const double> data);

}  // namespace ssvbr::fft
