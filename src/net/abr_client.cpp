#include "net/abr_client.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.h"

namespace ssvbr::net {

AbrClient::AbrClient(const AbrClientConfig& config) : config_(&config) {
  SSVBR_REQUIRE(!config_->bandwidth_trace.empty(),
                "ABR client needs a bandwidth trace");
  double trace_total = 0.0;
  for (const double c : config_->bandwidth_trace) {
    SSVBR_REQUIRE(c >= 0.0, "bandwidth trace entries must be non-negative");
    trace_total += c;
  }
  SSVBR_REQUIRE(trace_total > 0.0, "bandwidth trace must carry some capacity");
  SSVBR_REQUIRE(config_->chunk_slots >= 1, "chunks must hold at least one slot");
  SSVBR_REQUIRE(!config_->bitrate_ladder.empty(),
                "ABR client needs a bitrate ladder");
  double prev = 0.0;
  for (const double level : config_->bitrate_ladder) {
    SSVBR_REQUIRE(level > prev, "bitrate ladder must be positive and ascending");
    prev = level;
  }
  SSVBR_REQUIRE(config_->startup_chunks >= 1,
                "startup threshold must be at least one chunk");
  SSVBR_REQUIRE(config_->low_buffer_slots >= 0.0 &&
                    config_->high_buffer_slots >= config_->low_buffer_slots &&
                    config_->max_buffer_slots >= config_->high_buffer_slots,
                "ABR client needs 0 <= low <= high <= max buffer");
}

void AbrClient::begin(std::span<const double> chunk_sizes) {
  chunks_ = chunk_sizes;
  stats_ = AbrClientStats{};
  buffer_ = 0.0;
  chunk_remaining_ = 0.0;
  next_chunk_ = 0;
  fetching_ = false;
  started_ = false;
  played_ = 0.0;
  content_total_ = static_cast<double>(chunk_sizes.size()) *
                   static_cast<double>(config_->chunk_slots);
}

std::size_t AbrClient::pick_level(double buffer_slots) const noexcept {
  const std::size_t top = config_->bitrate_ladder.size() - 1;
  if (top == 0 || buffer_slots <= config_->low_buffer_slots) return 0;
  if (buffer_slots >= config_->high_buffer_slots) return top;
  // Linear map of the (low, high) buffer band onto the ladder.
  const double span = config_->high_buffer_slots - config_->low_buffer_slots;
  const double frac = (buffer_slots - config_->low_buffer_slots) / span;
  const auto level =
      static_cast<std::size_t>(frac * static_cast<double>(top + 1));
  return std::min(level, top);
}

double AbrClient::step(double capacity) {
  // Download half-slot first, so a chunk finishing now can start
  // playback in the same slot.
  double downloaded = 0.0;
  if (!fetching_ && next_chunk_ < chunks_.size() &&
      buffer_ < config_->max_buffer_slots) {
    const std::size_t level = pick_level(buffer_);
    chunk_remaining_ = config_->bitrate_ladder[level] * chunks_[next_chunk_];
    stats_.quality_sum += level;
    fetching_ = true;
  }
  if (fetching_) {
    downloaded = std::min(capacity, chunk_remaining_);
    chunk_remaining_ -= downloaded;
    stats_.downloaded += downloaded;
    if (chunk_remaining_ <= 0.0) {
      // At most one chunk completes per slot; leftover capacity in the
      // completion slot is not rolled into the next fetch (the next
      // request goes out next slot), which keeps the stepper's
      // per-slot accounting trivially exact.
      buffer_ += static_cast<double>(config_->chunk_slots);
      ++stats_.chunks_completed;
      ++next_chunk_;
      fetching_ = false;
      chunk_remaining_ = 0.0;
    }
  }
  // Playback half-slot: exactly one of the four classes per slot.
  const bool playlist_drained = next_chunk_ >= chunks_.size() && !fetching_;
  if (!started_ &&
      (buffer_ >= static_cast<double>(config_->startup_chunks) *
                      static_cast<double>(config_->chunk_slots) ||
       (playlist_drained && buffer_ > 0.0))) {
    // Short playlists can end below the startup threshold; play what
    // arrived rather than waiting forever.
    started_ = true;
  }
  if (!started_) {
    ++stats_.startup_slots;
  } else if (played_ >= content_total_) {
    ++stats_.finished_slots;
  } else if (buffer_ > 0.0) {
    buffer_ -= 1.0;
    played_ += 1.0;
    ++stats_.play_slots;
  } else {
    ++stats_.rebuffer_slots;
  }
  stats_.buffer_end = buffer_;
  return downloaded;
}

void AbrClient::run(std::span<const double> chunk_sizes, std::size_t slots,
                    std::span<double> downloads_out) {
  SSVBR_REQUIRE(downloads_out.empty() || downloads_out.size() == slots,
                "downloads span must be empty or hold one entry per slot");
  begin(chunk_sizes);
  const std::size_t trace_n = config_->bandwidth_trace.size();
  for (std::size_t t = 0; t < slots; ++t) {
    const double d = step(config_->bandwidth_trace[t % trace_n]);
    if (!downloads_out.empty()) downloads_out[t] = d;
  }
}

}  // namespace ssvbr::net
