// ssvbr/net/run.h
//
// Front door for network-scale scenario studies: a TopologyRunRequest
// bundles a scenario (topology + source populations + optional ABR
// flow) with replications, seed, engine shape, checkpointing, and run
// controls, and runs through the same deterministic shard machinery as
// the single-queue estimators (engine/run.h). Replication i draws from
// the base engine jumped i times; shards merge in index order; results
// are bit-identical across thread counts and across
// checkpoint/resume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/run.h"
#include "net/simulator.h"

namespace ssvbr::net {

/// Mergeable whole-study totals of scenario replications. Sums (and
/// min/max extrema) merge exactly, so the merged result is bit-exact
/// regardless of how replications were grouped into shards.
class TopologyAccumulator {
 public:
  struct NodeTotals {
    double arrived = 0.0;
    double served = 0.0;
    double dropped = 0.0;
    double end_queue = 0.0;   ///< summed over replications
    double sum_queue = 0.0;
    double peak_queue = 0.0;  ///< max over replications
    std::uint64_t overflow_slots = 0;
  };

  void add(const ScenarioStats& s);
  void merge(const TopologyAccumulator& other);

  std::size_t count() const noexcept { return count_; }
  std::size_t n_nodes() const noexcept { return nodes_.size(); }
  std::uint64_t slots() const noexcept { return slots_; }
  std::uint64_t measured_slots() const noexcept { return measured_; }
  const std::vector<NodeTotals>& nodes() const noexcept { return nodes_; }
  double external_arrived() const noexcept { return external_arrived_; }
  double delivered() const noexcept { return delivered_; }
  double in_flight() const noexcept { return in_flight_; }
  double abr_sent() const noexcept { return abr_sent_; }
  double abr_rate_sum() const noexcept { return abr_rate_sum_; }
  double abr_min_rate() const noexcept { return count_ > 0 ? abr_min_ : 0.0; }
  double abr_max_rate() const noexcept { return count_ > 0 ? abr_max_ : 0.0; }
  std::uint64_t abr_congested_slots() const noexcept { return abr_congested_; }

  /// Checkpoint restore (see decode_words below).
  static TopologyAccumulator from_words(const std::vector<std::uint64_t>& words);
  std::vector<std::uint64_t> to_words() const;

 private:
  std::vector<NodeTotals> nodes_;
  std::size_t count_ = 0;
  std::uint64_t slots_ = 0;
  std::uint64_t measured_ = 0;
  double external_arrived_ = 0.0;
  double delivered_ = 0.0;
  double in_flight_ = 0.0;
  double abr_sent_ = 0.0;
  double abr_rate_sum_ = 0.0;
  double abr_min_ = std::numeric_limits<double>::infinity();
  double abr_max_ = -std::numeric_limits<double>::infinity();
  std::uint64_t abr_congested_ = 0;
};

/// Stable checkpoint format hooks (found via ADL by the engine's
/// durable layer, like the "hit"/"score" accumulators).
inline const char* accumulator_name(const TopologyAccumulator&) noexcept {
  return "topology";
}
inline std::vector<std::uint64_t> encode_words(const TopologyAccumulator& acc) {
  return acc.to_words();
}
inline void decode_words(const std::vector<std::uint64_t>& words,
                         TopologyAccumulator& out) {
  out = TopologyAccumulator::from_words(words);
}

/// One network-scale campaign.
struct TopologyRunRequest {
  ScenarioConfig scenario;
  std::size_t replications = 0;
  std::uint64_t seed = 0;
  engine::EngineConfig engine;
  engine::CheckpointPolicy checkpoint;
  engine::RunControls controls;
};

/// Derived per-node steady-state report (all ratios over the completed
/// replications).
struct NodeReport {
  double loss_ratio = 0.0;         ///< dropped / arrived (whole run)
  double overflow_fraction = 0.0;  ///< post-warmup P(Q > threshold)
  double mean_queue = 0.0;         ///< post-warmup mean end-of-slot queue
  double peak_queue = 0.0;         ///< max over replications
  double mean_delay_slots = 0.0;   ///< Little's law: mean_queue / throughput
  double utilization = 0.0;        ///< served / (slots * service_rate)
};

struct TopologyRunResult {
  engine::RunStatus status = engine::RunStatus::kComplete;
  std::size_t replications_done = 0;
  std::size_t replications_total = 0;
  double elapsed_seconds = 0.0;
  engine::RunProvenance provenance;
  /// Shard-level execution telemetry (obs/telemetry.h); empty when the
  /// library was built without -DSSVBR_OBS=ON.
  obs::RunTelemetry telemetry;

  /// Raw merged totals (bit-exact across thread counts and resumes).
  TopologyAccumulator totals;
  /// Derived per-node reports; empty until replications complete.
  std::vector<NodeReport> nodes;
  double end_to_end_loss_ratio = 0.0;  ///< sum dropped / work injected
  double delivered_fraction = 0.0;     ///< delivered / work injected
  double abr_mean_rate = 0.0;          ///< post-warmup mean ABR rate
  double abr_congested_fraction = 0.0; ///< post-warmup congested slots

  bool complete() const noexcept {
    return status == engine::RunStatus::kComplete;
  }
};

/// Structural validation mirroring engine::validate: returns the first
/// problem found, or nullopt if the request is runnable.
std::optional<Error> validate(const TopologyRunRequest& request);

/// Campaign fingerprint over everything that shapes the numbers —
/// topology, per-class config (including the per-kind generator
/// parameters), and the ABR flow. Model objects are represented by
/// their observable moments: a mistake detector for checkpoint resume,
/// not a cryptographic identity.
std::uint64_t config_hash_of(const TopologyRunRequest& request);

/// Run a campaign with a private engine and RNG seeded from the request.
TopologyRunResult run_topology(const TopologyRunRequest& request);

/// Same, on a caller-owned engine/rng (for engine reuse and for
/// deterministic composition with other studies: on complete the rng
/// has been advanced by `replications` jumps).
TopologyRunResult run_topology_with(const TopologyRunRequest& request,
                                    engine::ReplicationEngine& engine,
                                    RandomEngine& rng);

}  // namespace ssvbr::net
