#include "net/topology.h"

#include <cmath>
#include <utility>

#include "common/error.h"

namespace ssvbr::net {

Topology::Topology(std::vector<NodeConfig> nodes) : nodes_(std::move(nodes)) {
  SSVBR_REQUIRE(!nodes_.empty(), "topology needs at least one node");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeConfig& n = nodes_[i];
    SSVBR_REQUIRE(n.service_rate > 0.0, "node service rate must be positive");
    SSVBR_REQUIRE(n.buffer > 0.0, "node buffer must be positive (or infinite)");
    SSVBR_REQUIRE(!(n.overflow_threshold < 0.0),
                  "overflow threshold must be non-negative");
    SSVBR_REQUIRE(n.link_delay >= 1, "link delay must be at least one slot");
    SSVBR_REQUIRE(n.downstream == kSink || n.downstream < nodes_.size(),
                  "downstream must name an existing node or kSink");
    SSVBR_REQUIRE(n.downstream != i, "a node cannot feed itself");
  }
  // Out-degree is one, so a walk that has not reached the sink after
  // n_nodes hops must have entered a cycle.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::size_t at = i;
    std::size_t hops = 0;
    while (at != kSink) {
      SSVBR_REQUIRE(hops++ < nodes_.size(), "topology contains a routing cycle");
      at = nodes_[at].downstream;
    }
  }
}

std::size_t Topology::depth(std::size_t i) const {
  SSVBR_REQUIRE(i < nodes_.size(), "node index out of range");
  std::size_t hops = 0;
  for (std::size_t at = i; at != kSink; at = nodes_[at].downstream) ++hops;
  return hops;
}

std::vector<std::size_t> Topology::path_to_sink(std::size_t from) const {
  SSVBR_REQUIRE(from < nodes_.size(), "node index out of range");
  std::vector<std::size_t> path;
  for (std::size_t at = from; at != kSink; at = nodes_[at].downstream) {
    path.push_back(at);
  }
  return path;
}

std::vector<std::size_t> Topology::leaves() const {
  std::vector<char> fed(nodes_.size(), 0);
  for (const NodeConfig& n : nodes_) {
    if (n.downstream != kSink) fed[n.downstream] = 1;
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!fed[i]) out.push_back(i);
  }
  return out;
}

std::size_t Topology::max_link_delay() const {
  std::size_t d = 1;
  for (const NodeConfig& n : nodes_) d = std::max(d, n.link_delay);
  return d;
}

namespace {

std::size_t pow_size(std::size_t base, std::size_t exp) {
  std::size_t v = 1;
  for (std::size_t i = 0; i < exp; ++i) v *= base;
  return v;
}

}  // namespace

Topology make_mux_tree(std::size_t levels, std::size_t fanout,
                       std::span<const double> level_service,
                       std::span<const double> level_buffer) {
  SSVBR_REQUIRE(levels >= 1, "mux tree needs at least one level");
  SSVBR_REQUIRE(fanout >= 1, "mux tree fanout must be at least 1");
  SSVBR_REQUIRE(level_service.size() == levels && level_buffer.size() == levels,
                "need one service rate and one buffer per tree level");
  std::vector<NodeConfig> nodes;
  // Level l has fanout^(levels-1-l) nodes; child j of level l feeds
  // node j/fanout of level l+1.
  std::vector<std::size_t> level_offset(levels + 1, 0);
  for (std::size_t l = 0; l < levels; ++l) {
    level_offset[l + 1] = level_offset[l] + pow_size(fanout, levels - 1 - l);
  }
  for (std::size_t l = 0; l < levels; ++l) {
    const std::size_t count = pow_size(fanout, levels - 1 - l);
    for (std::size_t j = 0; j < count; ++j) {
      NodeConfig n;
      n.service_rate = level_service[l];
      n.buffer = level_buffer[l];
      n.downstream = l + 1 < levels ? level_offset[l + 1] + j / fanout : kSink;
      nodes.push_back(n);
    }
  }
  return Topology(std::move(nodes));
}

std::vector<std::size_t> mux_tree_leaves(std::size_t levels, std::size_t fanout) {
  SSVBR_REQUIRE(levels >= 1 && fanout >= 1, "invalid mux tree shape");
  std::vector<std::size_t> out(pow_size(fanout, levels - 1));
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = i;
  return out;
}

Topology make_tandem(std::size_t length, double service_rate, double buffer) {
  SSVBR_REQUIRE(length >= 1, "tandem needs at least one queue");
  std::vector<NodeConfig> nodes(length);
  for (std::size_t i = 0; i < length; ++i) {
    nodes[i].service_rate = service_rate;
    nodes[i].buffer = buffer;
    nodes[i].downstream = i + 1 < length ? i + 1 : kSink;
  }
  return Topology(std::move(nodes));
}

}  // namespace ssvbr::net
