#include "net/run.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "engine/checkpoint.h"
#include "engine/study_harness.h"
#include "obs/instrument.h"
#include "obs/metrics.h"

namespace ssvbr::net {

// ------------------------------------------------------- Accumulator

void TopologyAccumulator::add(const ScenarioStats& s) {
  if (count_ == 0 && nodes_.empty()) {
    nodes_.resize(s.nodes.size());
    slots_ = s.slots;
    measured_ = s.measured_slots;
  }
  ++count_;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeTotals& n = nodes_[i];
    const NodeStats& src = s.nodes[i];
    n.arrived += src.arrived;
    n.served += src.served;
    n.dropped += src.dropped;
    n.end_queue += src.end_queue;
    n.sum_queue += src.sum_queue;
    n.peak_queue = std::max(n.peak_queue, src.peak_queue);
    n.overflow_slots += src.overflow_slots;
  }
  external_arrived_ += s.external_arrived;
  delivered_ += s.delivered;
  in_flight_ += s.in_flight;
  abr_sent_ += s.abr_sent;
  abr_rate_sum_ += s.abr_rate_sum;
  abr_min_ = std::min(abr_min_, s.abr_min_rate);
  abr_max_ = std::max(abr_max_, s.abr_max_rate);
  abr_congested_ += s.abr_congested_slots;
}

void TopologyAccumulator::merge(const TopologyAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (nodes_.size() != other.nodes_.size() || slots_ != other.slots_ ||
      measured_ != other.measured_) {
    throw std::runtime_error("topology accumulator: shard shape mismatch");
  }
  count_ += other.count_;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeTotals& n = nodes_[i];
    const NodeTotals& o = other.nodes_[i];
    n.arrived += o.arrived;
    n.served += o.served;
    n.dropped += o.dropped;
    n.end_queue += o.end_queue;
    n.sum_queue += o.sum_queue;
    n.peak_queue = std::max(n.peak_queue, o.peak_queue);
    n.overflow_slots += o.overflow_slots;
  }
  external_arrived_ += other.external_arrived_;
  delivered_ += other.delivered_;
  in_flight_ += other.in_flight_;
  abr_sent_ += other.abr_sent_;
  abr_rate_sum_ += other.abr_rate_sum_;
  abr_min_ = std::min(abr_min_, other.abr_min_);
  abr_max_ = std::max(abr_max_, other.abr_max_);
  abr_congested_ += other.abr_congested_;
}

namespace {

constexpr std::size_t kHeaderWords = 12;
constexpr std::size_t kWordsPerNode = 7;

}  // namespace

std::vector<std::uint64_t> TopologyAccumulator::to_words() const {
  std::vector<std::uint64_t> w;
  w.reserve(kHeaderWords + kWordsPerNode * nodes_.size());
  w.push_back(static_cast<std::uint64_t>(nodes_.size()));
  w.push_back(static_cast<std::uint64_t>(count_));
  w.push_back(slots_);
  w.push_back(measured_);
  w.push_back(std::bit_cast<std::uint64_t>(external_arrived_));
  w.push_back(std::bit_cast<std::uint64_t>(delivered_));
  w.push_back(std::bit_cast<std::uint64_t>(in_flight_));
  w.push_back(std::bit_cast<std::uint64_t>(abr_sent_));
  w.push_back(std::bit_cast<std::uint64_t>(abr_rate_sum_));
  w.push_back(std::bit_cast<std::uint64_t>(abr_min_));
  w.push_back(std::bit_cast<std::uint64_t>(abr_max_));
  w.push_back(abr_congested_);
  for (const NodeTotals& n : nodes_) {
    w.push_back(std::bit_cast<std::uint64_t>(n.arrived));
    w.push_back(std::bit_cast<std::uint64_t>(n.served));
    w.push_back(std::bit_cast<std::uint64_t>(n.dropped));
    w.push_back(std::bit_cast<std::uint64_t>(n.end_queue));
    w.push_back(std::bit_cast<std::uint64_t>(n.sum_queue));
    w.push_back(std::bit_cast<std::uint64_t>(n.peak_queue));
    w.push_back(n.overflow_slots);
  }
  return w;
}

TopologyAccumulator TopologyAccumulator::from_words(
    const std::vector<std::uint64_t>& words) {
  if (words.size() < kHeaderWords) {
    throw std::runtime_error("topology accumulator: truncated words");
  }
  const std::size_t n_nodes = static_cast<std::size_t>(words[0]);
  if (words.size() != kHeaderWords + kWordsPerNode * n_nodes) {
    throw std::runtime_error("topology accumulator: bad word count");
  }
  TopologyAccumulator out;
  out.nodes_.resize(n_nodes);
  out.count_ = static_cast<std::size_t>(words[1]);
  out.slots_ = words[2];
  out.measured_ = words[3];
  out.external_arrived_ = std::bit_cast<double>(words[4]);
  out.delivered_ = std::bit_cast<double>(words[5]);
  out.in_flight_ = std::bit_cast<double>(words[6]);
  out.abr_sent_ = std::bit_cast<double>(words[7]);
  out.abr_rate_sum_ = std::bit_cast<double>(words[8]);
  out.abr_min_ = std::bit_cast<double>(words[9]);
  out.abr_max_ = std::bit_cast<double>(words[10]);
  out.abr_congested_ = words[11];
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const std::uint64_t* w = words.data() + kHeaderWords + kWordsPerNode * i;
    NodeTotals& n = out.nodes_[i];
    n.arrived = std::bit_cast<double>(w[0]);
    n.served = std::bit_cast<double>(w[1]);
    n.dropped = std::bit_cast<double>(w[2]);
    n.end_queue = std::bit_cast<double>(w[3]);
    n.sum_queue = std::bit_cast<double>(w[4]);
    n.peak_queue = std::bit_cast<double>(w[5]);
    n.overflow_slots = w[6];
  }
  return out;
}

static_assert(engine::MergeableAccumulator<TopologyAccumulator>);

// -------------------------------------------------------- Validation

/// Everything that shapes a campaign's numbers, pinned into the
/// snapshot fingerprint. Model objects cannot be hashed structurally;
/// their cheaply observable moments stand in for them (a mistake
/// detector, not a cryptographic identity).
std::uint64_t config_hash_of(const TopologyRunRequest& request) {
  engine::checkpoint::ConfigHasher h;
  const ScenarioConfig& sc = request.scenario;
  h.u64(sc.slots).u64(sc.warmup);
  h.u64(sc.topology.n_nodes());
  for (const NodeConfig& n : sc.topology.nodes()) {
    h.f64(n.service_rate)
        .f64(n.buffer)
        .f64(n.overflow_threshold)
        .u64(static_cast<std::uint64_t>(n.downstream))
        .u64(n.link_delay);
  }
  h.u64(sc.classes.size());
  for (const SourceClassConfig& c : sc.classes) {
    h.u64(static_cast<std::uint64_t>(c.kind))
        .u64(c.population)
        .u64(c.ingress)
        .u64(static_cast<std::uint64_t>(c.generator))
        .u64(c.slots_per_frame)
        .u64(c.segment_to_cells ? 1 : 0)
        .u64(static_cast<std::uint64_t>(c.pacing))
        .u64(c.streaming ? 1 : 0)
        .u64(c.streaming ? c.streaming_block : 0)
        .f64(c.model != nullptr ? c.model->mean() : 0.0)
        .f64(c.model != nullptr ? c.model->variance() : 0.0);
    switch (c.kind) {
      case SourceKind::kVbrModel:
        break;
      case SourceKind::kActivityModulated:
        h.f64(c.activity.busy_mean_frames)
            .f64(c.activity.idle_mean_frames)
            .f64(c.activity.idle_rate);
        break;
      case SourceKind::kMarkovLrd:
        h.f64(c.markov_hurst).f64(c.markov_on_rate).f64(c.markov_off_rate);
        break;
      case SourceKind::kAbrClient: {
        const AbrClientConfig& a = c.abr_client;
        h.u64(a.chunk_slots)
            .u64(a.startup_chunks)
            .f64(a.max_buffer_slots)
            .f64(a.low_buffer_slots)
            .f64(a.high_buffer_slots);
        h.u64(a.bitrate_ladder.size());
        for (const double level : a.bitrate_ladder) h.f64(level);
        h.u64(a.bandwidth_trace.size());
        for (const double cap : a.bandwidth_trace) h.f64(cap);
        break;
      }
    }
  }
  const AbrFlowConfig& abr = sc.abr;
  h.u64(abr.enabled ? 1 : 0);
  if (abr.enabled) {
    h.u64(abr.ingress)
        .f64(abr.initial_rate)
        .f64(abr.min_rate)
        .f64(abr.peak_rate)
        .f64(abr.additive_increase)
        .f64(abr.decrease_factor)
        .f64(abr.queue_threshold);
  }
  return h.digest();
}

namespace {

Error invalid(const char* what, const char* field) {
  return Error{ErrorCode::kInvalidArgument, what, field};
}

Error streaming_incompatible(const char* what, const char* field) {
  return Error{ErrorCode::kStreamingIncompatible, what, field};
}

Error kind_incompatible(const char* what, const char* field) {
  return Error{ErrorCode::kSourceKindIncompatible, what, field};
}

}  // namespace

std::optional<Error> validate(const TopologyRunRequest& request) {
  if (request.replications < 1) {
    return invalid("need at least one replication", "TopologyRunRequest.replications");
  }
  if (request.engine.shard_size < 1) {
    return invalid("shard size must be at least 1", "TopologyRunRequest.engine.shard_size");
  }
  if (!(request.engine.progress_interval_seconds >= 0.0)) {
    return invalid("progress interval must be non-negative",
                   "TopologyRunRequest.engine.progress_interval_seconds");
  }
  if (!(request.controls.deadline_seconds >= 0.0)) {
    return invalid("deadline must be non-negative",
                   "TopologyRunRequest.controls.deadline_seconds");
  }
  const ScenarioConfig& sc = request.scenario;
  if (sc.topology.empty()) {
    return invalid("scenario needs a topology", "TopologyRunRequest.scenario.topology");
  }
  if (sc.slots < 1) {
    return invalid("scenario needs at least one slot", "TopologyRunRequest.scenario.slots");
  }
  if (sc.warmup >= sc.slots) {
    return invalid("warmup must leave at least one measured slot",
                   "TopologyRunRequest.scenario.warmup");
  }
  if (sc.classes.empty() && !sc.abr.enabled) {
    return invalid("scenario needs at least one source class or an ABR flow",
                   "TopologyRunRequest.scenario.classes");
  }
  for (const SourceClassConfig& c : sc.classes) {
    if (c.model == nullptr && c.kind != SourceKind::kMarkovLrd) {
      return invalid("source class needs a model",
                     "TopologyRunRequest.scenario.classes[].model");
    }
    if (c.population < 1) {
      return invalid("source class population must be >= 1",
                     "TopologyRunRequest.scenario.classes[].population");
    }
    if (c.ingress >= sc.topology.n_nodes()) {
      return invalid("source class ingress is not a topology node",
                     "TopologyRunRequest.scenario.classes[].ingress");
    }
    if (c.slots_per_frame < 1 || sc.slots % c.slots_per_frame != 0) {
      return invalid("slots must be a whole number of frame intervals",
                     "TopologyRunRequest.scenario.classes[].slots_per_frame");
    }
    if (!c.segment_to_cells && c.slots_per_frame != 1) {
      return invalid("slots_per_frame > 1 requires cell segmentation",
                     "TopologyRunRequest.scenario.classes[].segment_to_cells");
    }
    if (c.kind != SourceKind::kVbrModel) {
      // Same spirit as kStreamingIncompatible: a well-formed campaign
      // asking for a feature combination the class kind cannot serve,
      // reported with its own code so callers can downgrade the config
      // programmatically.
      if (c.slots_per_frame != 1) {
        return kind_incompatible(
            "only kVbrModel classes support multi-slot frame intervals",
            "TopologyRunRequest.scenario.classes[].slots_per_frame");
      }
      if (c.segment_to_cells) {
        return kind_incompatible(
            "only kVbrModel classes support cell segmentation",
            "TopologyRunRequest.scenario.classes[].segment_to_cells");
      }
      if (c.streaming) {
        return kind_incompatible(
            "only kVbrModel classes support block streaming",
            "TopologyRunRequest.scenario.classes[].streaming");
      }
    }
    switch (c.kind) {
      case SourceKind::kVbrModel:
        break;
      case SourceKind::kActivityModulated:
        if (!(c.activity.busy_mean_frames >= 1.0) ||
            !(c.activity.idle_mean_frames >= 1.0)) {
          return invalid("activity busy/idle means must be at least one frame",
                         "TopologyRunRequest.scenario.classes[].activity");
        }
        if (!(c.activity.idle_rate >= 0.0)) {
          return invalid("activity idle rate must be non-negative",
                         "TopologyRunRequest.scenario.classes[].activity.idle_rate");
        }
        break;
      case SourceKind::kMarkovLrd:
        if (!(c.markov_hurst > 0.5) || !(c.markov_hurst < 1.0)) {
          return invalid("Markov LRD chain needs hurst in (0.5, 1)",
                         "TopologyRunRequest.scenario.classes[].markov_hurst");
        }
        if (!(c.markov_off_rate >= 0.0) ||
            !(c.markov_on_rate > c.markov_off_rate)) {
          return invalid("Markov LRD chain needs on_rate > off_rate >= 0",
                         "TopologyRunRequest.scenario.classes[].markov_on_rate");
        }
        break;
      case SourceKind::kAbrClient: {
        if (c.population != 1) {
          return kind_incompatible(
              "an ABR client class models one client (population == 1); "
              "client dynamics are nonlinear and do not superpose",
              "TopologyRunRequest.scenario.classes[].population");
        }
        const AbrClientConfig& a = c.abr_client;
        if (a.bandwidth_trace.empty()) {
          return invalid("ABR client needs a bandwidth trace",
                         "TopologyRunRequest.scenario.classes[].abr_client.bandwidth_trace");
        }
        double trace_total = 0.0;
        for (const double cap : a.bandwidth_trace) {
          if (!(cap >= 0.0)) {
            return invalid("bandwidth trace entries must be non-negative",
                           "TopologyRunRequest.scenario.classes[].abr_client.bandwidth_trace");
          }
          trace_total += cap;
        }
        if (!(trace_total > 0.0)) {
          return invalid("bandwidth trace must carry some capacity",
                         "TopologyRunRequest.scenario.classes[].abr_client.bandwidth_trace");
        }
        if (a.chunk_slots < 1 || sc.slots % a.chunk_slots != 0) {
          return invalid("slots must be a whole number of ABR chunks",
                         "TopologyRunRequest.scenario.classes[].abr_client.chunk_slots");
        }
        if (a.bitrate_ladder.empty()) {
          return invalid("ABR client needs a bitrate ladder",
                         "TopologyRunRequest.scenario.classes[].abr_client.bitrate_ladder");
        }
        double prev = 0.0;
        for (const double level : a.bitrate_ladder) {
          if (!(level > prev)) {
            return invalid("bitrate ladder must be positive and ascending",
                           "TopologyRunRequest.scenario.classes[].abr_client.bitrate_ladder");
          }
          prev = level;
        }
        if (a.startup_chunks < 1) {
          return invalid("startup threshold must be at least one chunk",
                         "TopologyRunRequest.scenario.classes[].abr_client.startup_chunks");
        }
        if (!(a.low_buffer_slots >= 0.0) ||
            !(a.high_buffer_slots >= a.low_buffer_slots) ||
            !(a.max_buffer_slots >= a.high_buffer_slots)) {
          return invalid("ABR client needs 0 <= low <= high <= max buffer",
                         "TopologyRunRequest.scenario.classes[].abr_client.max_buffer_slots");
        }
        break;
      }
    }
    if (c.streaming) {
      // Distinct code: these requests are well-formed campaigns that
      // merely ask for a delivery mode the class cannot support, so
      // callers can downgrade to whole-path delivery programmatically.
      if (c.generator != core::BackgroundGenerator::kPaxson) {
        return streaming_incompatible(
            "streaming delivery requires the kPaxson generator (the only "
            "window-bounded-memory backend)",
            "TopologyRunRequest.scenario.classes[].generator");
      }
      if (c.segment_to_cells) {
        return streaming_incompatible(
            "streaming delivery is incompatible with cell segmentation",
            "TopologyRunRequest.scenario.classes[].segment_to_cells");
      }
      if (c.streaming_block < 1) {
        return streaming_incompatible(
            "streaming block must hold at least one slot",
            "TopologyRunRequest.scenario.classes[].streaming_block");
      }
    }
  }
  const AbrFlowConfig& abr = sc.abr;
  if (abr.enabled) {
    if (abr.ingress >= sc.topology.n_nodes()) {
      return invalid("ABR ingress is not a topology node",
                     "TopologyRunRequest.scenario.abr.ingress");
    }
    if (!(abr.min_rate >= 0.0) || !(abr.peak_rate >= abr.min_rate)) {
      return invalid("ABR needs 0 <= min_rate <= peak_rate",
                     "TopologyRunRequest.scenario.abr.min_rate");
    }
    if (!(abr.initial_rate >= abr.min_rate) || !(abr.initial_rate <= abr.peak_rate)) {
      return invalid("ABR initial rate must lie in [min_rate, peak_rate]",
                     "TopologyRunRequest.scenario.abr.initial_rate");
    }
    if (!(abr.decrease_factor > 0.0) || !(abr.decrease_factor <= 1.0)) {
      return invalid("ABR decrease factor must be in (0, 1]",
                     "TopologyRunRequest.scenario.abr.decrease_factor");
    }
    if (!(abr.additive_increase >= 0.0)) {
      return invalid("ABR additive increase must be non-negative",
                     "TopologyRunRequest.scenario.abr.additive_increase");
    }
    if (!(abr.queue_threshold >= 0.0)) {
      return invalid("ABR queue threshold must be non-negative",
                     "TopologyRunRequest.scenario.abr.queue_threshold");
    }
  }
  if (!request.checkpoint.path.empty()) {
    try {
      engine::checkpoint::require_writable(request.checkpoint.path);
    } catch (const RunError& e) {
      return e.error();
    }
  }
  return std::nullopt;
}

// --------------------------------------------------------------- Run

namespace {

void fill_derived(TopologyRunResult& out, const ScenarioConfig& scenario) {
  const TopologyAccumulator& acc = out.totals;
  if (acc.count() == 0) return;
  const double reps = static_cast<double>(acc.count());
  const double measured_total = reps * static_cast<double>(acc.measured_slots());
  const double slots_total = reps * static_cast<double>(acc.slots());
  out.nodes.resize(acc.n_nodes());
  for (std::size_t i = 0; i < acc.n_nodes(); ++i) {
    const TopologyAccumulator::NodeTotals& n = acc.nodes()[i];
    NodeReport& r = out.nodes[i];
    r.loss_ratio = n.arrived > 0.0 ? n.dropped / n.arrived : 0.0;
    r.overflow_fraction =
        static_cast<double>(n.overflow_slots) / measured_total;
    r.mean_queue = n.sum_queue / measured_total;
    r.peak_queue = n.peak_queue;
    const double throughput = n.served / slots_total;  // work per slot
    r.mean_delay_slots = throughput > 0.0 ? r.mean_queue / throughput : 0.0;
    r.utilization =
        n.served / (slots_total * scenario.topology.node(i).service_rate);
  }
  const double injected = acc.external_arrived() + acc.abr_sent();
  if (injected > 0.0) {
    double dropped = 0.0;
    for (const TopologyAccumulator::NodeTotals& n : acc.nodes()) {
      dropped += n.dropped;
    }
    out.end_to_end_loss_ratio = dropped / injected;
    out.delivered_fraction = acc.delivered() / injected;
  }
  if (scenario.abr.enabled) {
    out.abr_mean_rate = acc.abr_rate_sum() / measured_total;
    out.abr_congested_fraction =
        static_cast<double>(acc.abr_congested_slots()) / measured_total;
  }
}

}  // namespace

TopologyRunResult run_topology_with(const TopologyRunRequest& request,
                                    engine::ReplicationEngine& engine,
                                    RandomEngine& rng) {
  if (auto err = validate(request)) throw RunError(std::move(*err));
  // Topology campaigns get the same SSVBR_METRICS_JSON / SSVBR_TRACE_JSON
  // / SSVBR_OBS_SUMMARY exit artifacts as the engine front door — they
  // previously never emitted them unless the binary's main opted in.
  obs::install_env_exit_dump();
  SSVBR_SPAN("net.run_request");
  engine.set_study_label("topology");
  const auto start = std::chrono::steady_clock::now();

  const ScenarioContext context(request.scenario);
  engine::StudyHarness<TopologyAccumulator> harness(
      request.checkpoint, request.controls, "topology", config_hash_of(request),
      engine, rng, request.replications);
  const engine::DurableResult<TopologyAccumulator> res =
      engine.run_durable<TopologyAccumulator>(
          request.replications, rng,
          [&] {
            return [kernel = ScenarioKernel(context)](
                       std::size_t, RandomEngine& stream,
                       TopologyAccumulator& acc) mutable {
              acc.add(kernel.run_one(stream));
            };
          },
          harness.controls(), harness.hooks());

  TopologyRunResult out;
  out.status = res.status;
  out.replications_done = res.replications_done;
  out.replications_total = request.replications;
  out.telemetry = engine.last_telemetry();
  harness.fill_provenance(out.provenance, res);
  out.totals = res.total;
  fill_derived(out, request.scenario);
  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

TopologyRunResult run_topology(const TopologyRunRequest& request) {
  if (auto err = validate(request)) throw RunError(std::move(*err));
  engine::ReplicationEngine engine(request.engine);
  RandomEngine rng(request.seed);
  return run_topology_with(request, engine, rng);
}

}  // namespace ssvbr::net
