#include "net/simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"
#include "obs/instrument.h"

namespace ssvbr::net {

ScenarioContext::ScenarioContext(ScenarioConfig config)
    : config_(std::move(config)) {
  const Topology& topo = config_.topology;
  SSVBR_REQUIRE(!topo.empty(), "scenario needs a topology");
  SSVBR_REQUIRE(config_.slots >= 1, "scenario needs at least one slot");
  SSVBR_REQUIRE(config_.warmup < config_.slots,
                "warmup must leave at least one measured slot");
  SSVBR_REQUIRE(!config_.classes.empty() || config_.abr.enabled,
                "scenario needs at least one source class or an ABR flow");
  samplers_.reserve(config_.classes.size());
  for (const SourceClassConfig& cls : config_.classes) {
    SSVBR_REQUIRE(cls.ingress < topo.n_nodes(),
                  "source class ingress is not a topology node");
    SSVBR_REQUIRE(cls.slots_per_frame >= 1 &&
                      config_.slots % cls.slots_per_frame == 0,
                  "slots must be a whole number of frame intervals");
    samplers_.emplace_back(cls, config_.slots / cls.slots_per_frame);
  }
  const AbrFlowConfig& abr = config_.abr;
  if (abr.enabled) {
    SSVBR_REQUIRE(abr.ingress < topo.n_nodes(),
                  "ABR ingress is not a topology node");
    SSVBR_REQUIRE(abr.min_rate >= 0.0 && abr.peak_rate >= abr.min_rate,
                  "ABR needs 0 <= min_rate <= peak_rate");
    SSVBR_REQUIRE(abr.initial_rate >= abr.min_rate &&
                      abr.initial_rate <= abr.peak_rate,
                  "ABR initial rate must lie in [min_rate, peak_rate]");
    SSVBR_REQUIRE(abr.decrease_factor > 0.0 && abr.decrease_factor <= 1.0,
                  "ABR decrease factor must be in (0, 1]");
    SSVBR_REQUIRE(abr.additive_increase >= 0.0,
                  "ABR additive increase must be non-negative");
    SSVBR_REQUIRE(abr.queue_threshold >= 0.0,
                  "ABR queue threshold must be non-negative");
    abr_path_ = topo.path_to_sink(abr.ingress);
  }
}

double ScenarioContext::mean_offered_rate() const {
  double rate = 0.0;
  for (const PopulationSampler& s : samplers_) rate += s.mean_rate();
  return rate;
}

ScenarioKernel::ScenarioKernel(const ScenarioContext& context)
    : context_(context),
      wheel_(context.topology().n_nodes(), context.topology().max_link_delay()),
      queues_(context.topology().n_nodes(), 0.0),
      external_(context.topology().n_nodes(), 0.0) {
  std::size_t max_frames = 0;
  bool any_segmented = false;
  class_paths_.resize(context_.samplers().size());
  stream_scratch_.resize(context_.samplers().size());
  streams_.resize(context_.samplers().size());
  for (std::size_t c = 0; c < context_.samplers().size(); ++c) {
    const PopulationSampler& s = context_.samplers()[c];
    if (s.streaming()) {
      // Block-sized buffer: the kernel's per-class memory for a
      // streamed class is bounded by the block, not the slot horizon.
      any_streaming_ = true;
      class_paths_[c].resize(std::min(s.streaming_block(), s.slots()));
      continue;
    }
    max_frames = std::max(max_frames, s.frames());
    any_segmented = any_segmented || s.segmented();
    class_paths_[c].resize(s.slots());
  }
  frame_scratch_.resize(max_frames);
  cell_scratch_.resize(any_segmented ? context_.slots() : 0);
  stats_.nodes.reserve(context_.topology().n_nodes());
}

const ScenarioStats& ScenarioKernel::run_one(RandomEngine& rng) {
  SSVBR_SPAN("net.replication");
  const ScenarioConfig& cfg = context_.config();
  const Topology& topo = cfg.topology;
  const std::size_t n = topo.n_nodes();
  const std::size_t slots = cfg.slots;
  const std::size_t warmup = cfg.warmup;
  const AbrFlowConfig& abr = cfg.abr;

  wheel_.clear();
  std::fill(queues_.begin(), queues_.end(), 0.0);
  stats_.nodes.assign(n, NodeStats{});
  stats_.external_arrived = 0.0;
  stats_.delivered = 0.0;
  stats_.in_flight = 0.0;
  stats_.slots = slots;
  stats_.measured_slots = slots - warmup;
  stats_.abr_sent = 0.0;
  stats_.abr_rate_sum = 0.0;
  stats_.abr_congested_slots = 0;
  stats_.clients = AbrClientStats{};
  double abr_min = std::numeric_limits<double>::infinity();
  double abr_max = -std::numeric_limits<double>::infinity();

  // One background path per whole-path class, in class order — this
  // fixes the engine-consumption pattern independent of the slot
  // dynamics. Streaming classes open their sessions here (no draws
  // yet) and synthesize window by window inside the slot loop, which
  // consumes no randomness of its own, so the overall pattern stays
  // deterministic: whole-path draws first, then streamed windows in
  // block order.
  {
    SSVBR_SPAN("net.class_draws");
    const std::vector<PopulationSampler>& samplers = context_.samplers();
    for (std::size_t c = 0; c < samplers.size(); ++c) {
      const PopulationSampler& s = samplers[c];
      if (s.streaming()) {
        streams_[c].emplace(s.begin_stream(rng, stream_scratch_[c]));
        continue;
      }
      const std::span<double> frames(frame_scratch_.data(), s.frames());
      const std::span<std::size_t> cells =
          s.segmented() ? std::span<std::size_t>(cell_scratch_.data(), s.slots())
                        : std::span<std::size_t>();
      if (s.kind() == SourceKind::kAbrClient) {
        // Client classes report their whole-run accounting alongside
        // the injected per-slot downloads.
        s.sample(rng, frames, cells, class_paths_[c], generator_scratch_,
                 client_scratch_);
        stats_.clients.downloaded += client_scratch_.downloaded;
        stats_.clients.startup_slots += client_scratch_.startup_slots;
        stats_.clients.play_slots += client_scratch_.play_slots;
        stats_.clients.rebuffer_slots += client_scratch_.rebuffer_slots;
        stats_.clients.finished_slots += client_scratch_.finished_slots;
        stats_.clients.chunks_completed += client_scratch_.chunks_completed;
        stats_.clients.quality_sum += client_scratch_.quality_sum;
        stats_.clients.buffer_end += client_scratch_.buffer_end;
        continue;
      }
      s.sample(rng, frames, cells, class_paths_[c], generator_scratch_);
    }
  }

  const std::vector<PopulationSampler>& samplers = context_.samplers();
  double abr_rate = abr.initial_rate;
  bool congested_prev = false;
  SSVBR_SPAN("net.slot_loop");
  SSVBR_TIMER("net.slot_loop");
  for (std::size_t t = 0; t < slots; ++t) {
    const std::span<double> row = wheel_.advance();
    std::fill(external_.begin(), external_.end(), 0.0);
    if (!any_streaming_) {
      for (std::size_t c = 0; c < samplers.size(); ++c) {
        const double a = class_paths_[c][t];
        external_[samplers[c].ingress()] += a;
        stats_.external_arrived += a;
      }
    } else {
      for (std::size_t c = 0; c < samplers.size(); ++c) {
        double a;
        if (samplers[c].streaming()) {
          const std::size_t block = class_paths_[c].size();
          const std::size_t offset = t % block;
          // Block boundary: pull the next block of the aggregate. The
          // final block may be partial; its stale tail is never read.
          if (offset == 0) streams_[c]->next_block(class_paths_[c]);
          a = class_paths_[c][offset];
        } else {
          a = class_paths_[c][t];
        }
        external_[samplers[c].ingress()] += a;
        stats_.external_arrived += a;
      }
    }
    if (abr.enabled) {
      if (t > 0) {
        // One-slot feedback delay: react to the previous slot's bit.
        abr_rate = congested_prev
                       ? std::max(abr_rate * abr.decrease_factor, abr.min_rate)
                       : std::min(abr_rate + abr.additive_increase,
                                  abr.peak_rate);
      }
      external_[abr.ingress] += abr_rate;
      stats_.abr_sent += abr_rate;
      if (t >= warmup) {
        stats_.abr_rate_sum += abr_rate;
        abr_min = std::min(abr_min, abr_rate);
        abr_max = std::max(abr_max, abr_rate);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      const NodeConfig& nc = topo.node(i);
      const double y = row[i] + external_[i];
      // Zero the consumed bucket so pending_total() is exactly the
      // work still in flight on links.
      row[i] = 0.0;
      double total = queues_[i] + y;
      double dropped = 0.0;
      if (total > nc.buffer) {
        dropped = total - nc.buffer;
        total = nc.buffer;
      }
      const double served = std::min(total, nc.service_rate);
      const double q = total - served;
      queues_[i] = q;
      NodeStats& ns = stats_.nodes[i];
      ns.arrived += y;
      ns.served += served;
      ns.dropped += dropped;
      if (t >= warmup) {
        ns.sum_queue += q;
        if (q > ns.peak_queue) ns.peak_queue = q;
        if (q > nc.overflow_threshold) ++ns.overflow_slots;
      }
      if (served > 0.0) {
        if (nc.downstream == kSink) {
          stats_.delivered += served;
        } else {
          wheel_.deposit(nc.downstream, nc.link_delay, served);
        }
      }
    }
    if (abr.enabled) {
      congested_prev = false;
      for (const std::size_t node : context_.abr_path()) {
        if (queues_[node] > abr.queue_threshold) {
          congested_prev = true;
          break;
        }
      }
      if (t >= warmup && congested_prev) ++stats_.abr_congested_slots;
    }
  }

  // Streams borrow `rng`, which does not outlive this call.
  for (auto& stream : streams_) stream.reset();
  for (std::size_t i = 0; i < n; ++i) stats_.nodes[i].end_queue = queues_[i];
  stats_.in_flight = wheel_.pending_total();
  stats_.abr_min_rate = std::isfinite(abr_min) ? abr_min : 0.0;
  stats_.abr_max_rate = std::isfinite(abr_max) ? abr_max : 0.0;
  SSVBR_COUNTER_ADD("net.replications", 1);
  SSVBR_COUNTER_ADD("net.slots", slots);
  return stats_;
}

}  // namespace ssvbr::net
