// ssvbr/net/population.h
//
// Batched VBR source populations: the per-ingress traffic of a
// network-scale scenario is N homogeneous sources of one fitted
// unified model, synthesized as a single superposed process instead of
// N independent paths.
//
// For N homogeneous sources with foreground marginal mean m and
// per-source process Y_t = h(X_t), the superposition has mean N*m and
// — because the background X is Gaussian and the sources independent —
// the same normalized autocorrelation as a single source. We therefore
// draw ONE background path, transform it, and rescale:
//
//     A_t = N*m + sqrt(N) * (h(X_t) - m),   clamped at 0,
//
// which preserves the aggregate mean (N*m), the aggregate variance
// (N * Var h(X)), and the full foreground ACF, at the cost of one path
// per class per replication regardless of N. This is what makes
// thousand-source ingress populations affordable inside a replication
// study. N == 1 bypasses the rescaling entirely so a single source is
// bit-identical to queueing::ModelArrivalProcess fed the same engine
// state (the single-queue regression gate depends on this).
//
// A class may optionally be segmented to integer ATM cells
// (atm::segment_frames_into), giving integer-valued workloads for the
// exact conservation conformance check.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>

#include "atm/segmentation.h"
#include "baselines/markov_lrd.h"
#include "core/activity_model.h"
#include "core/background_sampler.h"
#include "core/unified_model.h"
#include "dist/random.h"
#include "net/abr_client.h"

namespace ssvbr::net {

/// What kind of traffic a source class generates (the workload-
/// diversity tier; ROADMAP "Workload diversity").
enum class SourceKind {
  /// Unified-model VBR population (the default; the paper's source).
  kVbrModel,
  /// Busy/idle-gated VBR population for conferencing-style traffic
  /// (core::ActivityModulatedModel over the class's unified model).
  kActivityModulated,
  /// Markov-chain on/off LRD baseline (baselines::MarkovLrdProcess);
  /// needs no unified model.
  kMarkovLrd,
  /// One chunked ABR streaming client over a bandwidth trace
  /// (net::AbrClient); its per-slot downloads are the injected
  /// workload, its chunk sizes are synthesized from the class model.
  kAbrClient,
};

/// One homogeneous population of VBR sources feeding one ingress node.
struct SourceClassConfig {
  /// Traffic generator for this class. The non-default kinds are
  /// frame-per-slot sources: they require slots_per_frame == 1, no cell
  /// segmentation, and no block streaming (net::validate rejects the
  /// combinations with ErrorCode::kSourceKindIncompatible).
  SourceKind kind = SourceKind::kVbrModel;
  /// Fitted unified model of a single source. Required for every kind
  /// except kMarkovLrd (which ignores it).
  std::shared_ptr<const core::UnifiedVbrModel> model;
  /// Busy/idle gate parameters (kActivityModulated only).
  core::ActivityConfig activity;
  /// Markov-chain parameters (kMarkovLrd only): target Hurst parameter
  /// in (1/2, 1) and the two-point on/off emission rates.
  double markov_hurst = 0.8;
  double markov_on_rate = 1.0;
  double markov_off_rate = 0.0;
  /// Client parameters (kAbrClient only; population must be 1 — client
  /// dynamics are nonlinear and do not superpose).
  AbrClientConfig abr_client;
  /// Number of superposed homogeneous sources (>= 1).
  std::size_t population = 1;
  /// Ingress node index in the scenario's topology.
  std::size_t ingress = 0;
  /// Background synthesis algorithm (kHosking matches the paper's
  /// queueing experiments and the single-queue gate).
  core::BackgroundGenerator generator = core::BackgroundGenerator::kHosking;
  /// Slots per video frame interval. Must be 1 unless segmenting.
  std::size_t slots_per_frame = 1;
  /// Quantize the aggregate to integer AAL5 cells per slot.
  bool segment_to_cells = false;
  /// Cell placement within the frame interval when segmenting.
  atm::PacingMode pacing = atm::PacingMode::kSmooth;
  /// Deliver this class's aggregate in fixed-size blocks instead of
  /// one whole-replication path, so the scenario kernel's per-class
  /// memory is bounded by the block (and the generator's synthesis
  /// window) rather than the slot horizon. Streaming requires
  /// generator == kPaxson — the only window-bounded-memory backend;
  /// streaming an exact backend would silently materialize the whole
  /// path anyway — and is incompatible with segment_to_cells (cell
  /// pacing couples a whole frame interval, so a segmented class is
  /// frame-batched by construction). Incompatible configs are rejected
  /// by net::validate with ErrorCode::kStreamingIncompatible. For a
  /// fixed seed a streamed class produces the bit-identical workload
  /// path as the same class with streaming = false.
  bool streaming = false;
  /// Aggregate slots delivered per block when streaming (>= 1).
  std::size_t streaming_block = 4096;
};

/// Immutable per-class synthesizer with all per-horizon generator setup
/// precomputed; safe to share across worker threads. Scratch buffers
/// are supplied by the caller so replication loops stay allocation-free.
class PopulationSampler {
 public:
  /// One in-progress aggregate workload path, delivered in blocks: the
  /// background stream's blocks with the marginal transform and the
  /// sqrt(N) population rescaling applied per block (both are
  /// elementwise, so the concatenation across any blocking is
  /// bit-identical to a whole-path sample). Borrows the sampler, the
  /// engine and the workspace for its lifetime.
  class Stream {
   public:
    /// Aggregate slots not yet delivered.
    std::size_t remaining() const noexcept { return inner_.remaining(); }
    /// Deliver the next min(out.size(), remaining()) slots of the
    /// aggregate workload into the front of `out`; returns the count.
    std::size_t next_block(std::span<double> out);

   private:
    friend class PopulationSampler;
    Stream(const PopulationSampler& sampler,
           core::BackgroundPathSampler::Stream inner)
        : sampler_(&sampler), inner_(inner) {}

    const PopulationSampler* sampler_;
    core::BackgroundPathSampler::Stream inner_;
  };

  /// `frames` is the number of video frame intervals per replication;
  /// the slot horizon is frames * slots_per_frame.
  PopulationSampler(SourceClassConfig config, std::size_t frames);

  std::size_t frames() const noexcept { return frames_; }
  SourceKind kind() const noexcept { return config_.kind; }
  /// Queue slots per replication (frames * slots_per_frame).
  std::size_t slots() const noexcept {
    return frames_ * config_.slots_per_frame;
  }
  std::size_t ingress() const noexcept { return config_.ingress; }
  std::size_t population() const noexcept { return config_.population; }
  bool segmented() const noexcept { return config_.segment_to_cells; }
  /// True when the class asked for block-streamed delivery.
  bool streaming() const noexcept { return config_.streaming; }
  /// Aggregate slots per streamed block (meaningful when streaming()).
  std::size_t streaming_block() const noexcept {
    return config_.streaming_block;
  }

  /// Long-run mean workload per slot (exact for unsegmented classes;
  /// for segmented classes the AAL5 per-frame rounding is approximated
  /// by applying it to the mean frame size).
  double mean_rate() const;

  /// Draw one aggregate workload path into `out` (out.size() ==
  /// slots()). `frame_scratch` must hold frames() entries;
  /// `cell_scratch` must hold slots() entries when segmented() and may
  /// be empty otherwise. Consumes the engine exactly like
  /// ModelArrivalProcess::begin_replication for the same model/horizon.
  void sample(RandomEngine& rng, std::span<double> frame_scratch,
              std::span<std::size_t> cell_scratch,
              std::span<double> out) const;

  /// Same draw with caller-owned generator scratch (the form
  /// ScenarioKernel uses, one workspace per kernel, so parallel
  /// replication workers never share mutable generator state).
  void sample(RandomEngine& rng, std::span<double> frame_scratch,
              std::span<std::size_t> cell_scratch, std::span<double> out,
              core::BackgroundWorkspace& ws) const;

  /// kAbrClient form: additionally reports the client's whole-run
  /// accounting (rebuffering, wall-time partition, quality choices).
  /// For other kinds `client_stats` is zeroed.
  void sample(RandomEngine& rng, std::span<double> frame_scratch,
              std::span<std::size_t> cell_scratch, std::span<double> out,
              core::BackgroundWorkspace& ws, AbrClientStats& client_stats) const;

  /// Open a block-streaming session over one replication's aggregate
  /// (unsegmented classes only). Consumes `rng` exactly like one
  /// sample() call once the stream is drained; for a fixed engine
  /// state the concatenated blocks equal the sample() path bit for
  /// bit, for any blocking. `rng` and `ws` must outlive the stream and
  /// must not be shared with another live stream.
  Stream begin_stream(RandomEngine& rng, core::BackgroundWorkspace& ws) const;

 private:
  friend class Stream;
  void sample_impl(RandomEngine& rng, std::span<double> frame_scratch,
                   std::span<std::size_t> cell_scratch, std::span<double> out,
                   core::BackgroundWorkspace* ws,
                   AbrClientStats* client_stats) const;
  /// The sqrt(N) superposition rescale around a per-source mean.
  void rescale_population(std::span<double> values, double source_mean) const;

  SourceClassConfig config_;
  std::size_t frames_;
  /// Null for kMarkovLrd (the chain needs no Gaussian background).
  std::shared_ptr<const core::BackgroundPathSampler> sampler_;
  /// Present for kActivityModulated.
  std::shared_ptr<const core::ActivityModulatedModel> activity_;
  /// Present for kMarkovLrd.
  std::optional<baselines::MarkovLrdProcess> markov_;
};

}  // namespace ssvbr::net
