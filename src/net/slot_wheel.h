// ssvbr/net/slot_wheel.h
//
// The discrete-event core of the network layer: a slotted event wheel
// (a calendar queue specialized to integer slot time and additive
// work-arrival events).
//
// Every event in the slotted network is "amount A of work arrives at
// node n in slot t+d" for a bounded delay d, so the classic event heap
// collapses to a ring of per-node accumulation buckets: deposit() is
// O(1), advance() rotates the ring, and because arrivals at the same
// (slot, node) simply add, event ordering within a slot cannot affect
// the dynamics — the simulation is deterministic by construction.
// Steady state performs no allocation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"
#include "obs/instrument.h"

namespace ssvbr::net {

/// Ring of per-node work buckets over a bounded delay horizon.
class SlotWheel {
 public:
  /// `max_delay` is the largest deposit() delay that will ever be used
  /// (the topology's max_link_delay()).
  SlotWheel(std::size_t n_nodes, std::size_t max_delay)
      : n_nodes_(n_nodes),
        rows_(max_delay + 1),
        buckets_(rows_ * n_nodes, 0.0) {
    SSVBR_REQUIRE(n_nodes >= 1, "slot wheel needs at least one node");
    SSVBR_REQUIRE(max_delay >= 1, "slot wheel needs a delay horizon of at least 1");
  }

  std::size_t n_nodes() const noexcept { return n_nodes_; }

  /// Schedule `amount` of work to arrive at `node`, `delay` slots after
  /// the current slot (1 <= delay <= max_delay).
  void deposit(std::size_t node, std::size_t delay, double amount) {
    SSVBR_REQUIRE(node < n_nodes_ && delay >= 1 && delay < rows_,
                  "slot wheel deposit out of range");
    buckets_[((cursor_ + delay) % rows_) * n_nodes_ + node] += amount;
    SSVBR_COUNTER_ADD("net.wheel.deposits", 1);
    SSVBR_HIST_RECORD("net.wheel.deposit_amount", amount);
  }

  /// Rotate to the next slot and expose its per-node arrivals. The
  /// returned span is valid until the next advance(); the caller must
  /// consume (and implicitly zero, via the next rotation's reuse) it —
  /// advance() itself zeroes the row it vacates.
  std::span<double> advance() {
    // Zero the row we are leaving so it can take deposits again.
    double* old_row = buckets_.data() + cursor_ * n_nodes_;
    for (std::size_t i = 0; i < n_nodes_; ++i) old_row[i] = 0.0;
    cursor_ = (cursor_ + 1) % rows_;
    return {buckets_.data() + cursor_ * n_nodes_, n_nodes_};
  }

  /// Work deposited for future slots (in flight on links) plus the
  /// current row — the conservation remainder at the end of a run.
  double pending_total() const noexcept {
    double sum = 0.0;
    for (const double v : buckets_) sum += v;
    return sum;
  }

  /// Reset to an empty wheel at slot 0.
  void clear() noexcept {
    for (double& v : buckets_) v = 0.0;
    cursor_ = 0;
  }

 private:
  std::size_t n_nodes_;
  std::size_t rows_;
  std::size_t cursor_ = 0;
  std::vector<double> buckets_;
};

}  // namespace ssvbr::net
