#include "net/population.h"

#include <cmath>
#include <utility>

#include "atm/cell.h"
#include "common/error.h"
#include "obs/instrument.h"
#include "stats/descriptive.h"

namespace ssvbr::net {

PopulationSampler::PopulationSampler(SourceClassConfig config, std::size_t frames)
    : config_(std::move(config)), frames_(frames) {
  SSVBR_REQUIRE(config_.population >= 1, "source class population must be >= 1");
  SSVBR_REQUIRE(config_.slots_per_frame >= 1, "slots per frame must be >= 1");
  SSVBR_REQUIRE(config_.segment_to_cells || config_.slots_per_frame == 1,
                "slots_per_frame > 1 requires cell segmentation");
  SSVBR_REQUIRE(frames_ >= 1, "replication needs at least one frame");
  if (config_.kind != SourceKind::kVbrModel) {
    // Mirrors net::validate's kSourceKindIncompatible checks for callers
    // that construct samplers directly: the non-default kinds are
    // frame-per-slot whole-path sources.
    SSVBR_REQUIRE(config_.slots_per_frame == 1,
                  "only kVbrModel classes support multi-slot frame intervals");
    SSVBR_REQUIRE(!config_.segment_to_cells,
                  "only kVbrModel classes support cell segmentation");
    SSVBR_REQUIRE(!config_.streaming,
                  "only kVbrModel classes support block streaming");
  }
  if (config_.streaming) {
    // Mirrors net::validate's kStreamingIncompatible checks for callers
    // that construct samplers directly.
    SSVBR_REQUIRE(config_.generator == core::BackgroundGenerator::kPaxson,
                  "streaming delivery requires the kPaxson generator");
    SSVBR_REQUIRE(!config_.segment_to_cells,
                  "streaming delivery is incompatible with cell segmentation");
    SSVBR_REQUIRE(config_.streaming_block >= 1,
                  "streaming block must hold at least one slot");
  }
  switch (config_.kind) {
    case SourceKind::kVbrModel:
      SSVBR_REQUIRE(config_.model != nullptr, "source class needs a model");
      break;
    case SourceKind::kActivityModulated:
      SSVBR_REQUIRE(config_.model != nullptr, "source class needs a model");
      // The ActivityModulatedModel constructor validates the gate.
      activity_ = std::make_shared<const core::ActivityModulatedModel>(
          config_.model, config_.activity);
      break;
    case SourceKind::kMarkovLrd:
      // The MarkovLrdProcess constructor validates hurst and the rates.
      markov_.emplace(config_.markov_hurst, config_.markov_on_rate,
                      config_.markov_off_rate);
      break;
    case SourceKind::kAbrClient: {
      SSVBR_REQUIRE(config_.model != nullptr, "source class needs a model");
      SSVBR_REQUIRE(config_.population == 1,
                    "an ABR client class models one client (population == 1)");
      // The AbrClient constructor validates trace/ladder/buffer config.
      [[maybe_unused]] const AbrClient probe(config_.abr_client);
      SSVBR_REQUIRE(frames_ % config_.abr_client.chunk_slots == 0,
                    "slots must be a whole number of ABR chunks");
      break;
    }
  }
  if (config_.kind != SourceKind::kMarkovLrd) {
    sampler_ = std::make_shared<const core::BackgroundPathSampler>(
        *config_.model, frames_, config_.generator);
  }
}

PopulationSampler::Stream PopulationSampler::begin_stream(
    RandomEngine& rng, core::BackgroundWorkspace& ws) const {
  SSVBR_REQUIRE(config_.kind == SourceKind::kVbrModel,
                "only kVbrModel classes support block streaming");
  SSVBR_REQUIRE(!config_.segment_to_cells,
                "segmented classes cannot stream (cell pacing couples a whole "
                "frame interval)");
  return Stream(*this, sampler_->begin_stream(rng, ws));
}

std::size_t PopulationSampler::Stream::next_block(std::span<double> out) {
  const std::size_t n = inner_.next_block(out);
  if (n == 0) return 0;
  const std::span<double> block = out.first(n);
  const SourceClassConfig& cfg = sampler_->config_;
  // Same per-sample pipeline as sample_impl: transform in place, then
  // the sqrt(N) superposition rescale. Both are elementwise, so per-
  // block application reproduces the whole-path values exactly.
  cfg.model->transform().apply(block, block);
  sampler_->rescale_population(block, cfg.model->mean());
  return n;
}

double PopulationSampler::mean_rate() const {
  const double n = static_cast<double>(config_.population);
  switch (config_.kind) {
    case SourceKind::kActivityModulated:
      return n * activity_->mean();
    case SourceKind::kMarkovLrd:
      return n * markov_->mean();
    case SourceKind::kAbrClient: {
      // Long-run download rate: capped by the trace's mean capacity and
      // by the content consumption rate at the top quality (an upper-
      // bound approximation — good enough for utilization bookkeeping).
      const double capacity = stats::mean(config_.abr_client.bandwidth_trace);
      const double content =
          config_.model->mean() * config_.abr_client.bitrate_ladder.back();
      return std::min(capacity, content);
    }
    case SourceKind::kVbrModel:
      break;
  }
  if (!config_.segment_to_cells) return n * config_.model->mean();
  const auto mean_bytes =
      static_cast<std::size_t>(std::llround(n * config_.model->mean()));
  return static_cast<double>(atm::aal5_cells_for(mean_bytes)) /
         static_cast<double>(config_.slots_per_frame);
}

void PopulationSampler::rescale_population(std::span<double> values,
                                           double source_mean) const {
  if (config_.population <= 1) return;
  const double n = static_cast<double>(config_.population);
  const double root_n = std::sqrt(n);
  for (double& y : values) {
    y = std::max(n * source_mean + root_n * (y - source_mean), 0.0);
  }
}

void PopulationSampler::sample(RandomEngine& rng, std::span<double> frame_scratch,
                               std::span<std::size_t> cell_scratch,
                               std::span<double> out) const {
  // Convenience form: per-thread cached generator scratch. Bit-identical
  // to the explicit-workspace overload below.
  sample_impl(rng, frame_scratch, cell_scratch, out, nullptr, nullptr);
}

void PopulationSampler::sample(RandomEngine& rng, std::span<double> frame_scratch,
                               std::span<std::size_t> cell_scratch,
                               std::span<double> out,
                               core::BackgroundWorkspace& ws) const {
  sample_impl(rng, frame_scratch, cell_scratch, out, &ws, nullptr);
}

void PopulationSampler::sample(RandomEngine& rng, std::span<double> frame_scratch,
                               std::span<std::size_t> cell_scratch,
                               std::span<double> out,
                               core::BackgroundWorkspace& ws,
                               AbrClientStats& client_stats) const {
  client_stats = AbrClientStats{};
  sample_impl(rng, frame_scratch, cell_scratch, out, &ws, &client_stats);
}

void PopulationSampler::sample_impl(RandomEngine& rng,
                                    std::span<double> frame_scratch,
                                    std::span<std::size_t> cell_scratch,
                                    std::span<double> out,
                                    core::BackgroundWorkspace* ws,
                                    AbrClientStats* client_stats) const {
  SSVBR_SPAN("net.population.sample");
  SSVBR_REQUIRE(frame_scratch.size() == frames_,
                "frame scratch has the wrong size");
  SSVBR_REQUIRE(out.size() == slots(), "population output span has the wrong size");
  SSVBR_COUNTER_ADD("net.population.draws", 1);
  SSVBR_COUNTER_ADD("net.population.frames", frames_);
  SSVBR_COUNTER_ADD("net.population.sources", config_.population);

  if (config_.kind == SourceKind::kMarkovLrd) {
    // Countdown chain straight into the slot path: no background draw,
    // no transform. The sqrt(N) rescale applies to any stationary
    // per-source process, so populations batch exactly as for kVbrModel.
    markov_->sample_into(out, rng);
    rescale_population(out, markov_->mean());
    return;
  }

  // Same draw order as ModelArrivalProcess::begin_replication: one
  // background path, then the marginal transform in place.
  if (ws != nullptr) {
    sampler_->sample(rng, frame_scratch, *ws);
  } else {
    sampler_->sample(rng, frame_scratch);
  }
  config_.model->transform().apply(frame_scratch, frame_scratch);

  if (config_.kind == SourceKind::kActivityModulated) {
    // Gate the transformed path (one uniform per frame), then batch the
    // population around the modulated mean.
    activity_->modulate_in_place(frame_scratch, rng);
    rescale_population(frame_scratch, activity_->mean());
    for (std::size_t t = 0; t < frames_; ++t) out[t] = frame_scratch[t];
    return;
  }

  if (config_.kind == SourceKind::kAbrClient) {
    // The transformed path is the per-slot frame size of the title being
    // streamed; fold it into nominal chunk sizes in place (chunk c =
    // sum of its chunk_slots frames), then replay the client against
    // the bandwidth trace. The injected workload is what the client
    // actually downloads each slot.
    const std::size_t chunk_slots = config_.abr_client.chunk_slots;
    const std::size_t n_chunks = frames_ / chunk_slots;
    for (std::size_t c = 0; c < n_chunks; ++c) {
      double size = 0.0;
      for (std::size_t j = 0; j < chunk_slots; ++j) {
        size += frame_scratch[c * chunk_slots + j];
      }
      frame_scratch[c] = size;
    }
    AbrClient client(config_.abr_client);
    client.run(std::span<const double>(frame_scratch.data(), n_chunks),
               slots(), out);
    if (client_stats != nullptr) *client_stats = client.stats();
    return;
  }

  rescale_population(frame_scratch, config_.model->mean());
  if (!config_.segment_to_cells) {
    // slots_per_frame == 1 here (enforced at construction): the frame
    // aggregate is the slot workload, untouched.
    for (std::size_t t = 0; t < frames_; ++t) out[t] = frame_scratch[t];
    return;
  }
  SSVBR_REQUIRE(cell_scratch.size() == slots(),
                "cell scratch has the wrong size");
  atm::segment_frames_into(frame_scratch, config_.slots_per_frame, config_.pacing,
                           cell_scratch);
  for (std::size_t t = 0; t < cell_scratch.size(); ++t) {
    out[t] = static_cast<double>(cell_scratch[t]);
  }
}

}  // namespace ssvbr::net
