#include "net/population.h"

#include <cmath>
#include <utility>

#include "atm/cell.h"
#include "common/error.h"
#include "obs/instrument.h"

namespace ssvbr::net {

PopulationSampler::PopulationSampler(SourceClassConfig config, std::size_t frames)
    : config_(std::move(config)), frames_(frames) {
  SSVBR_REQUIRE(config_.model != nullptr, "source class needs a model");
  SSVBR_REQUIRE(config_.population >= 1, "source class population must be >= 1");
  SSVBR_REQUIRE(config_.slots_per_frame >= 1, "slots per frame must be >= 1");
  SSVBR_REQUIRE(config_.segment_to_cells || config_.slots_per_frame == 1,
                "slots_per_frame > 1 requires cell segmentation");
  SSVBR_REQUIRE(frames_ >= 1, "replication needs at least one frame");
  if (config_.streaming) {
    // Mirrors net::validate's kStreamingIncompatible checks for callers
    // that construct samplers directly.
    SSVBR_REQUIRE(config_.generator == core::BackgroundGenerator::kPaxson,
                  "streaming delivery requires the kPaxson generator");
    SSVBR_REQUIRE(!config_.segment_to_cells,
                  "streaming delivery is incompatible with cell segmentation");
    SSVBR_REQUIRE(config_.streaming_block >= 1,
                  "streaming block must hold at least one slot");
  }
  sampler_ = std::make_shared<const core::BackgroundPathSampler>(
      *config_.model, frames_, config_.generator);
}

PopulationSampler::Stream PopulationSampler::begin_stream(
    RandomEngine& rng, core::BackgroundWorkspace& ws) const {
  SSVBR_REQUIRE(!config_.segment_to_cells,
                "segmented classes cannot stream (cell pacing couples a whole "
                "frame interval)");
  return Stream(*this, sampler_->begin_stream(rng, ws));
}

std::size_t PopulationSampler::Stream::next_block(std::span<double> out) {
  const std::size_t n = inner_.next_block(out);
  if (n == 0) return 0;
  const std::span<double> block = out.first(n);
  const SourceClassConfig& cfg = sampler_->config_;
  // Same per-sample pipeline as sample_impl: transform in place, then
  // the sqrt(N) superposition rescale. Both are elementwise, so per-
  // block application reproduces the whole-path values exactly.
  cfg.model->transform().apply(block, block);
  if (cfg.population > 1) {
    const double pop = static_cast<double>(cfg.population);
    const double m = cfg.model->mean();
    const double root_n = std::sqrt(pop);
    for (double& y : block) {
      y = std::max(pop * m + root_n * (y - m), 0.0);
    }
  }
  return n;
}

double PopulationSampler::mean_rate() const {
  const double n = static_cast<double>(config_.population);
  if (!config_.segment_to_cells) return n * config_.model->mean();
  const auto mean_bytes =
      static_cast<std::size_t>(std::llround(n * config_.model->mean()));
  return static_cast<double>(atm::aal5_cells_for(mean_bytes)) /
         static_cast<double>(config_.slots_per_frame);
}

void PopulationSampler::sample(RandomEngine& rng, std::span<double> frame_scratch,
                               std::span<std::size_t> cell_scratch,
                               std::span<double> out) const {
  // Convenience form: per-thread cached generator scratch. Bit-identical
  // to the explicit-workspace overload below.
  sample_impl(rng, frame_scratch, cell_scratch, out, nullptr);
}

void PopulationSampler::sample(RandomEngine& rng, std::span<double> frame_scratch,
                               std::span<std::size_t> cell_scratch,
                               std::span<double> out,
                               core::BackgroundWorkspace& ws) const {
  sample_impl(rng, frame_scratch, cell_scratch, out, &ws);
}

void PopulationSampler::sample_impl(RandomEngine& rng,
                                    std::span<double> frame_scratch,
                                    std::span<std::size_t> cell_scratch,
                                    std::span<double> out,
                                    core::BackgroundWorkspace* ws) const {
  SSVBR_SPAN("net.population.sample");
  SSVBR_REQUIRE(frame_scratch.size() == frames_,
                "frame scratch has the wrong size");
  SSVBR_REQUIRE(out.size() == slots(), "population output span has the wrong size");
  SSVBR_COUNTER_ADD("net.population.draws", 1);
  SSVBR_COUNTER_ADD("net.population.frames", frames_);
  SSVBR_COUNTER_ADD("net.population.sources", config_.population);
  // Same draw order as ModelArrivalProcess::begin_replication: one
  // background path, then the marginal transform in place.
  if (ws != nullptr) {
    sampler_->sample(rng, frame_scratch, *ws);
  } else {
    sampler_->sample(rng, frame_scratch);
  }
  config_.model->transform().apply(frame_scratch, frame_scratch);
  if (config_.population > 1) {
    const double n = static_cast<double>(config_.population);
    const double m = config_.model->mean();
    const double root_n = std::sqrt(n);
    for (double& y : frame_scratch) {
      y = std::max(n * m + root_n * (y - m), 0.0);
    }
  }
  if (!config_.segment_to_cells) {
    // slots_per_frame == 1 here (enforced at construction): the frame
    // aggregate is the slot workload, untouched.
    for (std::size_t t = 0; t < frames_; ++t) out[t] = frame_scratch[t];
    return;
  }
  SSVBR_REQUIRE(cell_scratch.size() == slots(),
                "cell scratch has the wrong size");
  atm::segment_frames_into(frame_scratch, config_.slots_per_frame, config_.pacing,
                           cell_scratch);
  for (std::size_t t = 0; t < cell_scratch.size(); ++t) {
    out[t] = static_cast<double>(cell_scratch[t]);
  }
}

}  // namespace ssvbr::net
