// ssvbr/net/simulator.h
//
// Slotted network simulator: the dynamics of a multi-node ATM topology
// fed by batched VBR source populations and an optional rate-adaptive
// (ABR-style) foreground flow.
//
// Per slot, every node performs the admit-then-serve update
//
//     total   = q + arrivals
//     dropped = max(total - buffer, 0)
//     served  = min(total - dropped, service_rate)
//     q       = total - dropped - served
//
// and its served work is deposited on the output link's slot wheel,
// arriving downstream link_delay slots later. With an infinite buffer
// this is bit-identical to queueing::LindleyQueue::step's
// max(q + y - mu, 0) in both branches (total >= mu: both round
// (q+y)-mu once; total < mu: both are exactly 0), which is what lets a
// one-node topology reproduce the Section 4 single-queue results
// bit-for-bit. (queueing::FiniteBufferQueue uses the serve-first
// convention instead; the network layer deliberately matches Lindley,
// not FiniteBufferQueue, and documents the divergence here.)
//
// The ABR flow injects `rate` work units per slot at its ingress and
// reacts to one-bit congestion feedback with one slot of delay: if any
// node on its path to the sink ended the previous slot above
// queue_threshold, the rate is cut multiplicatively; otherwise it
// climbs additively (classic additive-increase/multiplicative-decrease
// against the LRD background).
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "dist/random.h"
#include "net/population.h"
#include "net/slot_wheel.h"
#include "net/topology.h"

namespace ssvbr::net {

/// Rate-adaptive foreground flow competing with the VBR background.
struct AbrFlowConfig {
  bool enabled = false;
  /// Node where the flow enters the network.
  std::size_t ingress = 0;
  double initial_rate = 0.0;
  double min_rate = 0.0;
  double peak_rate = std::numeric_limits<double>::infinity();
  /// Rate added per uncongested slot.
  double additive_increase = 0.0;
  /// Multiplier applied per congested slot (in (0, 1]).
  double decrease_factor = 0.5;
  /// Congestion bit: any path node's end-of-slot queue above this.
  double queue_threshold = 0.0;
};

/// One complete network scenario: who feeds what, for how long.
struct ScenarioConfig {
  Topology topology;
  std::vector<SourceClassConfig> classes;
  AbrFlowConfig abr;
  /// Queue slots per replication.
  std::size_t slots = 0;
  /// Slots excluded from steady-state statistics (transient removal).
  std::size_t warmup = 0;
};

/// Whole-run per-node accounting. The conservation identity
/// arrived == served + dropped + end_queue holds exactly (to double
/// rounding; exactly exact for integer-cell workloads).
struct NodeStats {
  double arrived = 0.0;    ///< work offered to the node, whole run
  double served = 0.0;     ///< work sent downstream, whole run
  double dropped = 0.0;    ///< work lost to buffer overflow, whole run
  double end_queue = 0.0;  ///< backlog at the end of the run
  double sum_queue = 0.0;  ///< post-warmup sum of end-of-slot queues
  double peak_queue = 0.0; ///< post-warmup max end-of-slot queue
  std::size_t overflow_slots = 0;  ///< post-warmup slots with q > threshold
};

/// One replication's results.
struct ScenarioStats {
  std::vector<NodeStats> nodes;
  double external_arrived = 0.0;  ///< class workload injected, whole run
  double delivered = 0.0;         ///< work that reached the sink
  double in_flight = 0.0;         ///< work still on links at the end
  std::size_t slots = 0;
  std::size_t measured_slots = 0;  ///< slots - warmup
  // ABR flow (all zero when disabled):
  double abr_sent = 0.0;       ///< work injected by the flow, whole run
  double abr_rate_sum = 0.0;   ///< post-warmup sum of per-slot rates
  double abr_min_rate = 0.0;   ///< post-warmup min rate
  double abr_max_rate = 0.0;   ///< post-warmup max rate
  std::size_t abr_congested_slots = 0;  ///< post-warmup congested slots
  /// ABR streaming clients (SourceKind::kAbrClient), summed across the
  /// scenario's client classes; all zero when there are none. The slot
  /// counters partition each client's wall time exactly, so
  /// startup + play + rebuffer + finished == slots * n_client_classes.
  AbrClientStats clients;
};

/// Validated, immutable scenario shared by all workers: per-class
/// population samplers (with their precomputed generator state) and the
/// ABR flow's path to the sink.
class ScenarioContext {
 public:
  explicit ScenarioContext(ScenarioConfig config);

  const ScenarioConfig& config() const noexcept { return config_; }
  const Topology& topology() const noexcept { return config_.topology; }
  const std::vector<PopulationSampler>& samplers() const noexcept {
    return samplers_;
  }
  const std::vector<std::size_t>& abr_path() const noexcept { return abr_path_; }
  std::size_t slots() const noexcept { return config_.slots; }
  std::size_t warmup() const noexcept { return config_.warmup; }

  /// Mean external workload per slot (classes + ABR initial rate is
  /// excluded — the flow's rate is endogenous).
  double mean_offered_rate() const;

 private:
  ScenarioConfig config_;
  std::vector<PopulationSampler> samplers_;
  std::vector<std::size_t> abr_path_;
};

/// Per-worker simulation kernel: owns all scratch (class paths, frame
/// and cell buffers, the slot wheel, queue state) so that run_one is
/// allocation-free after construction.
///
/// Streaming classes (SourceClassConfig::streaming) hold a block-sized
/// path buffer instead of a whole-replication one, refilled from a
/// PopulationSampler::Stream at block boundaries inside the slot loop;
/// each streamed class owns a private BackgroundWorkspace so its
/// generator state never aliases another live stream's. Because the
/// slot dynamics consume no randomness, refilling mid-loop keeps the
/// engine-consumption pattern deterministic: whole-path classes draw
/// first, in class order, then streamed classes draw one synthesis
/// window at a time, in class order at each block boundary. A scenario
/// whose only class streams is bit-identical to the same scenario with
/// streaming off (block-size invariance of the background stream).
class ScenarioKernel {
 public:
  explicit ScenarioKernel(const ScenarioContext& context);

  /// Run one independent replication, consuming `rng` deterministically
  /// (one background path per whole-path class, in class order, before
  /// the slot loop; streamed classes draw window by window inside it).
  /// Returns the replication's statistics by reference to avoid
  /// per-call vector churn; the returned object is reused by the next
  /// run_one call.
  const ScenarioStats& run_one(RandomEngine& rng);

 private:
  const ScenarioContext& context_;
  SlotWheel wheel_;
  std::vector<double> queues_;
  core::BackgroundWorkspace generator_scratch_;
  std::vector<double> frame_scratch_;
  std::vector<std::size_t> cell_scratch_;
  /// Whole path per non-streaming class; one block per streaming class.
  std::vector<std::vector<double>> class_paths_;
  /// Private generator scratch per streaming class (empty otherwise).
  std::vector<core::BackgroundWorkspace> stream_scratch_;
  /// Live per-replication streams of the streaming classes.
  std::vector<std::optional<PopulationSampler::Stream>> streams_;
  bool any_streaming_ = false;
  std::vector<double> external_;  ///< per-node external workload, per slot
  AbrClientStats client_scratch_;  ///< per-class client accounting
  ScenarioStats stats_;
};

}  // namespace ssvbr::net
