// ssvbr/net/topology.h
//
// Static description of an ATM multiplexer topology: a forest of
// slotted store-and-forward nodes, each with one deterministic output
// link, routed towards a single sink (the egress of the network).
//
// A node is the finite-buffer slotted queue of Section 4 (admit up to
// the buffer, then serve up to `service_rate` work units per slot);
// the served work of a slot travels its output link and arrives at the
// downstream node `link_delay` slots later. Out-degree is exactly one
// (multiplexer trees and tandem lines — the topologies an ATM access
// network is built from), which makes routing static and the whole
// simulation deterministic.
//
// The description layer is pure data + validation; the dynamics live in
// net/simulator.h.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace ssvbr::net {

/// Downstream index meaning "leaves the network" (the sink).
inline constexpr std::size_t kSink = static_cast<std::size_t>(-1);

/// One slotted store-and-forward node and its output link.
struct NodeConfig {
  /// Deterministic service per slot (work units: bytes, or cells for
  /// segmented source classes). Must be positive.
  double service_rate = 1.0;
  /// Buffer capacity in work units; infinity = lossless (pure Lindley).
  double buffer = std::numeric_limits<double>::infinity();
  /// Level whose exceedance is counted into overflow_slots (the
  /// P(Q > b) statistic of the paper); infinity disables the counter.
  double overflow_threshold = std::numeric_limits<double>::infinity();
  /// Where served work goes: a node index, or kSink.
  std::size_t downstream = kSink;
  /// Slots of propagation delay on the output link. Must be >= 1 (work
  /// served in slot t arrives downstream no earlier than slot t+1).
  std::size_t link_delay = 1;
};

/// A validated node/link graph. Immutable after construction.
class Topology {
 public:
  Topology() = default;

  /// Validates on construction: every downstream index must name an
  /// existing node or kSink, link delays must be >= 1, service rates
  /// positive, buffers positive (or infinite), and every node's
  /// downstream walk must reach the sink (out-degree one, so "acyclic"
  /// and "drains to the sink" are the same condition). Throws
  /// ssvbr::Error via SSVBR_REQUIRE-style checks on violation.
  explicit Topology(std::vector<NodeConfig> nodes);

  std::size_t n_nodes() const noexcept { return nodes_.size(); }
  bool empty() const noexcept { return nodes_.empty(); }
  const NodeConfig& node(std::size_t i) const { return nodes_[i]; }
  const std::vector<NodeConfig>& nodes() const noexcept { return nodes_; }

  /// Hops from node `i` to the sink (1 for a node that feeds the sink
  /// directly).
  std::size_t depth(std::size_t i) const;

  /// Node indices on the walk from `from` to the sink, inclusive of
  /// `from`, exclusive of the sink.
  std::vector<std::size_t> path_to_sink(std::size_t from) const;

  /// Nodes no other node feeds (the ingress points of the network).
  std::vector<std::size_t> leaves() const;

  /// Largest link_delay in the topology (sizes the simulator's wheel).
  std::size_t max_link_delay() const;

 private:
  std::vector<NodeConfig> nodes_;
};

/// A complete `levels`-level multiplexer tree with `fanout` children
/// per internal node. Nodes are laid out level by level, leaves first:
/// level 0 holds fanout^(levels-1) leaf multiplexers, the last level
/// holds the root (which feeds the sink). `level_service[l]` /
/// `level_buffer[l]` configure every node of level l (both spans must
/// have `levels` entries).
Topology make_mux_tree(std::size_t levels, std::size_t fanout,
                       std::span<const double> level_service,
                       std::span<const double> level_buffer);

/// Leaf node indices of make_mux_tree(levels, fanout, ...): the first
/// fanout^(levels-1) nodes.
std::vector<std::size_t> mux_tree_leaves(std::size_t levels, std::size_t fanout);

/// A tandem line of `length` identical queues: node 0 feeds node 1
/// feeds ... feeds the sink. Ingress is node 0.
Topology make_tandem(std::size_t length, double service_rate, double buffer);

}  // namespace ssvbr::net
