// ssvbr/net/abr_client.h
//
// Chunked adaptive-bitrate (ABR) streaming client over a bandwidth
// trace — the oboe-style fixed_env simulation (SNIPPETS.md snippet 1):
// a client downloads video chunks over a per-slot bandwidth trace,
// fills a playback buffer measured in slots of content, starts playback
// once enough chunks are buffered, and stalls (rebuffers) whenever the
// buffer drains. A buffer-based rate policy (BBA-style thresholds)
// picks the next chunk's quality level from a bitrate ladder.
//
// The stepper is fully deterministic given (config, chunk sizes): it
// consumes no randomness of its own. Per slot it is classified into
// exactly one of {startup, playing, rebuffering, finished}, giving the
// exact wall-time partition
//
//     startup + play + rebuffer + finished == slots,
//
// and the bytes it downloads per slot are min(capacity, bytes still
// needed), so downloads are conserved against the trace slot by slot.
// Both identities are enforced by randomized property tests and the
// abr_client_accounting conformance check.
//
// In a network scenario (SourceKind::kAbrClient) the per-slot
// downloaded bytes are the workload injected at the class's ingress:
// a trace-driven open-loop source whose burst structure comes from the
// client dynamics instead of directly from a marginal/ACF model. Chunk
// sizes are synthesized from the class's unified VBR model (one
// foreground frame per slot of content, summed per chunk), so the
// video being streamed is itself a paper-model VBR title.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dist/random.h"

namespace ssvbr::net {

/// Client parameters. Sizes are in the same work units as the
/// bandwidth trace (bytes, cells, ... — the simulator is unit-agnostic).
struct AbrClientConfig {
  /// Download capacity per slot; cycled when shorter than the run.
  std::vector<double> bandwidth_trace;
  /// Slots of playback content per chunk (>= 1).
  std::size_t chunk_slots = 16;
  /// Quality ladder: multipliers on the nominal chunk size, ascending,
  /// all positive. The policy picks an index into this ladder.
  std::vector<double> bitrate_ladder{0.5, 1.0, 2.0};
  /// Playback starts once this many chunks are buffered (>= 1).
  std::size_t startup_chunks = 2;
  /// Stop downloading while the buffer holds more than this many slots.
  double max_buffer_slots = 64.0;
  /// Buffer-based rate policy: at/below `low` pick the lowest level, at/
  /// above `high` the highest, linear interpolation in between
  /// (0 <= low <= high <= max_buffer_slots).
  double low_buffer_slots = 8.0;
  double high_buffer_slots = 32.0;
};

/// Whole-run accounting of one client. The slot classes partition wall
/// time exactly: startup + play + rebuffer + finished == slots stepped.
struct AbrClientStats {
  double downloaded = 0.0;        ///< work units fetched, whole run
  std::size_t startup_slots = 0;  ///< before playback first started
  std::size_t play_slots = 0;     ///< buffer consumed normally
  std::size_t rebuffer_slots = 0; ///< stalled after startup
  std::size_t finished_slots = 0; ///< all buffered content played out
  std::size_t chunks_completed = 0;
  std::size_t quality_sum = 0;    ///< sum of ladder indices over chunks
  double buffer_end = 0.0;        ///< slots of content left at the end
};

/// Deterministic per-slot stepper. Borrows its config (which must
/// outlive it) and holds only scalar state, so constructing one per
/// replication is validation plus zero heap allocations.
class AbrClient {
 public:
  explicit AbrClient(const AbrClientConfig& config);

  const AbrClientConfig& config() const noexcept { return *config_; }

  /// Start a run over a playlist of nominal chunk sizes (borrowed; must
  /// outlive the run). Resets all state and stats.
  void begin(std::span<const double> chunk_sizes);

  /// Advance one slot against `capacity` download bandwidth; returns
  /// the work actually downloaded this slot (<= capacity).
  double step(double capacity);

  /// Slots of buffered content right now (never negative).
  double buffer_slots() const noexcept { return buffer_; }
  const AbrClientStats& stats() const noexcept { return stats_; }

  /// Run the whole playlist against the configured bandwidth trace for
  /// `slots` steps, optionally recording per-slot downloads.
  /// Equivalent to begin() + slots x step(trace[t % trace size]).
  void run(std::span<const double> chunk_sizes, std::size_t slots,
           std::span<double> downloads_out = {});

  /// Ladder index the policy picks at a given buffer level (exposed for
  /// tests).
  std::size_t pick_level(double buffer_slots) const noexcept;

 private:
  const AbrClientConfig* config_;
  std::span<const double> chunks_;
  AbrClientStats stats_;
  double buffer_ = 0.0;          // slots of content buffered
  double chunk_remaining_ = 0.0; // work left in the in-flight chunk
  std::size_t next_chunk_ = 0;   // playlist index of the next fetch
  bool fetching_ = false;
  bool started_ = false;
  double played_ = 0.0;          // slots of content consumed
  double content_total_ = 0.0;   // slots of content in the playlist
};

}  // namespace ssvbr::net
