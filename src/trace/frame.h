// ssvbr/trace/frame.h
//
// MPEG-1 frame taxonomy and group-of-pictures (GOP) structure.
//
// The paper's interframe model (Section 3.3) hinges on the periodic
// I/B/P pattern the PVRG-MPEG 1.1 codec emits: I frames every
// K_I = 12 frames, pattern I B B P B B P B B P B B.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ssvbr::trace {

/// MPEG frame type.
enum class FrameType : unsigned char {
  I,  ///< intraframe-coded (no temporal prediction)
  P,  ///< forward predicted
  B,  ///< bidirectionally predicted
};

/// Single-character mnemonic ('I', 'P', 'B').
char to_char(FrameType type) noexcept;

/// Parse a mnemonic; throws InvalidArgument for anything else.
FrameType frame_type_from_char(char c);

/// A repeating GOP pattern, e.g. "IBBPBBPBBPBB".
class GopStructure {
 public:
  /// Builds from a pattern string; must be non-empty, start with 'I',
  /// and contain only I/P/B.
  explicit GopStructure(std::string pattern);

  /// The canonical MPEG-1 pattern used by the paper's codec
  /// (I period 12): "IBBPBBPBBPBB".
  static GopStructure mpeg1_default();

  std::size_t size() const noexcept { return pattern_.size(); }

  /// Frame type at global frame index i (pattern repeats).
  FrameType type_at(std::size_t frame_index) const noexcept;

  /// I-frame period K_I (equal to size() for single-I patterns).
  std::size_t i_period() const noexcept { return pattern_.size(); }

  /// Counts of each type within one period.
  std::size_t count(FrameType type) const noexcept;

  const std::string& pattern() const noexcept { return text_; }

 private:
  std::string text_;
  std::vector<FrameType> pattern_;
};

}  // namespace ssvbr::trace
