#include "trace/frame.h"

#include "common/error.h"

namespace ssvbr::trace {

char to_char(FrameType type) noexcept {
  switch (type) {
    case FrameType::I: return 'I';
    case FrameType::P: return 'P';
    case FrameType::B: return 'B';
  }
  return '?';
}

FrameType frame_type_from_char(char c) {
  switch (c) {
    case 'I': case 'i': return FrameType::I;
    case 'P': case 'p': return FrameType::P;
    case 'B': case 'b': return FrameType::B;
    default:
      throw InvalidArgument(std::string("unknown frame type '") + c + "'");
  }
}

GopStructure::GopStructure(std::string pattern) : text_(std::move(pattern)) {
  SSVBR_REQUIRE(!text_.empty(), "GOP pattern must be non-empty");
  SSVBR_REQUIRE(text_.front() == 'I', "GOP pattern must start with an I frame");
  pattern_.reserve(text_.size());
  for (const char c : text_) pattern_.push_back(frame_type_from_char(c));
}

GopStructure GopStructure::mpeg1_default() { return GopStructure("IBBPBBPBBPBB"); }

FrameType GopStructure::type_at(std::size_t frame_index) const noexcept {
  return pattern_[frame_index % pattern_.size()];
}

std::size_t GopStructure::count(FrameType type) const noexcept {
  std::size_t n = 0;
  for (const FrameType t : pattern_) {
    if (t == type) ++n;
  }
  return n;
}

}  // namespace ssvbr::trace
