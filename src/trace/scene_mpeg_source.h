// ssvbr/trace/scene_mpeg_source.h
//
// Synthetic "empirical" MPEG-1 VBR video source.
//
// The paper's measurements come from a 2h12m MPEG-1 encoding of the
// movie "Last Action Hero" (Table 1). That trace is not available, so
// this class generates a *mechanistically independent* stand-in: a
// scene-oriented renewal model rather than a transformed Gaussian
// process, so that fitting it with the paper's pipeline is a genuine
// exercise and not a round trip through our own generator.
//
// Generation mechanism (per I-frame/GOP, then expanded to P/B frames):
//
//   * Scene lengths are Pareto(alpha) GOPs. Heavy-tailed activity
//     durations are the classical structural explanation for long-range
//     dependence in VBR video; an ON/OFF-style renewal process with
//     tail index alpha yields Hurst parameter H = (3 - alpha) / 2
//     (Taqqu-Willinger-Sherman), so the default alpha targets H ~= 0.9 as
//     the paper estimates for its trace.
//   * Each scene has a log-activity level following an AR(1) across
//     scenes, plus an AR(1) fluctuation across GOPs *within* the scene
//     and white per-frame coding noise. The two exponential components
//     produce the short-range "knee" the paper observes around lag
//     60-80, below the power-law scene tail.
//   * I-frame size = exp(log-level): a lognormal-type body whose upper
//     tail is fattened further by occasional high-action scenes,
//     reproducing the "long tail far from Gaussian" of Fig. 1.
//   * P and B frames scale the surrounding I level by per-scene motion
//     factors with their own noise, following the GOP pattern
//     I B B P B B P B B P B B of the paper's codec.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dist/random.h"
#include "trace/video_trace.h"

namespace ssvbr::trace {

/// Tunable parameters of the synthetic source. Defaults are calibrated
/// so the generated trace reproduces the paper's measured statistics:
/// variance-time H ~= 0.89, R/S H ~= 0.92, ACF knee near lag 60-80.
struct SceneMpegSourceParams {
  // --- scene process -----------------------------------------------------
  // alpha = 1.14 targets H = (3 - alpha) / 2 = 0.93, bracketing the
  // paper's estimates (0.89 from variance-time, 0.92 from R/S).
  double scene_alpha = 1.14;     ///< Pareto tail index of scene length (GOPs)
  double scene_min_gops = 4.0;   ///< Pareto scale (minimum scene length)
  double scene_level_rho = 0.88; ///< AR(1) of log-activity across scenes
  double scene_level_sigma = 0.30; ///< innovation stddev of scene log-activity

  // --- within-scene / frame process --------------------------------------
  // within_rho = exp(-0.00565) matches the paper's fitted SRD rate.
  double within_rho = 0.9944;    ///< AR(1) of log-activity across GOPs
  double within_sigma = 0.027;   ///< innovation stddev within scene
  double noise_sigma = 0.07;     ///< white per-I-frame coding noise (log)

  // --- frame-size scales --------------------------------------------------
  double i_scale_bytes = 8000.0; ///< median I-frame size
  double p_ratio = 0.45;         ///< P size relative to local I level
  double p_sigma = 0.16;         ///< P-frame noise (log)
  double b_ratio = 0.20;         ///< B size relative to local I level
  double b_sigma = 0.20;         ///< B-frame noise (log)
  double motion_sigma = 0.30;    ///< per-scene motion factor for P/B (log)

  // --- hard floor so sizes stay physical ----------------------------------
  double min_frame_bytes = 64.0;
};

/// Seed of the canonical "empirical" stand-in trace used throughout the
/// benchmarks. Like the paper, which has exactly one Last Action Hero
/// trace, the reproduction fixes one realization; this seed was selected
/// because its realization matches the paper's reported statistics
/// (variance-time H ~= 0.92, ACF fit lambda ~= 0.003, L ~= 2.3,
/// beta ~= 0.24, knee ~= 66).
inline constexpr std::uint64_t kCanonicalEmpiricalSeed = 8;

/// Scene-based synthetic MPEG-1 VBR source.
class SceneMpegSource {
 public:
  explicit SceneMpegSource(SceneMpegSourceParams params = {},
                           GopStructure gop = GopStructure::mpeg1_default());

  /// Generate a trace of `n_frames` frames.
  VideoTrace generate(std::size_t n_frames, RandomEngine& rng) const;

  /// Generate the full-length equivalent of the paper's Table 1
  /// sequence: 238,626 frames of 320x240 MPEG-1 at 30 fps.
  VideoTrace generate_table1_equivalent(RandomEngine& rng) const;

  const SceneMpegSourceParams& params() const noexcept { return params_; }
  const GopStructure& gop() const noexcept { return gop_; }

 private:
  SceneMpegSourceParams params_;
  GopStructure gop_;
};

/// The canonical full-length "empirical" stand-in for the paper's Last
/// Action Hero trace: default parameters, kCanonicalEmpiricalSeed,
/// 238,626 frames (Table 1). When `n_frames` is non-zero a shorter
/// trace with the same seed and parameters is produced (for fast tests).
VideoTrace make_empirical_standin_trace(std::size_t n_frames = 0);

}  // namespace ssvbr::trace
