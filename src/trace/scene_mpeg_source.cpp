#include "trace/scene_mpeg_source.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "dist/distributions.h"

namespace ssvbr::trace {

SceneMpegSource::SceneMpegSource(SceneMpegSourceParams params, GopStructure gop)
    : params_(std::move(params)), gop_(std::move(gop)) {
  SSVBR_REQUIRE(params_.scene_alpha > 1.0 && params_.scene_alpha < 2.0,
                "scene_alpha must lie in (1, 2) for finite-mean, LRD-inducing scenes");
  SSVBR_REQUIRE(params_.scene_min_gops >= 1.0, "scenes must last at least one GOP");
  SSVBR_REQUIRE(params_.scene_level_rho >= 0.0 && params_.scene_level_rho < 1.0,
                "scene_level_rho must lie in [0, 1)");
  SSVBR_REQUIRE(params_.within_rho >= 0.0 && params_.within_rho < 1.0,
                "within_rho must lie in [0, 1)");
  SSVBR_REQUIRE(params_.i_scale_bytes > 0.0, "i_scale_bytes must be positive");
  SSVBR_REQUIRE(params_.p_ratio > 0.0 && params_.b_ratio > 0.0,
                "P/B ratios must be positive");
}

VideoTrace SceneMpegSource::generate(std::size_t n_frames, RandomEngine& rng) const {
  SSVBR_REQUIRE(n_frames >= 1, "cannot generate an empty trace");
  const ParetoDistribution scene_length(params_.scene_alpha, params_.scene_min_gops);

  std::vector<double> sizes;
  sizes.reserve(n_frames);

  // Stationary-ish initialization of the two AR(1) levels.
  const double scene_stat_sigma =
      params_.scene_level_sigma /
      std::sqrt(1.0 - params_.scene_level_rho * params_.scene_level_rho);
  const double within_stat_sigma =
      params_.within_sigma / std::sqrt(1.0 - params_.within_rho * params_.within_rho);

  double scene_level = rng.normal(0.0, scene_stat_sigma);   // log activity of scene
  double within_level = rng.normal(0.0, within_stat_sigma); // log fluctuation in scene
  double motion = rng.normal(0.0, params_.motion_sigma);    // log motion factor
  std::size_t gops_left = static_cast<std::size_t>(std::ceil(scene_length.sample(rng)));

  const double log_i_scale = std::log(params_.i_scale_bytes);
  double gop_i_log = log_i_scale + scene_level + within_level;  // current GOP's I level

  const std::size_t gop_len = gop_.size();
  for (std::size_t i = 0; i < n_frames; ++i) {
    const std::size_t pos = i % gop_len;
    if (pos == 0) {
      // New GOP: advance the within-scene fluctuation; maybe start a
      // new scene.
      if (gops_left == 0) {
        scene_level = params_.scene_level_rho * scene_level +
                      rng.normal(0.0, params_.scene_level_sigma);
        motion = rng.normal(0.0, params_.motion_sigma);
        gops_left = static_cast<std::size_t>(std::ceil(scene_length.sample(rng)));
        // Scene cuts reset part of the short-term memory: keep the
        // within-scene level but shrink it toward zero.
        within_level *= 0.5;
      }
      --gops_left;
      within_level = params_.within_rho * within_level +
                     rng.normal(0.0, params_.within_sigma);
      gop_i_log = log_i_scale + scene_level + within_level;
    }

    double bytes = 0.0;
    switch (gop_.type_at(i)) {
      case FrameType::I:
        bytes = std::exp(gop_i_log + rng.normal(0.0, params_.noise_sigma));
        break;
      case FrameType::P:
        bytes = params_.p_ratio *
                std::exp(gop_i_log + motion + rng.normal(0.0, params_.p_sigma));
        break;
      case FrameType::B:
        bytes = params_.b_ratio *
                std::exp(gop_i_log + motion + rng.normal(0.0, params_.b_sigma));
        break;
    }
    sizes.push_back(bytes < params_.min_frame_bytes ? params_.min_frame_bytes : bytes);
  }

  TraceMetadata meta;
  meta.title = "synthetic scene-based MPEG-1 sequence (Last Action Hero stand-in)";
  meta.coder = "ssvbr SceneMpegSource";
  return VideoTrace(std::move(sizes), gop_, std::move(meta));
}

VideoTrace SceneMpegSource::generate_table1_equivalent(RandomEngine& rng) const {
  // Table 1: 238,626 frames, 2h12m36s at 30 fps, 320x240, 8 bpp, 15
  // slices/frame.
  return generate(238626, rng);
}

VideoTrace make_empirical_standin_trace(std::size_t n_frames) {
  RandomEngine rng(kCanonicalEmpiricalSeed);
  const SceneMpegSource source;
  return source.generate(n_frames == 0 ? 238626 : n_frames, rng);
}

}  // namespace ssvbr::trace
