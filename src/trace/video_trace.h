// ssvbr/trace/video_trace.h
//
// Container for a VBR video frame-size trace plus the sequence metadata
// the paper reports in Table 1. Provides the per-frame-type slicing the
// interframe model needs (separate histograms for I, P, B frames and
// the I-frame subseries whose ACF drives the background process).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "dist/random.h"
#include "trace/frame.h"

namespace ssvbr::trace {

/// Sequence metadata, mirroring the paper's Table 1.
struct TraceMetadata {
  std::string coder = "synthetic";
  std::string format = "YUV colorspace, CCIR 601-2";
  int width = 320;
  int height = 240;
  int bits_per_pixel = 8;
  double frames_per_second = 30.0;
  int slices_per_frame = 15;
  std::string title;

  /// Duration in seconds implied by the frame count.
  double duration_seconds(std::size_t n_frames) const {
    return static_cast<double>(n_frames) / frames_per_second;
  }
};

/// A frame-size trace: sizes in bytes/frame, one entry per frame, with
/// the GOP pattern that assigns each frame its type.
class VideoTrace {
 public:
  VideoTrace(std::vector<double> frame_sizes, GopStructure gop,
             TraceMetadata metadata = {});

  std::size_t size() const noexcept { return sizes_.size(); }
  bool empty() const noexcept { return sizes_.empty(); }

  /// Bytes of frame i.
  double operator[](std::size_t i) const { return sizes_[i]; }

  FrameType type_of(std::size_t i) const noexcept { return gop_.type_at(i); }

  std::span<const double> frame_sizes() const noexcept { return sizes_; }
  const GopStructure& gop() const noexcept { return gop_; }
  const TraceMetadata& metadata() const noexcept { return metadata_; }

  /// Sizes of all frames of the given type, in temporal order.
  std::vector<double> sizes_of(FrameType type) const;

  /// The I-frame subseries (one value per GOP) that Section 3.3 models
  /// first; identical to sizes_of(FrameType::I).
  std::vector<double> i_frame_series() const { return sizes_of(FrameType::I); }

  /// Mean bytes/frame across the whole trace.
  double mean_frame_size() const;

  /// Aggregate bit rate in bits/second implied by the metadata.
  double mean_bit_rate() const;

  /// Expand the trace to slice granularity: every frame's bytes are
  /// split across metadata().slices_per_frame slices. The paper models
  /// "the number of bits per video frame or slice"; slice granularity
  /// is what an ATM adaptation layer actually sees within the frame
  /// interval. With `rng == nullptr` the split is even; with an engine,
  /// a Dirichlet-like symmetric perturbation (`unevenness` > 0 scales
  /// its strength) models the uneven spatial complexity of real slices
  /// while conserving every frame's total exactly.
  std::vector<double> slice_series(RandomEngine* rng = nullptr,
                                   double unevenness = 0.5) const;

  /// Serialize as a self-describing text format:
  ///   header lines "# key: value", then one "<type> <bytes>" per frame.
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;

  /// Parse the text format written by save(). Throws InvalidArgument on
  /// malformed input.
  static VideoTrace load(std::istream& is);
  static VideoTrace load_file(const std::string& path);

 private:
  std::vector<double> sizes_;
  GopStructure gop_;
  TraceMetadata metadata_;
};

}  // namespace ssvbr::trace
