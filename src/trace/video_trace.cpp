#include "trace/video_trace.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "stats/descriptive.h"

namespace ssvbr::trace {

VideoTrace::VideoTrace(std::vector<double> frame_sizes, GopStructure gop,
                       TraceMetadata metadata)
    : sizes_(std::move(frame_sizes)), gop_(std::move(gop)), metadata_(std::move(metadata)) {
  SSVBR_REQUIRE(!sizes_.empty(), "a trace must contain at least one frame");
  for (const double s : sizes_) {
    SSVBR_REQUIRE(s >= 0.0, "frame sizes must be non-negative");
  }
}

std::vector<double> VideoTrace::sizes_of(FrameType type) const {
  std::vector<double> out;
  out.reserve(sizes_.size() / gop_.size() * gop_.count(type) + gop_.size());
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    if (gop_.type_at(i) == type) out.push_back(sizes_[i]);
  }
  return out;
}

double VideoTrace::mean_frame_size() const { return stats::mean(sizes_); }

double VideoTrace::mean_bit_rate() const {
  return mean_frame_size() * 8.0 * metadata_.frames_per_second;
}

std::vector<double> VideoTrace::slice_series(RandomEngine* rng, double unevenness) const {
  const int slices = metadata_.slices_per_frame;
  SSVBR_REQUIRE(slices >= 1, "metadata must specify at least one slice per frame");
  SSVBR_REQUIRE(unevenness >= 0.0, "unevenness must be non-negative");
  std::vector<double> out;
  out.reserve(sizes_.size() * static_cast<std::size_t>(slices));
  std::vector<double> weights(static_cast<std::size_t>(slices));
  for (const double frame_bytes : sizes_) {
    if (rng == nullptr || unevenness == 0.0) {
      const double each = frame_bytes / static_cast<double>(slices);
      for (int s = 0; s < slices; ++s) out.push_back(each);
      continue;
    }
    // Normalized positive weights (exponential of scaled Gaussians is a
    // cheap symmetric Dirichlet-like split) conserve the frame total.
    double total = 0.0;
    for (auto& w : weights) {
      w = std::exp(unevenness * rng->normal());
      total += w;
    }
    for (const double w : weights) out.push_back(frame_bytes * w / total);
  }
  return out;
}

void VideoTrace::save(std::ostream& os) const {
  os << "# ssvbr-trace-v1\n";
  os << "# title: " << metadata_.title << '\n';
  os << "# coder: " << metadata_.coder << '\n';
  os << "# format: " << metadata_.format << '\n';
  os << "# width: " << metadata_.width << '\n';
  os << "# height: " << metadata_.height << '\n';
  os << "# bits_per_pixel: " << metadata_.bits_per_pixel << '\n';
  os << "# frames_per_second: " << metadata_.frames_per_second << '\n';
  os << "# slices_per_frame: " << metadata_.slices_per_frame << '\n';
  os << "# gop: " << gop_.pattern() << '\n';
  os << "# frames: " << sizes_.size() << '\n';
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    os << to_char(gop_.type_at(i)) << ' ' << sizes_[i] << '\n';
  }
}

void VideoTrace::save_file(const std::string& path) const {
  std::ofstream os(path);
  SSVBR_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  save(os);
  SSVBR_REQUIRE(os.good(), "write to '" + path + "' failed");
}

VideoTrace VideoTrace::load(std::istream& is) {
  TraceMetadata meta;
  std::string gop_pattern = "IBBPBBPBBPBB";
  std::vector<double> sizes;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto colon = line.find(':');
      if (colon == std::string::npos) continue;  // banner line
      std::string key = line.substr(1, colon - 1);
      std::string value = line.substr(colon + 1);
      // Trim surrounding whitespace.
      const auto trim = [](std::string& s) {
        const auto b = s.find_first_not_of(" \t");
        const auto e = s.find_last_not_of(" \t");
        s = b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
      };
      trim(key);
      trim(value);
      if (key == "title") meta.title = value;
      else if (key == "coder") meta.coder = value;
      else if (key == "format") meta.format = value;
      else if (key == "width") meta.width = std::stoi(value);
      else if (key == "height") meta.height = std::stoi(value);
      else if (key == "bits_per_pixel") meta.bits_per_pixel = std::stoi(value);
      else if (key == "frames_per_second") meta.frames_per_second = std::stod(value);
      else if (key == "slices_per_frame") meta.slices_per_frame = std::stoi(value);
      else if (key == "gop") gop_pattern = value;
      continue;
    }
    std::istringstream ls(line);
    char type_char = 0;
    double bytes = 0.0;
    if (!(ls >> type_char >> bytes)) {
      throw InvalidArgument("malformed trace line: '" + line + "'");
    }
    frame_type_from_char(type_char);  // validates
    SSVBR_REQUIRE(bytes >= 0.0, "frame sizes must be non-negative");
    sizes.push_back(bytes);
  }
  SSVBR_REQUIRE(!sizes.empty(), "trace stream contained no frames");
  return VideoTrace(std::move(sizes), GopStructure(gop_pattern), std::move(meta));
}

VideoTrace VideoTrace::load_file(const std::string& path) {
  std::ifstream is(path);
  SSVBR_REQUIRE(is.good(), "cannot open '" + path + "' for reading");
  return load(is);
}

}  // namespace ssvbr::trace
