// ssvbr/validate/stat_tests.h
//
// Small collection of classical significance tests used by the
// conformance checks. Each returns a p-value under the stated null so
// the Suite can apply a uniform Bonferroni-adjusted acceptance rule.
#pragma once

#include <cstddef>
#include <span>

namespace ssvbr::validate {

/// Asymptotic survival function of the Kolmogorov distribution:
/// P(K > x) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 x^2).
/// Clamped to [0, 1]; returns 1 for x <= 0.
double kolmogorov_sf(double x);

/// P-value of the one-sample KS test with statistic `d` (sup distance
/// between the ECDF of `n` iid draws and a fully specified continuous
/// null CDF), using the asymptotic distribution of sqrt(n)*D with the
/// standard small-sample correction sqrt(n) + 0.12 + 0.11/sqrt(n).
double ks_p_value(double d, std::size_t n);

/// Two-sided p-value of the two-proportion z-test for H0: p1 == p2
/// given hit counts x1/n1 and x2/n2 (pooled variance). Returns 1 when
/// both samples are hitless (no evidence either way).
double two_proportion_p_value(std::size_t x1, std::size_t n1,
                              std::size_t x2, std::size_t n2);

/// Two-sided p-value of the z-test for H0: the two estimates share a
/// common mean, given each estimate and its variance (Welch-style
/// combined variance). Returns 1 when both variances are zero and the
/// estimates agree exactly.
double two_estimate_z_p_value(double est1, double var1, double est2, double var2);

}  // namespace ssvbr::validate
