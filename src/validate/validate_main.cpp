// ssvbr_validate — paper-conformance acceptance harness.
//
// Runs the seeded statistical checks of validate/checks.h and reports
// pass/fail per check plus an optional deterministic JSON report
// (byte-identical across runs with the same seed, scale, and build).
//
//   ssvbr_validate [--seed N] [--scale X] [--threads N]
//                  [--check NAME]... [--list] [--report PATH]
//                  [--family-alpha A] [--scratch-dir DIR]
//
// Exit status: 0 all selected checks passed, 1 at least one failed,
// 2 usage or I/O error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"
#include "validate/checks.h"
#include "validate/report.h"

namespace {

using namespace ssvbr;
using namespace ssvbr::validate;

void usage(std::FILE* out) {
  std::fputs(
      "usage: ssvbr_validate [options]\n"
      "  --seed N          base seed of the suite (default 1)\n"
      "  --scale X         workload multiplier in (0, 1] (default 1.0;\n"
      "                    thresholds are calibrated at 1.0)\n"
      "  --threads N       engine worker threads (default 0 = all cores)\n"
      "  --check NAME      run only this check (repeatable)\n"
      "  --list            list registered checks and exit\n"
      "  --report PATH     write the JSON conformance report to PATH\n"
      "  --family-alpha A  family-wise false-failure rate (default 0.01)\n"
      "  --scratch-dir DIR directory for scratch checkpoint files\n"
      "  --help            this message\n",
      out);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CheckContext context;
  double family_alpha = 0.01;
  std::vector<std::string> selected;
  std::string report_path;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ssvbr_validate: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--seed") {
      if (!parse_u64(next("--seed"), context.seed)) {
        std::fprintf(stderr, "ssvbr_validate: bad --seed\n");
        return 2;
      }
    } else if (arg == "--scale") {
      if (!parse_double(next("--scale"), context.scale) ||
          context.scale <= 0.0 || context.scale > 1.0) {
        std::fprintf(stderr, "ssvbr_validate: --scale must be in (0, 1]\n");
        return 2;
      }
    } else if (arg == "--threads") {
      std::uint64_t threads = 0;
      if (!parse_u64(next("--threads"), threads)) {
        std::fprintf(stderr, "ssvbr_validate: bad --threads\n");
        return 2;
      }
      context.threads = static_cast<unsigned>(threads);
    } else if (arg == "--check") {
      selected.emplace_back(next("--check"));
    } else if (arg == "--report") {
      report_path = next("--report");
    } else if (arg == "--family-alpha") {
      if (!parse_double(next("--family-alpha"), family_alpha) ||
          family_alpha <= 0.0 || family_alpha >= 1.0) {
        std::fprintf(stderr, "ssvbr_validate: --family-alpha must be in (0, 1)\n");
        return 2;
      }
    } else if (arg == "--scratch-dir") {
      context.scratch_dir = next("--scratch-dir");
    } else {
      std::fprintf(stderr, "ssvbr_validate: unknown option %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  try {
    const Suite suite = default_suite(family_alpha);

    if (list_only) {
      for (const Check& check : suite.checks()) {
        std::printf("%-28s [%s] %s\n", check.name.c_str(),
                    to_string(check.kind), check.claim.c_str());
      }
      return 0;
    }

    std::vector<CheckResult> results;
    if (selected.empty()) {
      results = suite.run_all(context);
    } else {
      for (const std::string& name : selected) {
        auto result = suite.run_one(name, context);
        if (!result) {
          std::fprintf(stderr, "ssvbr_validate: no such check: %s\n",
                       name.c_str());
          return 2;
        }
        results.push_back(std::move(*result));
      }
    }

    std::size_t n_failed = 0;
    for (const CheckResult& r : results) {
      if (!r.passed) ++n_failed;
      std::printf("%s %-28s stat=%-11.5g thr=%-9.5g", r.passed ? "PASS" : "FAIL",
                  r.name.c_str(), r.statistic, r.threshold);
      if (r.kind == CheckKind::kPValue) {
        std::printf(" p=%-9.4g alpha=%-9.4g", r.p_value, r.alpha);
      } else {
        std::printf(" %-29s", "");
      }
      std::printf(" (%.2fs)\n", r.seconds);
      std::printf("     %s\n", r.detail.c_str());
    }
    std::printf("%zu/%zu checks passed (family alpha %.3g, per-check alpha "
                "%.3g over %zu p-value checks)\n",
                results.size() - n_failed, results.size(), suite.family_alpha(),
                suite.per_check_alpha(), suite.n_pvalue_checks());

    if (!report_path.empty()) {
      write_report(report_path, suite, context, results);
      std::printf("report: %s\n", report_path.c_str());
    }
    return n_failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ssvbr_validate: %s\n", e.what());
    return 2;
  }
}
