// ssvbr/validate/checks.h
//
// The concrete paper-conformance suite: every quantitative claim of the
// paper that the library reproduces, re-derived end-to-end through the
// real pipeline and judged by the Check machinery of check.h. The
// registration order here is the canonical report order.
//
// Paper claims covered (see EXPERIMENTS.md, "Conformance checks"):
//   eq. (7)        marginal inversion, exact and tabulated transform
//   eqs. (10)-(13) composite SRD+LRD ACF below/above the knee Kt
//   eq. (30)       attenuation factor a = E[h(X)X]^2 / Var(h(X))
//   Appendix A     Hurst preservation under h (R/S + periodogram)
//   eq. (15)       GOP rescaling r(k) = r_I(k / K_I)
//   eqs. (16)-(17) Lindley terminal / first-passage duality
//   ref [23]       Norros fBm overflow asymptotic (Fig. 17)
//   Section 4      IS unbiasedness and Fig. 14 variance reduction
// plus two library-level invariants under statistical workloads:
// checkpoint/resume bit-identity through RunRequest, and the ATM
// segmentation conservation/pacing properties.
#pragma once

#include "validate/check.h"

namespace ssvbr::validate {

/// Build the full conformance suite with the given family-wise
/// false-failure rate (default 1%: over fresh random seeds, at most 1%
/// of suite runs fail any p-value check when every claim holds;
/// tolerance checks are calibrated to at least that margin at
/// scale = 1).
Suite default_suite(double family_alpha = 0.01);

}  // namespace ssvbr::validate
