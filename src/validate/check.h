// ssvbr/validate/check.h
//
// The paper-conformance check abstraction: a named, seeded statistical
// acceptance test with a designed false-failure rate.
//
// Every check re-derives one quantitative claim of the paper through
// the real library pipeline (generator -> transform -> estimator) and
// reduces it to a single statistic compared against either
//
//   * a null distribution  (CheckKind::kPValue)   — the check computes
//     a p-value under "the library implements the claim" and fails
//     when p < alpha, where alpha is the Bonferroni share of the
//     suite-wide family alpha; or
//   * a tolerance          (kUpperBound / kLowerBound) — the statistic
//     must stay below / above a calibrated threshold; or
//   * an exact invariant   (kExact)               — the statistic counts
//     violations and the threshold is zero.
//
// Determinism contract: a check draws all randomness from a RandomEngine
// seeded by mix(context seed, FNV-1a of the check name), so (a) two runs
// with the same seed produce bit-identical results, and (b) adding,
// removing, or reordering checks never disturbs the streams of the
// others. The "designed false-failure rate" is therefore a statement
// about a *freshly drawn* seed: over random seeds the suite fails with
// probability <= family_alpha even when every claim holds; for the
// pinned default seed the outcome is simply fixed (and green).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dist/random.h"

namespace ssvbr::validate {

/// How a check's statistic is judged.
enum class CheckKind {
  kPValue,      ///< fail when p_value < alpha (Bonferroni-adjusted)
  kUpperBound,  ///< fail when statistic > threshold
  kLowerBound,  ///< fail when statistic < threshold
  kExact,       ///< fail when statistic != 0 (violation count)
};

/// Identifier string for a CheckKind ("p_value", "upper_bound", ...).
const char* to_string(CheckKind kind) noexcept;

/// Shared inputs of a conformance run.
struct CheckContext {
  /// Base seed of the whole suite; each check derives its own fixed
  /// stream from (seed, check name).
  std::uint64_t seed = 1;
  /// Workload multiplier in (0, 1]: scales replication counts and path
  /// lengths. Thresholds are calibrated at 1.0; smoke runs may shrink
  /// the workload, in which case only the exact (kExact) checks retain
  /// their designed error rate.
  double scale = 1.0;
  /// Engine worker threads for the RunRequest-driven checks
  /// (0 = hardware concurrency). Never changes any result — the
  /// replication engine is bit-deterministic across thread counts.
  unsigned threads = 0;
  /// Directory for scratch files (checkpoint snapshots written by the
  /// run-control checks). Empty selects the system temp directory.
  std::string scratch_dir;
};

/// Outcome of one check.
struct CheckResult {
  std::string name;
  std::string claim;  ///< paper anchor: equation / figure / appendix
  CheckKind kind = CheckKind::kUpperBound;
  double statistic = 0.0;
  double threshold = 0.0;  ///< tolerance, bound, or critical value
  /// P-value under the claim's null; NaN for tolerance/exact checks.
  double p_value = 0.0;
  /// Designed false-failure rate of THIS check: the Bonferroni share
  /// for p-value checks, 0 for exact checks, and the calibrated
  /// nominal rate recorded by tolerance checks.
  double alpha = 0.0;
  bool passed = false;
  std::string detail;  ///< human-readable measurement summary
  double seconds = 0.0;  ///< wall clock; NOT part of the JSON report
};

/// One registered conformance check. `body` fills statistic /
/// threshold / p_value / detail; the suite owns name, claim, kind,
/// alpha, and the pass verdict so every check is judged uniformly.
struct Check {
  std::string name;
  std::string claim;
  CheckKind kind = CheckKind::kUpperBound;
  std::function<void(const CheckContext&, RandomEngine&, CheckResult&)> body;
};

/// Derive the fixed per-check engine for (suite seed, check name).
RandomEngine check_engine(std::uint64_t suite_seed, const std::string& check_name);

/// An ordered collection of checks with family-wise error control:
/// the suite-wide false-failure rate `family_alpha` is split evenly
/// (Bonferroni) across the p-value checks, so the designed probability
/// that a fresh seed fails ANY p-value check is at most family_alpha.
class Suite {
 public:
  explicit Suite(double family_alpha = 0.01);

  /// Register a check. Names must be unique; registration order is the
  /// run/report order.
  void add(Check check);

  const std::vector<Check>& checks() const noexcept { return checks_; }
  double family_alpha() const noexcept { return family_alpha_; }

  /// Number of registered p-value checks (the Bonferroni denominator).
  std::size_t n_pvalue_checks() const noexcept;

  /// Bonferroni-adjusted alpha for each p-value check.
  double per_check_alpha() const noexcept;

  /// Run every check in registration order.
  std::vector<CheckResult> run_all(const CheckContext& context) const;

  /// Run one check by name; std::nullopt when no such check exists.
  /// The result (alpha included) is identical to its run_all entry.
  std::optional<CheckResult> run_one(const std::string& name,
                                     const CheckContext& context) const;

 private:
  CheckResult run_check(const Check& check, const CheckContext& context) const;

  double family_alpha_;
  std::vector<Check> checks_;
};

}  // namespace ssvbr::validate
