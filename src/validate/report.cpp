#include "validate/report.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "common/json.h"
#include "common/version.h"

namespace ssvbr::validate {
namespace {

// Round-trip-exact, locale-independent double rendering; non-finite
// values become JSON null (only p_value can legitimately be NaN).
std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string render_report(const Suite& suite, const CheckContext& context,
                          const std::vector<CheckResult>& results) {
  std::size_t n_passed = 0;
  for (const CheckResult& r : results) {
    if (r.passed) ++n_passed;
  }
  const BuildInfo& build = build_info();

  std::string out = "{\"magic\":\"ssvbr-conformance\",\"version\":1";
  out += ",\"meta\":{";
  out += "\"seed\":" + json::quote(json::hex_u64(context.seed));
  out += ",\"scale\":" + number(context.scale);
  out += ",\"family_alpha\":" + number(suite.family_alpha());
  out += ",\"per_check_alpha\":" + number(suite.per_check_alpha());
  out += ",\"n_checks\":" + std::to_string(results.size());
  out += ",\"build\":{\"version\":" + json::quote(build.version);
  out += ",\"sha\":" + json::quote(build.git_sha);
  out += ",\"build_type\":" + json::quote(build.build_type);
  out += "}}";

  out += ",\"checks\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CheckResult& r = results[i];
    if (i > 0) out += ",";
    out += "{\"name\":" + json::quote(r.name);
    out += ",\"claim\":" + json::quote(r.claim);
    out += ",\"kind\":" + json::quote(to_string(r.kind));
    out += ",\"statistic\":" + number(r.statistic);
    out += ",\"threshold\":" + number(r.threshold);
    out += ",\"p_value\":" + number(r.p_value);
    out += ",\"alpha\":" + number(r.alpha);
    out += std::string(",\"passed\":") + (r.passed ? "true" : "false");
    out += ",\"detail\":" + json::quote(r.detail);
    out += "}";
  }
  out += "]";

  out += std::string(",\"passed\":") +
         (n_passed == results.size() ? "true" : "false");
  out += ",\"n_passed\":" + std::to_string(n_passed);
  out += ",\"n_failed\":" + std::to_string(results.size() - n_passed);
  out += "}\n";
  return out;
}

void write_report(const std::string& path, const Suite& suite,
                  const CheckContext& context,
                  const std::vector<CheckResult>& results) {
  const std::string body = render_report(suite, context, results);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.good()) {
    throw RunError({ErrorCode::kIoError,
                    "cannot open conformance report for writing", path});
  }
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  file.flush();
  if (!file.good()) {
    throw RunError(
        {ErrorCode::kIoError, "failed writing conformance report", path});
  }
}

}  // namespace ssvbr::validate
