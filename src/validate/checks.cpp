#include "validate/checks.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "atm/cell.h"
#include "atm/segmentation.h"
#include "baselines/dar.h"
#include "baselines/markov_lrd.h"
#include "baselines/mmpp.h"
#include "baselines/tes.h"
#include "common/error.h"
#include "core/activity_model.h"
#include "common/json.h"
#include "core/background_sampler.h"
#include "core/gop_model.h"
#include "core/marginal_transform.h"
#include "core/unified_model.h"
#include "dist/distributions.h"
#include "engine/run.h"
#include "fractal/autocorrelation.h"
#include "fractal/hosking.h"
#include "net/simulator.h"
#include "fractal/hurst.h"
#include "fractal/periodogram_hurst.h"
#include "queueing/arrival.h"
#include "queueing/norros.h"
#include "queueing/overflow_mc.h"
#include "stats/acf_fit.h"
#include "stats/descriptive.h"
#include "stats/empirical_distribution.h"
#include "stats/linear_fit.h"
#include "trace/scene_mpeg_source.h"
#include "trace/video_trace.h"
#include "validate/stat_tests.h"

namespace ssvbr::validate {
namespace {

// Scaled workload size with a floor that keeps the statistics defined
// even at tiny smoke scales.
std::size_t scaled(double scale, std::size_t n, std::size_t floor_n = 64) {
  const auto scaled_n = static_cast<std::size_t>(static_cast<double>(n) * scale);
  return std::max(floor_n, scaled_n);
}

std::string fmt(const char* format, double a, double b = 0.0, double c = 0.0,
                double d = 0.0) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), format, a, b, c, d);
  return buf;
}

// Sup distance between the ECDF of `sample` and a continuous CDF.
double ks_distance(std::vector<double> sample, const Distribution& null) {
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double f = null.cdf(sample[i]);
    d = std::max(d, std::fabs(f - static_cast<double>(i) / n));
    d = std::max(d, std::fabs(static_cast<double>(i + 1) / n - f));
  }
  return d;
}

// The transform target shared by the marginal and attenuation checks:
// the ECDF of the stand-in trace's I-frame sizes, exactly the
// "inverting the empirical distribution directly" choice of Section 3.1.
DistributionPtr standin_iframe_ecdf(std::size_t n_iframes) {
  const trace::VideoTrace vt = trace::make_empirical_standin_trace(n_iframes * 12);
  const std::vector<double> iframes = vt.i_frame_series();
  return std::make_shared<stats::EmpiricalDistribution>(
      std::span<const double>(iframes));
}

// The paper's fitted composite correlation (Fig. 6 parameters:
// L k^-0.2 above the knee Kt = 60, lambda re-solved from the eq. (14)
// continuity condition, giving lambda ~= 0.0059 vs the paper's 0.00565).
fractal::AutocorrelationPtr paper_composite_acf() {
  return std::make_shared<fractal::CompositeSrdLrdAutocorrelation>(
      fractal::CompositeSrdLrdAutocorrelation::with_continuity(1.59, 0.2, 60.0));
}

void marginal_ks_body(const CheckContext& context, RandomEngine& rng,
                      CheckResult& result, bool tabulated) {
  const DistributionPtr target = standin_iframe_ecdf(2048);
  core::MarginalTransform transform(target);
  // The piecewise-linear ECDF target caps how well a fixed-grid table
  // can interpolate near its kinks; 64k intervals brings the relative
  // error to ~2e-4, far below the KS resolution 1/sqrt(n) ~ 7e-3.
  if (tabulated) transform.enable_tabulated(65536, 5e-4);

  const std::size_t n = scaled(context.scale, 20000);
  std::vector<double> xs(n);
  rng.fill_normal(xs);
  std::vector<double> ys(n);
  transform.apply(xs, ys);

  result.statistic = ks_distance(std::move(ys), *target);
  result.p_value = ks_p_value(result.statistic, n);
  result.detail = fmt("KS distance %.4g over %.0f transformed normals vs the "
                      "I-frame ECDF",
                      result.statistic, static_cast<double>(n));
}

// Independent background paths of the paper-parameter composite model
// plus their replication-averaged ACF and a composite re-fit, shared by
// the two ACF checks. Averaging over independent paths shrinks the
// heavy low-frequency fluctuations an LRD sample ACF suffers; the
// mean-estimation bias (identical per path) is handled by the checks.
struct AcfProbe {
  std::vector<std::vector<double>> paths;
  std::vector<double> acf;  // replication-averaged r(k), k = 0..max_lag
  stats::CompositeAcfFit fit;
  fractal::AutocorrelationPtr truth;
  std::size_t path_n = 0;   // per-path length
  std::size_t max_lag = 0;
};

AcfProbe probe_composite_acf(const CheckContext& context, RandomEngine& rng,
                             std::size_t n_paths) {
  AcfProbe probe;
  probe.truth = paper_composite_acf();
  core::UnifiedVbrModel model(
      probe.truth,
      core::MarginalTransform(std::make_shared<NormalDistribution>(0.0, 1.0)));
  probe.path_n = scaled(context.scale, std::size_t{1} << 17, 4096);
  probe.max_lag = std::min<std::size_t>(500, probe.path_n / 8);
  probe.acf.assign(probe.max_lag + 1, 0.0);
  for (std::size_t p = 0; p < n_paths; ++p) {
    probe.paths.push_back(model.generate_background(
        probe.path_n, rng, core::BackgroundGenerator::kDaviesHarte));
    const std::vector<double> acf =
        stats::autocorrelation_fft(probe.paths.back(), probe.max_lag);
    for (std::size_t k = 0; k <= probe.max_lag; ++k) {
      probe.acf[k] += acf[k] / static_cast<double>(n_paths);
    }
  }
  stats::CompositeAcfFitOptions options;
  options.hint_knee = 60;
  probe.fit = stats::fit_composite_acf(probe.acf, options);
  return probe;
}

// The finite-n expectation of a normalized sample ACF under mean
// estimation: the sample mean absorbs v = Var(X-bar)/Var(X) of the
// power, concentrating r_emp(k) around (rho(k) - v) / (1 - v). `rho`
// is the true lag-k correlation (rho(0) = 1 implied).
template <typename Rho>
double mean_estimation_bias(std::size_t n, Rho rho) {
  double v = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    v += 2.0 * (1.0 - static_cast<double>(k) / static_cast<double>(n)) *
         rho(static_cast<double>(k));
  }
  return v / static_cast<double>(n);
}

void acf_srd_body(const CheckContext& context, RandomEngine& rng,
                  CheckResult& result) {
  // The sample ACF of a strongly LRD path is biased by mean estimation
  // (v ~ 0.2 here at beta = 0.2 — NOT negligible), and the truth is
  // known under the null, so the check compares the replication-averaged
  // empirical ACF against the exactly de-biased prediction below the
  // knee.
  const AcfProbe probe = probe_composite_acf(context, rng, 3);
  const double v = mean_estimation_bias(
      probe.path_n, [&](double k) { return (*probe.truth)(k); });

  const std::size_t knee = std::min<std::size_t>(60, probe.max_lag);
  double worst = 0.0;
  for (std::size_t k = 1; k <= knee; ++k) {
    const double predicted =
        ((*probe.truth)(static_cast<double>(k)) - v) / (1.0 - v);
    worst = std::max(worst, std::fabs(probe.acf[k] - predicted));
  }
  result.statistic = worst;
  result.threshold = 0.06;
  result.detail = fmt("max |r_emp(k) - r_debiased(k)| = %.4g for k <= 60 "
                      "(mean-estimation bias v = %.3g); fitted lambda = %.4g",
                      worst, v, probe.fit.lambda);
}

void acf_lrd_body(const CheckContext& context, RandomEngine& rng,
                  CheckResult& result) {
  // Above the knee the claim is asymptotic self-similarity with
  // H = 1 - beta/2 (eq. 13). The periodogram estimator reads H off the
  // lowest sqrt(n) frequencies — periods well beyond Kt = 60, i.e. the
  // LRD branch — and is far less biased than the level of the sample
  // ACF on LRD data; averaging over independent paths shrinks its
  // sampling noise (sd ~ 0.03 per path) below the tolerance.
  const AcfProbe probe = probe_composite_acf(context, rng, 4);
  double h_est = 0.0;
  for (const std::vector<double>& path : probe.paths) {
    h_est += fractal::periodogram_hurst(path).hurst /
             static_cast<double>(probe.paths.size());
  }
  result.statistic = std::fabs(h_est - 0.9);
  result.threshold = 0.08;
  result.detail = fmt("mean periodogram H = %.4g over 4 paths (target 0.9); "
                      "composite re-fit beta = %.4g, knee = %.0f",
                      h_est, probe.fit.beta, static_cast<double>(probe.fit.knee));
}

void attenuation_body(const CheckContext& context, RandomEngine& rng,
                      CheckResult& result) {
  const core::MarginalTransform transform(standin_iframe_ecdf(1024));
  const double analytic = transform.attenuation();
  const fractal::AutocorrelationPtr corr = paper_composite_acf();
  const core::EmpiricalAttenuation measured = core::measure_attenuation_empirical(
      *corr, transform, scaled(context.scale, 16384, 1024), 1, 32, rng, 4);
  result.statistic = std::fabs(measured.attenuation - analytic);
  result.threshold = 0.05;
  result.detail = fmt("measured a = %.4g vs closed-form a = %.4g",
                      measured.attenuation, analytic);
}

// Paired foreground/background Hurst estimates for the preservation
// checks: the same Davies-Harte paths before and after the Gamma
// transform, averaged over independent paths. The pairing makes the
// fg-vs-bg difference nearly noise-free (the estimator sees the same
// low-frequency excursions on both sides of h).
struct HurstPair {
  double background = 0.0;  // mean estimate over paths
  double foreground = 0.0;
};

template <typename Estimator>
HurstPair probe_hurst_pair(const CheckContext& context, RandomEngine& rng,
                           std::size_t n_paths, Estimator estimate) {
  core::UnifiedVbrModel model(
      std::make_shared<fractal::FgnAutocorrelation>(0.9),
      core::MarginalTransform(std::make_shared<GammaDistribution>(2.0, 1.0)));
  HurstPair pair;
  for (std::size_t p = 0; p < n_paths; ++p) {
    const std::vector<double> background = model.generate_background(
        scaled(context.scale, std::size_t{1} << 16, 2048), rng,
        core::BackgroundGenerator::kDaviesHarte);
    const std::vector<double> foreground = model.transform().apply(background);
    pair.background += estimate(background) / static_cast<double>(n_paths);
    pair.foreground += estimate(foreground) / static_cast<double>(n_paths);
  }
  return pair;
}

void hurst_rs_body(const CheckContext& context, RandomEngine& rng,
                   CheckResult& result) {
  const HurstPair pair = probe_hurst_pair(
      context, rng, 4, [](const std::vector<double>& xs) {
        return fractal::rs_analysis(xs).hurst;
      });
  result.statistic = std::fabs(pair.foreground - pair.background);
  result.threshold = 0.05;
  result.detail = fmt("mean R/S H over 4 paths: foreground %.4g vs "
                      "background %.4g (true 0.9)",
                      pair.foreground, pair.background);
}

void hurst_periodogram_body(const CheckContext& context, RandomEngine& rng,
                            CheckResult& result) {
  const HurstPair pair = probe_hurst_pair(
      context, rng, 4, [](const std::vector<double>& xs) {
        return fractal::periodogram_hurst(xs).hurst;
      });
  result.statistic = std::max(std::fabs(pair.foreground - pair.background),
                              std::fabs(pair.foreground - 0.9));
  result.threshold = 0.08;
  result.detail = fmt("mean periodogram H over 4 paths: foreground %.4g vs "
                      "background %.4g (true 0.9)",
                      pair.foreground, pair.background);
}

void paxson_hurst_body(const CheckContext& context, RandomEngine& rng,
                       CheckResult& result) {
  // The PR 9 approximation contract: kPaxson paths — approximate FFT
  // synthesis with renormalized eigenvalues — must still carry the
  // target Hurst parameter under three independent estimators. The
  // horizon equals the synthesis window here, so the periodogram (which
  // reads H off the lowest frequencies, exactly where cross-window
  // independence would flatten a multi-window path) sees a single
  // window; R/S and MAVAR aggregate over within-window scales and are
  // also window-safe.
  const double hurst = 0.8;
  const std::size_t n = scaled(context.scale, std::size_t{1} << 16, 2048);
  const core::BackgroundPathSampler sampler(
      std::make_shared<fractal::FgnAutocorrelation>(hurst), n,
      core::BackgroundGenerator::kPaxson);
  constexpr std::size_t kPaths = 4;
  double h_rs = 0.0, h_pg = 0.0, h_mv = 0.0;
  std::vector<double> path(n);
  for (std::size_t p = 0; p < kPaths; ++p) {
    sampler.sample(rng, path);
    h_rs += fractal::rs_analysis(path).hurst / kPaths;
    h_pg += fractal::periodogram_hurst(path).hurst / kPaths;
    h_mv += fractal::mavar_analysis(path).hurst / kPaths;
  }
  result.statistic = std::max({std::fabs(h_rs - hurst), std::fabs(h_pg - hurst),
                               std::fabs(h_mv - hurst)});
  result.threshold = 0.10;
  result.detail = fmt("mean H over 4 Paxson paths (target 0.8): R/S %.4g, "
                      "periodogram %.4g, MAVAR %.4g; single window of %.0f",
                      h_rs, h_pg, h_mv,
                      static_cast<double>(sampler.window()));
}

void gop_rescaling_body(const CheckContext& context, RandomEngine& rng,
                        CheckResult& result) {
  const auto inner = std::make_shared<fractal::FgnAutocorrelation>(0.9);
  const trace::GopStructure gop = trace::GopStructure::mpeg1_default();
  const auto frame_corr = std::make_shared<fractal::RescaledAutocorrelation>(
      inner, static_cast<double>(gop.i_period()));
  core::GopVbrModel model(
      frame_corr,
      core::MarginalTransform(std::make_shared<GammaDistribution>(9.0, 100.0)),
      core::MarginalTransform(std::make_shared<GammaDistribution>(4.0, 75.0)),
      core::MarginalTransform(std::make_shared<GammaDistribution>(2.25, 66.7)),
      gop);

  // eq. (15): at I-frame lag k the background sits at frame lag
  // k * K_I, where the rescaled correlation equals inner(k); the
  // foreground I-subseries ACF is that, attenuated by a_I (Appendix A)
  // and shifted/rescaled by the mean-estimation bias of an LRD sample
  // ACF (same de-biasing as the composite-ACF checks). Averaged over
  // independent traces to tame the H = 0.9 low-frequency noise.
  const double a_i = model.transform(trace::FrameType::I).attenuation();
  const std::size_t n_gops = scaled(context.scale, 4096, 512);
  constexpr std::size_t kTraces = 3;
  std::vector<double> acf(17, 0.0);
  for (std::size_t t = 0; t < kTraces; ++t) {
    const trace::VideoTrace vt = model.generate(
        n_gops * gop.i_period(), rng, core::BackgroundGenerator::kDaviesHarte);
    const std::vector<double> iframes = vt.i_frame_series();
    const std::vector<double> one = stats::autocorrelation_fft(iframes, 16);
    for (std::size_t k = 0; k <= 16; ++k) {
      acf[k] += one[k] / static_cast<double>(kTraces);
    }
  }
  const double v = mean_estimation_bias(
      n_gops, [&](double k) { return a_i * (*inner)(k); });

  double err = 0.0;
  for (std::size_t k = 1; k <= 16; ++k) {
    const double predicted =
        (a_i * (*inner)(static_cast<double>(k)) - v) / (1.0 - v);
    err += std::fabs(acf[k] - predicted);
  }
  result.statistic = err / 16.0;
  result.threshold = 0.08;
  result.detail = fmt("mean |acf_I(k) - debiased a_I r_I(k)| = %.4g over "
                      "k <= 16, a_I = %.4g, v = %.3g",
                      result.statistic, a_i, v);
}

void lindley_duality_body(const CheckContext& context, RandomEngine& rng,
                          CheckResult& result) {
  const auto marginal = std::make_shared<GammaDistribution>(2.0, 1.0);
  const std::size_t n = scaled(context.scale, 8000, 200);

  engine::RunRequest request;
  request.kind = engine::EstimatorKind::kOverflowMc;
  request.mc.make_arrivals = [marginal] {
    return std::make_unique<queueing::IidArrivalProcess>(marginal);
  };
  request.mc.service_rate = 3.0;
  request.mc.buffer = 7.0;
  request.mc.stop_time = 64;
  request.mc.replications = n;
  request.engine.threads = context.threads;

  engine::ReplicationEngine engine(request.engine);
  request.mc.event = queueing::OverflowEvent::kFirstPassage;
  const engine::RunResult passage = engine::run_with(request, engine, rng);
  request.mc.event = queueing::OverflowEvent::kTerminal;
  request.mc.initial_occupancy = 0.0;
  const engine::RunResult terminal = engine::run_with(request, engine, rng);

  result.statistic =
      std::fabs(passage.mc.probability - terminal.mc.probability);
  result.p_value = two_proportion_p_value(passage.mc.hits, n, terminal.mc.hits, n);
  result.detail = fmt("P(sup W > b) = %.4g vs P(Q_k > b | Q_0 = 0) = %.4g "
                      "over %.0f replications each",
                      passage.mc.probability, terminal.mc.probability,
                      static_cast<double>(n));
}

void norros_tail_body(const CheckContext& context, RandomEngine& rng,
                      CheckResult& result) {
  // Near-Gaussian marginal (Gamma(16, 1/4): mean 4, variance 1) on an
  // H = 0.8 FGN background, so the transformed arrivals approximate the
  // fractional-Brownian storage model Norros' formula describes. The
  // formula is a large-deviations asymptotic with no prefactor, so (as
  // in Fig. 17) the meaningful agreement is the Weibull decay RATE:
  // ln P(Q > b) linear in b^{2-2H} with slope -gamma, not the level.
  const double hurst = 0.8;
  core::UnifiedVbrModel model(
      std::make_shared<fractal::FgnAutocorrelation>(hurst),
      core::MarginalTransform(std::make_shared<GammaDistribution>(16.0, 0.25)));
  const std::size_t n = scaled(context.scale, std::size_t{1} << 18, 16384);
  const double service = 4.4;
  const std::vector<double> buffers = {60.0, 120.0, 240.0, 480.0};
  const std::size_t warmup = std::min<std::size_t>(8192, n / 4);

  // Pool the exceedance fractions over independent paths: one LRD path
  // of any feasible length has enormous low-frequency variance in its
  // steady-state fractions; independent replications shrink it.
  constexpr std::size_t kPaths = 3;
  std::vector<double> p_sim(buffers.size(), 0.0);
  for (std::size_t p = 0; p < kPaths; ++p) {
    const std::vector<double> ys =
        model.generate(n, rng, core::BackgroundGenerator::kDaviesHarte);
    const std::vector<double> one = queueing::steady_state_overflow_multi(
        ys, service, buffers, warmup);
    for (std::size_t i = 0; i < buffers.size(); ++i) {
      p_sim[i] += one[i] / static_cast<double>(kPaths);
    }
  }

  queueing::NorrosParameters params;
  params.mean_rate = model.mean();
  params.stddev = std::sqrt(model.variance());
  params.hurst = hurst;
  params.service_rate = service;

  // ln P vs x = b^{2-2H}: simulated decay slope vs the Norros gamma
  // (read off the closed form's own log at the same buffers).
  std::vector<double> xs_fit, ln_sim;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    if (p_sim[i] <= 0.0) continue;
    xs_fit.push_back(std::pow(buffers[i], 2.0 - 2.0 * hurst));
    ln_sim.push_back(std::log(p_sim[i]));
  }
  result.threshold = 1.5;
  if (xs_fit.size() < 3) {
    result.statistic = std::numeric_limits<double>::infinity();
    result.detail = "too few buffers with non-zero overflow mass";
    return;
  }
  const double gamma =
      -queueing::norros_log_overflow_approximation(params, 1.0);
  const double slope_sim = -stats::fit_line(xs_fit, ln_sim).slope;

  // |log2| <= 1.5: the measured Weibull rate is within ~2.8x of the
  // Norros gamma. The asymptotic carries no prefactor, so at finite
  // buffers the measured rate sits systematically above gamma; coarse
  // rate agreement (with the b^{2-2H} functional form imposed) is the
  // Fig.-17-style conformance, far from an exponential tail.
  result.statistic = std::fabs(std::log2(slope_sim / gamma));
  result.detail = fmt("Weibull decay rate %.4g vs Norros gamma = %.4g; "
                      "P(Q > 60) = %.3g",
                      slope_sim, gamma, p_sim[0]);
}

// The moderate Fig. 14-style operating point used by the IS checks
// (the same model family as tests/test_is_estimator.cpp): exponential
// SRD background, Gamma(2, 1) marginal.
std::shared_ptr<core::UnifiedVbrModel> make_is_model() {
  return std::make_shared<core::UnifiedVbrModel>(
      std::make_shared<fractal::ExponentialAutocorrelation>(0.1),
      core::MarginalTransform(std::make_shared<GammaDistribution>(2.0, 1.0)));
}

void is_mc_agreement_body(const CheckContext& context, RandomEngine& rng,
                          CheckResult& result) {
  const std::shared_ptr<core::UnifiedVbrModel> model = make_is_model();
  const fractal::HoskingModel background(model->background_correlation(), 80);

  engine::RunRequest is_request;
  is_request.kind = engine::EstimatorKind::kOverflowIs;
  is_request.is.model = model.get();
  is_request.is.background = &background;
  is_request.is.settings.twisted_mean = 1.0;
  is_request.is.settings.service_rate = model->mean() / 0.6;
  is_request.is.settings.buffer = 8.0 * model->mean();
  is_request.is.settings.stop_time = 80;
  is_request.is.settings.replications = scaled(context.scale, 6000, 200);
  is_request.engine.threads = context.threads;

  engine::RunRequest mc_request;
  mc_request.kind = engine::EstimatorKind::kOverflowMc;
  mc_request.mc.make_arrivals = [model] {
    return std::make_unique<queueing::ModelArrivalProcess>(
        model, core::BackgroundGenerator::kHosking);
  };
  mc_request.mc.service_rate = is_request.is.settings.service_rate;
  mc_request.mc.buffer = is_request.is.settings.buffer;
  mc_request.mc.stop_time = 80;
  mc_request.mc.replications = scaled(context.scale, 30000, 1000);
  mc_request.engine.threads = context.threads;

  engine::ReplicationEngine engine(is_request.engine);
  const engine::RunResult is_run = engine::run_with(is_request, engine, rng);
  const engine::RunResult mc_run = engine::run_with(mc_request, engine, rng);

  result.statistic =
      std::fabs(is_run.is_estimate.probability - mc_run.mc.probability);
  result.p_value = two_estimate_z_p_value(
      is_run.is_estimate.probability, is_run.is_estimate.estimator_variance,
      mc_run.mc.probability, mc_run.mc.estimator_variance);
  result.detail = fmt("IS %.4g (m* = 1) vs crude MC %.4g; |diff| = %.3g",
                      is_run.is_estimate.probability, mc_run.mc.probability,
                      result.statistic);
}

void is_variance_reduction_body(const CheckContext& context, RandomEngine& rng,
                                CheckResult& result) {
  const std::shared_ptr<core::UnifiedVbrModel> model = make_is_model();
  const fractal::HoskingModel background(model->background_correlation(), 120);

  engine::RunRequest request;
  request.kind = engine::EstimatorKind::kOverflowIs;
  request.is.model = model.get();
  request.is.background = &background;
  request.is.settings.twisted_mean = 2.0;
  request.is.settings.service_rate = model->mean() / 0.3;
  request.is.settings.buffer = 25.0 * model->mean();
  request.is.settings.stop_time = 120;
  request.is.settings.replications = scaled(context.scale, 4000, 200);
  request.engine.threads = context.threads;

  engine::ReplicationEngine engine(request.engine);
  const engine::RunResult run = engine::run_with(request, engine, rng);

  result.statistic = run.is_estimate.variance_reduction_vs_mc;
  result.threshold = 50.0;
  result.detail = fmt("variance reduction %.4g at P ~= %.3g with %.0f hits",
                      result.statistic, run.is_estimate.probability,
                      static_cast<double>(run.is_estimate.hits));
}

void resume_identity_body(const CheckContext& context, RandomEngine& rng,
                          CheckResult& result) {
  const std::shared_ptr<core::UnifiedVbrModel> model = make_is_model();
  const fractal::HoskingModel background(model->background_correlation(), 120);
  const std::uint64_t seed = rng.state().words[0];

  engine::RunRequest request;
  request.kind = engine::EstimatorKind::kOverflowIs;
  request.is.model = model.get();
  request.is.background = &background;
  request.is.settings.twisted_mean = 2.0;
  request.is.settings.service_rate = model->mean() / 0.3;
  request.is.settings.buffer = 25.0 * model->mean();
  request.is.settings.stop_time = 120;
  request.is.settings.replications = scaled(context.scale, 2000, 256);
  request.seed = seed;
  request.engine.threads = context.threads;
  request.engine.shard_size = 128;

  // Reference: one uninterrupted campaign.
  const engine::RunResult whole = engine::run(request);

  // The same campaign in two budget slices through a checkpoint file.
  const std::filesystem::path dir = context.scratch_dir.empty()
                                        ? std::filesystem::temp_directory_path()
                                        : std::filesystem::path(context.scratch_dir);
  const std::filesystem::path ckpt =
      dir / ("ssvbr_validate_resume_" + json::hex_u64(seed) + ".ckpt");
  std::filesystem::remove(ckpt);

  request.checkpoint.path = ckpt.string();
  request.checkpoint.every_shards = 4;
  request.checkpoint.resume = true;
  request.controls.max_replications = request.is.settings.replications / 2;
  // One worker makes the budget cut-point exact: with several threads the
  // remaining shards can all be claimed before the budget gate closes, and
  // a small-scale slice then finishes instead of exhausting its budget.
  request.engine.threads = 1;
  const engine::RunResult slice = engine::run(request);
  request.controls.max_replications = 0;
  request.engine.threads = context.threads;
  const engine::RunResult resumed = engine::run(request);
  std::filesystem::remove(ckpt);

  std::size_t violations = 0;
  std::string failed;
  const auto check = [&](bool ok, const char* what) {
    if (ok) return;
    ++violations;
    failed += failed.empty() ? what : (std::string(", ") + what);
  };
  check(slice.status == engine::RunStatus::kBudgetExhausted, "slice status");
  check(resumed.complete(), "resume completion");
  check(resumed.provenance.resumed, "resume provenance");
  check(resumed.replications_done == request.is.settings.replications,
        "replication count");
  check(resumed.is_estimate.probability == whole.is_estimate.probability,
        "probability bits");
  check(resumed.is_estimate.estimator_variance ==
            whole.is_estimate.estimator_variance,
        "variance bits");
  check(resumed.is_estimate.hits == whole.is_estimate.hits, "hit count");

  result.statistic = static_cast<double>(violations);
  result.detail = fmt("budget-sliced + resumed campaign vs uninterrupted: "
                      "P = %.6g, %.0f violations",
                      whole.is_estimate.probability,
                      static_cast<double>(violations));
  if (!failed.empty()) result.detail += " (" + failed + ")";
}

void atm_invariants_body(const CheckContext& context, RandomEngine& rng,
                         CheckResult& result) {
  (void)context;  // exact check: the sweep size is not statistical
  constexpr std::size_t kSlotChoices[] = {1, 2, 5, 8, 16};
  std::size_t violations = 0;
  std::size_t frames_checked = 0;

  for (std::size_t iter = 0; iter < 24; ++iter) {
    const std::size_t n_frames =
        40 + static_cast<std::size_t>(rng.uniform() * 120.0);
    std::vector<double> sizes(n_frames);
    for (double& s : sizes) {
      s = rng.uniform() < 0.1 ? 0.0 : rng.uniform() * 150000.0;
    }
    const std::size_t slots = kSlotChoices[iter % 5];

    const std::vector<std::size_t> burst =
        atm::segment_frames(sizes, slots, atm::PacingMode::kBurst);
    const std::vector<std::size_t> smooth =
        atm::segment_frames(sizes, slots, atm::PacingMode::kSmooth);

    if (burst.size() != n_frames * slots) ++violations;
    if (smooth.size() != n_frames * slots) ++violations;
    const std::size_t total = atm::total_cells(sizes);
    if (std::accumulate(burst.begin(), burst.end(), std::size_t{0}) != total) {
      ++violations;
    }
    if (std::accumulate(smooth.begin(), smooth.end(), std::size_t{0}) != total) {
      ++violations;
    }

    for (std::size_t f = 0; f < n_frames; ++f) {
      std::size_t burst_sum = 0;
      std::size_t smooth_sum = 0;
      std::size_t lo = ~std::size_t{0};
      std::size_t hi = 0;
      for (std::size_t s = 0; s < slots; ++s) {
        const std::size_t b = burst[f * slots + s];
        const std::size_t m = smooth[f * slots + s];
        burst_sum += b;
        smooth_sum += m;
        lo = std::min(lo, m);
        hi = std::max(hi, m);
        // Burst pacing: every cell of the frame sits in the interval's
        // first slot (ordering invariant).
        if (s > 0 && b != 0) ++violations;
      }
      // Per-frame cell conservation: both pacing modes carry the exact
      // AAL5 cell count of this frame.
      if (burst_sum != smooth_sum) ++violations;
      // Smooth pacing: even spread, slot loads differ by at most one.
      if (hi - lo > 1) ++violations;
      ++frames_checked;
    }
  }
  result.statistic = static_cast<double>(violations);
  result.detail = fmt("%.0f violations across %.0f frame intervals",
                      static_cast<double>(violations),
                      static_cast<double>(frames_checked));
}

/// Cell conservation through a 3-level multiplexer tree. With
/// cell-segmented workloads (integers), integer service rates and
/// buffers, and a dyadic-rate ABR flow, every double operation in the
/// simulator is exact, so the identities must hold with zero error:
/// per node  arrived == served + dropped + end_queue, and end to end
/// external + abr == delivered + sum(dropped) + sum(end_queue) + in_flight.
void topology_conservation_body(const CheckContext& context, RandomEngine& rng,
                                CheckResult& result) {
  const std::size_t reps =
      std::max<std::size_t>(2, static_cast<std::size_t>(6.0 * context.scale));
  std::size_t violations = 0;
  std::size_t nodes_checked = 0;

  auto corr = std::make_shared<fractal::ExponentialAutocorrelation>(0.1);
  core::MarginalTransform h(std::make_shared<GammaDistribution>(2.0, 1.0));
  const auto model = std::make_shared<const core::UnifiedVbrModel>(
      std::move(corr), std::move(h));

  // Scenario A: the mux tree under pure VBR background load, with a
  // 2-slot link delay on the middle level so in-flight work is live.
  net::ScenarioConfig tree;
  {
    const std::vector<double> service{40.0, 70.0, 120.0};
    const std::vector<double> buffer{60.0, 100.0, 150.0};
    std::vector<net::NodeConfig> nodes =
        net::make_mux_tree(3, 2, service, buffer).nodes();
    for (std::size_t i = 4; i < 6; ++i) nodes[i].link_delay = 2;
    tree.topology = net::Topology(nodes);
    for (const std::size_t leaf : net::mux_tree_leaves(3, 2)) {
      net::SourceClassConfig cls;
      cls.model = model;
      cls.population = 2000;
      cls.ingress = leaf;
      cls.slots_per_frame = 2;
      cls.segment_to_cells = true;
      tree.classes.push_back(cls);
    }
    tree.slots = scaled(context.scale, 512, 128) / 2 * 2;
    tree.warmup = tree.slots / 8;
  }

  // Scenario B: a tandem line with an ABR flow whose rates stay dyadic
  // (halving against an integer floor), so its arithmetic is exact too.
  net::ScenarioConfig tandem;
  {
    tandem.topology = net::make_tandem(3, 24.0, 40.0);
    net::SourceClassConfig cls;
    cls.model = model;
    cls.population = 500;
    cls.slots_per_frame = 1;
    cls.segment_to_cells = true;
    tandem.classes.push_back(cls);
    tandem.abr.enabled = true;
    tandem.abr.initial_rate = 4.0;
    tandem.abr.min_rate = 1.0;
    tandem.abr.peak_rate = 16.0;
    tandem.abr.additive_increase = 1.0;
    tandem.abr.decrease_factor = 0.5;
    tandem.abr.queue_threshold = 8.0;
    tandem.slots = scaled(context.scale, 512, 128);
    tandem.warmup = tandem.slots / 8;
  }

  for (const net::ScenarioConfig& scenario : {tree, tandem}) {
    const net::ScenarioContext ctx(scenario);
    net::ScenarioKernel kernel(ctx);
    for (std::size_t r = 0; r < reps; ++r) {
      const net::ScenarioStats& stats = kernel.run_one(rng);
      double dropped = 0.0, queued = 0.0;
      for (const net::NodeStats& n : stats.nodes) {
        if (n.arrived != n.served + n.dropped + n.end_queue) ++violations;
        dropped += n.dropped;
        queued += n.end_queue;
        ++nodes_checked;
      }
      const double injected = stats.external_arrived + stats.abr_sent;
      if (injected !=
          stats.delivered + dropped + queued + stats.in_flight) {
        ++violations;
      }
      if (injected <= 0.0) ++violations;  // the identity must be non-vacuous
    }
  }

  result.statistic = static_cast<double>(violations);
  result.detail = fmt("%.0f violations across %.0f node-replications",
                      static_cast<double>(violations),
                      static_cast<double>(nodes_checked));
}

void markov_lrd_hurst_body(const CheckContext& context, RandomEngine& rng,
                           CheckResult& result) {
  // The Clegg-Dodson chain (cs/0610134) claims H = (3 - alpha) / 2 from
  // heavy-tailed on/off runs. Convergence to the asymptotic Hurst is
  // much slower than for exact Gaussian synthesis (the run-length tail
  // only expresses itself over many renewals), so the tolerance is
  // wider than the Paxson check's; the same three estimators are
  // averaged over independent paths.
  const double hurst = 0.8;
  const baselines::MarkovLrdProcess chain(hurst);
  const std::size_t n = scaled(context.scale, std::size_t{1} << 16, 4096);
  constexpr std::size_t kPaths = 4;
  double h_rs = 0.0, h_pg = 0.0, h_mv = 0.0;
  std::vector<double> path(n);
  for (std::size_t p = 0; p < kPaths; ++p) {
    chain.sample_into(path, rng);
    h_rs += fractal::rs_analysis(path).hurst / kPaths;
    h_pg += fractal::periodogram_hurst(path).hurst / kPaths;
    h_mv += fractal::mavar_analysis(path).hurst / kPaths;
  }
  result.statistic = std::max({std::fabs(h_rs - hurst), std::fabs(h_pg - hurst),
                               std::fabs(h_mv - hurst)});
  result.threshold = 0.15;
  result.detail = fmt("mean H over 4 Markov-chain paths (target 0.8): "
                      "R/S %.4g, periodogram %.4g, MAVAR %.4g",
                      h_rs, h_pg, h_mv);
}

void activity_marginal_acf_body(const CheckContext& context, RandomEngine& rng,
                                CheckResult& result) {
  // Gaussian inner marginal makes every closed form exact (attenuation
  // of a linear transform is 1), so the three components compare the
  // generated path against the model's own busy fraction, busy-slot
  // marginal, and modulated ACF. All samples are dependent, so each
  // component is a tolerance ratio (sized ~4 sigma for its effective
  // sample size), not a KS p-value.
  const auto inner = std::make_shared<const core::UnifiedVbrModel>(
      std::make_shared<fractal::ExponentialAutocorrelation>(0.2),
      core::MarginalTransform(std::make_shared<NormalDistribution>(4.0, 1.0)));
  core::ActivityConfig gate;
  gate.busy_mean_frames = 8.0;
  gate.idle_mean_frames = 4.0;
  gate.idle_rate = 0.0;
  const core::ActivityModulatedModel model(inner, gate);

  const std::size_t n = scaled(context.scale, std::size_t{1} << 16, 4096);
  const std::vector<double> path = model.generate(n, rng);

  // Component 1: idle fraction. With idle_rate = 0 and a continuous
  // busy marginal, a slot reads exactly 0.0 iff the gate was idle.
  std::vector<double> busy_values;
  busy_values.reserve(n);
  for (const double v : path) {
    if (v != 0.0) busy_values.push_back(v);
  }
  const double p_busy = model.busy_fraction();
  const double busy_frac =
      static_cast<double>(busy_values.size()) / static_cast<double>(n);
  const double e_frac = std::fabs(busy_frac - p_busy);

  // Component 2: busy-slot marginal is the inner foreground marginal.
  const NormalDistribution busy_marginal(4.0, 1.0);
  const double ks = ks_distance(busy_values, busy_marginal);

  // Component 3: the modulated ACF against the closed form
  // cov(k) = (p^2 + p(1-p) rho_s^k)(VarY r(k) + d^2) - p^2 d^2.
  const std::vector<double> acf = stats::autocorrelation_fft(path, 20);
  double e_acf = 0.0;
  for (std::size_t k = 1; k <= 20; ++k) {
    const double predicted =
        model.predicted_autocorrelation(static_cast<double>(k));
    e_acf = std::max(e_acf, std::fabs(acf[k] - predicted));
  }

  result.statistic = std::max({e_frac / 0.02, ks / 0.04, e_acf / 0.04});
  result.threshold = 1.0;
  result.detail = fmt("component/tol ratios: busy fraction %.3g (err %.4g), "
                      "busy-slot KS %.3g, max ACF err %.4g",
                      e_frac / 0.02, e_frac, ks / 0.04, e_acf);
}

void abr_client_accounting_body(const CheckContext& context, RandomEngine& rng,
                                CheckResult& result) {
  (void)context;  // exact check: the sweep size is not statistical
  std::size_t violations = 0;
  std::size_t slots_checked = 0;

  // Randomized direct sweep: the client's documented identities must
  // hold exactly for any trace/playlist, including zero-capacity slots
  // (forced rebuffering) and playlists shorter than the startup window.
  constexpr std::size_t kChunkChoices[] = {2, 4, 8};
  for (std::size_t iter = 0; iter < 16; ++iter) {
    net::AbrClientConfig cfg;
    cfg.chunk_slots = kChunkChoices[iter % 3];
    cfg.bitrate_ladder = {0.5, 1.0, 2.0};
    cfg.startup_chunks = 1 + iter % 3;
    cfg.low_buffer_slots = 2.0;
    cfg.high_buffer_slots = 2.0 + rng.uniform() * 12.0;
    cfg.max_buffer_slots = cfg.high_buffer_slots + rng.uniform() * 16.0;
    cfg.bandwidth_trace.resize(
        50 + static_cast<std::size_t>(rng.uniform() * 150.0));
    for (double& c : cfg.bandwidth_trace) {
      c = rng.uniform() < 0.1 ? 0.0 : rng.uniform() * 8.0;
    }
    const std::size_t n_chunks =
        1 + static_cast<std::size_t>(rng.uniform() * 40.0);
    std::vector<double> chunk_sizes(n_chunks);
    for (double& s : chunk_sizes) s = 1.0 + rng.uniform() * 30.0;
    const std::size_t slots = std::max<std::size_t>(
        8, static_cast<std::size_t>(rng.uniform() * 2.0 *
                                    static_cast<double>(n_chunks) *
                                    static_cast<double>(cfg.chunk_slots)));

    net::AbrClient client(cfg);
    client.begin(chunk_sizes);
    const std::size_t trace_n = cfg.bandwidth_trace.size();
    double download_sum = 0.0;
    for (std::size_t t = 0; t < slots; ++t) {
      const double cap = cfg.bandwidth_trace[t % trace_n];
      const double d = client.step(cap);
      // Per-slot conservation against the trace, and the buffer can
      // never go negative.
      if (d > cap) ++violations;
      if (client.buffer_slots() < 0.0) ++violations;
      download_sum += d;
      ++slots_checked;
    }
    const net::AbrClientStats& s = client.stats();
    // Wall-time partition and whole-run byte conservation (the same
    // addition sequence, so the doubles must match bit for bit).
    if (s.startup_slots + s.play_slots + s.rebuffer_slots +
            s.finished_slots != slots) {
      ++violations;
    }
    if (s.downloaded != download_sum) ++violations;
    double max_content = 0.0;
    for (const double c : chunk_sizes) max_content += c;
    if (s.downloaded > cfg.bitrate_ladder.back() * max_content) ++violations;
    if (s.chunks_completed > n_chunks) ++violations;
  }

  // The same identities must survive the network kernel: a one-client
  // scenario's injected workload IS the client's downloads.
  {
    const auto model = std::make_shared<const core::UnifiedVbrModel>(
        std::make_shared<fractal::ExponentialAutocorrelation>(0.1),
        core::MarginalTransform(std::make_shared<GammaDistribution>(2.0, 1.0)));
    net::ScenarioConfig scenario;
    scenario.topology = net::make_tandem(2, 6.0, 40.0);
    net::SourceClassConfig cls;
    cls.kind = net::SourceKind::kAbrClient;
    cls.model = model;
    cls.population = 1;
    cls.abr_client.bandwidth_trace = {4.0, 6.0, 0.0, 8.0, 2.0, 5.0, 3.0};
    cls.abr_client.chunk_slots = 8;
    cls.abr_client.startup_chunks = 2;
    cls.abr_client.max_buffer_slots = 32.0;
    cls.abr_client.low_buffer_slots = 4.0;
    cls.abr_client.high_buffer_slots = 16.0;
    scenario.classes.push_back(cls);
    scenario.slots = 512;
    scenario.warmup = 64;
    const net::ScenarioContext ctx(scenario);
    net::ScenarioKernel kernel(ctx);
    for (std::size_t r = 0; r < 4; ++r) {
      const net::ScenarioStats& stats = kernel.run_one(rng);
      const net::AbrClientStats& c = stats.clients;
      if (c.startup_slots + c.play_slots + c.rebuffer_slots +
              c.finished_slots != scenario.slots) {
        ++violations;
      }
      if (stats.external_arrived != c.downloaded) ++violations;
      if (c.buffer_end < 0.0) ++violations;
      slots_checked += scenario.slots;
    }
  }

  result.statistic = static_cast<double>(violations);
  result.detail = fmt("%.0f violations across %.0f client slots",
                      static_cast<double>(violations),
                      static_cast<double>(slots_checked));
}

void dar_marginal_acf_body(const CheckContext& context, RandomEngine& rng,
                           CheckResult& result) {
  // DAR(1) matches any marginal exactly and has ACF exactly rho^k; the
  // sampled path is strongly dependent (runs of repeated values), so
  // the marginal component is a tolerance on the KS distance sized for
  // the effective sample size n (1-rho)/(1+rho), not a KS p-value.
  const double rho = 0.7;
  const auto marginal = std::make_shared<GammaDistribution>(2.0, 1.0);
  const baselines::Dar1Process dar(rho, marginal);
  const std::size_t n = scaled(context.scale, std::size_t{1} << 16, 4096);
  const std::vector<double> path = dar.sample(n, rng);

  const double ks = ks_distance(path, *marginal);
  const std::vector<double> acf = stats::autocorrelation_fft(path, 2);
  const double e1 = std::fabs(acf[1] - rho);
  const double e2 = std::fabs(acf[2] - rho * rho);

  result.statistic = std::max({ks / 0.035, e1 / 0.02, e2 / 0.03});
  result.threshold = 1.0;
  result.detail = fmt("KS %.4g (tol 0.035); |r1 - %.2g| = %.4g; "
                      "|r2 - rho^2| = %.4g",
                      ks, rho, e1, e2);
}

void tes_marginal_acf_body(const CheckContext& context, RandomEngine& rng,
                           CheckResult& result) {
  // TES+ with symmetric stitching: the foreground marginal is exact by
  // construction (inversion of a Uniform(0,1) stitched walk) and the
  // stitched background ACF has the closed Fourier form of
  // tes.h - both are checked on sampled paths with dependence-sized
  // tolerances.
  const auto marginal = std::make_shared<GammaDistribution>(2.0, 1.0);
  const baselines::TesProcess tes(0.3, 0.5, marginal, /*plus=*/true);
  const std::size_t n = scaled(context.scale, std::size_t{1} << 16, 4096);

  const std::vector<double> foreground = tes.sample(n, rng);
  const double ks = ks_distance(foreground, *marginal);

  std::vector<double> stitched = tes.sample_background(n, rng);
  for (double& u : stitched) u = tes.stitch(u);
  const std::vector<double> acf = stats::autocorrelation_fft(stitched, 2);
  const double e1 = std::fabs(acf[1] - tes.background_autocorrelation(1));
  const double e2 = std::fabs(acf[2] - tes.background_autocorrelation(2));

  result.statistic = std::max({ks / 0.035, e1 / 0.025, e2 / 0.03});
  result.threshold = 1.0;
  result.detail = fmt("KS %.4g (tol 0.035); ACF errors %.4g, %.4g vs the "
                      "sinc^k closed form r(1) = %.4g",
                      ks, e1, e2, tes.background_autocorrelation(1));
}

void mmpp_marginal_acf_body(const CheckContext& context, RandomEngine& rng,
                            CheckResult& result) {
  // dMMPP: the slot marginal is a Poisson mixture under the stationary
  // state distribution, and the ACF has the 2-state closed form. The
  // mixture CDF is built by the iterative pmf recursion (no incomplete
  // gamma needed); the sup distance runs over the integer support.
  const baselines::MmppProcess mmpp =
      baselines::MmppProcess::two_state(2.0, 10.0, 20.0, 10.0);
  const std::size_t n = scaled(context.scale, std::size_t{1} << 16, 4096);
  const std::vector<double> path = mmpp.sample(n, rng);
  const std::vector<double> pi = mmpp.stationary_distribution();
  const double rates[2] = {2.0, 10.0};

  std::size_t kmax = 0;
  for (const double v : path) {
    kmax = std::max(kmax, static_cast<std::size_t>(v));
  }
  std::vector<double> hist(kmax + 1, 0.0);
  for (const double v : path) hist[static_cast<std::size_t>(v)] += 1.0;

  double pmf[2] = {std::exp(-rates[0]), std::exp(-rates[1])};
  double ecdf = 0.0, cdf = 0.0, sup = 0.0;
  for (std::size_t k = 0; k <= kmax; ++k) {
    ecdf += hist[k] / static_cast<double>(n);
    cdf += pi[0] * pmf[0] + pi[1] * pmf[1];
    sup = std::max(sup, std::fabs(ecdf - cdf));
    pmf[0] *= rates[0] / static_cast<double>(k + 1);
    pmf[1] *= rates[1] / static_cast<double>(k + 1);
  }

  const std::vector<double> acf = stats::autocorrelation_fft(path, 2);
  const double e1 = std::fabs(acf[1] - mmpp.autocorrelation(1));
  const double e2 = std::fabs(acf[2] - mmpp.autocorrelation(2));

  result.statistic = std::max({sup / 0.05, e1 / 0.04, e2 / 0.04});
  result.threshold = 1.0;
  result.detail = fmt("mixture-CDF sup distance %.4g (tol 0.05); ACF errors "
                      "%.4g, %.4g vs closed form r(1) = %.4g",
                      sup, e1, e2, mmpp.autocorrelation(1));
}

}  // namespace

Suite default_suite(double family_alpha) {
  Suite suite(family_alpha);
  suite.add({"marginal_ks_exact",
             "eq. (7): Y = F_Y^-1(Phi(X)) reproduces the empirical marginal "
             "(exact transform)",
             CheckKind::kPValue,
             [](const CheckContext& ctx, RandomEngine& rng, CheckResult& r) {
               marginal_ks_body(ctx, rng, r, /*tabulated=*/false);
             }});
  suite.add({"marginal_ks_tabulated",
             "eq. (7): Y = F_Y^-1(Phi(X)) reproduces the empirical marginal "
             "(tabulated transform)",
             CheckKind::kPValue,
             [](const CheckContext& ctx, RandomEngine& rng, CheckResult& r) {
               marginal_ks_body(ctx, rng, r, /*tabulated=*/true);
             }});
  suite.add({"acf_srd_below_knee",
             "eqs. (10)-(12): exp(-lambda k) SRD branch below the knee Kt",
             CheckKind::kUpperBound, acf_srd_body});
  suite.add({"acf_lrd_above_knee",
             "eqs. (10), (13): L k^-beta LRD branch above the knee, "
             "H = 1 - beta/2",
             CheckKind::kUpperBound, acf_lrd_body});
  suite.add({"attenuation_factor",
             "eq. (30) / Fig. 7: a = E[h(X)X]^2 / Var(h(X)) matches the "
             "measured ACF ratio",
             CheckKind::kUpperBound, attenuation_body});
  suite.add({"hurst_rs_preserved",
             "Appendix A / Fig. 3: h preserves the Hurst parameter (R/S)",
             CheckKind::kUpperBound, hurst_rs_body});
  suite.add({"hurst_periodogram_preserved",
             "Appendix A / Fig. 4: h preserves the Hurst parameter "
             "(periodogram)",
             CheckKind::kUpperBound, hurst_periodogram_body});
  suite.add({"paxson_hurst_preservation",
             "streaming backend (cs/9809030): renormalized Paxson synthesis "
             "preserves H under R/S, periodogram, and MAVAR",
             CheckKind::kUpperBound, paxson_hurst_body});
  suite.add({"gop_rescaling",
             "eq. (15) / Figs. 9-11: GOP rescaling r(k) = r_I(k / K_I) on "
             "the I-frame subseries",
             CheckKind::kUpperBound, gop_rescaling_body});
  suite.add({"lindley_duality",
             "eqs. (16)-(17): Lindley terminal occupancy equals first-passage "
             "of the free workload walk",
             CheckKind::kPValue, lindley_duality_body});
  suite.add({"norros_tail",
             "Fig. 17 / ref [23]: steady-state overflow tracks the Norros fBm "
             "Weibull asymptotic",
             CheckKind::kUpperBound, norros_tail_body});
  suite.add({"is_mc_agreement",
             "Section 4: the twisted IS estimator is unbiased (agrees with "
             "crude MC)",
             CheckKind::kPValue, is_mc_agreement_body});
  suite.add({"is_variance_reduction",
             "Fig. 14: mean-shift twisting yields a large variance reduction "
             "at the rare event",
             CheckKind::kLowerBound, is_variance_reduction_body});
  suite.add({"run_control_resume_identity",
             "run-control contract: a budget-sliced, checkpointed, resumed "
             "campaign is bit-identical to an uninterrupted one",
             CheckKind::kExact, resume_identity_body});
  suite.add({"atm_invariants",
             "ATM adaptation layer: AAL5 segmentation conserves cells and "
             "honours burst/smooth pacing",
             CheckKind::kExact, atm_invariants_body});
  suite.add({"topology_conservation",
             "network layer: cells in == out + losses + queued, per node and "
             "end-to-end through a 3-level multiplexer tree",
             CheckKind::kExact, topology_conservation_body});
  suite.add({"markov_lrd_hurst",
             "Markov-chain LRD baseline (cs/0610134): heavy-tailed on/off "
             "runs carry H = (3 - alpha)/2 under R/S, periodogram, and MAVAR",
             CheckKind::kUpperBound, markov_lrd_hurst_body});
  suite.add({"activity_marginal_acf",
             "activity modulation: busy fraction, busy-slot marginal, and "
             "the gated ACF match their closed forms (Gaussian inner model)",
             CheckKind::kUpperBound, activity_marginal_acf_body});
  suite.add({"abr_client_accounting",
             "ABR client: wall-time partition, byte conservation vs the "
             "trace, and a non-negative buffer, direct and through the "
             "network kernel",
             CheckKind::kExact, abr_client_accounting_body});
  suite.add({"dar_marginal_acf",
             "DAR(1) baseline (ref [10]): exact marginal and rho^k ACF on "
             "sampled paths",
             CheckKind::kUpperBound, dar_marginal_acf_body});
  suite.add({"tes_marginal_acf",
             "TES baseline (refs [21], [22]): exact marginal inversion and "
             "the sinc^k stitched-background ACF on sampled paths",
             CheckKind::kUpperBound, tes_marginal_acf_body});
  suite.add({"mmpp_marginal_acf",
             "dMMPP baseline (Section 1): Poisson-mixture slot marginal and "
             "the 2-state geometric ACF on sampled paths",
             CheckKind::kUpperBound, mmpp_marginal_acf_body});
  return suite;
}

}  // namespace ssvbr::validate
