#include "validate/stat_tests.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "dist/special_functions.h"

namespace ssvbr::validate {

double kolmogorov_sf(double x) {
  if (x <= 0.0) return 1.0;
  // The alternating series converges extremely fast for x >~ 0.5; for
  // smaller x use the (equivalent) theta-function dual expansion which
  // converges fast there instead.
  if (x < 0.5) {
    // P(K <= x) = sqrt(2*pi)/x * sum_{j>=1} exp(-(2j-1)^2 pi^2 / (8 x^2))
    const double f = M_PI * M_PI / (8.0 * x * x);
    double cdf = 0.0;
    for (int j = 1; j <= 5; ++j) {
      const double odd = 2.0 * j - 1.0;
      cdf += std::exp(-odd * odd * f);
    }
    cdf *= std::sqrt(2.0 * M_PI) / x;
    return std::clamp(1.0 - cdf, 0.0, 1.0);
  }
  double sf = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * x * x);
    sf += sign * term;
    sign = -sign;
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sf, 0.0, 1.0);
}

double ks_p_value(double d, std::size_t n) {
  SSVBR_REQUIRE(n > 0, "ks_p_value needs a non-empty sample");
  SSVBR_REQUIRE(d >= 0.0 && d <= 1.0, "KS statistic must lie in [0, 1]");
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double x = d * (sqrt_n + 0.12 + 0.11 / sqrt_n);
  return kolmogorov_sf(x);
}

double two_proportion_p_value(std::size_t x1, std::size_t n1,
                              std::size_t x2, std::size_t n2) {
  SSVBR_REQUIRE(n1 > 0 && n2 > 0, "two_proportion_p_value needs samples");
  SSVBR_REQUIRE(x1 <= n1 && x2 <= n2, "hit count exceeds sample size");
  const double p1 = static_cast<double>(x1) / static_cast<double>(n1);
  const double p2 = static_cast<double>(x2) / static_cast<double>(n2);
  const double pooled = static_cast<double>(x1 + x2) /
                        static_cast<double>(n1 + n2);
  const double var = pooled * (1.0 - pooled) *
                     (1.0 / static_cast<double>(n1) +
                      1.0 / static_cast<double>(n2));
  if (var <= 0.0) return p1 == p2 ? 1.0 : 0.0;
  const double z = (p1 - p2) / std::sqrt(var);
  return 2.0 * ssvbr::normal_cdf(-std::fabs(z));
}

double two_estimate_z_p_value(double est1, double var1, double est2,
                              double var2) {
  SSVBR_REQUIRE(var1 >= 0.0 && var2 >= 0.0, "variances must be non-negative");
  const double var = var1 + var2;
  if (var <= 0.0) return est1 == est2 ? 1.0 : 0.0;
  const double z = (est1 - est2) / std::sqrt(var);
  return 2.0 * ssvbr::normal_cdf(-std::fabs(z));
}

}  // namespace ssvbr::validate
