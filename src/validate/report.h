// ssvbr/validate/report.h
//
// Deterministic JSON conformance report. Two runs with the same seed,
// scale, and build produce byte-identical files: doubles are printed
// with "%.17g" (round-trip exact), keys are emitted in a fixed order,
// and no wall-clock data enters the report (timings stay on stderr).
// Schema is enforced by scripts/check_conformance_schema.py.
#pragma once

#include <string>
#include <vector>

#include "validate/check.h"

namespace ssvbr::validate {

/// Render the full conformance report as a JSON document (trailing
/// newline included).
std::string render_report(const Suite& suite, const CheckContext& context,
                          const std::vector<CheckResult>& results);

/// Write `render_report` output to `path`. Throws Error{kIoError} when
/// the file cannot be written.
void write_report(const std::string& path, const Suite& suite,
                  const CheckContext& context,
                  const std::vector<CheckResult>& results);

}  // namespace ssvbr::validate
