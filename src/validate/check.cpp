#include "validate/check.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace ssvbr::validate {
namespace {

// FNV-1a over the check name; folded into the suite seed with the
// golden-ratio mix so distinct names give uncorrelated xoshiro seeds.
std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t x = a + 0x9E3779B97F4A7C15ULL * (b | 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

const char* to_string(CheckKind kind) noexcept {
  switch (kind) {
    case CheckKind::kPValue:
      return "p_value";
    case CheckKind::kUpperBound:
      return "upper_bound";
    case CheckKind::kLowerBound:
      return "lower_bound";
    case CheckKind::kExact:
      return "exact";
  }
  return "unknown";
}

RandomEngine check_engine(std::uint64_t suite_seed, const std::string& check_name) {
  return RandomEngine(mix(suite_seed, fnv1a(check_name)));
}

Suite::Suite(double family_alpha) : family_alpha_(family_alpha) {
  SSVBR_REQUIRE(family_alpha > 0.0 && family_alpha < 1.0,
                "family_alpha must lie in (0, 1)");
}

void Suite::add(Check check) {
  SSVBR_REQUIRE(!check.name.empty(), "check name must be non-empty");
  SSVBR_REQUIRE(static_cast<bool>(check.body), "check body must be callable");
  for (const Check& existing : checks_) {
    SSVBR_REQUIRE(existing.name != check.name,
                  "duplicate check name: " + check.name);
  }
  checks_.push_back(std::move(check));
}

std::size_t Suite::n_pvalue_checks() const noexcept {
  std::size_t n = 0;
  for (const Check& check : checks_) {
    if (check.kind == CheckKind::kPValue) ++n;
  }
  return n;
}

double Suite::per_check_alpha() const noexcept {
  const std::size_t n = n_pvalue_checks();
  return n == 0 ? family_alpha_ : family_alpha_ / static_cast<double>(n);
}

CheckResult Suite::run_check(const Check& check, const CheckContext& context) const {
  SSVBR_REQUIRE(context.scale > 0.0 && context.scale <= 1.0,
                "scale must lie in (0, 1]");
  CheckResult result;
  result.name = check.name;
  result.claim = check.claim;
  result.kind = check.kind;
  result.p_value = std::numeric_limits<double>::quiet_NaN();
  result.alpha =
      check.kind == CheckKind::kPValue ? per_check_alpha() : 0.0;

  RandomEngine rng = check_engine(context.seed, check.name);
  const auto start = std::chrono::steady_clock::now();
  try {
    check.body(context, rng, result);
  } catch (const std::exception& e) {
    // A throwing body is a failed check, not an aborted suite: record
    // the exception and let the uniform verdict below reject the
    // non-finite statistic / p-value.
    result.statistic = std::numeric_limits<double>::infinity();
    result.p_value = std::numeric_limits<double>::quiet_NaN();
    result.detail = std::string("check body threw: ") + e.what();
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  switch (check.kind) {
    case CheckKind::kPValue:
      result.passed = std::isfinite(result.p_value) &&
                      result.p_value >= result.alpha;
      break;
    case CheckKind::kUpperBound:
      result.passed = std::isfinite(result.statistic) &&
                      result.statistic <= result.threshold;
      break;
    case CheckKind::kLowerBound:
      result.passed = std::isfinite(result.statistic) &&
                      result.statistic >= result.threshold;
      break;
    case CheckKind::kExact:
      result.threshold = 0.0;
      result.passed = result.statistic == 0.0;
      break;
  }
  return result;
}

std::vector<CheckResult> Suite::run_all(const CheckContext& context) const {
  std::vector<CheckResult> results;
  results.reserve(checks_.size());
  for (const Check& check : checks_) {
    results.push_back(run_check(check, context));
  }
  return results;
}

std::optional<CheckResult> Suite::run_one(const std::string& name,
                                          const CheckContext& context) const {
  for (const Check& check : checks_) {
    if (check.name == name) return run_check(check, context);
  }
  return std::nullopt;
}

}  // namespace ssvbr::validate
