// ssvbr/engine/checkpoint.h
//
// Durable snapshot format for replication campaigns.
//
// A checkpoint is one JSON document:
//
//   {"magic": "ssvbr-checkpoint", "version": 1,
//    "fingerprint": {"estimator": "overflow_is", "accumulator": "score",
//                    "config_hash": "0x...", "replications": 4000,
//                    "shard_size": 256,
//                    "rng": ["0x..", "0x..", "0x..", "0x.."],
//                    "rng_cached_normal": "0x.." | null},
//    "build": {"sha": "...", "version": "...", "type": "..."},
//    "progress": {"shards_total": 16, "shards_done": 7,
//                 "replications_done": 1792, "completed": "0x7f"},
//    "shards": [{"i": 0, "w": ["0x..", ...]}, ...]}
//
// Every field whose exact bits matter (RNG state words, accumulator
// doubles) is a hex string, never a JSON number: JSON numbers round-trip
// through doubles and cannot carry a u64 exactly. "completed" is a hex
// bitmap, LSB = shard 0; "shards" holds one record per completed shard
// in ascending index order. Because each shard's accumulator is a pure
// function of (base RNG state, shard index, shard size) and the final
// merge walks shards in index order, restoring these records and
// computing only the missing shards reproduces the uninterrupted
// result bit-for-bit.
//
// Writes are crash-safe: the snapshot is written to "<path>.tmp",
// fsync'd, and atomically renamed over <path> (then the directory is
// fsync'd); a reader therefore sees either the previous snapshot or the
// new one, never a torn file.
//
// The fingerprint makes resume refuse foreign snapshots: config_hash
// digests every parameter that shapes the campaign (estimator settings,
// replications, shard size), and the RNG state words pin the stream
// family. The build SHA is recorded for provenance but NOT enforced —
// rebuilding the same source tree must not orphan a running campaign;
// cross-*version* bit-identity is the test suite's job, not the
// loader's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "dist/random.h"

namespace ssvbr::engine::checkpoint {

inline constexpr const char* kMagic = "ssvbr-checkpoint";
inline constexpr int kVersion = 1;

/// Everything that must match for a snapshot to be resumable into a
/// given request.
struct Fingerprint {
  std::string estimator;    ///< "overflow_mc" / "overflow_is" / ...
  std::string accumulator;  ///< "hit" / "score"
  std::uint64_t config_hash = 0;
  std::size_t replications = 0;
  std::size_t shard_size = 0;
  RandomEngine::State rng;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// One completed shard's accumulator, as raw words (see accumulator.h).
struct ShardRecord {
  std::size_t index = 0;
  std::vector<std::uint64_t> words;
};

/// A parsed (or to-be-written) snapshot.
struct Snapshot {
  Fingerprint fingerprint;
  std::size_t shards_total = 0;
  std::size_t replications_done = 0;
  std::vector<ShardRecord> shards;  ///< ascending index order

  /// Derived completed-shard flags (size shards_total).
  std::vector<char> completed_flags() const;
};

/// Incremental FNV-1a hasher for building config fingerprints. Feed it
/// every parameter that shapes the campaign's numbers; doubles are
/// hashed by bit pattern.
class ConfigHasher {
 public:
  ConfigHasher& u64(std::uint64_t v) noexcept;
  ConfigHasher& f64(double v) noexcept;
  ConfigHasher& str(const std::string& s) noexcept;
  std::uint64_t digest() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

/// Serialize and write `snap` crash-safely (tmp + fsync + rename).
/// Throws RunError{kIoError | kUnwritableCheckpoint} on failure.
void save(const std::string& path, const Snapshot& snap);

/// Read and parse a snapshot. Throws RunError{kIoError} if the file
/// cannot be read and RunError{kCheckpointCorrupt} if it does not
/// decode as a well-formed version-1 snapshot (bad magic, bitmap
/// inconsistent with the shard records, out-of-range indices, ...).
Snapshot load(const std::string& path);

/// True if a regular file exists at `path`.
bool exists(const std::string& path);

/// Throws RunError{kUnwritableCheckpoint} unless `path` names a
/// location where save() could create a file (existing parent
/// directory, writable). Used by request validation so misconfiguration
/// surfaces before hours of simulation, not after.
void require_writable(const std::string& path);

}  // namespace ssvbr::engine::checkpoint
