// ssvbr/engine/parallel_estimators.h
//
// Parallel front-ends for the repo's replication studies: crude
// Monte-Carlo overflow (eq. 16-17), the Section 4 importance-sampling
// estimator, and the Fig. 14 twist sweep — each executed by a
// ReplicationEngine and bit-identical, for a fixed (engine shard size,
// seed, replications), to its own output at any thread count.
//
// Stream parity with the serial estimators: replication i draws from
// the caller's engine jumped i times (and sweep grid point j from the
// engine long-jumped j times), exactly as the serial
// queueing::estimate_overflow_mc / is::estimate_overflow_is /
// is::sweep_twist do since their jump()-migration. Serial and parallel
// runs therefore see identical variates per replication; MC results
// (integer hit counts) match the serial path bit-for-bit, IS results
// match up to the floating-point summation order (Chan-merged shards
// vs. one serial Welford pass).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "engine/replication_engine.h"
#include "is/is_estimator.h"
#include "is/twist_search.h"
#include "queueing/overflow_mc.h"

namespace ssvbr::engine {

/// Factory producing one independent ArrivalProcess per worker thread
/// (arrival processes carry replication state and are not shareable
/// across threads). Must be callable concurrently.
using ArrivalFactory = std::function<std::unique_ptr<queueing::ArrivalProcess>()>;

/// Parallel crude Monte-Carlo overflow estimate; the multi-threaded
/// counterpart of queueing::estimate_overflow_mc with identical
/// per-replication streams and bit-identical results at any thread
/// count (hit counts merge by integer addition).
queueing::OverflowEstimate estimate_overflow_mc_par(
    const ArrivalFactory& make_arrivals, double service_rate, double buffer,
    std::size_t k, std::size_t replications, RandomEngine& rng,
    ReplicationEngine& engine,
    queueing::OverflowEvent event = queueing::OverflowEvent::kFirstPassage,
    double initial_occupancy = 0.0);

/// Parallel importance-sampling overflow estimate; the multi-threaded
/// counterpart of is::estimate_overflow_is. Bit-identical across
/// thread counts for a fixed engine shard size.
is::IsOverflowEstimate estimate_overflow_is_par(const core::UnifiedVbrModel& model,
                                                const fractal::HoskingModel& background,
                                                const is::IsOverflowSettings& settings,
                                                RandomEngine& rng,
                                                ReplicationEngine& engine);

/// Parallel multi-source IS estimate (counterpart of
/// is::estimate_overflow_is_superposed).
is::IsOverflowEstimate estimate_overflow_is_superposed_par(
    const core::UnifiedVbrModel& model, const fractal::HoskingModel& background,
    std::size_t n_sources, const is::IsOverflowSettings& settings, RandomEngine& rng,
    ReplicationEngine& engine);

/// Parallel Fig. 14 twist sweep: one task per grid point, parallelism
/// across both grid points and replications (a single flat shard pool),
/// same stream layout as the serial is::sweep_twist. Bit-identical
/// across thread counts for a fixed engine shard size.
std::vector<is::TwistSweepPoint> sweep_twist_par(const core::UnifiedVbrModel& model,
                                                 const fractal::HoskingModel& background,
                                                 is::IsOverflowSettings settings,
                                                 const std::vector<double>& twists,
                                                 RandomEngine& rng,
                                                 ReplicationEngine& engine);

}  // namespace ssvbr::engine
