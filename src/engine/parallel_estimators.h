// ssvbr/engine/parallel_estimators.h
//
// DEPRECATED compatibility front-ends, kept so pre-RunRequest callers
// continue to compile. Each function forwards to the unified run-control
// façade in engine/run.h — same engine, same stream layout, bit-identical
// results — but without access to the features that live only on
// RunRequest (checkpoint/resume, cancellation, deadlines, budgets,
// structured errors). New code should build a RunRequest and call
// engine::run() / engine::run_with() instead.
//
// Stream parity with the serial estimators: replication i draws from
// the caller's engine jumped i times (and sweep grid point j from the
// engine long-jumped j times), exactly as the serial
// queueing::estimate_overflow_mc / is::estimate_overflow_is /
// is::sweep_twist do since their jump()-migration. Serial and parallel
// runs therefore see identical variates per replication; MC results
// (integer hit counts) match the serial path bit-for-bit, IS results
// match up to the floating-point summation order (Chan-merged shards
// vs. one serial Welford pass).
#pragma once

#include <cstddef>
#include <vector>

#include "engine/run.h"

namespace ssvbr::engine {

/// Parallel crude Monte-Carlo overflow estimate; the multi-threaded
/// counterpart of queueing::estimate_overflow_mc with identical
/// per-replication streams and bit-identical results at any thread
/// count (hit counts merge by integer addition).
/// Deprecated: use run_with() with EstimatorKind::kOverflowMc.
queueing::OverflowEstimate estimate_overflow_mc_par(
    const ArrivalFactory& make_arrivals, double service_rate, double buffer,
    std::size_t k, std::size_t replications, RandomEngine& rng,
    ReplicationEngine& engine,
    queueing::OverflowEvent event = queueing::OverflowEvent::kFirstPassage,
    double initial_occupancy = 0.0);

/// Parallel importance-sampling overflow estimate; the multi-threaded
/// counterpart of is::estimate_overflow_is. Bit-identical across
/// thread counts for a fixed engine shard size.
/// Deprecated: use run_with() with EstimatorKind::kOverflowIs.
is::IsOverflowEstimate estimate_overflow_is_par(const core::UnifiedVbrModel& model,
                                                const fractal::HoskingModel& background,
                                                const is::IsOverflowSettings& settings,
                                                RandomEngine& rng,
                                                ReplicationEngine& engine);

/// Parallel multi-source IS estimate (counterpart of
/// is::estimate_overflow_is_superposed).
/// Deprecated: use run_with() with EstimatorKind::kOverflowIsSuperposed.
is::IsOverflowEstimate estimate_overflow_is_superposed_par(
    const core::UnifiedVbrModel& model, const fractal::HoskingModel& background,
    std::size_t n_sources, const is::IsOverflowSettings& settings, RandomEngine& rng,
    ReplicationEngine& engine);

/// Parallel Fig. 14 twist sweep: one task per grid point, parallelism
/// across both grid points and replications (a single flat shard pool),
/// same stream layout as the serial is::sweep_twist. Bit-identical
/// across thread counts for a fixed engine shard size.
/// Deprecated: use run_with() with EstimatorKind::kTwistSweep.
std::vector<is::TwistSweepPoint> sweep_twist_par(const core::UnifiedVbrModel& model,
                                                 const fractal::HoskingModel& background,
                                                 is::IsOverflowSettings settings,
                                                 const std::vector<double>& twists,
                                                 RandomEngine& rng,
                                                 ReplicationEngine& engine);

}  // namespace ssvbr::engine
