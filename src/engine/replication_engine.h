// ssvbr/engine/replication_engine.h
//
// Deterministic multi-threaded execution of embarrassingly-parallel
// replication studies (crude Monte-Carlo, importance sampling, twist
// sweeps).
//
// Design, in one paragraph: a study of N replications is cut into
// fixed-size shards (shard s = replications [s*S, (s+1)*S)); idle
// workers claim shards through an atomic counter (no work stealing, no
// queues); replication i always draws from the stream obtained by
// advancing the caller's engine i times with RandomEngine::jump()
// (2^128 apart, provably non-overlapping); each shard accumulates its
// replications in index order into a MergeableAccumulator; and shard
// results are merged in shard-index order on the calling thread. Every
// float in that pipeline is therefore a function of
// (seed, N, shard size) alone — the result is bit-identical whether the
// study ran on 1, 2, or 64 threads, which is what makes the parallel
// estimators drop-in replacements for the serial ones in regression
// baselines and paper-figure reproductions.
//
// Cost model: claiming a shard repositions the worker's stream by
// forward jump() calls only, so a run of N replications performs at
// most T*N jumps in total (a jump is 256 raw xoshiro steps, ~100ns);
// replication bodies in this repository cost 10^4-10^7 raw steps, so
// the overhead is noise.
//
// Observability: when the library is built with -DSSVBR_OBS=ON the
// engine records shard/replication counters, per-stage timers
// ("engine.run" / "engine.shard" / "engine.merge"), and an
// "engine.reps_per_sec" gauge; an optional EngineConfig::progress
// callback delivers rate-limited heartbeats (shards done, reps/sec,
// ETA) while a study runs. Neither affects the simulated numbers.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/error.h"
#include "dist/random.h"
#include "engine/accumulator.h"
#include "engine/thread_pool.h"
#include "obs/instrument.h"

namespace ssvbr::engine {

/// One heartbeat of a running study.
struct EngineProgress {
  std::size_t shards_done = 0;
  std::size_t shards_total = 0;
  std::size_t replications_done = 0;
  std::size_t replications_total = 0;
  double elapsed_seconds = 0.0;
  double reps_per_second = 0.0;  ///< 0 until measurable
  double eta_seconds = 0.0;      ///< 0 when the rate is unknown
  bool final_update = false;     ///< true for the completion call
};

/// Heartbeat callback. Interim updates arrive on worker threads
/// (rate-limited; at most one at a time); the completion update arrives
/// on the calling thread. Must be safe to invoke from another thread.
using ProgressFn = std::function<void(const EngineProgress&)>;

/// Tuning knobs for a ReplicationEngine.
struct EngineConfig {
  /// Worker threads; 0 selects std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Replications per shard. Affects the floating-point merge structure
  /// (a function of the workload, never of the thread count) and the
  /// load-balance granularity; the default suits studies of 10^3-10^6
  /// replications. Must be >= 1.
  std::size_t shard_size = 256;
  /// Optional progress heartbeat; disabled when empty. Never changes
  /// the study's results.
  ProgressFn progress;
  /// Minimum seconds between interim heartbeats. Must be >= 0; 0 means
  /// report after every shard.
  double progress_interval_seconds = 1.0;
};

/// Rate-limited heartbeat dispatcher shared by run() and run_many().
/// One instance per study; shard_done() is called by workers,
/// finish() once by the calling thread.
class ProgressReporter {
 public:
  ProgressReporter(const ProgressFn* fn, double interval_seconds,
                   std::size_t shards_total, std::size_t replications_total) noexcept;

  /// Record one completed shard of `replications` replications and emit
  /// a heartbeat if the interval elapsed.
  void shard_done(std::size_t replications) noexcept;

  /// Emit the final (100%) heartbeat and publish the throughput gauge.
  void finish() noexcept;

 private:
  double elapsed_seconds() const noexcept;
  EngineProgress make_progress(std::size_t shards, std::size_t reps,
                               double elapsed) const noexcept;

  const ProgressFn* fn_;  // nullptr or empty => heartbeats disabled
  double interval_seconds_;
  std::size_t shards_total_;
  std::size_t replications_total_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::size_t> shards_done_{0};
  std::atomic<std::size_t> replications_done_{0};
  std::atomic<std::int64_t> last_beat_ns_{0};
};

/// Shard-based deterministic replication runner. One instance owns one
/// thread pool; construct it once and reuse it across estimates. Not
/// thread-safe: run one study at a time per engine.
class ReplicationEngine {
 public:
  explicit ReplicationEngine(EngineConfig config = {});
  /// Convenience: `threads` workers, default shard size.
  explicit ReplicationEngine(unsigned threads) : ReplicationEngine(EngineConfig{threads, 256}) {}

  unsigned threads() const noexcept { return pool_.size(); }
  std::size_t shard_size() const noexcept { return shard_size_; }

  /// Run `replications` independent replications and return the merged
  /// accumulator.
  ///
  /// `make_worker()` is invoked once per pool worker (concurrently; it
  /// must be safe to call from several threads) and returns a callable
  ///
  ///     worker(std::size_t replication, RandomEngine& stream, Acc& acc)
  ///
  /// that runs one replication: `stream` is positioned at the caller's
  /// engine jumped `replication` times, `acc` is the shard accumulator.
  /// On return the caller's `rng` has been advanced by `replications`
  /// jumps — exactly as the serial estimators advance it — so serial
  /// and parallel runs consume identical stream real estate.
  template <MergeableAccumulator Acc, class MakeWorker>
  Acc run(std::size_t replications, RandomEngine& rng, MakeWorker&& make_worker) {
    Acc total{};
    if (replications == 0) return total;
    SSVBR_SPAN("engine.run");
    SSVBR_GAUGE_SET("engine.threads", static_cast<double>(pool_.size()));
    SSVBR_GAUGE_SET("engine.shard_size", static_cast<double>(shard_size_));
    const std::size_t n_shards = (replications + shard_size_ - 1) / shard_size_;
    std::vector<Acc> shard_result(n_shards);
    const RandomEngine base = rng;
    RandomEngine end_state = rng;  // overwritten by the final shard's worker
    std::atomic<std::size_t> next_shard{0};
    ProgressReporter reporter(&progress_, progress_interval_seconds_, n_shards,
                              replications);

    pool_.parallel([&](unsigned) {
      auto worker = make_worker();
      RandomEngine stream = base;
      std::size_t position = 0;  // jumps applied to `stream` so far
      for (;;) {
        const std::size_t s = next_shard.fetch_add(1, std::memory_order_relaxed);
        if (s >= n_shards) break;
        SSVBR_TIMER("engine.shard");
        const std::size_t lo = s * shard_size_;
        const std::size_t hi = std::min(lo + shard_size_, replications);
        while (position < lo) {
          stream.jump();
          ++position;
        }
        Acc acc{};
        for (std::size_t i = lo; i < hi; ++i) {
          RandomEngine replication_stream = stream;
          worker(i, replication_stream, acc);
          stream.jump();
          ++position;
        }
        shard_result[s] = std::move(acc);
        // Exactly one shard ends at `replications`; its stream then sits
        // `replications` jumps past `base` — the state the caller's
        // engine must continue from. pool_.parallel() joining the
        // workers orders this write before the read below.
        if (hi == replications) end_state = stream;
        SSVBR_COUNTER_ADD("engine.shards", 1);
        SSVBR_COUNTER_ADD("engine.replications", hi - lo);
        reporter.shard_done(hi - lo);
      }
    });

    {
      SSVBR_TIMER("engine.merge");
      total = std::move(shard_result[0]);
      for (std::size_t s = 1; s < n_shards; ++s) total.merge(shard_result[s]);
    }
    reporter.finish();
    rng = end_state;
    return total;
  }

  /// Run a family of `tasks` independent studies of `replications`
  /// replications each (e.g. one study per twist-sweep grid point) with
  /// a single flat shard pool, so parallelism spans both axes.
  ///
  /// Stream layout: task t's base engine is the caller's engine
  /// advanced t times with jump_long() (2^192 apart); replication i of
  /// task t uses that base jumped i times (2^128 apart). The worker
  /// callable is
  ///
  ///     worker(std::size_t task, std::size_t replication,
  ///            RandomEngine& stream, Acc& acc)
  ///
  /// Returns one merged accumulator per task, in task order; each
  /// task's result is bit-identical to what run() would produce for it
  /// at any thread count. On return the caller's `rng` has been
  /// advanced by `tasks` long jumps.
  template <MergeableAccumulator Acc, class MakeWorker>
  std::vector<Acc> run_many(std::size_t tasks, std::size_t replications, RandomEngine& rng,
                            MakeWorker&& make_worker) {
    std::vector<Acc> totals(tasks);
    if (tasks == 0 || replications == 0) {
      for (std::size_t t = 0; t < tasks; ++t) rng.jump_long();
      return totals;
    }
    SSVBR_SPAN("engine.run_many");
    SSVBR_GAUGE_SET("engine.threads", static_cast<double>(pool_.size()));
    SSVBR_GAUGE_SET("engine.shard_size", static_cast<double>(shard_size_));
    const std::size_t shards_per_task = (replications + shard_size_ - 1) / shard_size_;
    const std::size_t n_shards = tasks * shards_per_task;
    std::vector<Acc> shard_result(n_shards);
    const RandomEngine base = rng;
    std::atomic<std::size_t> next_shard{0};
    ProgressReporter reporter(&progress_, progress_interval_seconds_, n_shards,
                              tasks * replications);

    pool_.parallel([&](unsigned) {
      auto worker = make_worker();
      RandomEngine task_base = base;
      std::size_t task_position = 0;  // long jumps applied to `task_base`
      RandomEngine stream = base;
      std::size_t position = 0;        // jumps applied to `stream` within its task
      std::size_t stream_task = 0;     // task `stream` belongs to
      for (;;) {
        const std::size_t g = next_shard.fetch_add(1, std::memory_order_relaxed);
        if (g >= n_shards) break;
        SSVBR_TIMER("engine.shard");
        const std::size_t t = g / shards_per_task;
        const std::size_t s = g % shards_per_task;
        const std::size_t lo = s * shard_size_;
        const std::size_t hi = std::min(lo + shard_size_, replications);
        // The atomic counter is monotone, so tasks and shard offsets
        // only ever move forward for one worker.
        if (t != stream_task || position > lo) {
          while (task_position < t) {
            task_base.jump_long();
            ++task_position;
          }
          stream = task_base;
          position = 0;
          stream_task = t;
        }
        while (position < lo) {
          stream.jump();
          ++position;
        }
        Acc acc{};
        for (std::size_t i = lo; i < hi; ++i) {
          RandomEngine replication_stream = stream;
          worker(t, i, replication_stream, acc);
          stream.jump();
          ++position;
        }
        shard_result[g] = std::move(acc);
        SSVBR_COUNTER_ADD("engine.shards", 1);
        SSVBR_COUNTER_ADD("engine.replications", hi - lo);
        reporter.shard_done(hi - lo);
      }
    });

    {
      SSVBR_TIMER("engine.merge");
      for (std::size_t t = 0; t < tasks; ++t) {
        totals[t] = std::move(shard_result[t * shards_per_task]);
        for (std::size_t s = 1; s < shards_per_task; ++s) {
          totals[t].merge(shard_result[t * shards_per_task + s]);
        }
        rng.jump_long();
      }
    }
    reporter.finish();
    return totals;
  }

 private:
  std::size_t shard_size_;
  ProgressFn progress_;
  double progress_interval_seconds_;
  ThreadPool pool_;
};

}  // namespace ssvbr::engine
