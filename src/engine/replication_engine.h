// ssvbr/engine/replication_engine.h
//
// Deterministic multi-threaded execution of embarrassingly-parallel
// replication studies (crude Monte-Carlo, importance sampling, twist
// sweeps).
//
// Design, in one paragraph: a study of N replications is cut into
// fixed-size shards (shard s = replications [s*S, (s+1)*S)); idle
// workers claim shards through an atomic counter (no work stealing, no
// queues); replication i always draws from the stream obtained by
// advancing the caller's engine i times with RandomEngine::jump()
// (2^128 apart, provably non-overlapping); each shard accumulates its
// replications in index order into a MergeableAccumulator; and shard
// results are merged in shard-index order on the calling thread. Every
// float in that pipeline is therefore a function of
// (seed, N, shard size) alone — the result is bit-identical whether the
// study ran on 1, 2, or 64 threads, which is what makes the parallel
// estimators drop-in replacements for the serial ones in regression
// baselines and paper-figure reproductions.
//
// Cost model: claiming a shard repositions the worker's stream by
// forward jump() calls only, so a run of N replications performs at
// most T*N jumps in total (a jump is 256 raw xoshiro steps, ~100ns);
// replication bodies in this repository cost 10^4-10^7 raw steps, so
// the overhead is noise.
//
// Observability: when the library is built with -DSSVBR_OBS=ON the
// engine records shard/replication counters, per-stage timers
// ("engine.run" / "engine.shard" / "engine.merge"), and an
// "engine.reps_per_sec" gauge; an optional EngineConfig::progress
// callback delivers rate-limited heartbeats (shards done, reps/sec,
// ETA) while a study runs; and every run leaves a shard-level
// obs::RunTelemetry (per-shard thread/wait/setup/loop split, merge and
// checkpoint costs — see obs/telemetry.h) readable via
// last_telemetry(). None of it affects the simulated numbers.
// Durable run-control (run_durable): the same shard loop, extended
// with cooperative cancellation (stop flags checked at shard
// boundaries), wall-clock deadlines, per-call replication budgets, and
// checkpoint hooks — restored shards are skipped, computed shards are
// snapshotted through a caller-supplied save callback on a shard
// cadence and at every drain (including the exception path). Because a
// shard's accumulator is a pure function of (base RNG state, shard
// index, shard size) and the merge walks shards in index order, a
// campaign resumed from a snapshot is bit-identical to an uninterrupted
// one.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"
#include "dist/random.h"
#include "engine/accumulator.h"
#include "engine/cacheline.h"
#include "engine/thread_pool.h"
#include "obs/instrument.h"
#include "obs/telemetry.h"

namespace ssvbr::engine {

/// One heartbeat of a running study.
struct EngineProgress {
  std::size_t shards_done = 0;
  std::size_t shards_total = 0;
  std::size_t replications_done = 0;
  std::size_t replications_total = 0;
  std::size_t resumed_shards = 0;  ///< shards restored from a checkpoint
  double elapsed_seconds = 0.0;
  double reps_per_second = 0.0;  ///< 0 until measurable
  double eta_seconds = 0.0;      ///< 0 when the rate is unknown
  bool final_update = false;     ///< true for the completion call
};

/// Heartbeat callback. Interim updates arrive on worker threads
/// (rate-limited; at most one at a time); the completion update arrives
/// on the calling thread. Must be safe to invoke from another thread.
using ProgressFn = std::function<void(const EngineProgress&)>;

/// Tuning knobs for a ReplicationEngine.
struct EngineConfig {
  /// Worker threads; 0 selects std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Replications per shard. Affects the floating-point merge structure
  /// (a function of the workload, never of the thread count) and the
  /// load-balance granularity; the default suits studies of 10^3-10^6
  /// replications. Must be >= 1.
  std::size_t shard_size = 256;
  /// Optional progress heartbeat; disabled when empty. Never changes
  /// the study's results.
  ProgressFn progress;
  /// Minimum seconds between interim heartbeats. Must be >= 0; 0 means
  /// report after every shard.
  double progress_interval_seconds = 1.0;
};

/// Rate-limited heartbeat dispatcher shared by run() and run_many().
/// One instance per study; shard_done() is called by workers,
/// finish() once by the calling thread.
class ProgressReporter {
 public:
  /// `resumed_shards` / `resumed_replications` seed the done counters
  /// when a study restarts from a checkpoint, so heartbeats report
  /// whole-campaign progress while the throughput estimate covers only
  /// the work actually performed by this process.
  ProgressReporter(const ProgressFn* fn, double interval_seconds,
                   std::size_t shards_total, std::size_t replications_total,
                   std::size_t resumed_shards = 0,
                   std::size_t resumed_replications = 0) noexcept;

  /// Record one completed shard of `replications` replications and emit
  /// a heartbeat if the interval elapsed.
  void shard_done(std::size_t replications) noexcept;

  /// Emit the final (100%) heartbeat and publish the throughput gauge.
  void finish() noexcept;

 private:
  double elapsed_seconds() const noexcept;
  EngineProgress make_progress(std::size_t shards, std::size_t reps,
                               double elapsed) const noexcept;

  const ProgressFn* fn_;  // nullptr or empty => heartbeats disabled
  double interval_seconds_;
  std::size_t shards_total_;
  std::size_t replications_total_;
  std::size_t resumed_shards_;
  std::size_t resumed_replications_;
  std::chrono::steady_clock::time_point start_;
  // The three counters are always updated together by one shard_done
  // call, so they share one aligned line (separate lines would triple
  // the ping-pong); the alignment keeps them off the read-only config
  // fields above, which workers read on every heartbeat check.
  struct alignas(kCacheLineSize) Counters {
    std::atomic<std::size_t> shards_done{0};
    std::atomic<std::size_t> replications_done{0};
    std::atomic<std::int64_t> last_beat_ns{0};
  } counters_;
};

/// How a durable run ended.
enum class RunStatus {
  kComplete,         ///< every shard done; the estimate is final
  kCancelled,        ///< a stop flag was raised; drained at a shard boundary
  kDeadlineExpired,  ///< the wall-clock deadline elapsed
  kBudgetExhausted,  ///< the per-call replication budget was consumed
};

/// Identifier string for a RunStatus ("complete", "cancelled", ...).
const char* to_string(RunStatus status) noexcept;

/// Cooperative controls for run_durable. All checks happen at shard
/// boundaries: a worker finishes the shard it holds, so "cancel" means
/// "drain, checkpoint, return" — never a torn shard.
struct DurableControls {
  /// Primary stop flag (e.g. owned by the caller's UI). May be null.
  const std::atomic<bool>* stop = nullptr;
  /// Secondary stop flag (e.g. the process-wide SIGINT latch), so both
  /// can be armed at once without the caller multiplexing them.
  const std::atomic<bool>* stop_secondary = nullptr;
  /// Abort after this many wall-clock seconds; 0 disables.
  double deadline_seconds = 0.0;
  /// Run at most this many replications in THIS call (a resume budget:
  /// campaigns advance in bounded slices); 0 disables.
  std::size_t max_replications = 0;
};

/// Checkpoint/fault plumbing for run_durable. The engine stays
/// format-agnostic: it only deals in per-shard accumulators and
/// completed flags; serialization lives with the caller (see
/// engine/run.h and engine/checkpoint.h).
template <MergeableAccumulator Acc>
struct DurableHooks {
  /// Restored state: completed flags + per-shard accumulators from a
  /// snapshot (both sized shards_total, or null for a fresh run).
  /// Flagged shards are never recomputed.
  const std::vector<char>* restored_done = nullptr;
  const std::vector<Acc>* restored = nullptr;
  /// Persist a snapshot: `done[s]` marks the entries of `shards` that
  /// are valid. Called with an internal mutex held (never concurrently
  /// with itself) from worker threads and at drain. Only flagged
  /// entries may be read.
  std::function<void(const std::vector<char>& done, const std::vector<Acc>& shards,
                     std::size_t replications_done)>
      save;
  /// Invoke save() every this many shards completed by THIS call;
  /// 0 saves only at drain (completion, cancellation, or exception).
  std::size_t save_every_shards = 0;
  /// Test/fault hook invoked after each shard this call completes
  /// (argument: how many so far). May throw to simulate a mid-campaign
  /// crash — the engine then writes a final snapshot and rethrows.
  std::function<void(std::size_t shards_completed_this_call)> after_shard;
};

/// Outcome of a durable run.
template <MergeableAccumulator Acc>
struct DurableResult {
  /// Merged accumulator. For kComplete this is the full study (and is
  /// bit-identical to ReplicationEngine::run); otherwise it merges the
  /// completed shards only, in shard-index order.
  Acc total{};
  RunStatus status = RunStatus::kComplete;
  std::size_t shards_total = 0;
  std::size_t shards_done = 0;        ///< including restored shards
  std::size_t restored_shards = 0;    ///< restored from the snapshot
  std::size_t replications_done = 0;  ///< including restored shards
};

/// Shard-based deterministic replication runner. One instance owns one
/// thread pool; construct it once and reuse it across estimates. Not
/// thread-safe: run one study at a time per engine.
class ReplicationEngine {
 public:
  explicit ReplicationEngine(EngineConfig config = {});
  /// Convenience: `threads` workers, default shard size.
  explicit ReplicationEngine(unsigned threads) : ReplicationEngine(EngineConfig{threads, 256}) {}

  unsigned threads() const noexcept { return pool_.size(); }
  std::size_t shard_size() const noexcept { return shard_size_; }

  /// Label attached to the next runs' telemetry (e.g. the estimator
  /// kind). Purely descriptive; never affects the simulation.
  void set_study_label(std::string_view label) { study_label_ = label; }

  /// Telemetry of the most recent run()/run_durable()/run_many() call.
  /// Empty (enabled == false) when the library was built without
  /// -DSSVBR_OBS=ON, or before the first run.
  const obs::RunTelemetry& last_telemetry() const noexcept {
    return telemetry_;
  }

  /// Run `replications` independent replications and return the merged
  /// accumulator.
  ///
  /// `make_worker()` is invoked once per pool worker (concurrently; it
  /// must be safe to call from several threads) and returns a callable
  ///
  ///     worker(std::size_t replication, RandomEngine& stream, Acc& acc)
  ///
  /// that runs one replication: `stream` is positioned at the caller's
  /// engine jumped `replication` times, `acc` is the shard accumulator.
  /// On return the caller's `rng` has been advanced by `replications`
  /// jumps — exactly as the serial estimators advance it — so serial
  /// and parallel runs consume identical stream real estate.
  template <MergeableAccumulator Acc, class MakeWorker>
  Acc run(std::size_t replications, RandomEngine& rng, MakeWorker&& make_worker) {
    // The durable loop with no controls and no hooks is exactly the
    // plain shard loop (same shard structure, same in-order merge), so
    // run() is a thin alias and the two paths cannot drift apart.
    return run_durable<Acc>(replications, rng, std::forward<MakeWorker>(make_worker))
        .total;
  }

  /// Checkpoint/cancellation-aware variant of run(). Semantics:
  ///
  ///  * With default controls and hooks, identical to run() bit-for-bit
  ///    (status is always kComplete).
  ///  * `hooks.restored_done` marks shards whose accumulators are taken
  ///    from `hooks.restored` instead of being recomputed; the merged
  ///    result of a resumed-and-completed study is bit-identical to an
  ///    uninterrupted one.
  ///  * Stop flags / deadline / budget are checked before each shard
  ///    claim; on trigger workers drain (finishing shards they hold),
  ///    a final snapshot is saved, and the partial result is returned
  ///    with the corresponding status. The caller's `rng` is advanced
  ///    by `replications` jumps ONLY when the study completes —
  ///    exactly run()'s contract — and left untouched otherwise.
  ///  * If a worker (or `hooks.after_shard`) throws, a best-effort
  ///    final snapshot is saved and the exception propagates; other
  ///    workers stop claiming shards as soon as they observe the abort.
  template <MergeableAccumulator Acc, class MakeWorker>
  DurableResult<Acc> run_durable(std::size_t replications, RandomEngine& rng,
                                 MakeWorker&& make_worker,
                                 const DurableControls& controls = {},
                                 const DurableHooks<Acc>& hooks = {}) {
    DurableResult<Acc> out;
    telemetry_ = {};
    if (replications == 0) return out;
    SSVBR_SPAN("engine.run");
    SSVBR_GAUGE_SET("engine.threads", static_cast<double>(pool_.size()));
    SSVBR_GAUGE_SET("engine.shard_size", static_cast<double>(shard_size_));
    const std::size_t n_shards = (replications + shard_size_ - 1) / shard_size_;
    obs::TelemetryCollector telem(study_label_, pool_.size(), n_shards,
                                  shard_size_);
    out.shards_total = n_shards;
    const auto shard_width = [&](std::size_t s) {
      return std::min((s + 1) * shard_size_, replications) - s * shard_size_;
    };

    std::vector<Acc> shard_result(n_shards);
    std::vector<std::atomic<unsigned char>> done(n_shards);

    // Restore checkpointed shards.
    std::size_t restored = 0, restored_reps = 0;
    if (hooks.restored_done != nullptr) {
      SSVBR_ENSURE(hooks.restored != nullptr &&
                       hooks.restored_done->size() == n_shards &&
                       hooks.restored->size() == n_shards,
                   "restored shard state must be sized shards_total");
      for (std::size_t s = 0; s < n_shards; ++s) {
        if (!(*hooks.restored_done)[s]) continue;
        shard_result[s] = (*hooks.restored)[s];
        done[s].store(1, std::memory_order_relaxed);
        ++restored;
        restored_reps += shard_width(s);
      }
    }
    out.restored_shards = restored;

    const RandomEngine base = rng;
    RandomEngine end_state = rng;  // written by the worker that finishes the study
    // Every worker updates these once per shard; as plain consecutive
    // locals they would all land in one or two stack cache lines and
    // each fetch_add would invalidate its neighbours' lines on every
    // other core (see engine/cacheline.h). Each multi-writer word gets
    // its own line; the rare-write stop words share one.
    CacheAligned<std::atomic<std::size_t>> next_shard{{0}};
    CacheAligned<std::atomic<std::size_t>> completed_total{{restored}};
    CacheAligned<std::atomic<std::size_t>> completed_this_call{{0}};
    CacheAligned<std::atomic<std::size_t>> reps_this_call{{0}};
    struct alignas(kCacheLineSize) StopWords {
      std::atomic<bool> have_end{false};
      std::atomic<int> stop_reason{0};  // 1 cancel, 2 deadline, 3 budget
      std::atomic<bool> aborted{false};
    } stop_words;
    std::atomic<bool>& have_end = stop_words.have_end;
    std::atomic<int>& stop_reason = stop_words.stop_reason;
    std::atomic<bool>& aborted = stop_words.aborted;
    std::mutex save_mu;
    const auto start = std::chrono::steady_clock::now();
    ProgressReporter reporter(&progress_, progress_interval_seconds_, n_shards,
                              replications, restored, restored_reps);

    const auto snapshot = [&]() {
      if (!hooks.save) return;
      std::lock_guard<std::mutex> lock(save_mu);
      const std::uint64_t save_t0 = obs::now_ns();
      std::vector<char> flags(n_shards, 0);
      std::size_t reps_done = 0;
      for (std::size_t s = 0; s < n_shards; ++s) {
        // acquire pairs with the release store after shard_result[s] is
        // written, so flagged entries are safe to serialize.
        if (done[s].load(std::memory_order_acquire)) {
          flags[s] = 1;
          reps_done += shard_width(s);
        }
      }
      hooks.save(flags, shard_result, reps_done);
      // Serialized by save_mu, so the collector's plain accumulator is
      // safe here.
      telem.add_checkpoint_ns(obs::now_ns() - save_t0);
    };

    const auto should_stop = [&]() -> bool {
      if (controls.stop != nullptr && controls.stop->load(std::memory_order_relaxed)) {
        stop_reason.store(1, std::memory_order_relaxed);
        return true;
      }
      if (controls.stop_secondary != nullptr &&
          controls.stop_secondary->load(std::memory_order_relaxed)) {
        stop_reason.store(1, std::memory_order_relaxed);
        return true;
      }
      if (controls.deadline_seconds > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
        if (elapsed >= controls.deadline_seconds) {
          stop_reason.store(2, std::memory_order_relaxed);
          return true;
        }
      }
      if (controls.max_replications > 0 &&
          reps_this_call.value.load(std::memory_order_relaxed) >= controls.max_replications) {
        stop_reason.store(3, std::memory_order_relaxed);
        return true;
      }
      return false;
    };

    try {
      pool_.parallel([&](unsigned worker_id) {
        auto tw = telem.worker(worker_id);
        tw.begin_setup();
        auto worker = make_worker();
        tw.end_setup();
        RandomEngine stream = base;
        std::size_t position = 0;  // jumps applied to `stream` so far
        try {
          for (;;) {
            if (aborted.load(std::memory_order_relaxed)) break;
            if (should_stop()) break;
            const std::size_t s = next_shard.value.fetch_add(1, std::memory_order_relaxed);
            if (s >= n_shards) break;
            if (done[s].load(std::memory_order_acquire)) continue;  // restored
            SSVBR_TIMER("engine.shard");
            tw.claimed();
            const std::size_t lo = s * shard_size_;
            const std::size_t hi = std::min(lo + shard_size_, replications);
            while (position < lo) {
              stream.jump();
              ++position;
            }
            tw.loop_started();
            Acc acc{};
            for (std::size_t i = lo; i < hi; ++i) {
              RandomEngine replication_stream = stream;
              worker(i, replication_stream, acc);
              stream.jump();
              ++position;
            }
            shard_result[s] = std::move(acc);
            done[s].store(1, std::memory_order_release);
            tw.shard_done(s, /*task=*/0, hi - lo);
            completed_total.value.fetch_add(1, std::memory_order_relaxed);
            reps_this_call.value.fetch_add(hi - lo, std::memory_order_relaxed);
            // Exactly one shard ends at `replications`; its stream then
            // sits `replications` jumps past `base` — the state the
            // caller's engine continues from. pool_.parallel() joining
            // the workers orders this write before the read below.
            if (hi == replications) {
              end_state = stream;
              have_end.store(true, std::memory_order_relaxed);
            }
            SSVBR_COUNTER_ADD("engine.shards", 1);
            SSVBR_COUNTER_ADD("engine.replications", hi - lo);
            reporter.shard_done(hi - lo);
            const std::size_t k =
                completed_this_call.value.fetch_add(1, std::memory_order_relaxed) + 1;
            if (hooks.save_every_shards != 0 && k % hooks.save_every_shards == 0) {
              snapshot();
            }
            if (hooks.after_shard) hooks.after_shard(k);
          }
        } catch (...) {
          aborted.store(true, std::memory_order_relaxed);
          throw;
        }
      });
    } catch (...) {
      // The campaign just crashed mid-flight; persist what completed so
      // a resume replays nothing. Never mask the original fault.
      try {
        snapshot();
      } catch (...) {  // NOLINT(bugprone-empty-catch)
      }
      throw;
    }

    out.shards_done = completed_total.value.load(std::memory_order_relaxed);
    // Snapshot BEFORE the merge: the merge moves shard accumulators
    // into the total, and a moved-from accumulator with heap state
    // (e.g. per-node vectors) would serialize hollow.
    snapshot();
    {
      SSVBR_TIMER("engine.merge");
      const std::uint64_t merge_t0 = obs::now_ns();
      bool first = true;
      for (std::size_t s = 0; s < n_shards; ++s) {
        if (!done[s].load(std::memory_order_acquire)) continue;
        out.replications_done += shard_width(s);
        if (first) {
          out.total = std::move(shard_result[s]);
          first = false;
        } else {
          out.total.merge(shard_result[s]);
        }
      }
      telem.add_merge_ns(obs::now_ns() - merge_t0);
    }
    telemetry_ =
        telem.finish(completed_this_call.value.load(std::memory_order_relaxed),
                     reps_this_call.value.load(std::memory_order_relaxed));

    if (out.shards_done == n_shards) {
      out.status = RunStatus::kComplete;
      reporter.finish();
      if (!have_end.load(std::memory_order_relaxed)) {
        // The study-closing shard was restored, so no worker recomputed
        // its stream; derive the post-run state by jumping. jump() is
        // the same O(1) polynomial either way, so the state matches the
        // uninterrupted run exactly.
        end_state = base;
        for (std::size_t i = 0; i < replications; ++i) end_state.jump();
      }
      rng = end_state;
    } else {
      switch (stop_reason.load(std::memory_order_relaxed)) {
        case 2: out.status = RunStatus::kDeadlineExpired; break;
        case 3: out.status = RunStatus::kBudgetExhausted; break;
        default: out.status = RunStatus::kCancelled; break;
      }
      SSVBR_COUNTER_ADD("engine.run.stopped_early", 1);
      reporter.finish();
      // rng deliberately untouched: an incomplete study consumed no
      // caller-visible stream real estate.
    }
    return out;
  }

  /// Run a family of `tasks` independent studies of `replications`
  /// replications each (e.g. one study per twist-sweep grid point) with
  /// a single flat shard pool, so parallelism spans both axes.
  ///
  /// Stream layout: task t's base engine is the caller's engine
  /// advanced t times with jump_long() (2^192 apart); replication i of
  /// task t uses that base jumped i times (2^128 apart). The worker
  /// callable is
  ///
  ///     worker(std::size_t task, std::size_t replication,
  ///            RandomEngine& stream, Acc& acc)
  ///
  /// Returns one merged accumulator per task, in task order; each
  /// task's result is bit-identical to what run() would produce for it
  /// at any thread count. On return the caller's `rng` has been
  /// advanced by `tasks` long jumps.
  template <MergeableAccumulator Acc, class MakeWorker>
  std::vector<Acc> run_many(std::size_t tasks, std::size_t replications, RandomEngine& rng,
                            MakeWorker&& make_worker) {
    std::vector<Acc> totals(tasks);
    telemetry_ = {};
    if (tasks == 0 || replications == 0) {
      for (std::size_t t = 0; t < tasks; ++t) rng.jump_long();
      return totals;
    }
    SSVBR_SPAN("engine.run_many");
    SSVBR_GAUGE_SET("engine.threads", static_cast<double>(pool_.size()));
    SSVBR_GAUGE_SET("engine.shard_size", static_cast<double>(shard_size_));
    const std::size_t shards_per_task = (replications + shard_size_ - 1) / shard_size_;
    const std::size_t n_shards = tasks * shards_per_task;
    obs::TelemetryCollector telem(study_label_, pool_.size(), n_shards,
                                  shard_size_);
    std::vector<Acc> shard_result(n_shards);
    const RandomEngine base = rng;
    // Sole multi-writer word of the flat shard pool; line to itself
    // (see the run_durable locals and engine/cacheline.h).
    CacheAligned<std::atomic<std::size_t>> next_shard{{0}};
    ProgressReporter reporter(&progress_, progress_interval_seconds_, n_shards,
                              tasks * replications);

    pool_.parallel([&](unsigned worker_id) {
      auto tw = telem.worker(worker_id);
      tw.begin_setup();
      auto worker = make_worker();
      tw.end_setup();
      RandomEngine task_base = base;
      std::size_t task_position = 0;  // long jumps applied to `task_base`
      RandomEngine stream = base;
      std::size_t position = 0;        // jumps applied to `stream` within its task
      std::size_t stream_task = 0;     // task `stream` belongs to
      for (;;) {
        const std::size_t g = next_shard.value.fetch_add(1, std::memory_order_relaxed);
        if (g >= n_shards) break;
        SSVBR_TIMER("engine.shard");
        tw.claimed();
        const std::size_t t = g / shards_per_task;
        const std::size_t s = g % shards_per_task;
        const std::size_t lo = s * shard_size_;
        const std::size_t hi = std::min(lo + shard_size_, replications);
        // The atomic counter is monotone, so tasks and shard offsets
        // only ever move forward for one worker.
        if (t != stream_task || position > lo) {
          while (task_position < t) {
            task_base.jump_long();
            ++task_position;
          }
          stream = task_base;
          position = 0;
          stream_task = t;
        }
        while (position < lo) {
          stream.jump();
          ++position;
        }
        tw.loop_started();
        Acc acc{};
        for (std::size_t i = lo; i < hi; ++i) {
          RandomEngine replication_stream = stream;
          worker(t, i, replication_stream, acc);
          stream.jump();
          ++position;
        }
        shard_result[g] = std::move(acc);
        tw.shard_done(g, t, hi - lo);
        SSVBR_COUNTER_ADD("engine.shards", 1);
        SSVBR_COUNTER_ADD("engine.replications", hi - lo);
        reporter.shard_done(hi - lo);
      }
    });

    {
      SSVBR_TIMER("engine.merge");
      const std::uint64_t merge_t0 = obs::now_ns();
      for (std::size_t t = 0; t < tasks; ++t) {
        totals[t] = std::move(shard_result[t * shards_per_task]);
        for (std::size_t s = 1; s < shards_per_task; ++s) {
          totals[t].merge(shard_result[t * shards_per_task + s]);
        }
        rng.jump_long();
      }
      telem.add_merge_ns(obs::now_ns() - merge_t0);
    }
    telemetry_ = telem.finish(n_shards, tasks * replications);
    reporter.finish();
    return totals;
  }

 private:
  std::size_t shard_size_;
  std::string study_label_;
  ProgressFn progress_;
  double progress_interval_seconds_;
  ThreadPool pool_;
  obs::RunTelemetry telemetry_;
};

}  // namespace ssvbr::engine
