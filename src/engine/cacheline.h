// ssvbr/engine/cacheline.h
//
// Cache-line placement helpers for the replication engine's shared
// words (DESIGN.md §7f).
//
// The engine's hot shared state is a handful of atomic counters that
// every worker hammers once per shard. Correctness never cared where
// they live, but throughput does: two unrelated atomics in one 64-byte
// line ping-pong that line between cores on every update ("false
// sharing"), and an atomic that shares its line with read-mostly data
// (a mutex, a config field, a vector header) invalidates readers that
// never touched it. The rule used throughout the engine:
//
//   * a word that is WRITTEN concurrently by several workers gets a
//     cache line that contains nothing else — wrap it in CacheAligned;
//   * words that are always written TOGETHER by the same call may share
//     one aligned line (splitting them would just double the ping-pong);
//   * read-only worker inputs (the base engine state, shard geometry,
//     plan pointers) are kept out of those lines entirely.
#pragma once

#include <cstddef>

namespace ssvbr::engine {

/// Assumed destructive-interference granularity. 64 bytes covers every
/// x86-64 and most AArch64 parts; std::hardware_destructive_interference_size
/// is deliberately not used because its value is ABI-fragile (GCC warns
/// that it varies with -mtune) and 64 is the conservative constant the
/// rest of the repo documents.
inline constexpr std::size_t kCacheLineSize = 64;

/// A `T` with a 64-byte line to itself. alignas gives the object line
/// alignment AND rounds sizeof up to a multiple of the alignment, so
/// adjacent CacheAligned values (locals or array elements) never share
/// a line. Aggregate: initialize as `CacheAligned<std::atomic<T>> x{{v}};`
/// and access through `x.value`.
template <class T>
struct alignas(kCacheLineSize) CacheAligned {
  T value;
};

}  // namespace ssvbr::engine
