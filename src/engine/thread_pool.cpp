#include "engine/thread_pool.h"

#include <algorithm>
#include <cstdint>

namespace ssvbr::engine {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (unsigned id = 0; id < n; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stopping_ || generation_ != seen_generation; });
      if (stopping_) return;
      seen_generation = generation_;
      job = job_;
    }
    std::exception_ptr error;
    try {
      (*job)(id);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel(const std::function<void(unsigned)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  remaining_ = size();
  first_error_ = nullptr;
  ++generation_;
  cv_start_.notify_all();
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace ssvbr::engine
