// ssvbr/engine/study_harness.h
//
// Shared per-study durability plumbing for run_durable campaigns:
// fingerprint construction, snapshot load/verify/decode on resume, the
// save callback, cancellation controls, and the composed fault hook.
//
// Extracted from engine/run.cpp so every RunRequest-style front-end
// (the single-queue estimators there, the network-scale scenarios in
// net/run.cpp) shares one implementation of checkpoint/resume and
// cancellation instead of re-deriving the invariants. One instance per
// engine call.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/checkpoint.h"
#include "engine/replication_engine.h"
#include "engine/run.h"
#include "obs/instrument.h"

namespace ssvbr::engine {

/// SSVBR_FAULT_AFTER_SHARDS=N arms a hard process kill after N shards
/// complete in one engine call — the recovery tests' stand-in for a
/// crash. Unset, empty, or unparsable values leave it disarmed.
inline std::optional<std::size_t> fault_after_shards_from_env() {
  const char* raw = std::getenv("SSVBR_FAULT_AFTER_SHARDS");
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return std::nullopt;
  return static_cast<std::size_t>(n);
}

/// Everything durable about one campaign, bound to an accumulator type.
/// `estimator` + `config_hash` identify the study; the harness adds the
/// accumulator name, shard plan, and base RNG state to complete the
/// snapshot fingerprint.
template <MergeableAccumulator Acc>
class StudyHarness {
 public:
  StudyHarness(const CheckpointPolicy& checkpoint_policy, const RunControls& run_controls,
               std::string estimator, std::uint64_t config_hash,
               const ReplicationEngine& engine, const RandomEngine& rng,
               std::size_t replications)
      : path_(checkpoint_policy.path) {
    fingerprint_.estimator = std::move(estimator);
    fingerprint_.accumulator = accumulator_name(Acc{});
    fingerprint_.config_hash = config_hash;
    fingerprint_.replications = replications;
    fingerprint_.shard_size = engine.shard_size();
    fingerprint_.rng = rng.state();

    controls_.stop = run_controls.stop;
    if (run_controls.cancel_on_sigint) controls_.stop_secondary = &sigint_flag();
    controls_.deadline_seconds = run_controls.deadline_seconds;
    controls_.max_replications = run_controls.max_replications;

    if (!path_.empty()) {
      hooks_.save_every_shards = checkpoint_policy.every_shards;
      hooks_.save = [this](const std::vector<char>& done, const std::vector<Acc>& shards,
                           std::size_t replications_done) {
        checkpoint::Snapshot snap;
        snap.fingerprint = fingerprint_;
        snap.shards_total = done.size();
        snap.replications_done = replications_done;
        for (std::size_t s = 0; s < done.size(); ++s) {
          if (!done[s]) continue;
          snap.shards.push_back({s, encode_words(shards[s])});
        }
        checkpoint::save(path_, snap);
        ++saves_;
        SSVBR_COUNTER_ADD("engine.checkpoint.saves", 1);
      };
      if (checkpoint_policy.resume && checkpoint::exists(path_)) {
        restore(engine, replications);
      }
    }

    // Compose the in-process fault hook with the environment-armed hard
    // kill. The cadence snapshot runs before after_shard, so at the
    // moment of the kill the latest snapshot already covers the shard
    // count the test asked for.
    const std::optional<std::size_t> kill_after = fault_after_shards_from_env();
    if (run_controls.fault_hook || kill_after.has_value()) {
      hooks_.after_shard = [user = run_controls.fault_hook,
                            kill_after](std::size_t k) {
        if (user) user(k);
        if (kill_after.has_value() && k >= *kill_after) {
          // _Exit: a crash does not unwind. Durability must come from
          // the snapshots already renamed into place, nothing else.
          std::_Exit(kFaultExitCode);
        }
      };
    }
  }

  const DurableControls& controls() const noexcept { return controls_; }
  const DurableHooks<Acc>& hooks() const noexcept { return hooks_; }

  void fill_provenance(RunProvenance& prov, const DurableResult<Acc>& res) const {
    prov.resumed = resumed_;
    prov.resumed_shards = res.restored_shards;
    prov.shards_total = res.shards_total;
    prov.checkpoints_written = saves_;
    prov.checkpoint_path = path_;
  }

 private:
  void restore(const ReplicationEngine& engine, std::size_t replications) {
    checkpoint::Snapshot snap = checkpoint::load(path_);
    if (!(snap.fingerprint == fingerprint_)) {
      throw RunError(Error{ErrorCode::kFingerprintMismatch,
                           "checkpoint belongs to a different campaign "
                           "(estimator config, RNG seed, replication count, or "
                           "shard size changed)",
                           path_});
    }
    const std::size_t n_shards =
        (replications + engine.shard_size() - 1) / engine.shard_size();
    if (snap.shards_total != n_shards) {
      throw RunError(Error{ErrorCode::kCheckpointCorrupt,
                           "snapshot shard count disagrees with the shard plan",
                           path_});
    }
    restored_done_ = snap.completed_flags();
    restored_.assign(n_shards, Acc{});
    try {
      for (const checkpoint::ShardRecord& rec : snap.shards) {
        decode_words(rec.words, restored_[rec.index]);
      }
    } catch (const std::exception& e) {
      throw RunError(Error{ErrorCode::kCheckpointCorrupt, e.what(), path_});
    }
    hooks_.restored_done = &restored_done_;
    hooks_.restored = &restored_;
    resumed_ = true;
    SSVBR_COUNTER_ADD("engine.checkpoint.resumed_shards",
                      static_cast<std::int64_t>(snap.shards.size()));
  }

  std::string path_;
  checkpoint::Fingerprint fingerprint_;
  DurableControls controls_;
  DurableHooks<Acc> hooks_;
  std::vector<char> restored_done_;
  std::vector<Acc> restored_;
  bool resumed_ = false;
  std::size_t saves_ = 0;
};

}  // namespace ssvbr::engine
