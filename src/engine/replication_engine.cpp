#include "engine/replication_engine.h"

namespace ssvbr::engine {

ReplicationEngine::ReplicationEngine(EngineConfig config)
    : shard_size_(config.shard_size),
      progress_(std::move(config.progress)),
      progress_interval_seconds_(config.progress_interval_seconds),
      pool_(config.threads) {
  SSVBR_REQUIRE(config.shard_size >= 1, "shard size must be at least 1");
  SSVBR_REQUIRE(config.progress_interval_seconds >= 0.0,
                "progress interval must be non-negative");
}

const char* to_string(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::kComplete: return "complete";
    case RunStatus::kCancelled: return "cancelled";
    case RunStatus::kDeadlineExpired: return "deadline_expired";
    case RunStatus::kBudgetExhausted: return "budget_exhausted";
  }
  return "unknown";
}

ProgressReporter::ProgressReporter(const ProgressFn* fn, double interval_seconds,
                                   std::size_t shards_total,
                                   std::size_t replications_total,
                                   std::size_t resumed_shards,
                                   std::size_t resumed_replications) noexcept
    : fn_(fn != nullptr && *fn ? fn : nullptr),
      interval_seconds_(interval_seconds),
      shards_total_(shards_total),
      replications_total_(replications_total),
      resumed_shards_(resumed_shards),
      resumed_replications_(resumed_replications),
      start_(std::chrono::steady_clock::now()) {
  counters_.shards_done.store(resumed_shards, std::memory_order_relaxed);
  counters_.replications_done.store(resumed_replications, std::memory_order_relaxed);
}

double ProgressReporter::elapsed_seconds() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

EngineProgress ProgressReporter::make_progress(std::size_t shards, std::size_t reps,
                                               double elapsed) const noexcept {
  EngineProgress p;
  p.shards_done = shards;
  p.shards_total = shards_total_;
  p.replications_done = reps;
  p.replications_total = replications_total_;
  p.resumed_shards = resumed_shards_;
  p.elapsed_seconds = elapsed;
  // Throughput covers only this process's work: restored shards cost
  // nothing, and counting them would produce absurd ETAs right after a
  // resume.
  const std::size_t fresh = reps - resumed_replications_;
  if (elapsed > 0.0 && fresh > 0) {
    p.reps_per_second = static_cast<double>(fresh) / elapsed;
    p.eta_seconds =
        static_cast<double>(replications_total_ - reps) / p.reps_per_second;
  }
  return p;
}

void ProgressReporter::shard_done(std::size_t replications) noexcept {
  const std::size_t reps =
      counters_.replications_done.fetch_add(replications, std::memory_order_relaxed) +
      replications;
  const std::size_t shards = counters_.shards_done.fetch_add(1, std::memory_order_relaxed) + 1;
  if (fn_ == nullptr) return;
  const double elapsed = elapsed_seconds();
  const auto now_ns = static_cast<std::int64_t>(elapsed * 1e9);
  std::int64_t last = counters_.last_beat_ns.load(std::memory_order_relaxed);
  if (static_cast<double>(now_ns - last) < interval_seconds_ * 1e9) return;
  // One winner per interval; losers skip (another worker just reported).
  if (!counters_.last_beat_ns.compare_exchange_strong(last, now_ns, std::memory_order_relaxed)) {
    return;
  }
  (*fn_)(make_progress(shards, reps, elapsed));
}

void ProgressReporter::finish() noexcept {
  const double elapsed = elapsed_seconds();
  const std::size_t reps = counters_.replications_done.load(std::memory_order_relaxed);
  const std::size_t fresh = reps - resumed_replications_;
  if (elapsed > 0.0 && fresh > 0) {
    SSVBR_GAUGE_SET("engine.reps_per_sec", static_cast<double>(fresh) / elapsed);
  }
  if (fn_ == nullptr) return;
  EngineProgress p = make_progress(counters_.shards_done.load(std::memory_order_relaxed), reps,
                                   elapsed);
  p.final_update = true;
  (*fn_)(p);
}

}  // namespace ssvbr::engine
