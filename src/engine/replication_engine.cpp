#include "engine/replication_engine.h"

namespace ssvbr::engine {

ReplicationEngine::ReplicationEngine(EngineConfig config)
    : shard_size_(config.shard_size), pool_(config.threads) {
  SSVBR_REQUIRE(config.shard_size >= 1, "shard size must be at least 1");
}

}  // namespace ssvbr::engine
