#include "engine/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/json.h"
#include "common/version.h"

namespace ssvbr::engine::checkpoint {

namespace {

[[noreturn]] void fail(ErrorCode code, std::string what, std::string context) {
  throw RunError(Error{code, std::move(what), std::move(context)});
}

std::string errno_string() { return std::strerror(errno); }

/// Directory part of `path` ("." when the path has no separator).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string completed_bitmap_hex(const Snapshot& snap) {
  // LSB = shard 0; emitted as one hex string.
  std::vector<char> flags = snap.completed_flags();
  const std::size_t nibbles = (snap.shards_total + 3) / 4;
  std::string hex;
  hex.reserve(nibbles + 2);
  static const char* digits = "0123456789abcdef";
  bool started = false;
  for (std::size_t nib = nibbles; nib-- > 0;) {
    unsigned v = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      const std::size_t i = nib * 4 + b;
      if (i < flags.size() && flags[i]) v |= 1u << b;
    }
    if (!started && v == 0 && nib != 0) continue;
    started = true;
    hex.push_back(digits[v]);
  }
  if (hex.empty()) hex = "0";
  return "0x" + hex;
}

std::string serialize(const Snapshot& snap) {
  std::string out;
  out.reserve(256 + snap.shards.size() * 96);
  out += "{\"magic\":";
  out += json::quote(kMagic);
  out += ",\"version\":" + std::to_string(kVersion);

  const Fingerprint& fp = snap.fingerprint;
  out += ",\"fingerprint\":{\"estimator\":";
  out += json::quote(fp.estimator);
  out += ",\"accumulator\":";
  out += json::quote(fp.accumulator);
  out += ",\"config_hash\":" + json::quote(json::hex_u64(fp.config_hash));
  out += ",\"replications\":" + std::to_string(fp.replications);
  out += ",\"shard_size\":" + std::to_string(fp.shard_size);
  out += ",\"rng\":[";
  for (std::size_t i = 0; i < 4; ++i) {
    if (i) out += ',';
    out += json::quote(json::hex_u64(fp.rng.words[i]));
  }
  out += "],\"rng_cached_normal\":";
  out += fp.rng.has_cached_normal ? json::quote(json::hex_u64(fp.rng.cached_normal_bits))
                                  : std::string("null");
  out += '}';

  const BuildInfo& build = build_info();
  out += ",\"build\":{\"sha\":";
  out += json::quote(build.git_sha);
  out += ",\"version\":";
  out += json::quote(build.version);
  out += ",\"type\":";
  out += json::quote(build.build_type);
  out += '}';

  out += ",\"progress\":{\"shards_total\":" + std::to_string(snap.shards_total);
  out += ",\"shards_done\":" + std::to_string(snap.shards.size());
  out += ",\"replications_done\":" + std::to_string(snap.replications_done);
  out += ",\"completed\":" + json::quote(completed_bitmap_hex(snap));
  out += '}';

  out += ",\"shards\":[";
  for (std::size_t s = 0; s < snap.shards.size(); ++s) {
    if (s) out += ',';
    out += "{\"i\":" + std::to_string(snap.shards[s].index) + ",\"w\":[";
    for (std::size_t w = 0; w < snap.shards[s].words.size(); ++w) {
      if (w) out += ',';
      out += json::quote(json::hex_u64(snap.shards[s].words[w]));
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

Snapshot deserialize(const std::string& text, const std::string& path) {
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception& e) {
    fail(ErrorCode::kCheckpointCorrupt, std::string("snapshot is not valid JSON: ") + e.what(),
         path);
  }
  try {
    if (!doc.is_object() || doc.get("magic").as_string() != kMagic) {
      fail(ErrorCode::kCheckpointCorrupt, "snapshot magic mismatch", path);
    }
    if (doc.get("version").as_uint() != static_cast<std::uint64_t>(kVersion)) {
      fail(ErrorCode::kCheckpointCorrupt,
           "unsupported snapshot version " + std::to_string(doc.get("version").as_uint()),
           path);
    }
    Snapshot snap;
    const json::Value& fp = doc.get("fingerprint");
    snap.fingerprint.estimator = fp.get("estimator").as_string();
    snap.fingerprint.accumulator = fp.get("accumulator").as_string();
    snap.fingerprint.config_hash = json::parse_hex_u64(fp.get("config_hash").as_string());
    snap.fingerprint.replications = fp.get("replications").as_uint();
    snap.fingerprint.shard_size = fp.get("shard_size").as_uint();
    const auto& rng_words = fp.get("rng").as_array();
    if (rng_words.size() != 4) {
      fail(ErrorCode::kCheckpointCorrupt, "rng state must have 4 words", path);
    }
    for (std::size_t i = 0; i < 4; ++i) {
      snap.fingerprint.rng.words[i] = json::parse_hex_u64(rng_words[i].as_string());
    }
    const json::Value& cached = fp.get("rng_cached_normal");
    if (!cached.is_null()) {
      snap.fingerprint.rng.has_cached_normal = true;
      snap.fingerprint.rng.cached_normal_bits = json::parse_hex_u64(cached.as_string());
    }

    const json::Value& progress = doc.get("progress");
    snap.shards_total = progress.get("shards_total").as_uint();
    snap.replications_done = progress.get("replications_done").as_uint();
    const std::size_t declared_done = progress.get("shards_done").as_uint();

    std::vector<char> seen(snap.shards_total, 0);
    std::size_t expected_words = 0;
    for (const json::Value& rec : doc.get("shards").as_array()) {
      ShardRecord shard;
      shard.index = rec.get("i").as_uint();
      if (shard.index >= snap.shards_total) {
        fail(ErrorCode::kCheckpointCorrupt,
             "shard index " + std::to_string(shard.index) + " out of range", path);
      }
      if (seen[shard.index]) {
        fail(ErrorCode::kCheckpointCorrupt,
             "duplicate shard index " + std::to_string(shard.index), path);
      }
      seen[shard.index] = 1;
      for (const json::Value& w : rec.get("w").as_array()) {
        shard.words.push_back(json::parse_hex_u64(w.as_string()));
      }
      if (shard.words.empty()) {
        fail(ErrorCode::kCheckpointCorrupt, "shard record with no words", path);
      }
      if (expected_words == 0) expected_words = shard.words.size();
      if (shard.words.size() != expected_words) {
        fail(ErrorCode::kCheckpointCorrupt, "inconsistent shard word counts", path);
      }
      snap.shards.push_back(std::move(shard));
    }
    if (snap.shards.size() != declared_done) {
      fail(ErrorCode::kCheckpointCorrupt, "shards_done disagrees with shard records",
           path);
    }
    // Records must already be ascending (the writer emits them that
    // way); enforce so the restore path can rely on it.
    for (std::size_t s = 1; s < snap.shards.size(); ++s) {
      if (snap.shards[s].index <= snap.shards[s - 1].index) {
        fail(ErrorCode::kCheckpointCorrupt, "shard records out of order", path);
      }
    }
    // The "completed" bitmap is redundant with the shard records, which
    // makes it a cheap integrity check: a snapshot whose bitmap and
    // records disagree was hand-edited or corrupted in place.
    if (progress.get("completed").as_string() != completed_bitmap_hex(snap)) {
      fail(ErrorCode::kCheckpointCorrupt,
           "completed bitmap disagrees with shard records", path);
    }
    return snap;
  } catch (const RunError&) {
    throw;
  } catch (const std::exception& e) {
    fail(ErrorCode::kCheckpointCorrupt, std::string("snapshot schema violation: ") + e.what(),
         path);
  }
}

}  // namespace

std::vector<char> Snapshot::completed_flags() const {
  std::vector<char> flags(shards_total, 0);
  for (const ShardRecord& s : shards) {
    if (s.index < flags.size()) flags[s.index] = 1;
  }
  return flags;
}

ConfigHasher& ConfigHasher::u64(std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xFF;
    h_ *= 0x100000001B3ULL;
  }
  return *this;
}

ConfigHasher& ConfigHasher::f64(double v) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return u64(bits);
}

ConfigHasher& ConfigHasher::str(const std::string& s) noexcept {
  for (const char c : s) {
    h_ ^= static_cast<unsigned char>(c);
    h_ *= 0x100000001B3ULL;
  }
  return u64(s.size());
}

void save(const std::string& path, const Snapshot& snap) {
  const std::string payload = serialize(snap);
  const std::string tmp = path + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    fail(ErrorCode::kUnwritableCheckpoint,
         "cannot create checkpoint temp file: " + errno_string(), tmp);
  }
  std::size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + off, payload.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = errno_string();
      ::close(fd);
      ::unlink(tmp.c_str());
      fail(ErrorCode::kIoError, "checkpoint write failed: " + why, tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string why = errno_string();
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(ErrorCode::kIoError, "checkpoint fsync failed: " + why, tmp);
  }
  ::close(fd);

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_string();
    ::unlink(tmp.c_str());
    fail(ErrorCode::kIoError, "checkpoint rename failed: " + why, path);
  }
  // Persist the rename itself; without this a power cut can leave the
  // directory entry pointing at the old inode. Best-effort: some
  // filesystems refuse to fsync directories.
  const int dirfd = ::open(parent_dir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    ::close(dirfd);
  }
}

Snapshot load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fail(ErrorCode::kIoError, "cannot open checkpoint: " + errno_string(), path);
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    fail(ErrorCode::kIoError, "checkpoint read failed", path);
  }
  return deserialize(text, path);
}

bool exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

void require_writable(const std::string& path) {
  if (path.empty()) {
    fail(ErrorCode::kUnwritableCheckpoint, "checkpoint path is empty", path);
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) {
    if (!S_ISREG(st.st_mode)) {
      fail(ErrorCode::kUnwritableCheckpoint, "checkpoint path is not a regular file",
           path);
    }
    if (::access(path.c_str(), W_OK) != 0) {
      fail(ErrorCode::kUnwritableCheckpoint,
           "checkpoint file is not writable: " + errno_string(), path);
    }
    return;
  }
  const std::string dir = parent_dir(path);
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    fail(ErrorCode::kUnwritableCheckpoint,
         "checkpoint directory does not exist: " + dir, path);
  }
  if (::access(dir.c_str(), W_OK) != 0) {
    fail(ErrorCode::kUnwritableCheckpoint,
         "checkpoint directory is not writable: " + errno_string(), path);
  }
}

}  // namespace ssvbr::engine::checkpoint
