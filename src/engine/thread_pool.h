// ssvbr/engine/thread_pool.h
//
// A minimal fixed-size thread pool for the replication engine. The pool
// deliberately has no task queue and no work stealing: its one
// operation, parallel(), runs the same callable once per worker and
// blocks until every worker has returned. All scheduling policy
// (sharding, load balance) lives in the caller — the engine hands out
// fixed-size shards through an atomic counter, which keeps the
// floating-point reduction order a function of the workload alone, not
// of the thread count or of scheduling races.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ssvbr::engine {

/// Fixed pool of worker threads, created once and reused across runs.
/// Not itself thread-safe: parallel() must be called from one thread at
/// a time (the engine serializes all access).
class ThreadPool {
 public:
  /// `threads` = 0 selects std::thread::hardware_concurrency() (at
  /// least 1). The workers start idle.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(0), fn(1), ..., fn(size()-1) concurrently, one call per
  /// worker, and block until all calls return. If any call throws, the
  /// first exception (in completion order) is rethrown here after every
  /// worker has finished.
  void parallel(const std::function<void(unsigned)>& fn);

 private:
  void worker_loop(unsigned id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace ssvbr::engine
