// ssvbr/engine/run.h
//
// The unified run-control front door for every replication study in the
// library: crude Monte-Carlo overflow (eq. 16-17), the Section 4
// importance-sampling estimator (single- and multi-source), and the
// Fig. 14 twist sweep, all behind one RunRequest / RunResult pair.
//
//   engine::RunRequest req;
//   req.kind = engine::EstimatorKind::kOverflowIs;
//   req.is.model = &model;
//   req.is.background = &background;
//   req.is.settings = settings;
//   req.seed = 42;
//   req.checkpoint.path = "campaign.ckpt";
//   req.checkpoint.resume = true;
//   engine::RunResult res = engine::run(req);
//
// What the façade adds over the per-estimator entry points it replaced
// (the removed engine/parallel_estimators.h free functions):
//
//  * Durable checkpointing — shard-level snapshots (see
//    engine/checkpoint.h) written crash-safely on a configurable shard
//    cadence and at every drain. A campaign interrupted by SIGINT, a
//    crash, or a budget and later resumed produces estimates
//    bit-identical to an uninterrupted run: restored shards are merged,
//    never recomputed, and the merge order is a function of the shard
//    plan alone.
//  * Cooperative cancellation — caller stop flags and an optional
//    process-wide SIGINT latch, honoured at shard boundaries; plus
//    wall-clock deadlines and per-call replication budgets.
//  * Structured validation — ssvbr::Error{code, what, context} for
//    every rejectable input (zero replications, unwritable checkpoint
//    path, fingerprint mismatch on resume, empty twist grid, ...),
//    thrown as ssvbr::RunError from run(); validate() returns the first
//    problem without throwing.
//  * Fault injection for recovery testing — SSVBR_FAULT_AFTER_SHARDS=N
//    hard-kills the process (exit code kFaultExitCode) after N shards,
//    and RunControls::fault_hook lets tests throw in-process.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/unified_model.h"
#include "engine/replication_engine.h"
#include "fractal/hosking.h"
#include "is/is_estimator.h"
#include "is/twist_search.h"
#include "queueing/arrival.h"
#include "queueing/overflow_mc.h"

namespace ssvbr::engine {

/// Factory producing one independent ArrivalProcess per worker thread
/// (arrival processes carry replication state and are not shareable
/// across threads). Must be callable concurrently.
using ArrivalFactory = std::function<std::unique_ptr<queueing::ArrivalProcess>()>;

/// Which replication study a RunRequest describes.
enum class EstimatorKind {
  kOverflowMc,            ///< crude Monte-Carlo overflow (queueing::)
  kOverflowIs,            ///< single-source importance sampling (is::)
  kOverflowIsSuperposed,  ///< multi-source importance sampling
  kTwistSweep,            ///< Fig. 14 scan over a twist grid
};

/// Identifier string for an EstimatorKind ("overflow_mc", ...). Also
/// the "estimator" field of checkpoint fingerprints.
const char* to_string(EstimatorKind kind) noexcept;

/// Inputs of a crude Monte-Carlo overflow study.
struct McStudy {
  ArrivalFactory make_arrivals;  ///< one arrival process per worker
  double service_rate = 1.0;
  double buffer = 0.0;
  std::size_t stop_time = 1;  ///< k
  std::size_t replications = 0;
  queueing::OverflowEvent event = queueing::OverflowEvent::kFirstPassage;
  double initial_occupancy = 0.0;
};

/// Inputs of an importance-sampling study or twist sweep. `settings`
/// carries the twist, queue, and replication parameters; `twists` is
/// only read for kTwistSweep (where settings.twisted_mean is ignored).
struct IsStudy {
  const core::UnifiedVbrModel* model = nullptr;
  const fractal::HoskingModel* background = nullptr;
  std::size_t n_sources = 1;
  is::IsOverflowSettings settings;
  std::vector<double> twists;
};

/// Durability policy: where and how often to snapshot, and whether to
/// pick up an existing snapshot.
struct CheckpointPolicy {
  /// Snapshot file; empty disables checkpointing entirely.
  std::string path;
  /// Snapshot every N completed shards (in addition to the final
  /// snapshot at every drain). 0 = drain-only.
  std::size_t every_shards = 64;
  /// Load `path` if it exists and continue from it. The snapshot's
  /// fingerprint (estimator, config hash, RNG state, shard plan) must
  /// match the request or run() throws RunError{kFingerprintMismatch}.
  /// A missing file is not an error — the campaign simply starts fresh.
  bool resume = false;
};

/// Cooperative run controls (all optional).
struct RunControls {
  /// Caller-owned stop flag, polled at shard boundaries.
  const std::atomic<bool>* stop = nullptr;
  /// Honour the process-wide SIGINT latch (install_sigint_cancellation)
  /// as a second stop flag: Ctrl-C drains workers at shard boundaries,
  /// writes a final checkpoint, and returns RunStatus::kCancelled.
  bool cancel_on_sigint = false;
  /// Abort after this many wall-clock seconds; 0 disables.
  double deadline_seconds = 0.0;
  /// Run at most this many replications in this call; 0 disables.
  /// Combined with checkpoint.resume this advances a campaign in
  /// bounded slices across process lifetimes.
  std::size_t max_replications = 0;
  /// In-process fault injector for recovery tests: called after each
  /// shard this call completes; may throw.
  std::function<void(std::size_t shards_completed_this_call)> fault_hook;
};

/// A unified replication-study request.
struct RunRequest {
  EstimatorKind kind = EstimatorKind::kOverflowIs;
  McStudy mc;  ///< read when kind == kOverflowMc
  IsStudy is;  ///< read for the IS kinds and the sweep
  /// Seed of the campaign's base RandomEngine. Identical (seed, shard
  /// plan, estimator config) => bit-identical results at any thread
  /// count, with or without interruption.
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;
  /// Engine tuning. threads == 0 selects hardware concurrency; the
  /// shard size is part of the checkpoint fingerprint (it shapes the
  /// merge structure).
  EngineConfig engine;
  CheckpointPolicy checkpoint;
  RunControls controls;
};

/// Resume provenance of a finished (or drained) run.
struct RunProvenance {
  bool resumed = false;             ///< a snapshot was loaded
  std::size_t resumed_shards = 0;   ///< shards restored, not recomputed
  std::size_t shards_total = 0;
  std::size_t checkpoints_written = 0;
  std::string checkpoint_path;      ///< empty when checkpointing is off
};

/// Outcome of run(). Exactly one estimate field is meaningful,
/// selected by the request's kind; the rest stay default-constructed.
struct RunResult {
  RunStatus status = RunStatus::kComplete;
  queueing::OverflowEstimate mc;            ///< kOverflowMc
  is::IsOverflowEstimate is_estimate;       ///< kOverflowIs / kOverflowIsSuperposed
  std::vector<is::TwistSweepPoint> sweep;   ///< kTwistSweep (completed points)
  double elapsed_seconds = 0.0;
  std::size_t replications_done = 0;   ///< completed, incl. restored shards
  std::size_t replications_total = 0;  ///< the campaign's full size
  RunProvenance provenance;
  /// Shard-level execution telemetry (obs/telemetry.h): per-shard
  /// thread/wait/setup/loop split, merge and checkpoint costs. For a
  /// twist sweep on the controlled path this is the accumulation over
  /// the per-point campaigns. Empty (enabled == false) when the library
  /// was built without -DSSVBR_OBS=ON.
  obs::RunTelemetry telemetry;

  bool complete() const noexcept { return status == RunStatus::kComplete; }
};

/// Check `request` without running it; returns the first problem found
/// (std::nullopt when the request is runnable). run() performs the same
/// checks and throws RunError. Checkpoint-path writability is probed
/// here so a misconfigured path fails in milliseconds, not after hours
/// of simulation; fingerprint mismatches can only surface inside run()
/// (they require reading the snapshot).
std::optional<Error> validate(const RunRequest& request);

/// Execute the study described by `request` on an internally
/// constructed engine. Throws ssvbr::RunError for invalid requests and
/// checkpoint failures; propagates worker exceptions (after saving a
/// final snapshot when checkpointing is on).
RunResult run(const RunRequest& request);

/// As run(), but on a caller-owned engine (reused across studies; its
/// thread pool is expensive to spin up) and drawing from `rng` instead
/// of request.seed: the campaign's base state is rng's current state,
/// and on a kComplete MC/IS study rng advances by `replications` jumps
/// (one long jump per grid point for sweeps) — the same stream contract
/// as the serial estimators. request.engine is ignored except for
/// validation. An incomplete (cancelled/deadline/budget) study leaves
/// `rng` untouched.
RunResult run_with(const RunRequest& request, ReplicationEngine& engine,
                   RandomEngine& rng);

/// Exit code used by the SSVBR_FAULT_AFTER_SHARDS hard-kill injector,
/// chosen so test harnesses can tell an injected crash from a real one.
inline constexpr int kFaultExitCode = 42;

/// Install (idempotently) a SIGINT handler that latches the process-wide
/// stop flag read by RunControls::cancel_on_sigint. The previous
/// handler is replaced; the latch stays set until reset_sigint_flag().
void install_sigint_cancellation();

/// The process-wide SIGINT latch (set by the handler above). Exposed so
/// callers can poll it between runs or combine it with their own flags.
const std::atomic<bool>& sigint_flag() noexcept;

/// Clear the SIGINT latch (e.g. before starting the next campaign).
void reset_sigint_flag() noexcept;

}  // namespace ssvbr::engine
