#include "engine/run.h"

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <utility>

#include "engine/checkpoint.h"
#include "engine/study_harness.h"
#include "obs/instrument.h"
#include "obs/metrics.h"
#include "queueing/lindley.h"

namespace ssvbr::engine {

namespace {

// Process-wide SIGINT latch. The handler only performs a lock-free
// atomic store, which is async-signal-safe; workers poll the flag at
// shard boundaries.
std::atomic<bool> g_sigint{false};
static_assert(std::atomic<bool>::is_always_lock_free);

extern "C" void ssvbr_sigint_handler(int) {
  g_sigint.store(true, std::memory_order_relaxed);
}

std::optional<Error> validate_is_study(const IsStudy& is) {
  if (is.model == nullptr) {
    return Error{ErrorCode::kInvalidArgument, "need a VBR source model",
                 "RunRequest.is.model"};
  }
  if (is.background == nullptr) {
    return Error{ErrorCode::kInvalidArgument, "need a background Hosking model",
                 "RunRequest.is.background"};
  }
  if (is.n_sources < 1) {
    return Error{ErrorCode::kInvalidArgument, "need at least one source",
                 "RunRequest.is.n_sources"};
  }
  if (is.settings.replications < 1) {
    return Error{ErrorCode::kInvalidArgument, "need at least one replication",
                 "RunRequest.is.settings.replications"};
  }
  if (is.settings.stop_time < 1) {
    return Error{ErrorCode::kInvalidArgument, "stop time must be at least one slot",
                 "RunRequest.is.settings.stop_time"};
  }
  if (is.settings.stop_time > is.background->horizon()) {
    return Error{ErrorCode::kInvalidArgument,
                 "background coefficient table shorter than the stop time",
                 "RunRequest.is.settings.stop_time"};
  }
  if (!(is.settings.buffer >= 0.0)) {
    return Error{ErrorCode::kInvalidArgument, "buffer must be non-negative",
                 "RunRequest.is.settings.buffer"};
  }
  return std::nullopt;
}

/// Everything that shapes the campaign's numbers goes into the config
/// hash; together with the base RNG state and the shard plan it pins
/// the snapshot to exactly one campaign. The arrival-process factory
/// (MC) and the model objects (IS) cannot be hashed structurally, so
/// their cheaply observable parameters stand in for them — the hash is
/// a mistake detector, not a cryptographic identity.
std::uint64_t config_hash_of(const RunRequest& request) {
  checkpoint::ConfigHasher h;
  h.str(to_string(request.kind));
  if (request.kind == EstimatorKind::kOverflowMc) {
    const McStudy& mc = request.mc;
    h.f64(mc.service_rate)
        .f64(mc.buffer)
        .u64(mc.stop_time)
        .u64(mc.replications)
        .u64(static_cast<std::uint64_t>(mc.event))
        .f64(mc.initial_occupancy);
  } else {
    const IsStudy& is = request.is;
    h.u64(is.n_sources)
        .f64(is.settings.twisted_mean)
        .f64(is.settings.service_rate)
        .f64(is.settings.buffer)
        .u64(is.settings.stop_time)
        .u64(is.settings.replications)
        .u64(static_cast<std::uint64_t>(is.settings.event))
        .f64(is.settings.initial_occupancy)
        .u64(is.background->horizon())
        .f64(is.model->mean())
        .f64(is.model->variance());
  }
  return h.digest();
}

RunResult run_mc(const RunRequest& request, ReplicationEngine& engine,
                 RandomEngine& rng) {
  const McStudy& mc = request.mc;
  StudyHarness<HitAccumulator> harness(request.checkpoint, request.controls,
                                       to_string(request.kind),
                                       config_hash_of(request), engine, rng,
                                       mc.replications);
  const DurableResult<HitAccumulator> res = engine.run_durable<HitAccumulator>(
      mc.replications, rng,
      [&] {
        return [arrivals = mc.make_arrivals(),
                queue = queueing::LindleyQueue(mc.service_rate, mc.initial_occupancy),
                &mc](std::size_t, RandomEngine& stream, HitAccumulator& acc) mutable {
          acc.add(queueing::run_overflow_replication(*arrivals, queue, mc.service_rate,
                                                     mc.buffer, mc.stop_time, stream,
                                                     mc.event, mc.initial_occupancy));
        };
      },
      harness.controls(), harness.hooks());

  RunResult out;
  out.status = res.status;
  out.replications_done = res.replications_done;
  out.replications_total = mc.replications;
  out.telemetry = engine.last_telemetry();
  harness.fill_provenance(out.provenance, res);
  if (res.replications_done > 0) {
    // For a drained (partial) run this estimates from the completed
    // shards only; replications_done says how many that is.
    out.mc = queueing::make_overflow_estimate(res.total.hits(), res.replications_done);
  }
  return out;
}

RunResult run_is(const RunRequest& request, ReplicationEngine& engine,
                 RandomEngine& rng) {
  const IsStudy& is = request.is;
  StudyHarness<ScoreAccumulator> harness(request.checkpoint, request.controls,
                                         to_string(request.kind),
                                         config_hash_of(request), engine, rng,
                                         is.settings.replications);
  const DurableResult<ScoreAccumulator> res = engine.run_durable<ScoreAccumulator>(
      is.settings.replications, rng,
      [&] {
        return [kernel = is::IsReplicationKernel(*is.model, *is.background,
                                                 is.n_sources, is.settings)](
                   std::size_t, RandomEngine& stream, ScoreAccumulator& acc) mutable {
          const is::IsReplicationKernel::Outcome out = kernel.run_one(stream);
          acc.add(out.score, out.hit);
        };
      },
      harness.controls(), harness.hooks());

  RunResult out;
  out.status = res.status;
  out.replications_done = res.replications_done;
  out.replications_total = is.settings.replications;
  out.telemetry = engine.last_telemetry();
  harness.fill_provenance(out.provenance, res);
  if (res.replications_done > 0) {
    out.is_estimate =
        is::make_is_overflow_estimate(res.total.mean(), res.total.sample_variance(),
                                      res.total.hits(), res.replications_done);
  }
  return out;
}

bool sweep_needs_durable_path(const RunRequest& request) {
  const RunControls& c = request.controls;
  return c.stop != nullptr || c.cancel_on_sigint || c.deadline_seconds > 0.0 ||
         c.max_replications > 0 || static_cast<bool>(c.fault_hook) ||
         fault_after_shards_from_env().has_value();
}

/// Twist sweep. Two execution paths with bit-identical per-point
/// numbers:
///
///  * no run controls: one run_many() call — a single flat shard pool
///    parallelises across grid points AND replications (best for wide
///    grids on many cores);
///  * any control armed: one run_durable() per grid point, in grid
///    order, so cancellation/deadline/budget resolve at point
///    granularity and the result holds exactly the completed points.
///
/// Both paths give point j the caller's engine long-jumped j times as
/// its base and merge its shards in index order, so a point's estimate
/// does not depend on which path (or thread count) produced it.
RunResult run_sweep(const RunRequest& request, ReplicationEngine& engine,
                    RandomEngine& rng) {
  const IsStudy& is = request.is;
  RunResult out;
  out.replications_total = is.twists.size() * is.settings.replications;

  if (!sweep_needs_durable_path(request)) {
    is::IsOverflowSettings settings = is.settings;
    const std::vector<ScoreAccumulator> per_point =
        engine.run_many<ScoreAccumulator>(
            is.twists.size(), settings.replications, rng, [&] {
              struct Worker {
                const core::UnifiedVbrModel* model;
                const fractal::HoskingModel* background;
                std::size_t n_sources;
                is::IsOverflowSettings settings;
                const std::vector<double>* twists;
                std::optional<is::IsReplicationKernel> kernel;
                std::size_t kernel_task = SIZE_MAX;

                void operator()(std::size_t task, std::size_t, RandomEngine& stream,
                                ScoreAccumulator& acc) {
                  if (task != kernel_task) {
                    settings.twisted_mean = (*twists)[task];
                    kernel.emplace(*model, *background, n_sources, settings);
                    kernel_task = task;
                  }
                  const is::IsReplicationKernel::Outcome out = kernel->run_one(stream);
                  acc.add(out.score, out.hit);
                }
              };
              return Worker{is.model, is.background, is.n_sources,
                            settings,  &is.twists,   std::nullopt,
                            SIZE_MAX};
            });
    out.sweep.reserve(is.twists.size());
    for (std::size_t j = 0; j < is.twists.size(); ++j) {
      is::TwistSweepPoint point;
      point.twisted_mean = is.twists[j];
      point.estimate = is::make_is_overflow_estimate(
          per_point[j].mean(), per_point[j].sample_variance(), per_point[j].hits(),
          per_point[j].count());
      SSVBR_HIST_RECORD("is.sweep.ess", point.estimate.effective_sample_size);
      SSVBR_COUNTER_ADD("is.sweep.points", 1);
      out.sweep.push_back(point);
      out.replications_done += per_point[j].count();
    }
    out.status = RunStatus::kComplete;
    out.telemetry = engine.last_telemetry();
    return out;
  }

  // Controlled path: grid points in order, each on its own 2^192-spaced
  // stream, with the remaining deadline/budget threaded through.
  const auto start = std::chrono::steady_clock::now();
  RandomEngine cursor = rng;
  out.status = RunStatus::kComplete;
  for (std::size_t j = 0; j < is.twists.size(); ++j) {
    RunRequest point = request;
    point.kind = EstimatorKind::kOverflowIs;
    point.is.settings.twisted_mean = is.twists[j];
    point.is.twists.clear();
    if (point.controls.deadline_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      const double left = request.controls.deadline_seconds - elapsed;
      if (left <= 0.0) {
        out.status = RunStatus::kDeadlineExpired;
        break;
      }
      point.controls.deadline_seconds = left;
    }
    if (point.controls.max_replications > 0) {
      const std::size_t left = request.controls.max_replications - out.replications_done;
      if (left == 0) {
        out.status = RunStatus::kBudgetExhausted;
        break;
      }
      point.controls.max_replications = left;
    }
    RandomEngine point_rng = cursor;
    const RunResult point_result = run_is(point, engine, point_rng);
    out.telemetry.accumulate(point_result.telemetry);
    if (!point_result.complete()) {
      // A drained point's estimate covers a subset of its replications;
      // the sweep reports whole points only, so it is dropped.
      out.status = point_result.status;
      break;
    }
    is::TwistSweepPoint sweep_point;
    sweep_point.twisted_mean = is.twists[j];
    sweep_point.estimate = point_result.is_estimate;
    SSVBR_HIST_RECORD("is.sweep.ess", sweep_point.estimate.effective_sample_size);
    SSVBR_COUNTER_ADD("is.sweep.points", 1);
    out.sweep.push_back(sweep_point);
    out.replications_done += point_result.replications_done;
    cursor.jump_long();
  }
  if (out.complete()) rng = cursor;  // advanced by twists.size() long jumps
  return out;
}

}  // namespace

const char* to_string(EstimatorKind kind) noexcept {
  switch (kind) {
    case EstimatorKind::kOverflowMc: return "overflow_mc";
    case EstimatorKind::kOverflowIs: return "overflow_is";
    case EstimatorKind::kOverflowIsSuperposed: return "overflow_is_superposed";
    case EstimatorKind::kTwistSweep: return "twist_sweep";
  }
  return "unknown";
}

std::optional<Error> validate(const RunRequest& request) {
  if (request.engine.shard_size < 1) {
    return Error{ErrorCode::kInvalidArgument, "shard size must be at least 1",
                 "RunRequest.engine.shard_size"};
  }
  if (!(request.engine.progress_interval_seconds >= 0.0)) {
    return Error{ErrorCode::kInvalidArgument,
                 "progress interval must be non-negative",
                 "RunRequest.engine.progress_interval_seconds"};
  }
  if (!(request.controls.deadline_seconds >= 0.0)) {
    return Error{ErrorCode::kInvalidArgument, "deadline must be non-negative",
                 "RunRequest.controls.deadline_seconds"};
  }

  switch (request.kind) {
    case EstimatorKind::kOverflowMc: {
      const McStudy& mc = request.mc;
      if (!mc.make_arrivals) {
        return Error{ErrorCode::kInvalidArgument, "need an arrival-process factory",
                     "RunRequest.mc.make_arrivals"};
      }
      if (mc.replications < 1) {
        return Error{ErrorCode::kInvalidArgument, "need at least one replication",
                     "RunRequest.mc.replications"};
      }
      if (mc.stop_time < 1) {
        return Error{ErrorCode::kInvalidArgument,
                     "stopping time must be at least one slot",
                     "RunRequest.mc.stop_time"};
      }
      if (!(mc.buffer >= 0.0)) {
        return Error{ErrorCode::kInvalidArgument, "buffer must be non-negative",
                     "RunRequest.mc.buffer"};
      }
      break;
    }
    case EstimatorKind::kOverflowIs:
    case EstimatorKind::kOverflowIsSuperposed: {
      if (auto err = validate_is_study(request.is)) return err;
      break;
    }
    case EstimatorKind::kTwistSweep: {
      if (request.is.twists.empty()) {
        return Error{ErrorCode::kEmptyTwistGrid, "twist grid must be non-empty",
                     "RunRequest.is.twists"};
      }
      if (auto err = validate_is_study(request.is)) return err;
      if (!request.checkpoint.path.empty()) {
        // A sweep's unit of durability would be the grid point, not the
        // shard; that format does not exist yet, so reject loudly
        // instead of silently not checkpointing.
        return Error{ErrorCode::kUnsupported,
                     "checkpointing is not supported for twist sweeps "
                     "(run grid points as separate kOverflowIs campaigns)",
                     "RunRequest.checkpoint.path"};
      }
      break;
    }
  }

  if (!request.checkpoint.path.empty()) {
    try {
      checkpoint::require_writable(request.checkpoint.path);
    } catch (const RunError& e) {
      return e.error();
    }
  }
  return std::nullopt;
}

RunResult run_with(const RunRequest& request, ReplicationEngine& engine,
                   RandomEngine& rng) {
  if (auto err = validate(request)) throw RunError(std::move(*err));
  // Honor SSVBR_METRICS_JSON / SSVBR_TRACE_JSON / SSVBR_OBS_SUMMARY even
  // when the caller is a bare library user with no bench-style main.
  obs::install_env_exit_dump();
  SSVBR_SPAN("engine.run_request");
  engine.set_study_label(to_string(request.kind));
  const auto start = std::chrono::steady_clock::now();
  RunResult out;
  switch (request.kind) {
    case EstimatorKind::kOverflowMc:
      out = run_mc(request, engine, rng);
      break;
    case EstimatorKind::kOverflowIs:
    case EstimatorKind::kOverflowIsSuperposed:
      out = run_is(request, engine, rng);
      break;
    case EstimatorKind::kTwistSweep:
      out = run_sweep(request, engine, rng);
      break;
  }
  out.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

RunResult run(const RunRequest& request) {
  if (auto err = validate(request)) throw RunError(std::move(*err));
  ReplicationEngine engine(request.engine);
  RandomEngine rng(request.seed);
  return run_with(request, engine, rng);
}

void install_sigint_cancellation() { std::signal(SIGINT, ssvbr_sigint_handler); }

const std::atomic<bool>& sigint_flag() noexcept { return g_sigint; }

void reset_sigint_flag() noexcept { g_sigint.store(false, std::memory_order_relaxed); }

}  // namespace ssvbr::engine
