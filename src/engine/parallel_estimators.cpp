#include "engine/parallel_estimators.h"

#include <cstdint>
#include <optional>
#include <utility>

#include "common/error.h"
#include "obs/instrument.h"
#include "queueing/lindley.h"

namespace ssvbr::engine {

queueing::OverflowEstimate estimate_overflow_mc_par(
    const ArrivalFactory& make_arrivals, double service_rate, double buffer,
    std::size_t k, std::size_t replications, RandomEngine& rng,
    ReplicationEngine& engine, queueing::OverflowEvent event,
    double initial_occupancy) {
  SSVBR_REQUIRE(static_cast<bool>(make_arrivals), "need an arrival-process factory");
  SSVBR_REQUIRE(replications >= 1, "need at least one replication");
  SSVBR_REQUIRE(k >= 1, "stopping time must be at least one slot");
  SSVBR_REQUIRE(buffer >= 0.0, "buffer must be non-negative");

  const HitAccumulator total = engine.run<HitAccumulator>(
      replications, rng, [&] {
        return [arrivals = make_arrivals(),
                queue = queueing::LindleyQueue(service_rate, initial_occupancy),
                service_rate, buffer, k, event, initial_occupancy](
                   std::size_t, RandomEngine& stream, HitAccumulator& acc) mutable {
          acc.add(queueing::run_overflow_replication(*arrivals, queue, service_rate,
                                                     buffer, k, stream, event,
                                                     initial_occupancy));
        };
      });
  return queueing::make_overflow_estimate(total.hits(), total.count());
}

is::IsOverflowEstimate estimate_overflow_is_superposed_par(
    const core::UnifiedVbrModel& model, const fractal::HoskingModel& background,
    std::size_t n_sources, const is::IsOverflowSettings& settings, RandomEngine& rng,
    ReplicationEngine& engine) {
  SSVBR_REQUIRE(n_sources >= 1, "need at least one source");
  SSVBR_REQUIRE(settings.replications >= 1, "need at least one replication");
  SSVBR_REQUIRE(settings.stop_time >= 1, "stop time must be at least one slot");
  SSVBR_REQUIRE(settings.stop_time <= background.horizon(),
                "background coefficient table shorter than the stop time");
  SSVBR_REQUIRE(settings.buffer >= 0.0, "buffer must be non-negative");

  const ScoreAccumulator total = engine.run<ScoreAccumulator>(
      settings.replications, rng, [&] {
        return [kernel = is::IsReplicationKernel(model, background, n_sources, settings)](
                   std::size_t, RandomEngine& stream, ScoreAccumulator& acc) mutable {
          const is::IsReplicationKernel::Outcome out = kernel.run_one(stream);
          acc.add(out.score, out.hit);
        };
      });
  return is::make_is_overflow_estimate(total.mean(), total.sample_variance(),
                                       total.hits(), total.count());
}

is::IsOverflowEstimate estimate_overflow_is_par(const core::UnifiedVbrModel& model,
                                                const fractal::HoskingModel& background,
                                                const is::IsOverflowSettings& settings,
                                                RandomEngine& rng,
                                                ReplicationEngine& engine) {
  return estimate_overflow_is_superposed_par(model, background, 1, settings, rng, engine);
}

std::vector<is::TwistSweepPoint> sweep_twist_par(const core::UnifiedVbrModel& model,
                                                 const fractal::HoskingModel& background,
                                                 is::IsOverflowSettings settings,
                                                 const std::vector<double>& twists,
                                                 RandomEngine& rng,
                                                 ReplicationEngine& engine) {
  SSVBR_REQUIRE(!twists.empty(), "twist grid must be non-empty");
  SSVBR_REQUIRE(settings.replications >= 1, "need at least one replication");
  SSVBR_REQUIRE(settings.stop_time >= 1, "stop time must be at least one slot");
  SSVBR_REQUIRE(settings.stop_time <= background.horizon(),
                "background coefficient table shorter than the stop time");
  SSVBR_REQUIRE(settings.buffer >= 0.0, "buffer must be non-negative");

  const std::vector<ScoreAccumulator> per_point = engine.run_many<ScoreAccumulator>(
      twists.size(), settings.replications, rng, [&] {
        // Each worker keeps one kernel and rebuilds it when it crosses
        // into a new grid point (the kernel bakes in the twist).
        struct Worker {
          const core::UnifiedVbrModel* model;
          const fractal::HoskingModel* background;
          is::IsOverflowSettings settings;
          const std::vector<double>* twists;
          std::optional<is::IsReplicationKernel> kernel;
          std::size_t kernel_task = SIZE_MAX;

          void operator()(std::size_t task, std::size_t, RandomEngine& stream,
                          ScoreAccumulator& acc) {
            if (task != kernel_task) {
              settings.twisted_mean = (*twists)[task];
              kernel.emplace(*model, *background, 1, settings);
              kernel_task = task;
            }
            const is::IsReplicationKernel::Outcome out = kernel->run_one(stream);
            acc.add(out.score, out.hit);
          }
        };
        return Worker{&model, &background, settings, &twists, std::nullopt, SIZE_MAX};
      });

  std::vector<is::TwistSweepPoint> out;
  out.reserve(twists.size());
  for (std::size_t j = 0; j < twists.size(); ++j) {
    is::TwistSweepPoint point;
    point.twisted_mean = twists[j];
    point.estimate = is::make_is_overflow_estimate(
        per_point[j].mean(), per_point[j].sample_variance(), per_point[j].hits(),
        per_point[j].count());
    // Same per-point diagnostics as the serial sweep_twist().
    SSVBR_HIST_RECORD("is.sweep.ess", point.estimate.effective_sample_size);
    SSVBR_COUNTER_ADD("is.sweep.points", 1);
    out.push_back(point);
  }
  return out;
}

}  // namespace ssvbr::engine
