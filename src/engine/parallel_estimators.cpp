#include "engine/parallel_estimators.h"

#include <utility>

#include "common/error.h"

namespace ssvbr::engine {

// Each wrapper keeps its historical SSVBR_REQUIRE preamble (so callers
// still get InvalidArgument, not the façade's RunError, for the cases
// they have always handled) and then delegates to run_with(), which is
// the single execution path.

queueing::OverflowEstimate estimate_overflow_mc_par(
    const ArrivalFactory& make_arrivals, double service_rate, double buffer,
    std::size_t k, std::size_t replications, RandomEngine& rng,
    ReplicationEngine& engine, queueing::OverflowEvent event,
    double initial_occupancy) {
  SSVBR_REQUIRE(static_cast<bool>(make_arrivals), "need an arrival-process factory");
  SSVBR_REQUIRE(replications >= 1, "need at least one replication");
  SSVBR_REQUIRE(k >= 1, "stopping time must be at least one slot");
  SSVBR_REQUIRE(buffer >= 0.0, "buffer must be non-negative");

  RunRequest request;
  request.kind = EstimatorKind::kOverflowMc;
  request.mc = McStudy{make_arrivals, service_rate,      buffer, k,
                       replications,  event, initial_occupancy};
  return run_with(request, engine, rng).mc;
}

is::IsOverflowEstimate estimate_overflow_is_superposed_par(
    const core::UnifiedVbrModel& model, const fractal::HoskingModel& background,
    std::size_t n_sources, const is::IsOverflowSettings& settings, RandomEngine& rng,
    ReplicationEngine& engine) {
  SSVBR_REQUIRE(n_sources >= 1, "need at least one source");
  SSVBR_REQUIRE(settings.replications >= 1, "need at least one replication");
  SSVBR_REQUIRE(settings.stop_time >= 1, "stop time must be at least one slot");
  SSVBR_REQUIRE(settings.stop_time <= background.horizon(),
                "background coefficient table shorter than the stop time");
  SSVBR_REQUIRE(settings.buffer >= 0.0, "buffer must be non-negative");

  RunRequest request;
  request.kind = EstimatorKind::kOverflowIsSuperposed;
  request.is.model = &model;
  request.is.background = &background;
  request.is.n_sources = n_sources;
  request.is.settings = settings;
  return run_with(request, engine, rng).is_estimate;
}

is::IsOverflowEstimate estimate_overflow_is_par(const core::UnifiedVbrModel& model,
                                                const fractal::HoskingModel& background,
                                                const is::IsOverflowSettings& settings,
                                                RandomEngine& rng,
                                                ReplicationEngine& engine) {
  return estimate_overflow_is_superposed_par(model, background, 1, settings, rng, engine);
}

std::vector<is::TwistSweepPoint> sweep_twist_par(const core::UnifiedVbrModel& model,
                                                 const fractal::HoskingModel& background,
                                                 is::IsOverflowSettings settings,
                                                 const std::vector<double>& twists,
                                                 RandomEngine& rng,
                                                 ReplicationEngine& engine) {
  SSVBR_REQUIRE(!twists.empty(), "twist grid must be non-empty");
  SSVBR_REQUIRE(settings.replications >= 1, "need at least one replication");
  SSVBR_REQUIRE(settings.stop_time >= 1, "stop time must be at least one slot");
  SSVBR_REQUIRE(settings.stop_time <= background.horizon(),
                "background coefficient table shorter than the stop time");
  SSVBR_REQUIRE(settings.buffer >= 0.0, "buffer must be non-negative");

  RunRequest request;
  request.kind = EstimatorKind::kTwistSweep;
  request.is.model = &model;
  request.is.background = &background;
  request.is.settings = settings;
  request.is.twists = twists;
  return std::move(run_with(request, engine, rng).sweep);
}

}  // namespace ssvbr::engine
