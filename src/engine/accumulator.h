// ssvbr/engine/accumulator.h
//
// Mergeable per-shard statistics for the replication engine.
//
// The engine runs replications in fixed-size shards and combines the
// per-shard partial statistics with an exact merge, so a study's result
// is a pure function of (seed, replications, shard size) — never of the
// thread count. Counters merge by integer addition (exact); moments
// merge with the Chan et al. parallel update (deterministic for a fixed
// shard structure), reusing the Welford machinery of
// stats::RunningStats.
#pragma once

#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.h"

namespace ssvbr::engine {

/// What the replication engine requires of a per-shard statistic: a
/// neutral default state and an associative combine with another
/// shard's partial result.
template <class A>
concept MergeableAccumulator =
    std::default_initializable<A> && std::movable<A> &&
    requires(A a, const A& b) {
      { a.merge(b) };
    };

/// Bernoulli outcome counter (crude Monte-Carlo overflow): merging is
/// integer addition, so the merged result is bit-exact regardless of
/// how replications were grouped into shards.
class HitAccumulator {
 public:
  void add(bool hit) noexcept {
    ++count_;
    if (hit) ++hits_;
  }

  void merge(const HitAccumulator& other) noexcept {
    count_ += other.count_;
    hits_ += other.hits_;
  }

  std::size_t count() const noexcept { return count_; }
  std::size_t hits() const noexcept { return hits_; }

  /// Reconstruct from serialized counts (checkpoint restore).
  static HitAccumulator from_parts(std::size_t count, std::size_t hits) noexcept {
    HitAccumulator out;
    out.count_ = count;
    out.hits_ = hits;
    return out;
  }

 private:
  std::size_t count_ = 0;
  std::size_t hits_ = 0;
};

/// Weighted-score statistic for the importance-sampling estimator: the
/// per-replication likelihood-ratio scores go through Welford
/// accumulation within a shard and a Chan merge across shards, plus an
/// exact hit count. For a fixed shard structure the merged mean and
/// variance are bit-identical whatever thread count executed the
/// shards.
class ScoreAccumulator {
 public:
  void add(double score, bool hit) noexcept {
    scores_.add(score);
    if (hit) ++hits_;
  }

  void merge(const ScoreAccumulator& other) noexcept {
    scores_.merge(other.scores_);
    hits_ += other.hits_;
  }

  std::size_t count() const noexcept { return scores_.count(); }
  std::size_t hits() const noexcept { return hits_; }
  double mean() const noexcept { return scores_.mean(); }
  /// Unbiased sample variance of the scores; 0 for n < 2.
  double sample_variance() const noexcept { return scores_.variance(); }

  /// Full moment state of the scores (checkpoint serialization).
  stats::RunningStats::State scores_state() const noexcept { return scores_.state(); }

  /// Reconstruct from serialized state (checkpoint restore).
  static ScoreAccumulator from_parts(stats::RunningStats scores,
                                     std::size_t hits) noexcept {
    ScoreAccumulator out;
    out.scores_ = scores;
    out.hits_ = hits;
    return out;
  }

 private:
  stats::RunningStats scores_;
  std::size_t hits_ = 0;
};

static_assert(MergeableAccumulator<HitAccumulator>);
static_assert(MergeableAccumulator<ScoreAccumulator>);
static_assert(MergeableAccumulator<stats::RunningStats>);

// ---------------------------------------------------------------------------
// Bit-exact word serialization for checkpointing.
//
// The durable run-control layer persists each completed shard's
// accumulator as a flat vector of u64 words (doubles as bit patterns,
// counts verbatim). decode() is the exact inverse of encode(): a
// restored shard merges identically to the shard that was computed,
// which is what makes a resumed campaign bit-identical to an
// uninterrupted one. A stable name + word count per type guards the
// format (a checkpoint written for one accumulator kind cannot be
// misread as another).
// ---------------------------------------------------------------------------

/// Short stable format name ("hit", "score") baked into the snapshot
/// fingerprint.
inline const char* accumulator_name(const HitAccumulator&) noexcept { return "hit"; }
inline const char* accumulator_name(const ScoreAccumulator&) noexcept { return "score"; }

inline std::vector<std::uint64_t> encode_words(const HitAccumulator& acc) {
  return {static_cast<std::uint64_t>(acc.count()), static_cast<std::uint64_t>(acc.hits())};
}

inline void decode_words(const std::vector<std::uint64_t>& words, HitAccumulator& out) {
  if (words.size() != 2) throw std::runtime_error("hit accumulator: bad word count");
  out = HitAccumulator::from_parts(static_cast<std::size_t>(words[0]),
                                   static_cast<std::size_t>(words[1]));
}

inline std::vector<std::uint64_t> encode_words(const ScoreAccumulator& acc) {
  const stats::RunningStats::State s = acc.scores_state();
  return {static_cast<std::uint64_t>(s.n),
          std::bit_cast<std::uint64_t>(s.mean),
          std::bit_cast<std::uint64_t>(s.m2),
          std::bit_cast<std::uint64_t>(s.m3),
          std::bit_cast<std::uint64_t>(s.m4),
          std::bit_cast<std::uint64_t>(s.min),
          std::bit_cast<std::uint64_t>(s.max),
          static_cast<std::uint64_t>(acc.hits())};
}

inline void decode_words(const std::vector<std::uint64_t>& words, ScoreAccumulator& out) {
  if (words.size() != 8) throw std::runtime_error("score accumulator: bad word count");
  stats::RunningStats::State s;
  s.n = static_cast<std::size_t>(words[0]);
  s.mean = std::bit_cast<double>(words[1]);
  s.m2 = std::bit_cast<double>(words[2]);
  s.m3 = std::bit_cast<double>(words[3]);
  s.m4 = std::bit_cast<double>(words[4]);
  s.min = std::bit_cast<double>(words[5]);
  s.max = std::bit_cast<double>(words[6]);
  out = ScoreAccumulator::from_parts(stats::RunningStats::from_state(s),
                                     static_cast<std::size_t>(words[7]));
}

}  // namespace ssvbr::engine
