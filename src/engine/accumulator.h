// ssvbr/engine/accumulator.h
//
// Mergeable per-shard statistics for the replication engine.
//
// The engine runs replications in fixed-size shards and combines the
// per-shard partial statistics with an exact merge, so a study's result
// is a pure function of (seed, replications, shard size) — never of the
// thread count. Counters merge by integer addition (exact); moments
// merge with the Chan et al. parallel update (deterministic for a fixed
// shard structure), reusing the Welford machinery of
// stats::RunningStats.
#pragma once

#include <concepts>
#include <cstddef>

#include "stats/descriptive.h"

namespace ssvbr::engine {

/// What the replication engine requires of a per-shard statistic: a
/// neutral default state and an associative combine with another
/// shard's partial result.
template <class A>
concept MergeableAccumulator =
    std::default_initializable<A> && std::movable<A> &&
    requires(A a, const A& b) {
      { a.merge(b) };
    };

/// Bernoulli outcome counter (crude Monte-Carlo overflow): merging is
/// integer addition, so the merged result is bit-exact regardless of
/// how replications were grouped into shards.
class HitAccumulator {
 public:
  void add(bool hit) noexcept {
    ++count_;
    if (hit) ++hits_;
  }

  void merge(const HitAccumulator& other) noexcept {
    count_ += other.count_;
    hits_ += other.hits_;
  }

  std::size_t count() const noexcept { return count_; }
  std::size_t hits() const noexcept { return hits_; }

 private:
  std::size_t count_ = 0;
  std::size_t hits_ = 0;
};

/// Weighted-score statistic for the importance-sampling estimator: the
/// per-replication likelihood-ratio scores go through Welford
/// accumulation within a shard and a Chan merge across shards, plus an
/// exact hit count. For a fixed shard structure the merged mean and
/// variance are bit-identical whatever thread count executed the
/// shards.
class ScoreAccumulator {
 public:
  void add(double score, bool hit) noexcept {
    scores_.add(score);
    if (hit) ++hits_;
  }

  void merge(const ScoreAccumulator& other) noexcept {
    scores_.merge(other.scores_);
    hits_ += other.hits_;
  }

  std::size_t count() const noexcept { return scores_.count(); }
  std::size_t hits() const noexcept { return hits_; }
  double mean() const noexcept { return scores_.mean(); }
  /// Unbiased sample variance of the scores; 0 for n < 2.
  double sample_variance() const noexcept { return scores_.variance(); }

 private:
  stats::RunningStats scores_;
  std::size_t hits_ = 0;
};

static_assert(MergeableAccumulator<HitAccumulator>);
static_assert(MergeableAccumulator<ScoreAccumulator>);
static_assert(MergeableAccumulator<stats::RunningStats>);

}  // namespace ssvbr::engine
