// ssvbr/atm/multiplexer.h
//
// An N-input ATM multiplexer: per slot, every input contributes some
// cells; the shared FIFO output buffer holds at most `buffer_cells`
// cells and the output link serves `service_cells_per_slot` cells per
// slot. Cells that do not fit are dropped and counted — the cell loss
// ratio (CLR) this multiplexer reports is the quantity ATM CAC design
// cares about and the motivation for the paper's overflow estimates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ssvbr::atm {

/// Result of a multiplexer run.
struct MuxStats {
  std::size_t slots = 0;
  std::size_t cells_arrived = 0;
  std::size_t cells_served = 0;
  std::size_t cells_dropped = 0;
  std::size_t peak_queue = 0;
  double cell_loss_ratio() const noexcept {
    return cells_arrived > 0
               ? static_cast<double>(cells_dropped) / static_cast<double>(cells_arrived)
               : 0.0;
  }
  double utilization_observed(double service_cells_per_slot) const noexcept {
    return slots > 0 ? static_cast<double>(cells_served) /
                           (service_cells_per_slot * static_cast<double>(slots))
                     : 0.0;
  }
};

/// Slot-stepped cell multiplexer.
class Multiplexer {
 public:
  Multiplexer(std::size_t buffer_cells, double service_cells_per_slot);

  /// Advance one slot with `arriving_cells` total new cells.
  void step(std::size_t arriving_cells);

  /// Advance one slot with per-input arrivals (summed internally).
  void step(std::span<const std::size_t> per_input_cells);

  std::size_t queue_cells() const noexcept { return queue_; }
  const MuxStats& stats() const noexcept { return stats_; }

  void reset();

 private:
  std::size_t buffer_;
  double service_;
  double service_credit_ = 0.0;  ///< fractional service accumulation
  std::size_t queue_ = 0;
  MuxStats stats_;
};

/// Convenience: run `n_sources` per-slot cell sequences (all the same
/// length) through a multiplexer and return the stats.
MuxStats multiplex(std::span<const std::vector<std::size_t>> sources,
                   std::size_t buffer_cells, double service_cells_per_slot);

}  // namespace ssvbr::atm
