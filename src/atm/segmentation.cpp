#include "atm/segmentation.h"

#include <cmath>

#include "atm/cell.h"
#include "common/error.h"

namespace ssvbr::atm {

void segment_frames_into(std::span<const double> frame_sizes,
                         std::size_t slots_per_frame, PacingMode mode,
                         std::span<std::size_t> out) {
  SSVBR_REQUIRE(slots_per_frame >= 1, "need at least one slot per frame");
  SSVBR_REQUIRE(out.size() == frame_sizes.size() * slots_per_frame,
                "segmentation output span has the wrong size");
  std::size_t* slot = out.data();
  for (const double bytes : frame_sizes) {
    SSVBR_REQUIRE(bytes >= 0.0, "frame sizes must be non-negative");
    const std::size_t cells =
        aal5_cells_for(static_cast<std::size_t>(std::llround(bytes)));
    switch (mode) {
      case PacingMode::kBurst: {
        *slot++ = cells;
        for (std::size_t s = 1; s < slots_per_frame; ++s) *slot++ = 0;
        break;
      }
      case PacingMode::kSmooth: {
        // Distribute `cells` over `slots_per_frame` slots as evenly as
        // integer arithmetic allows (error-diffusion rounding).
        const std::size_t base = cells / slots_per_frame;
        const std::size_t extra = cells % slots_per_frame;
        for (std::size_t s = 0; s < slots_per_frame; ++s) {
          // Spread the `extra` remainder cells at evenly spaced slots.
          const bool bonus = (s * extra) % slots_per_frame + extra >= slots_per_frame;
          *slot++ = base + (bonus ? 1 : 0);
        }
        break;
      }
    }
  }
}

std::vector<std::size_t> segment_frames(std::span<const double> frame_sizes,
                                        std::size_t slots_per_frame, PacingMode mode) {
  SSVBR_REQUIRE(slots_per_frame >= 1, "need at least one slot per frame");
  std::vector<std::size_t> slots(frame_sizes.size() * slots_per_frame);
  segment_frames_into(frame_sizes, slots_per_frame, mode, slots);
  return slots;
}

std::size_t total_cells(std::span<const double> frame_sizes) {
  std::size_t total = 0;
  for (const double bytes : frame_sizes) {
    total += aal5_cells_for(static_cast<std::size_t>(std::llround(bytes)));
  }
  return total;
}

}  // namespace ssvbr::atm
