#include "atm/segmentation.h"

#include <cmath>

#include "atm/cell.h"
#include "common/error.h"

namespace ssvbr::atm {

std::vector<std::size_t> segment_frames(std::span<const double> frame_sizes,
                                        std::size_t slots_per_frame, PacingMode mode) {
  SSVBR_REQUIRE(slots_per_frame >= 1, "need at least one slot per frame");
  std::vector<std::size_t> slots;
  slots.reserve(frame_sizes.size() * slots_per_frame);
  for (const double bytes : frame_sizes) {
    SSVBR_REQUIRE(bytes >= 0.0, "frame sizes must be non-negative");
    const std::size_t cells =
        aal5_cells_for(static_cast<std::size_t>(std::llround(bytes)));
    switch (mode) {
      case PacingMode::kBurst: {
        slots.push_back(cells);
        for (std::size_t s = 1; s < slots_per_frame; ++s) slots.push_back(0);
        break;
      }
      case PacingMode::kSmooth: {
        // Distribute `cells` over `slots_per_frame` slots as evenly as
        // integer arithmetic allows (error-diffusion rounding).
        const std::size_t base = cells / slots_per_frame;
        const std::size_t extra = cells % slots_per_frame;
        for (std::size_t s = 0; s < slots_per_frame; ++s) {
          // Spread the `extra` remainder cells at evenly spaced slots.
          const bool bonus = (s * extra) % slots_per_frame + extra >= slots_per_frame;
          slots.push_back(base + (bonus ? 1 : 0));
        }
        break;
      }
    }
  }
  return slots;
}

std::size_t total_cells(std::span<const double> frame_sizes) {
  std::size_t total = 0;
  for (const double bytes : frame_sizes) {
    total += aal5_cells_for(static_cast<std::size_t>(std::llround(bytes)));
  }
  return total;
}

}  // namespace ssvbr::atm
