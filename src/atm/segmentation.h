// ssvbr/atm/segmentation.h
//
// Segmentation of video frames into per-slot ATM cell arrivals.
//
// A VBR encoder emits one frame per frame interval; the adaptation
// layer segments the frame into AAL5 cells and (in the smoothed mode
// typical of video endpoints) spreads them evenly over the slots of the
// frame interval rather than bursting them out back-to-back.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ssvbr::atm {

/// How cells of a frame are placed within the frame interval.
enum class PacingMode {
  kBurst,   ///< all cells in the frame's first slot
  kSmooth,  ///< cells spread evenly over the interval's slots
};

/// Convert a frame-size sequence (bytes/frame) into a per-slot cell
/// count sequence with `slots_per_frame` slots per frame interval.
/// The output has frame_sizes.size() * slots_per_frame entries and
/// conserves the total cell count exactly.
std::vector<std::size_t> segment_frames(std::span<const double> frame_sizes,
                                        std::size_t slots_per_frame,
                                        PacingMode mode = PacingMode::kSmooth);

/// Allocation-free variant for replication loops (the network layer
/// re-segments one class path per replication): writes into `out`,
/// which must have exactly frame_sizes.size() * slots_per_frame
/// entries. Identical output to segment_frames.
void segment_frames_into(std::span<const double> frame_sizes,
                         std::size_t slots_per_frame, PacingMode mode,
                         std::span<std::size_t> out);

/// Total AAL5 cells needed for a frame-size sequence.
std::size_t total_cells(std::span<const double> frame_sizes);

}  // namespace ssvbr::atm
