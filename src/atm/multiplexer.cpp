#include "atm/multiplexer.h"

#include <algorithm>

#include "common/error.h"

namespace ssvbr::atm {

Multiplexer::Multiplexer(std::size_t buffer_cells, double service_cells_per_slot)
    : buffer_(buffer_cells), service_(service_cells_per_slot) {
  SSVBR_REQUIRE(buffer_cells >= 1, "buffer must hold at least one cell");
  SSVBR_REQUIRE(service_cells_per_slot > 0.0, "service rate must be positive");
}

void Multiplexer::step(std::size_t arriving_cells) {
  // Serve first (departures-first), with fractional service carried as
  // credit so non-integer link rates work exactly.
  service_credit_ += service_;
  const auto can_serve = static_cast<std::size_t>(service_credit_);
  const std::size_t served = std::min(can_serve, queue_);
  queue_ -= served;
  service_credit_ -= static_cast<double>(can_serve);
  stats_.cells_served += served;

  // Admit up to the buffer limit.
  const std::size_t room = buffer_ - queue_;
  const std::size_t admitted = std::min(arriving_cells, room);
  queue_ += admitted;
  stats_.cells_arrived += arriving_cells;
  stats_.cells_dropped += arriving_cells - admitted;
  stats_.peak_queue = std::max(stats_.peak_queue, queue_);
  ++stats_.slots;
}

void Multiplexer::step(std::span<const std::size_t> per_input_cells) {
  std::size_t total = 0;
  for (const std::size_t c : per_input_cells) total += c;
  step(total);
}

void Multiplexer::reset() {
  queue_ = 0;
  service_credit_ = 0.0;
  stats_ = MuxStats{};
}

MuxStats multiplex(std::span<const std::vector<std::size_t>> sources,
                   std::size_t buffer_cells, double service_cells_per_slot) {
  SSVBR_REQUIRE(!sources.empty(), "need at least one source");
  const std::size_t slots = sources.front().size();
  for (const auto& s : sources) {
    SSVBR_REQUIRE(s.size() == slots, "all sources must cover the same slot count");
  }
  Multiplexer mux(buffer_cells, service_cells_per_slot);
  for (std::size_t t = 0; t < slots; ++t) {
    std::size_t total = 0;
    for (const auto& s : sources) total += s[t];
    mux.step(total);
  }
  return mux.stats();
}

}  // namespace ssvbr::atm
