// ssvbr/atm/cell.h
//
// ATM layer constants. The paper's queueing study is fluid (arbitrary
// non-negative arrivals per slot); this substrate adds the cell-level
// granularity of a real ATM multiplexer for the example applications.
#pragma once

#include <cstddef>

namespace ssvbr::atm {

inline constexpr std::size_t kCellBytes = 53;         ///< full ATM cell
inline constexpr std::size_t kCellPayloadBytes = 48;  ///< payload per cell
inline constexpr std::size_t kAal5TrailerBytes = 8;   ///< AAL5 CPCS trailer

/// Number of ATM cells required to carry `pdu_bytes` of user data with
/// AAL5 encapsulation (trailer + padding to a cell boundary).
constexpr std::size_t aal5_cells_for(std::size_t pdu_bytes) noexcept {
  const std::size_t total = pdu_bytes + kAal5TrailerBytes;
  return (total + kCellPayloadBytes - 1) / kCellPayloadBytes;
}

}  // namespace ssvbr::atm
