#include "baselines/markov_lrd.h"

#include <cmath>

#include "common/error.h"

namespace ssvbr::baselines {

MarkovLrdProcess::MarkovLrdProcess(double hurst, double on_rate, double off_rate)
    : hurst_(hurst),
      alpha_(3.0 - 2.0 * hurst),
      on_rate_(on_rate),
      off_rate_(off_rate) {
  SSVBR_REQUIRE(hurst > 0.5 && hurst < 1.0,
                "Markov LRD chain needs hurst in (0.5, 1)");
  SSVBR_REQUIRE(off_rate >= 0.0 && on_rate > off_rate,
                "Markov LRD chain needs on_rate > off_rate >= 0");
}

std::uint64_t MarkovLrdProcess::sample_run_length(RandomEngine& rng) const {
  // Inverse transform for the discrete Pareto tail P(L >= k) = k^(-alpha):
  // L = floor(U^(-1/alpha)) with U in (0, 1) hits every k >= 1 with
  // exactly P(L = k) = k^(-alpha) - (k+1)^(-alpha). The cap keeps a
  // once-per-2^53-ish tiny uniform from overflowing the countdown; it
  // truncates the tail at ~1e15 slots, beyond any reachable horizon.
  const double u = rng.uniform_open();
  const double len = std::floor(std::pow(u, -1.0 / alpha_));
  constexpr double kCap = 9.0e15;
  return static_cast<std::uint64_t>(len < kCap ? len : kCap);
}

MarkovLrdProcess::State MarkovLrdProcess::begin(RandomEngine& rng) const {
  State state;
  state.on = rng.uniform() < 0.5;
  state.remaining = sample_run_length(rng);
  return state;
}

double MarkovLrdProcess::next(State& state, RandomEngine& rng) const {
  if (state.remaining == 0) {
    // Renewal: flip the phase, draw the next heavy-tailed run.
    state.on = !state.on;
    state.remaining = sample_run_length(rng);
  }
  --state.remaining;
  return state.on ? on_rate_ : off_rate_;
}

void MarkovLrdProcess::sample_into(std::span<double> out, RandomEngine& rng) const {
  State state = begin(rng);
  for (double& x : out) x = next(state, rng);
}

std::vector<double> MarkovLrdProcess::sample(std::size_t n, RandomEngine& rng) const {
  std::vector<double> out(n);
  sample_into(out, rng);
  return out;
}

}  // namespace ssvbr::baselines
