// ssvbr/baselines/dar.h
//
// DAR(1) — discrete autoregressive process of order one (Jacobs &
// Lewis), the construction behind Heyman et al.'s VBR teleconference
// models (reference [10] of the paper): each slot keeps the previous
// value with probability rho and otherwise draws a fresh sample from
// the marginal. The marginal is matched *exactly* (any distribution)
// and the autocorrelation is exactly rho^k — i.e. the strongest SRD
// baseline with an arbitrary marginal, but structurally incapable of
// long-range dependence.
#pragma once

#include <cstddef>
#include <vector>

#include "dist/distribution.h"
#include "dist/random.h"

namespace ssvbr::baselines {

/// DAR(1) with an arbitrary marginal.
class Dar1Process {
 public:
  /// `rho` in [0, 1) is the per-slot repetition probability.
  Dar1Process(double rho, DistributionPtr marginal);

  /// Exact autocorrelation rho^k.
  double autocorrelation(std::size_t lag) const noexcept;

  /// Generate a stationary path of length n.
  std::vector<double> sample(std::size_t n, RandomEngine& rng) const;

  double rho() const noexcept { return rho_; }
  const Distribution& marginal() const { return *marginal_; }

 private:
  double rho_;
  DistributionPtr marginal_;
};

}  // namespace ssvbr::baselines
