// ssvbr/baselines/mmpp.h
//
// Discrete-time Markov-modulated Poisson process (dMMPP) baseline — a
// representative of the Markovian traffic models (MMPP, IBP, ...) whose
// exponentially decaying autocorrelation the paper argues cannot
// capture VBR video (Section 1). Used in tests and ablation benches to
// demonstrate the SRD-only queueing behaviour.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"

#include "dist/random.h"

namespace ssvbr::baselines {

/// Discrete-time MMPP: a hidden Markov chain over m states; in state s,
/// the per-slot arrival volume is Poisson with rate `rates[s]`.
class MmppProcess {
 public:
  /// `transition` is a row-stochastic m x m matrix in row-major order;
  /// `rates` holds the per-state Poisson rates.
  MmppProcess(std::vector<double> transition, std::vector<double> rates);

  /// Canonical 2-state on/off-style construction: states (low, high)
  /// with mean sojourn times and rates.
  static MmppProcess two_state(double rate_low, double rate_high,
                               double mean_sojourn_low, double mean_sojourn_high);

  /// Fit a 2-state MMPP to a traffic series by moment matching: the
  /// sample mean, variance, and lag-1/lag-2 autocorrelations determine
  /// (rate_low, rate_high, sojourn_low, sojourn_high). The geometric
  /// ACF decay eigenvalue comes from r(2)/r(1); the rate spread from the
  /// variance in excess of the Poisson floor. This is how Markovian
  /// video models were traditionally matched to data — and fitting one
  /// to a self-similar trace demonstrates the paper's point: the match
  /// holds at lags 1-2 and collapses beyond.
  static MmppProcess fit_two_state(std::span<const double> series);

  std::size_t n_states() const noexcept { return rates_.size(); }

  /// Stationary distribution of the modulating chain (power iteration).
  std::vector<double> stationary_distribution() const;

  /// Long-run mean arrivals per slot.
  double mean_rate() const;

  /// Autocorrelation of the arrival process at integer lag k
  /// (2-state closed form; general chains use the spectral recursion).
  double autocorrelation(std::size_t k) const;

  /// Sample a path of per-slot arrival counts.
  std::vector<double> sample(std::size_t n, RandomEngine& rng) const;

 private:
  double poisson(double mean, RandomEngine& rng) const;

  std::vector<double> transition_;  // row-major m x m
  std::vector<double> rates_;
};

}  // namespace ssvbr::baselines
