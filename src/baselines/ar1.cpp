#include "baselines/ar1.h"

#include <cmath>

#include "common/error.h"

namespace ssvbr::baselines {

Ar1Process::Ar1Process(double rho) : rho_(rho) {
  SSVBR_REQUIRE(rho > -1.0 && rho < 1.0, "AR(1) coefficient must lie in (-1, 1)");
}

Ar1Process Ar1Process::from_decay_rate(double lambda) {
  SSVBR_REQUIRE(lambda > 0.0, "decay rate must be positive");
  return Ar1Process(std::exp(-lambda));
}

double Ar1Process::decay_rate() const {
  SSVBR_REQUIRE(rho_ > 0.0, "decay rate undefined for non-positive rho");
  return -std::log(rho_);
}

std::vector<double> Ar1Process::sample(std::size_t n, RandomEngine& rng) const {
  SSVBR_REQUIRE(n >= 1, "cannot sample an empty path");
  std::vector<double> x(n);
  x[0] = rng.normal();  // stationary marginal N(0, 1)
  const double innov = std::sqrt(1.0 - rho_ * rho_);
  for (std::size_t k = 1; k < n; ++k) {
    x[k] = rho_ * x[k - 1] + innov * rng.normal();
  }
  return x;
}

}  // namespace ssvbr::baselines
