#include "baselines/mmpp.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "stats/descriptive.h"

namespace ssvbr::baselines {

MmppProcess::MmppProcess(std::vector<double> transition, std::vector<double> rates)
    : transition_(std::move(transition)), rates_(std::move(rates)) {
  const std::size_t m = rates_.size();
  SSVBR_REQUIRE(m >= 1, "MMPP needs at least one state");
  SSVBR_REQUIRE(transition_.size() == m * m, "transition matrix must be m x m");
  for (std::size_t i = 0; i < m; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const double p = transition_[i * m + j];
      SSVBR_REQUIRE(p >= 0.0 && p <= 1.0, "transition probabilities must lie in [0, 1]");
      row += p;
    }
    SSVBR_REQUIRE(std::fabs(row - 1.0) < 1e-9, "transition rows must sum to 1");
    SSVBR_REQUIRE(rates_[i] >= 0.0, "Poisson rates must be non-negative");
  }
}

MmppProcess MmppProcess::two_state(double rate_low, double rate_high,
                                   double mean_sojourn_low, double mean_sojourn_high) {
  SSVBR_REQUIRE(mean_sojourn_low >= 1.0 && mean_sojourn_high >= 1.0,
                "mean sojourn times must be at least one slot");
  const double p = 1.0 / mean_sojourn_low;   // low -> high
  const double q = 1.0 / mean_sojourn_high;  // high -> low
  return MmppProcess({1.0 - p, p, q, 1.0 - q}, {rate_low, rate_high});
}

MmppProcess MmppProcess::fit_two_state(std::span<const double> series) {
  SSVBR_REQUIRE(series.size() >= 1000, "moment matching needs at least 1000 samples");
  stats::RunningStats moments;
  for (const double v : series) moments.add(v);
  const double m = moments.mean();
  const double v = moments.variance();
  SSVBR_REQUIRE(m > 0.0, "series mean must be positive");
  SSVBR_REQUIRE(v > m, "series must be overdispersed relative to Poisson");
  const std::vector<double> acf = stats::autocorrelation_fft(series, 2);
  SSVBR_REQUIRE(acf[1] > 0.0 && acf[2] > 0.0,
                "series must have positive lag-1/lag-2 autocorrelation");

  // Geometric decay eigenvalue from consecutive autocorrelations.
  const double e = clamp(acf[2] / acf[1], 1e-6, 1.0 - 1e-6);
  // Rate-process variance from r(1) = var_R * e / v, capped by the
  // overdispersion the Poisson layer leaves for the modulation.
  double var_rate = acf[1] * v / e;
  var_rate = std::fmin(var_rate, 0.99 * (v - m));

  // High-state occupancy from the skewness of the rate process (the
  // two-point distribution's standardized third moment is
  // (pi_l - pi_h) / sqrt(pi_l pi_h)).
  const double skew = clamp(moments.skewness(), 0.05, 6.0);
  const double a = 4.0 + skew * skew;
  const double disc = std::sqrt(a * a - 4.0 * a);
  double pi_h = (a - disc) / (2.0 * a);  // the < 1/2 root: high state is rarer
  pi_h = clamp(pi_h, 0.02, 0.5);
  const double pi_l = 1.0 - pi_h;

  const double spread = std::sqrt(var_rate / (pi_l * pi_h));
  double rate_low = m - pi_h * spread;
  double rate_high = rate_low + spread;
  if (rate_low < 0.0) {
    // Shift the spread so the low rate stays physical.
    rate_low = 0.0;
    rate_high = m / pi_h;
  }

  // Transition probabilities from the eigenvalue and the occupancies:
  // p + q = 1 - e, p / (p + q) = pi_h.
  const double p = clamp((1.0 - e) * pi_h, 1e-6, 1.0);
  const double q = clamp((1.0 - e) * pi_l, 1e-6, 1.0);
  return MmppProcess({1.0 - p, p, q, 1.0 - q}, {rate_low, rate_high});
}

std::vector<double> MmppProcess::stationary_distribution() const {
  const std::size_t m = rates_.size();
  std::vector<double> pi(m, 1.0 / static_cast<double>(m));
  std::vector<double> next(m);
  for (int it = 0; it < 10000; ++it) {
    for (std::size_t j = 0; j < m; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < m; ++i) s += pi[i] * transition_[i * m + j];
      next[j] = s;
    }
    double diff = 0.0;
    for (std::size_t j = 0; j < m; ++j) diff += std::fabs(next[j] - pi[j]);
    pi.swap(next);
    if (diff < 1e-14) break;
  }
  return pi;
}

double MmppProcess::mean_rate() const {
  const std::vector<double> pi = stationary_distribution();
  double mean = 0.0;
  for (std::size_t i = 0; i < rates_.size(); ++i) mean += pi[i] * rates_[i];
  return mean;
}

double MmppProcess::autocorrelation(std::size_t k) const {
  if (k == 0) return 1.0;
  const std::size_t m = rates_.size();
  const std::vector<double> pi = stationary_distribution();
  double mean = 0.0;
  double second = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    mean += pi[i] * rates_[i];
    second += pi[i] * rates_[i] * rates_[i];
  }
  const double var_rate = second - mean * mean;
  // cov(N_0, N_k) = cov(R_0, R_k): propagate u = P^k rates.
  std::vector<double> u(rates_);
  std::vector<double> next(m);
  for (std::size_t step = 0; step < k; ++step) {
    for (std::size_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < m; ++j) s += transition_[i * m + j] * u[j];
      next[i] = s;
    }
    u.swap(next);
  }
  double cross = 0.0;
  for (std::size_t i = 0; i < m; ++i) cross += pi[i] * rates_[i] * u[i];
  const double cov = cross - mean * mean;
  // var(N) = E[R] + var(R) (Poisson mixture).
  const double var_n = mean + var_rate;
  return var_n > 0.0 ? cov / var_n : 0.0;
}

double MmppProcess::poisson(double mean, RandomEngine& rng) const {
  if (mean <= 0.0) return 0.0;
  if (mean > 50.0) {
    // Normal approximation with continuity correction; adequate for the
    // multi-cell-per-slot regimes the baselines run in.
    const double v = std::round(rng.normal(mean, std::sqrt(mean)));
    return v < 0.0 ? 0.0 : v;
  }
  // Knuth multiplication method.
  const double limit = std::exp(-mean);
  double product = rng.uniform_open();
  double count = 0.0;
  while (product > limit) {
    product *= rng.uniform_open();
    count += 1.0;
  }
  return count;
}

std::vector<double> MmppProcess::sample(std::size_t n, RandomEngine& rng) const {
  SSVBR_REQUIRE(n >= 1, "cannot sample an empty path");
  const std::size_t m = rates_.size();
  // Start from the stationary distribution.
  const std::vector<double> pi = stationary_distribution();
  double u = rng.uniform();
  std::size_t state = m - 1;
  double acc = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    acc += pi[i];
    if (u < acc) {
      state = i;
      break;
    }
  }
  std::vector<double> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    out[t] = poisson(rates_[state], rng);
    // Advance the modulating chain.
    u = rng.uniform();
    acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      acc += transition_[state * m + j];
      if (u < acc) {
        state = j;
        break;
      }
    }
  }
  return out;
}

}  // namespace ssvbr::baselines
