// ssvbr/baselines/tes.h
//
// TES (Transform-Expand-Sample) process — the modeling technique of
// Melamed et al. that the paper discusses as the prior state of the art
// for matching both a marginal and an autocorrelation (Section 1,
// refs. [22], [21], [15]).
//
// Background: a modulo-1 random walk U_n = <U_{n-1} + V_n> with iid
// innovations V_n uniform on [-alpha/2, alpha/2]; the fractional-part
// operation keeps U_n exactly Uniform(0,1), while alpha controls the
// dependence (alpha -> 0 gives near-perfect correlation, alpha = 1
// white noise). A "stitching" transform S_xi makes sample paths
// continuous, and the foreground applies an inverse marginal transform
// Y_n = F^{-1}(S_xi(U_n)) — structurally the same inversion the paper
// uses, but with a *short-range* background: TES autocorrelations decay
// geometrically, which is exactly the limitation the paper's
// self-similar background removes.
//
// TES+ keeps all lags positively correlated; TES- alternates the sign
// by reflecting every other sample.
#pragma once

#include <cstddef>
#include <vector>

#include "dist/distribution.h"
#include "dist/random.h"

namespace ssvbr::baselines {

/// TES background + marginal inversion.
class TesProcess {
 public:
  /// `innovation_width` is alpha in (0, 1]; `stitching_xi` in [0, 1]
  /// (0.5 is the symmetric choice; 0 or 1 disable stitching);
  /// `plus` selects TES+ (true) or TES- (false).
  TesProcess(double innovation_width, double stitching_xi, DistributionPtr marginal,
             bool plus = true);

  /// Stitching transform S_xi(u).
  double stitch(double u) const noexcept;

  /// Generate a foreground path of length n.
  std::vector<double> sample(std::size_t n, RandomEngine& rng) const;

  /// Generate the background modulo-1 walk only (uniform marginal).
  std::vector<double> sample_background(std::size_t n, RandomEngine& rng) const;

  /// Theoretical lag-k autocorrelation of the *stitched background* of
  /// a TES+ process with the symmetric stitching xi = 1/2. The tent map
  /// T(u) has the Fourier expansion 1/2 - (4/pi^2) sum_{j odd}
  /// cos(2 pi j u)/j^2, and the modulo-1 walk decorrelates each
  /// harmonic by phi_V(2 pi j)^k, giving
  ///   rho(k) = (96 / pi^4) sum_{j odd} [sinc(pi j alpha)]^k / j^4.
  /// Truncated at `terms` odd harmonics. Only available for TES+ —
  /// symmetric stitching makes the foreground of TES- identical in law
  /// to TES+ (T(1 - u) = T(u)); use an asymmetric xi (e.g. 1) to obtain
  /// the alternating-sign behaviour.
  double background_autocorrelation(std::size_t lag, int terms = 64) const;

  double innovation_width() const noexcept { return alpha_; }
  double stitching_xi() const noexcept { return xi_; }
  bool is_plus() const noexcept { return plus_; }

 private:
  double alpha_;
  double xi_;
  DistributionPtr marginal_;
  bool plus_;
};

}  // namespace ssvbr::baselines
