#include "baselines/dar.h"

#include <cmath>

#include "common/error.h"

namespace ssvbr::baselines {

Dar1Process::Dar1Process(double rho, DistributionPtr marginal)
    : rho_(rho), marginal_(std::move(marginal)) {
  SSVBR_REQUIRE(rho >= 0.0 && rho < 1.0, "DAR(1) rho must lie in [0, 1)");
  SSVBR_REQUIRE(marginal_ != nullptr, "marginal distribution must not be null");
}

double Dar1Process::autocorrelation(std::size_t lag) const noexcept {
  return std::pow(rho_, static_cast<double>(lag));
}

std::vector<double> Dar1Process::sample(std::size_t n, RandomEngine& rng) const {
  SSVBR_REQUIRE(n >= 1, "cannot sample an empty path");
  std::vector<double> out(n);
  out[0] = marginal_->sample(rng);
  for (std::size_t k = 1; k < n; ++k) {
    out[k] = rng.uniform() < rho_ ? out[k - 1] : marginal_->sample(rng);
  }
  return out;
}

}  // namespace ssvbr::baselines
