#include "baselines/tes.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace ssvbr::baselines {

TesProcess::TesProcess(double innovation_width, double stitching_xi,
                       DistributionPtr marginal, bool plus)
    : alpha_(innovation_width),
      xi_(stitching_xi),
      marginal_(std::move(marginal)),
      plus_(plus) {
  SSVBR_REQUIRE(alpha_ > 0.0 && alpha_ <= 1.0, "innovation width must lie in (0, 1]");
  SSVBR_REQUIRE(xi_ >= 0.0 && xi_ <= 1.0, "stitching parameter must lie in [0, 1]");
  SSVBR_REQUIRE(marginal_ != nullptr, "marginal distribution must not be null");
}

double TesProcess::stitch(double u) const noexcept {
  if (xi_ <= 0.0) return 1.0 - u;  // degenerate: pure reflection
  if (xi_ >= 1.0) return u;        // degenerate: identity
  return u < xi_ ? u / xi_ : (1.0 - u) / (1.0 - xi_);
}

std::vector<double> TesProcess::sample_background(std::size_t n,
                                                  RandomEngine& rng) const {
  SSVBR_REQUIRE(n >= 1, "cannot sample an empty path");
  std::vector<double> u(n);
  double state = rng.uniform();  // stationary: exactly Uniform(0, 1)
  u[0] = state;
  for (std::size_t k = 1; k < n; ++k) {
    state += rng.uniform(-0.5 * alpha_, 0.5 * alpha_);
    state -= std::floor(state);  // modulo 1
    u[k] = state;
  }
  if (!plus_) {
    // TES-: reflect every odd sample.
    for (std::size_t k = 1; k < n; k += 2) u[k] = 1.0 - u[k];
  }
  return u;
}

std::vector<double> TesProcess::sample(std::size_t n, RandomEngine& rng) const {
  std::vector<double> u = sample_background(n, rng);
  for (double& v : u) {
    const double p = clamp(stitch(v), 1e-12, 1.0 - 1e-12);
    v = marginal_->quantile(p);
  }
  return u;
}

double TesProcess::background_autocorrelation(std::size_t lag, int terms) const {
  SSVBR_REQUIRE(plus_, "closed-form stitched ACF is available for TES+ only");
  if (lag == 0) return 1.0;
  SSVBR_REQUIRE(terms >= 1, "need at least one series term");
  // Tent-map Fourier expansion: T(u) = 1/2 - (4/pi^2) sum_{j odd}
  // cos(2 pi j u) / j^2; the modulo-1 walk contributes
  // E[cos(2 pi j U_0) cos(2 pi j U_k)] = phi_V(2 pi j)^k / 2, so
  //   rho(k) = (96 / pi^4) sum_{j odd} phi_V(2 pi j)^k / j^4
  // with phi_V(2 pi j) = sinc(pi j alpha) for V ~ U[-alpha/2, alpha/2].
  const double pi4 = kPi * kPi * kPi * kPi;
  double sum = 0.0;
  for (int j = 1; j < 2 * terms; j += 2) {
    const double w = kPi * static_cast<double>(j) * alpha_;
    const double phi = w == 0.0 ? 1.0 : std::sin(w) / w;
    const double j2 = static_cast<double>(j) * static_cast<double>(j);
    sum += std::pow(phi, static_cast<double>(lag)) / (j2 * j2);
  }
  return 96.0 / pi4 * sum;
}

}  // namespace ssvbr::baselines
