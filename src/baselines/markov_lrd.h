// ssvbr/baselines/markov_lrd.h
//
// Markov-chain LRD generator (Clegg & Dodson, PAPERS.md: cs/0610134) —
// a cheap long-range-dependent baseline against the Gaussian fGn
// backends (Hosking / Davies-Harte / Paxson).
//
// Construction: an alternating on/off renewal process whose run lengths
// are heavy-tailed,
//
//     P(L >= k) = k^(-alpha),   k = 1, 2, ...,   alpha in (1, 2),
//
// embedded as a countdown Markov chain (state = phase + slots left in
// the current run; every transition either decrements the countdown or,
// at a renewal, flips the phase and draws a fresh run length by exact
// inverse transform L = floor(U^(-1/alpha))). Finite-mean (zeta(alpha))
// but infinite-variance run lengths make the binary series long-range
// dependent with Hurst parameter
//
//     H = (3 - alpha) / 2,   i.e.  alpha = 3 - 2H  for  H in (1/2, 1).
//
// The chain is O(1) work and O(1) state per slot with no setup cost —
// the whole point of the baseline: it generates LRD traffic orders of
// magnitude cheaper than exact Gaussian synthesis, at the price of a
// two-point marginal and only-asymptotic control of the correlation
// shape (see the markov_lrd_hurst_preservation conformance check).
//
// Stationarity caveat: each path starts at a renewal (equal-probability
// phase, fresh run). The true stationary ON fraction is 1/2 by
// symmetry, but the heavy tail makes the equilibrium residual-life
// distribution infinite-mean, so paths converge to stationarity only
// asymptotically — the standard (and unavoidable) pre-asymptotic
// behaviour of heavy-tailed on/off models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dist/random.h"

namespace ssvbr::baselines {

/// Alternating heavy-tailed on/off chain with Hurst parameter `hurst`.
class MarkovLrdProcess {
 public:
  /// `hurst` in (1/2, 1); the series takes value `on_rate` during ON
  /// runs and `off_rate` during OFF runs (`on_rate > off_rate >= 0`).
  explicit MarkovLrdProcess(double hurst, double on_rate = 1.0,
                            double off_rate = 0.0);

  double hurst() const noexcept { return hurst_; }
  /// Run-length tail exponent alpha = 3 - 2H in (1, 2).
  double alpha() const noexcept { return alpha_; }
  double on_rate() const noexcept { return on_rate_; }
  double off_rate() const noexcept { return off_rate_; }

  /// Long-run mean (on + off) / 2: both phases have the same run-length
  /// law, so the stationary ON fraction is exactly 1/2.
  double mean() const noexcept { return 0.5 * (on_rate_ + off_rate_); }
  /// Long-run variance ((on - off) / 2)^2 of the two-point marginal.
  double variance() const noexcept {
    const double half = 0.5 * (on_rate_ - off_rate_);
    return half * half;
  }

  /// Countdown-chain state: the current phase and the slots left in its
  /// run. Plain value type so replication loops keep it on the stack.
  struct State {
    bool on = false;
    std::uint64_t remaining = 0;
  };

  /// Start a fresh path at a renewal: equal-probability phase, fresh
  /// run length. Consumes exactly two uniforms.
  State begin(RandomEngine& rng) const;

  /// Value of the current slot; advances the chain (one uniform is
  /// consumed only at renewals). O(1), allocation-free.
  double next(State& state, RandomEngine& rng) const;

  /// Draw one heavy-tailed run length L >= 1 with P(L >= k) = k^(-alpha)
  /// by inverse transform; consumes exactly one uniform.
  std::uint64_t sample_run_length(RandomEngine& rng) const;

  /// Fill `out` with a path (allocation-free form for hot loops).
  void sample_into(std::span<double> out, RandomEngine& rng) const;

  /// Draw a path of length n (convenience; same values as sample_into).
  std::vector<double> sample(std::size_t n, RandomEngine& rng) const;

 private:
  double hurst_;
  double alpha_;
  double on_rate_;
  double off_rate_;
};

}  // namespace ssvbr::baselines
