// ssvbr/baselines/garrett_willinger.h
//
// The Garrett & Willinger (SIGCOMM '94) VBR video model that the paper
// extends: a fractional ARIMA(0, d, 0) background process transformed
// to a combined Gamma/Pareto marginal. It captures the LRD and the
// heavy-tailed marginal but — unlike the paper's unified model — does
// not model the short-range part of the autocorrelation explicitly;
// that gap is exactly what Section 3.2 adds.
#pragma once

#include <memory>

#include "core/unified_model.h"

namespace ssvbr::baselines {

/// Parameters of the Garrett-Willinger model.
struct GarrettWillingerParams {
  double hurst = 0.9;        ///< H; the FARIMA d is H - 1/2
  double gamma_shape = 2.0;  ///< Gamma body shape
  double gamma_scale = 1500.0;  ///< Gamma body scale (bytes)
  double pareto_alpha = 1.6; ///< Pareto tail index
  /// Splice point as a quantile of the Gamma body (the tail carries the
  /// mass above it with density continuity).
  double split_quantile = 0.97;
};

/// Build the model as a UnifiedVbrModel with a FARIMA background and a
/// Gamma/Pareto marginal transform.
core::UnifiedVbrModel make_garrett_willinger_model(const GarrettWillingerParams& params);

}  // namespace ssvbr::baselines
