#include "baselines/garrett_willinger.h"

#include <memory>

#include "common/error.h"
#include "dist/distributions.h"
#include "fractal/autocorrelation.h"

namespace ssvbr::baselines {

core::UnifiedVbrModel make_garrett_willinger_model(const GarrettWillingerParams& params) {
  SSVBR_REQUIRE(params.hurst > 0.5 && params.hurst < 1.0,
                "Garrett-Willinger requires H in (0.5, 1)");
  SSVBR_REQUIRE(params.split_quantile > 0.0 && params.split_quantile < 1.0,
                "split quantile must lie in (0, 1)");
  const double d = params.hurst - 0.5;
  auto background = std::make_shared<fractal::FarimaAutocorrelation>(d);

  const GammaDistribution body(params.gamma_shape, params.gamma_scale);
  const double split = body.quantile(params.split_quantile);
  auto marginal = std::make_shared<GammaParetoDistribution>(
      GammaParetoDistribution::with_continuous_density(
          params.gamma_shape, params.gamma_scale, split, params.pareto_alpha));

  return core::UnifiedVbrModel(std::move(background),
                               core::MarginalTransform(std::move(marginal)));
}

}  // namespace ssvbr::baselines
