// ssvbr/baselines/ar1.h
//
// Gaussian AR(1) baseline — the canonical short-range-dependent
// "traditional model" the paper contrasts with (its correlation decays
// exactly exponentially, matching the SRD-only model of Fig. 17 while
// being generatable in O(1) per step instead of Hosking's O(k)).
#pragma once

#include <cstddef>
#include <vector>

#include "dist/random.h"

namespace ssvbr::baselines {

/// Zero-mean, unit-variance stationary Gaussian AR(1):
///   X_k = rho X_{k-1} + sqrt(1 - rho^2) eps_k,  eps ~ N(0,1),
/// with correlation r(k) = rho^k = exp(-lambda k), lambda = -ln(rho).
class Ar1Process {
 public:
  /// Construct from the AR coefficient rho in (-1, 1).
  explicit Ar1Process(double rho);

  /// Construct from an exponential correlation rate lambda > 0 so that
  /// r(k) = exp(-lambda k).
  static Ar1Process from_decay_rate(double lambda);

  double rho() const noexcept { return rho_; }
  double decay_rate() const;

  /// Draw a stationary path of length n.
  std::vector<double> sample(std::size_t n, RandomEngine& rng) const;

 private:
  double rho_;
};

}  // namespace ssvbr::baselines
