// ssvbr/common/version.h
//
// Library version constants and build metadata. The git SHA and build
// type are captured by CMake at configure time (see
// src/common/build_info.h.in); a tree configured without git reports
// "unknown".
#pragma once

namespace ssvbr {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

/// Build provenance, embedded into metrics snapshots and bench banners
/// so every CSV / JSON exhibit is traceable to the code that made it.
struct BuildInfo {
  const char* version;     ///< kVersionString
  const char* git_sha;     ///< short SHA at configure time, or "unknown"
  const char* build_type;  ///< CMAKE_BUILD_TYPE, e.g. "Release"
};

/// The build this library was compiled from.
const BuildInfo& build_info() noexcept;

}  // namespace ssvbr
