#include "common/version.h"

#include "common/build_info.h"  // generated into the build tree

namespace ssvbr {

const BuildInfo& build_info() noexcept {
  static constexpr BuildInfo info{kVersionString, SSVBR_BUILD_GIT_SHA,
                                  SSVBR_BUILD_TYPE};
  return info;
}

}  // namespace ssvbr
