// ssvbr/common/simd.h
//
// Opt-in SIMD layer for the replication hot kernels (-DSSVBR_SIMD=ON).
//
// Design rules, in order of priority:
//
//   1. Bit-identical results. Every vector kernel mirrors the exact
//      floating-point evaluation order of its scalar counterpart in
//      math_util.h / the call site — the same four-accumulator blocking,
//      the same (s0 + s1) + (s2 + s3) reduction, the same scalar tail,
//      and multiply + add only (no FMA contraction: the library compiles
//      under -std=c++20, where GCC/Clang disable contraction, so an
//      fmadd in the vector path would change bits). Fixed-seed outputs,
//      golden baselines, and checkpoint bit-identity are therefore
//      unaffected by the dispatch decision.
//   2. Runtime dispatch with a scalar fallback. The AVX2 kernels are
//      compiled via per-function target attributes (no global -mavx2),
//      selected once at startup by CPUID, and can be disabled at run
//      time with SSVBR_SIMD_FORCE_SCALAR=1 in the environment — the
//      same binary always runs correctly on any x86-64.
//   3. Zero cost when off. Without -DSSVBR_SIMD=ON every entry point
//      below is an inline alias of the scalar kernel; no dispatch, no
//      indirection, no behavioural difference of any kind.
//
// Consumers: the Durbin-Levinson / Hosking conditional-mean dots
// (src/fractal), the conditional_means_batch axpy (src/fractal), the
// tabulated-transform Hermite apply (src/core), and the ziggurat
// fill_normal batch (src/dist, which implements its own vector body and
// only takes the dispatch decision from here).
#pragma once

#include <cstddef>

#include "common/math_util.h"

namespace ssvbr::simd {

/// Instruction-set level selected for the current process.
enum class IsaLevel {
  kScalar,  ///< portable scalar kernels (always available)
  kAvx2,    ///< AVX2 256-bit kernels (x86-64, runtime-detected)
};

/// True when the library was compiled with -DSSVBR_SIMD=ON (the AVX2
/// kernels exist in the binary; whether they run is a runtime question).
constexpr bool compiled_with_simd() noexcept {
#if SSVBR_SIMD_ENABLED
  return true;
#else
  return false;
#endif
}

#if SSVBR_SIMD_ENABLED

/// The level the dispatcher currently routes to.
IsaLevel active_level() noexcept;

/// Re-run the dispatch decision (CPUID + the SSVBR_SIMD_FORCE_SCALAR
/// environment override). Called once automatically before first use;
/// exposed so tests can flip the override and exercise both paths in
/// one process. Not thread-safe against concurrent kernel calls — call
/// it only while no worker threads are running.
void refresh_dispatch() noexcept;

namespace detail {
// Resolved once by refresh_dispatch(); read on every kernel call. A
// plain bool (not atomic): it is written only during single-threaded
// setup, and a stale read would merely select the other bit-identical
// kernel.
extern bool g_use_avx2;

double dot_avx2(const double* a, const double* b, std::size_t n) noexcept;
double dot_reversed_avx2(const double* a, const double* b,
                         std::size_t n) noexcept;
void axpy_avx2(double c, const double* h, double* out, std::size_t n) noexcept;
}  // namespace detail

/// blocked_dot with the active kernel (bit-identical either way).
inline double dot(const double* a, const double* b, std::size_t n) noexcept {
  if (detail::g_use_avx2) return detail::dot_avx2(a, b, n);
  return blocked_dot(a, b, n);
}

/// blocked_dot_reversed with the active kernel (bit-identical either way).
inline double dot_reversed(const double* a, const double* b,
                           std::size_t n) noexcept {
  if (detail::g_use_avx2) return detail::dot_reversed_avx2(a, b, n);
  return blocked_dot_reversed(a, b, n);
}

/// out[i] += c * h[i] for i < n — the inner loop of
/// conditional_means_batch. Each lane is independent, so the vector
/// form is trivially bit-identical.
inline void axpy(double c, const double* h, double* out,
                 std::size_t n) noexcept {
  if (detail::g_use_avx2) {
    detail::axpy_avx2(c, h, out, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] += c * h[i];
}

#else  // !SSVBR_SIMD_ENABLED — inline scalar aliases, zero overhead.

constexpr IsaLevel active_level() noexcept { return IsaLevel::kScalar; }
constexpr void refresh_dispatch() noexcept {}

inline double dot(const double* a, const double* b, std::size_t n) noexcept {
  return blocked_dot(a, b, n);
}

inline double dot_reversed(const double* a, const double* b,
                           std::size_t n) noexcept {
  return blocked_dot_reversed(a, b, n);
}

inline void axpy(double c, const double* h, double* out,
                 std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] += c * h[i];
}

#endif  // SSVBR_SIMD_ENABLED

// ---------------------------------------------------------------------------
// Tabulated-transform Hermite apply.
// ---------------------------------------------------------------------------

/// View of a uniform-grid cubic Hermite table (core::TabulatedTransform
/// internals) in the form the gather kernel consumes.
struct HermiteTable {
  const double* y;        ///< node values, last_cell + 2 entries
  const double* d;        ///< node slopes, last_cell + 2 entries
  std::size_t last_cell;  ///< clamp index: n_intervals - 1
  double lo;              ///< grid origin
  double hi;              ///< grid end
  double step;            ///< uniform cell width
  double inv_step;        ///< 1 / step
};

/// Exact evaluation callback for grid-exterior points (|x| outside
/// [lo, hi]); `ctx` is the caller's transform object.
using HermiteTailFn = double (*)(const void* ctx, double x);

#if SSVBR_SIMD_ENABLED

namespace detail {
void hermite_apply_avx2(const HermiteTable& t, const double* xs, std::size_t n,
                        double* out, HermiteTailFn tail, const void* ctx);
}  // namespace detail

#endif  // SSVBR_SIMD_ENABLED

/// Scalar reference: one Hermite cell evaluation, the exact operation
/// order of TabulatedTransform::interpolate (mul + add, no FMA).
inline double hermite_eval(const HermiteTable& t, double x) noexcept {
  const double u = (x - t.lo) * t.inv_step;
  std::size_t i = static_cast<std::size_t>(u);
  if (i > t.last_cell) i = t.last_cell;  // x == hi lands here
  const double s = u - static_cast<double>(i);
  const double s2 = s * s;
  const double s3 = s2 * s;
  const double h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
  const double h10 = s3 - 2.0 * s2 + s;
  const double h01 = -2.0 * s3 + 3.0 * s2;
  const double h11 = s3 - s2;
  return h00 * t.y[i] + h10 * t.step * t.d[i] + h01 * t.y[i + 1] +
         h11 * t.step * t.d[i + 1];
}

/// Elementwise out[i] = H(xs[i]) with exact-tail fallback for points
/// outside [lo, hi]. Processes strictly in index order and reads xs[i]
/// before writing out[i], so full aliasing (out == xs) is safe — the
/// in-place use in ModelArrivalProcess depends on it.
inline void hermite_apply(const HermiteTable& t, const double* xs,
                          std::size_t n, double* out, HermiteTailFn tail,
                          const void* ctx) {
#if SSVBR_SIMD_ENABLED
  if (detail::g_use_avx2) {
    detail::hermite_apply_avx2(t, xs, n, out, tail, ctx);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const double x = xs[i];
    out[i] = (x < t.lo || x > t.hi) ? tail(ctx, x) : hermite_eval(t, x);
  }
}

}  // namespace ssvbr::simd
