// ssvbr/common/json.h
//
// Minimal JSON reading for the library's own file formats (engine
// checkpoints, and any future snapshot the tooling wants to round-trip
// through Python). This is deliberately not a general-purpose JSON
// stack: it parses the subset the library itself writes — objects,
// arrays, double-quoted strings with the standard escapes, numbers,
// true/false/null — into an immutable value tree, and rejects anything
// malformed with ssvbr::Error{kCheckpointCorrupt-ish} via JsonParseError.
//
// Exactness convention: fields whose bit patterns matter (RNG state
// words, accumulator doubles) are stored as hex *strings* ("0x1a2b...")
// rather than JSON numbers, because JSON numbers round-trip through
// doubles and would silently lose u64 precision. parse_hex_u64 decodes
// them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ssvbr::json {

/// Thrown on malformed input. Carries a byte offset for context.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// An immutable parsed JSON value.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;

  /// Object lookup. get() throws on a missing key; find() returns
  /// nullptr. Both throw if this value is not an object.
  const Value& get(const std::string& key) const;
  const Value* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }

  /// Number as a non-negative integer; throws if negative, fractional,
  /// or above 2^53 (where doubles stop being exact).
  std::uint64_t as_uint() const;

  // Construction is the parser's business; default is null.
  Value() = default;

 private:
  friend Value parse(std::string_view text);
  friend class Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parse one JSON document; trailing non-whitespace is an error.
Value parse(std::string_view text);

/// Decode a "0x..." (or bare) hex string into a u64; throws
/// std::runtime_error on malformed input. Used for bit-exact fields.
std::uint64_t parse_hex_u64(std::string_view s);

/// Format a u64 as "0x<lowercase hex>" (the writer-side counterpart).
std::string hex_u64(std::uint64_t v);

/// Escape a string for embedding in a JSON document (adds quotes).
std::string quote(std::string_view s);

}  // namespace ssvbr::json
