#include "common/error.h"

#include <sstream>

namespace ssvbr::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file, int line,
                   const std::string& message) {
  std::ostringstream os;
  os << kind << ": " << message << " [failed: `" << expr << "` at " << file << ':' << line
     << ']';
  return os.str();
}
}  // namespace

void throw_invalid_argument(const char* expr, const char* file, int line,
                            const std::string& message) {
  throw InvalidArgument(format("invalid argument", expr, file, line, message));
}

void throw_internal_error(const char* expr, const char* file, int line,
                          const std::string& message) {
  throw InternalError(format("internal error", expr, file, line, message));
}

}  // namespace ssvbr::detail
