#include "common/error.h"

#include <sstream>

namespace ssvbr {

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kEmptyTwistGrid: return "empty_twist_grid";
    case ErrorCode::kUnwritableCheckpoint: return "unwritable_checkpoint";
    case ErrorCode::kCheckpointCorrupt: return "checkpoint_corrupt";
    case ErrorCode::kFingerprintMismatch: return "fingerprint_mismatch";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kStreamingIncompatible: return "streaming_incompatible";
    case ErrorCode::kSourceKindIncompatible: return "source_kind_incompatible";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out = ssvbr::to_string(code);
  out += ": ";
  out += what;
  if (!context.empty()) {
    out += " [";
    out += context;
    out += ']';
  }
  return out;
}

}  // namespace ssvbr

namespace ssvbr::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file, int line,
                   const std::string& message) {
  std::ostringstream os;
  os << kind << ": " << message << " [failed: `" << expr << "` at " << file << ':' << line
     << ']';
  return os.str();
}
}  // namespace

void throw_invalid_argument(const char* expr, const char* file, int line,
                            const std::string& message) {
  throw InvalidArgument(format("invalid argument", expr, file, line, message));
}

void throw_internal_error(const char* expr, const char* file, int line,
                          const std::string& message) {
  throw InternalError(format("internal error", expr, file, line, message));
}

}  // namespace ssvbr::detail
