// ssvbr/common/error.h
//
// Error-handling primitives for the ssvbr library.
//
// Library entry points validate their preconditions with SSVBR_REQUIRE,
// which throws ssvbr::InvalidArgument (for caller mistakes) so that
// misuse is detected deterministically in all build types. Internal
// invariants that indicate a library bug use SSVBR_ENSURE, which throws
// ssvbr::InternalError.
#pragma once

#include <stdexcept>
#include <string>

namespace ssvbr {

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when an internal invariant of the library is violated (a bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a numerical routine fails to converge or encounters an
/// ill-conditioned problem (e.g. a non-positive-definite autocorrelation).
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file, int line,
                                         const std::string& message);
[[noreturn]] void throw_internal_error(const char* expr, const char* file, int line,
                                       const std::string& message);
}  // namespace detail

}  // namespace ssvbr

/// Validate a caller-visible precondition; throws ssvbr::InvalidArgument.
#define SSVBR_REQUIRE(cond, message)                                                     \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      ::ssvbr::detail::throw_invalid_argument(#cond, __FILE__, __LINE__, (message));     \
    }                                                                                    \
  } while (false)

/// Validate an internal invariant; throws ssvbr::InternalError.
#define SSVBR_ENSURE(cond, message)                                                      \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      ::ssvbr::detail::throw_internal_error(#cond, __FILE__, __LINE__, (message));       \
    }                                                                                    \
  } while (false)
