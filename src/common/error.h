// ssvbr/common/error.h
//
// Error-handling primitives for the ssvbr library.
//
// Library entry points validate their preconditions with SSVBR_REQUIRE,
// which throws ssvbr::InvalidArgument (for caller mistakes) so that
// misuse is detected deterministically in all build types. Internal
// invariants that indicate a library bug use SSVBR_ENSURE, which throws
// ssvbr::InternalError.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace ssvbr {

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when an internal invariant of the library is violated (a bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a numerical routine fails to converge or encounters an
/// ill-conditioned problem (e.g. a non-positive-definite autocorrelation).
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

/// Machine-readable classification of run-control failures. Unlike the
/// exception hierarchy above (which encodes *who* is at fault), these
/// codes encode *what to do about it*: fix the request, fix the file
/// system, or accept that the checkpoint belongs to a different
/// campaign.
enum class ErrorCode {
  kInvalidArgument,       ///< the request itself is malformed
  kEmptyTwistGrid,        ///< a sweep was asked to scan zero grid points
  kUnwritableCheckpoint,  ///< checkpoint path cannot be created/written
  kCheckpointCorrupt,     ///< snapshot exists but cannot be decoded
  kFingerprintMismatch,   ///< snapshot belongs to a different campaign/config
  kUnsupported,           ///< valid request, not implemented for this estimator
  kIoError,               ///< read/write failed mid-operation
  kStreamingIncompatible, ///< a source class asks for block streaming but its
                          ///< config cannot stream (non-Paxson generator, cell
                          ///< segmentation, or a zero block size)
  kSourceKindIncompatible,///< a source class combines a non-default SourceKind
                          ///< with a feature only kVbrModel classes support
                          ///< (multi-slot frames, cell segmentation, block
                          ///< streaming, or a batched ABR-client population)
};

/// Stable identifier string for an ErrorCode (used in messages and by
/// tooling that matches on error classes).
const char* to_string(ErrorCode code) noexcept;

/// Structured error value: a code for programs, a sentence for humans,
/// and the offending context (a path, a field name, a mismatching
/// value) so callers never need to parse the message.
struct Error {
  ErrorCode code = ErrorCode::kInvalidArgument;
  std::string what;     ///< human-readable description
  std::string context;  ///< offending input: path, field, value, ...

  /// "code: what [context]" — the string RunError::what() carries.
  std::string to_string() const;
};

/// Exception wrapper around Error for the run-control front door
/// (engine::run and friends): catch RunError, switch on code().
class RunError : public std::runtime_error {
 public:
  explicit RunError(Error error)
      : std::runtime_error(error.to_string()), error_(std::move(error)) {}

  const Error& error() const noexcept { return error_; }
  ErrorCode code() const noexcept { return error_.code; }
  const std::string& context() const noexcept { return error_.context; }

 private:
  Error error_;
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file, int line,
                                         const std::string& message);
[[noreturn]] void throw_internal_error(const char* expr, const char* file, int line,
                                       const std::string& message);
}  // namespace detail

}  // namespace ssvbr

/// Validate a caller-visible precondition; throws ssvbr::InvalidArgument.
#define SSVBR_REQUIRE(cond, message)                                                     \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      ::ssvbr::detail::throw_invalid_argument(#cond, __FILE__, __LINE__, (message));     \
    }                                                                                    \
  } while (false)

/// Validate an internal invariant; throws ssvbr::InternalError.
#define SSVBR_ENSURE(cond, message)                                                      \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      ::ssvbr::detail::throw_internal_error(#cond, __FILE__, __LINE__, (message));       \
    }                                                                                    \
  } while (false)
