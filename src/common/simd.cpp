// AVX2 kernels + runtime dispatch for common/simd.h. Compiled only
// under -DSSVBR_SIMD=ON (the build gates the option to x86-64 GCC or
// Clang); the vector bodies carry per-function target attributes so the
// rest of the translation unit — and the whole library — needs no
// global -mavx2 and stays runnable on any x86-64.
//
// Bit-identity contract: every kernel reproduces the scalar evaluation
// order exactly — see the header. In particular only _mm256_mul_pd and
// _mm256_add_pd/_mm256_sub_pd appear below, never an FMA: the library
// builds in ISO mode (-std=c++20) where the compiler does not contract
// the scalar kernels, so a fused vector path would produce different
// bits.
#include "common/simd.h"

#if SSVBR_SIMD_ENABLED

#include <immintrin.h>

#include <cstdlib>

namespace ssvbr::simd {

namespace detail {

bool g_use_avx2 = false;

__attribute__((target("avx2"))) double dot_avx2(const double* a,
                                                const double* b,
                                                std::size_t n) noexcept {
  // Lane j accumulates the scalar kernel's s_j: elements j, j+4, j+8...
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  // Reduce exactly as the scalar kernel: (s0 + s1) + (s2 + s3).
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const double s01 =
      _mm_cvtsd_f64(lo) + _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double s23 =
      _mm_cvtsd_f64(hi) + _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  double s = s01 + s23;
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

__attribute__((target("avx2"))) double dot_reversed_avx2(
    const double* a, const double* b, std::size_t n) noexcept {
  const double* const br = b + (n - 1);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto d = static_cast<std::ptrdiff_t>(i);
    const __m256d va = _mm256_loadu_pd(a + i);
    // Memory at br - d - 3 holds {br[-d-3], br[-d-2], br[-d-1], br[-d]};
    // reversing the lanes lines lane j up with the scalar kernel's s_j.
    const __m256d vb =
        _mm256_permute4x64_pd(_mm256_loadu_pd(br - d - 3), 0x1B);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
  }
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const double s01 =
      _mm_cvtsd_f64(lo) + _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
  const double s23 =
      _mm_cvtsd_f64(hi) + _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
  double s = s01 + s23;
  for (; i < n; ++i) s += a[i] * br[-static_cast<std::ptrdiff_t>(i)];
  return s;
}

__attribute__((target("avx2"))) void axpy_avx2(double c, const double* h,
                                               double* out,
                                               std::size_t n) noexcept {
  const __m256d vc = _mm256_set1_pd(c);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_add_pd(_mm256_loadu_pd(out + i),
                                    _mm256_mul_pd(vc, _mm256_loadu_pd(h + i)));
    _mm256_storeu_pd(out + i, v);
  }
  for (; i < n; ++i) out[i] += c * h[i];
}

__attribute__((target("avx2"))) void hermite_apply_avx2(
    const HermiteTable& t, const double* xs, std::size_t n, double* out,
    HermiteTailFn tail, const void* ctx) {
  const __m256d vlo = _mm256_set1_pd(t.lo);
  const __m256d vhi = _mm256_set1_pd(t.hi);
  const __m256d vinv = _mm256_set1_pd(t.inv_step);
  const __m256d vstep = _mm256_set1_pd(t.step);
  const __m128i vlast = _mm_set1_epi32(static_cast<int>(t.last_cell));
  const __m128i vone = _mm_set1_epi32(1);
  const __m256d c2 = _mm256_set1_pd(2.0);
  const __m256d c3 = _mm256_set1_pd(3.0);
  const __m256d cm2 = _mm256_set1_pd(-2.0);
  const __m256d cone = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    // In-range test matching the scalar `x < lo || x > hi` branch
    // (NGE/NLE so a NaN lane counts as in-range, like the scalar path).
    const __m256d in = _mm256_and_pd(_mm256_cmp_pd(x, vlo, _CMP_NLT_UQ),
                                     _mm256_cmp_pd(x, vhi, _CMP_NGT_UQ));
    if (_mm256_movemask_pd(in) != 0xF) {
      // At least one grid-exterior lane: evaluate the whole block
      // scalar, in order (reads before writes, so aliasing holds).
      for (std::size_t j = i; j < i + 4; ++j) {
        const double xj = xs[j];
        out[j] =
            (xj < t.lo || xj > t.hi) ? tail(ctx, xj) : hermite_eval(t, xj);
      }
      continue;
    }
    const __m256d u = _mm256_mul_pd(_mm256_sub_pd(x, vlo), vinv);
    // Truncation == the scalar size_t cast (u >= 0 here); intervals are
    // always < 2^31 so int32 indices suffice for the gathers.
    __m128i cell = _mm256_cvttpd_epi32(u);
    cell = _mm_min_epi32(cell, vlast);
    const __m256d s = _mm256_sub_pd(u, _mm256_cvtepi32_pd(cell));
    const __m128i cell1 = _mm_add_epi32(cell, vone);
    const __m256d yi = _mm256_i32gather_pd(t.y, cell, 8);
    const __m256d yi1 = _mm256_i32gather_pd(t.y, cell1, 8);
    const __m256d di = _mm256_i32gather_pd(t.d, cell, 8);
    const __m256d di1 = _mm256_i32gather_pd(t.d, cell1, 8);
    const __m256d s2 = _mm256_mul_pd(s, s);
    const __m256d s3 = _mm256_mul_pd(s2, s);
    // Basis and combination in the scalar interpolate()'s exact order.
    const __m256d h00 = _mm256_add_pd(
        _mm256_sub_pd(_mm256_mul_pd(c2, s3), _mm256_mul_pd(c3, s2)), cone);
    const __m256d h10 =
        _mm256_add_pd(_mm256_sub_pd(s3, _mm256_mul_pd(c2, s2)), s);
    const __m256d h01 =
        _mm256_add_pd(_mm256_mul_pd(cm2, s3), _mm256_mul_pd(c3, s2));
    const __m256d h11 = _mm256_sub_pd(s3, s2);
    __m256d r = _mm256_mul_pd(h00, yi);
    r = _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(h10, vstep), di));
    r = _mm256_add_pd(r, _mm256_mul_pd(h01, yi1));
    r = _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(h11, vstep), di1));
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < n; ++i) {
    const double x = xs[i];
    out[i] = (x < t.lo || x > t.hi) ? tail(ctx, x) : hermite_eval(t, x);
  }
}

}  // namespace detail

namespace {

bool detect_avx2() noexcept {
  if (const char* force = std::getenv("SSVBR_SIMD_FORCE_SCALAR")) {
    // Any value except empty / "0" forces the scalar kernels.
    if (force[0] != '\0' && !(force[0] == '0' && force[1] == '\0')) {
      return false;
    }
  }
  return __builtin_cpu_supports("avx2") != 0;
}

// Resolve the dispatch during static initialization so the first kernel
// call — from any thread — sees a settled decision.
struct DispatchInit {
  DispatchInit() noexcept { refresh_dispatch(); }
};
const DispatchInit g_dispatch_init;

}  // namespace

IsaLevel active_level() noexcept {
  return detail::g_use_avx2 ? IsaLevel::kAvx2 : IsaLevel::kScalar;
}

void refresh_dispatch() noexcept { detail::g_use_avx2 = detect_avx2(); }

}  // namespace ssvbr::simd

#endif  // SSVBR_SIMD_ENABLED
