#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ssvbr::json {

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: value is not a bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: value is not a string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json: value is not an array");
  return array_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: value is not an object");
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const Value& Value::get(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw std::runtime_error("json: missing key \"" + key + "\"");
  return *v;
}

std::uint64_t Value::as_uint() const {
  const double d = as_number();
  if (d < 0.0 || d > 9007199254740992.0 || std::floor(d) != d) {
    throw std::runtime_error("json: number is not an exact non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    skip_ws();
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind_ = Value::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  Value object() {
    expect('{');
    Value v;
    v.kind_ = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object_.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind_ = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.array_.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value string_value() {
    Value v;
    v.kind_ = Value::Kind::kString;
    v.string_ = parse_string();
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The library's own writers never emit \u escapes; decode the
          // BMP code point as UTF-8 so foreign files still parse.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.' ||
           peek() == 'e' || peek() == 'E' || peek() == '+' || peek() == '-') {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double d = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, d);
    if (ec != std::errc{} || end != last) fail("malformed number");
    Value v;
    v.kind_ = Value::Kind::kNumber;
    v.number_ = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value parse(std::string_view text) { return Parser(text).document(); }

std::uint64_t parse_hex_u64(std::string_view s) {
  if (s.substr(0, 2) == "0x" || s.substr(0, 2) == "0X") s.remove_prefix(2);
  if (s.empty() || s.size() > 16) throw std::runtime_error("json: bad hex u64");
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint64_t>(c - 'A' + 10);
    else throw std::runtime_error("json: bad hex digit");
  }
  return v;
}

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  buf[0] = '0';
  buf[1] = 'x';
  static const char* digits = "0123456789abcdef";
  int n = 2;
  // Emit without leading zeros (but at least one digit).
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned d = static_cast<unsigned>((v >> shift) & 0xF);
    if (!started && d == 0 && shift != 0) continue;
    started = true;
    buf[n++] = digits[d];
  }
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x", c);
          out += esc;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace ssvbr::json
