// ssvbr/common/math_util.h
//
// Small numerical helpers shared across the library: log-domain
// accumulation (used by the importance-sampling likelihood ratios),
// stable summation, and simple scalar utilities.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

namespace ssvbr {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;
inline constexpr double kSqrt2 = 1.41421356237309504880;

/// log(exp(a) + exp(b)) without overflow.
inline double log_sum_exp(double a, double b) noexcept {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = a > b ? a : b;
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

/// Kahan-compensated sum of a range. Deterministic and accurate for the
/// long accumulations that appear in Durbin-Levinson recursions.
inline double kahan_sum(std::span<const double> xs) noexcept {
  double sum = 0.0;
  double c = 0.0;
  for (const double x : xs) {
    const double y = x - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

/// Dot product sum_i a[i] * b[i] with four independent accumulators so
/// the additions do not form one serial dependency chain. This is the
/// kernel behind every Durbin-Levinson / Hosking conditional mean; the
/// summation order differs from a naive left-to-right loop (and is
/// usually slightly more accurate, pairwise-style).
inline double blocked_dot(const double* a, const double* b, std::size_t n) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

/// Reversed-order dot product sum_i a[i] * b[n-1-i] — the shape of a
/// regression on the most recent history: sum_j phi_{k,j} x_{k-j} with
/// a = phi row and b = x_0..x_{k-1}. Same blocking as blocked_dot.
inline double blocked_dot_reversed(const double* a, const double* b,
                                   std::size_t n) noexcept {
  const double* const br = b + (n - 1);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto d = static_cast<std::ptrdiff_t>(i);
    s0 += a[i] * br[-d];
    s1 += a[i + 1] * br[-d - 1];
    s2 += a[i + 2] * br[-d - 2];
    s3 += a[i + 3] * br[-d - 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += a[i] * br[-static_cast<std::ptrdiff_t>(i)];
  return s;
}

/// Clamp x into [lo, hi].
inline double clamp(double x, double lo, double hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
inline bool almost_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) noexcept {
  const double diff = std::fabs(a - b);
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

/// Integer power of two test.
inline bool is_power_of_two(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n (n must be <= 2^62).
inline std::size_t next_power_of_two(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace ssvbr
