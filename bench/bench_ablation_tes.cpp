// Ablation — TES baseline vs the unified model.
//
// TES (Melamed et al.) is the prior art the paper explicitly builds
// upon: it matches the marginal exactly and can match short-range
// correlation, but its autocorrelation decays geometrically. We fit a
// TES+ process to the empirical lag-1 autocorrelation (bisection on the
// innovation width) and compare its ACF against the empirical trace and
// the unified model at increasing lags — reproducing, quantitatively,
// the paper's argument for a self-similar background.
#include <cstdio>
#include <cmath>
#include <memory>

#include "bench_util.h"
#include "baselines/tes.h"
#include "stats/descriptive.h"
#include "stats/empirical_distribution.h"

int main() {
  using namespace ssvbr;
  bench::banner("Ablation: TES baseline vs the unified SRD+LRD model",
                "TES matches short lags but dies geometrically; unified model holds");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const std::vector<double> series = tr.i_frame_series();
  const std::vector<double> emp_acf = stats::autocorrelation_fft(series, 400);
  const auto marginal = std::make_shared<stats::EmpiricalDistribution>(series);

  // Fit the TES innovation width so the stitched-background lag-1 ACF
  // matches the empirical lag-1 value (bisection; ACF decreases in
  // alpha).
  double lo = 1e-3;
  double hi = 1.0;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    const baselines::TesProcess probe(mid, 0.5, marginal);
    if (probe.background_autocorrelation(1) > emp_acf[1]) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double alpha = 0.5 * (lo + hi);
  const baselines::TesProcess tes(alpha, 0.5, marginal);
  std::printf("# fitted_innovation_width_alpha,%.4f\n", alpha);
  std::printf("# tes_background_r1,%.4f (empirical r1 %.4f)\n",
              tes.background_autocorrelation(1), emp_acf[1]);

  // Simulated TES foreground ACF.
  RandomEngine rng(99);
  const std::vector<double> tes_path = tes.sample(bench::scaled(series.size(), 8192), rng);
  const std::vector<double> tes_acf = stats::autocorrelation_fft(tes_path, 400);

  // Unified model foreground ACF (averaged paths).
  const core::FittedModel& fitted = bench::fitted_i_frame_model();
  std::vector<double> uni_acf(401, 0.0);
  const int reps = static_cast<int>(bench::scaled(5, 2));
  for (int rep = 0; rep < reps; ++rep) {
    const auto y = fitted.model.generate(series.size(), rng);
    const auto a = stats::autocorrelation_fft(y, 400);
    for (std::size_t j = 0; j <= 400; ++j) uni_acf[j] += a[j] / reps;
  }

  std::printf("lag,empirical_acf,tes_acf,unified_acf,tes_theory\n");
  for (const std::size_t k :
       {1u, 2u, 5u, 10u, 20u, 40u, 60u, 100u, 150u, 200u, 300u, 400u}) {
    std::printf("%u,%.4f,%.4f,%.4f,%.4f\n", k, emp_acf[k], tes_acf[k], uni_acf[k],
                tes.background_autocorrelation(k));
  }
  return 0;
}
