// Ablation — importance sampling vs crude Monte Carlo.
//
// At a sequence of increasingly rare events, compares the work needed by
// the twisted IS estimator against crude MC for the same relative
// precision. MC's required replications grow like 1/P; IS keeps the
// normalized variance roughly flat — the justification for Section 4.
#include <cstdio>
#include <cmath>
#include <memory>

#include "bench_util.h"
#include "engine/run.h"
#include "is/is_estimator.h"
#include "queueing/overflow_mc.h"

int main() {
  using namespace ssvbr;
  bench::banner("Ablation: importance sampling vs crude Monte Carlo",
                "IS variance reduction grows with event rarity (x10..x1000+)");
  engine::ReplicationEngine engine(bench::engine_config());
  std::printf("# engine_threads: %u\n", engine.threads());

  const core::FittedModel& fitted = bench::fitted_i_frame_model();
  const double mean_rate = fitted.model.mean();
  const double util = 0.3;
  const double service = mean_rate / util;
  const std::size_t k = 300;
  const std::size_t reps = bench::scaled(1500, 150);

  const fractal::HoskingModel background(fitted.model.background_correlation(), k);
  auto model_ptr = std::make_shared<core::UnifiedVbrModel>(fitted.model);
  const auto make_arrivals = [&model_ptr] {
    return std::make_unique<queueing::ModelArrivalProcess>(
        model_ptr, core::BackgroundGenerator::kHosking);
  };

  std::printf(
      "normalized_buffer,is_P,is_norm_var,is_var_reduction,is_ess,mc_P,mc_hits,"
      "mc_reps_for_10pct_ci,is_reps_for_10pct_ci\n");
  for (const double b : {4.0, 8.0, 12.0, 16.0, 20.0}) {
    is::IsOverflowSettings settings;
    settings.twisted_mean = 2.5;
    settings.service_rate = service;
    settings.buffer = b * mean_rate;
    settings.stop_time = k;
    settings.replications = reps;
    RandomEngine rng1(31);
    engine::RunRequest is_req;
    is_req.kind = engine::EstimatorKind::kOverflowIs;
    is_req.is.model = &fitted.model;
    is_req.is.background = &background;
    is_req.is.settings = settings;
    const is::IsOverflowEstimate is_est =
        engine::run_with(is_req, engine, rng1).is_estimate;

    RandomEngine rng2(32);
    engine::RunRequest mc_req;
    mc_req.kind = engine::EstimatorKind::kOverflowMc;
    mc_req.mc.make_arrivals = make_arrivals;
    mc_req.mc.service_rate = service;
    mc_req.mc.buffer = settings.buffer;
    mc_req.mc.stop_time = k;
    mc_req.mc.replications = reps;
    const queueing::OverflowEstimate mc_est = engine::run_with(mc_req, engine, rng2).mc;

    // Replications needed for a 10% relative 95% CI: N = (1.96/0.1)^2 * nv.
    const double target = (1.96 / 0.1) * (1.96 / 0.1);
    const double mc_needed =
        is_est.probability > 0.0 ? target * (1.0 - is_est.probability) / is_est.probability
                                 : 0.0;
    const double is_needed =
        is_est.normalized_variance > 0.0
            ? target * is_est.normalized_variance * static_cast<double>(reps)
            : 0.0;
    std::printf("%.0f,%.4e,%.4f,%.1f,%.1f,%.4e,%zu,%.0f,%.0f\n", b, is_est.probability,
                is_est.normalized_variance, is_est.variance_reduction_vs_mc,
                is_est.effective_sample_size, mc_est.probability, mc_est.hits, mc_needed,
                is_needed);
  }
  return 0;
}
