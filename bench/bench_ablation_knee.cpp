// Ablation — sensitivity of the composite ACF fit to the knee Kt.
//
// Sweeps fixed knee positions around the SSE-optimal one and reports the
// branch parameters and total fit error, plus the paper-style
// single-pass fit (hint + curve intersection) for comparison. Shows the
// fit error is flat near the optimum — the paper's visual knee reading
// (60-80) is adequate.
#include <cstdio>

#include "bench_util.h"
#include "common/error.h"
#include "stats/acf_fit.h"
#include "stats/descriptive.h"

int main() {
  using namespace ssvbr;
  bench::banner("Ablation: knee position sensitivity of the composite ACF fit",
                "fit SSE is flat across Kt ~ 40..120; branch parameters drift smoothly");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const std::vector<double> series = tr.i_frame_series();
  const std::vector<double> acf = stats::autocorrelation_fft(series, 500);

  const stats::CompositeAcfFit best = stats::fit_composite_acf(acf);
  std::printf("# sse_optimal_knee,%zu\n", best.knee);

  std::printf("knee,lambda,lrd_scale,beta,sse\n");
  for (std::size_t knee = 20; knee <= 200; knee += 10) {
    stats::CompositeAcfFitOptions options;
    options.min_knee = knee;
    options.max_knee = knee;
    try {
      const stats::CompositeAcfFit fit = stats::fit_composite_acf(acf, options);
      std::printf("%zu,%.5f,%.4f,%.4f,%.5f\n", knee, fit.lambda, fit.lrd_scale,
                  fit.beta, fit.sse);
    } catch (const NumericalError&) {
      std::printf("%zu,-,-,-,-\n", knee);
    }
  }

  stats::CompositeAcfFitOptions paper_style;
  paper_style.exhaustive_knee_search = false;
  paper_style.hint_knee = 60;
  const stats::CompositeAcfFit single = stats::fit_composite_acf(acf, paper_style);
  std::printf("# paper_style_intersection_knee,%zu\n", single.knee);
  std::printf("# paper_style_lambda,%.5f\n", single.lambda);
  std::printf("# paper_style_beta,%.4f\n", single.beta);
  return 0;
}
