// Replication-engine scaling benchmark.
//
// Runs the same fixed-seed overflow studies — crude Monte-Carlo
// (eq. 16-17) and importance sampling (Section 4) — through the
// unified RunRequest API (engine/run.h) at increasing thread counts, verifies that every
// thread count reproduces the T=1 result bit-for-bit, and prints ONE
// machine-readable JSON line per estimator so future PRs can track
// threads-vs-throughput:
//
//   {"bench":"engine_scaling","estimator":"mc", ...,
//    "results":[{"threads":1,"seconds":...,"replications_per_s":...,
//                "speedup":...,"deterministic":true}, ...]}
//
// REPRO_BENCH_SCALE scales the replication counts. The default
// workload is the acceptance target: 10^4 replications.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "dist/distributions.h"
#include "engine/run.h"
#include "fractal/autocorrelation.h"
#include "queueing/arrival.h"

namespace {

using namespace ssvbr;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Run `study(engine)` at each thread count; returns per-thread-count
/// wall-clock seconds and whether the estimate matched T=1 exactly.
template <class Study>
void report(const char* estimator, std::size_t replications,
            const std::vector<unsigned>& thread_counts, Study&& study) {
  struct Row {
    unsigned threads;
    double seconds;
    bool deterministic;
  };
  std::vector<Row> rows;
  double p_ref = 0.0, var_ref = 0.0;
  std::size_t hits_ref = 0;
  for (const unsigned t : thread_counts) {
    engine::ReplicationEngine eng(t);
    const auto t0 = std::chrono::steady_clock::now();
    const auto [p, var, hits] = study(eng);
    const double secs = seconds_since(t0);
    bool deterministic = true;
    if (t == thread_counts.front()) {
      p_ref = p;
      var_ref = var;
      hits_ref = hits;
    } else {
      deterministic = p == p_ref && var == var_ref && hits == hits_ref;
    }
    rows.push_back(Row{t, secs, deterministic});
  }
  std::printf("{\"bench\":\"engine_scaling\",\"estimator\":\"%s\","
              "\"replications\":%zu,\"probability\":%.17g,\"results\":[",
              estimator, replications, p_ref);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double rps = rows[i].seconds > 0.0
                           ? static_cast<double>(replications) / rows[i].seconds
                           : 0.0;
    std::printf("%s{\"threads\":%u,\"seconds\":%.4f,\"replications_per_s\":%.1f,"
                "\"speedup\":%.2f,\"deterministic\":%s}",
                i == 0 ? "" : ",", rows[i].threads, rows[i].seconds, rps,
                rows[i].seconds > 0.0 ? rows[0].seconds / rows[i].seconds : 0.0,
                rows[i].deterministic ? "true" : "false");
  }
  std::printf("]}\n");
}

}  // namespace

int main() {
  using namespace ssvbr;
  bench::banner("Perf: replication-engine scaling (threads vs throughput)",
                "bit-identical estimates at every thread count; speedup bounded by cores");
  const std::vector<unsigned> thread_counts{1, 2, 4, 8};

  // Crude MC on IID gamma arrivals: cheap replications, stresses the
  // engine's sharding/jump overhead.
  {
    const std::size_t reps = bench::scaled(10000, 500);
    const std::size_t k = 200;
    auto gamma = std::make_shared<GammaDistribution>(2.0, 1.0);
    const auto make_arrivals = [&gamma] {
      return std::make_unique<queueing::IidArrivalProcess>(gamma);
    };
    engine::RunRequest request;
    request.kind = engine::EstimatorKind::kOverflowMc;
    request.mc.make_arrivals = make_arrivals;
    request.mc.service_rate = 2.5;
    request.mc.buffer = 12.0;
    request.mc.stop_time = k;
    request.mc.replications = reps;
    report("mc", reps, thread_counts, [&](engine::ReplicationEngine& eng) {
      RandomEngine rng(1001);
      const queueing::OverflowEstimate est =
          engine::run_with(request, eng, rng).mc;
      return std::make_tuple(est.probability, est.estimator_variance, est.hits);
    });
  }

  // Importance sampling on an exponential-ACF background: Hosking
  // conditional sampling per step, the paper's Section 4 workload.
  {
    const std::size_t reps = bench::scaled(10000, 500);
    auto corr = std::make_shared<fractal::ExponentialAutocorrelation>(0.1);
    core::MarginalTransform h(std::make_shared<GammaDistribution>(2.0, 1.0));
    const core::UnifiedVbrModel model(std::move(corr), std::move(h));
    const fractal::HoskingModel background(model.background_correlation(), 100);
    is::IsOverflowSettings settings;
    settings.twisted_mean = 2.0;
    settings.service_rate = model.mean() / 0.3;
    settings.buffer = 20.0 * model.mean();
    settings.stop_time = 100;
    settings.replications = reps;
    engine::RunRequest request;
    request.kind = engine::EstimatorKind::kOverflowIs;
    request.is.model = &model;
    request.is.background = &background;
    request.is.settings = settings;
    report("is", reps, thread_counts, [&](engine::ReplicationEngine& eng) {
      RandomEngine rng(1002);
      const is::IsOverflowEstimate est =
          engine::run_with(request, eng, rng).is_estimate;
      return std::make_tuple(est.probability, est.estimator_variance, est.hits);
    });
  }
  return 0;
}
