// Replication-engine scaling benchmark.
//
// Runs the same fixed-seed overflow studies — crude Monte-Carlo
// (eq. 16-17) and importance sampling (Section 4) — through the
// unified RunRequest API (engine/run.h) at increasing thread counts, verifies that every
// thread count reproduces the T=1 result bit-for-bit, and prints ONE
// machine-readable JSON line per estimator so future PRs can track
// threads-vs-throughput:
//
//   {"bench":"engine_scaling","estimator":"mc", ...,
//    "results":[{"threads":1,"seconds":...,"replications_per_s":...,
//                "speedup":...,"efficiency":...,"deterministic":true,
//                "breakdown":{...}}, ...],
//    "telemetry_enabled":true,"scaling_report":{...}}
//
// In SSVBR_OBS=ON builds each result carries a telemetry breakdown
// (where that cell's thread-seconds went) and the row closes with a
// ScalingReport decomposing the sweep's inefficiency into named causes
// (Amdahl serial fraction, load imbalance, setup cost, pool idle); in
// OBS=OFF builds only the wall-clock trajectory is emitted.
//
// Methodology (the original 10^4-replication cells were 65-90 ms and
// timed cold, so the committed trajectory measured pool wakeup and
// first-touch costs, not the engine):
//
//   * every cell gets a WARM-UP run (a smaller copy of the study)
//     before the timed run, so plan caches, workspaces, and the pool
//     are hot;
//   * the default workloads are sized so every 1-thread cell takes
//     >= 1 s on a commodity core (2*10^5 MC, 5*10^4 IS replications);
//   * each result reports BOTH "efficiency" (speedup / threads, the
//     historical key) and "efficiency_vs_cores" (speedup /
//     min(threads, hardware_concurrency)): on a machine with fewer
//     cores than the sweep's top thread count the former necessarily
//     collapses (8 timeshared threads on 1 core cannot speed up 8x)
//     while the latter isolates actual contention losses. The row
//     carries "hw_concurrency" so readers can reconstruct either.
//
// REPRO_BENCH_SCALE scales the replication counts.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "dist/distributions.h"
#include "engine/run.h"
#include "fractal/autocorrelation.h"
#include "obs/telemetry.h"
#include "queueing/arrival.h"

namespace {

using namespace ssvbr;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct StudyOutcome {
  double probability = 0.0;
  double variance = 0.0;
  std::size_t hits = 0;
  obs::RunTelemetry telemetry;
};

/// Run `study(engine)` at each thread count and print the scaling row:
/// wall-clock + bit-identity per cell, plus (telemetry builds) the
/// thread-second breakdown per cell and the sweep's ScalingReport.
/// `warmup(engine)` runs untimed before each cell on the same engine —
/// a smaller copy of the study, so pool threads exist, per-worker
/// samplers have been built once, and plan/workspace caches are hot
/// when the clock starts.
template <class Study, class Warmup>
void report(const char* estimator, std::size_t replications,
            const std::vector<unsigned>& thread_counts, Study&& study,
            Warmup&& warmup) {
  struct Row {
    unsigned threads;
    double seconds;
    bool deterministic;
    obs::RunTelemetry telemetry;
  };
  std::vector<Row> rows;
  double p_ref = 0.0, var_ref = 0.0;
  std::size_t hits_ref = 0;
  for (const unsigned t : thread_counts) {
    engine::ReplicationEngine eng(t);
    warmup(eng);
    const auto t0 = std::chrono::steady_clock::now();
    StudyOutcome out = study(eng);
    const double secs = seconds_since(t0);
    bool deterministic = true;
    if (t == thread_counts.front()) {
      p_ref = out.probability;
      var_ref = out.variance;
      hits_ref = out.hits;
    } else {
      deterministic = out.probability == p_ref && out.variance == var_ref &&
                      out.hits == hits_ref;
    }
    rows.push_back(Row{t, secs, deterministic, std::move(out.telemetry)});
  }

  std::vector<obs::RunTelemetry> runs;
  runs.reserve(rows.size());
  bool telemetry_enabled = true;
  for (const Row& r : rows) {
    obs::RunTelemetry t = r.telemetry;
    if (!t.enabled) {
      telemetry_enabled = false;
      t.threads = r.threads;
      t.wall_seconds = r.seconds;
    }
    runs.push_back(std::move(t));
  }
  const obs::ScalingReport scaling = obs::ScalingReport::from_runs(runs);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("{\"bench\":\"engine_scaling\",\"estimator\":\"%s\","
              "\"replications\":%zu,\"hw_concurrency\":%u,"
              "\"probability\":%.17g,\"results\":[",
              estimator, replications, hw, p_ref);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double rps = rows[i].seconds > 0.0
                           ? static_cast<double>(replications) / rows[i].seconds
                           : 0.0;
    const double speedup =
        rows[i].seconds > 0.0 ? rows[0].seconds / rows[i].seconds : 0.0;
    // speedup is capped by the cores actually available, not by the
    // requested thread count; normalizing by min(threads, hw) keeps
    // oversubscribed cells comparable across machines.
    const unsigned usable = std::min(rows[i].threads, hw);
    std::printf("%s{\"threads\":%u,\"seconds\":%.4f,\"replications_per_s\":%.1f,"
                "\"speedup\":%.2f,\"efficiency\":%.3f,"
                "\"efficiency_vs_cores\":%.3f,\"deterministic\":%s",
                i == 0 ? "" : ",", rows[i].threads, rows[i].seconds, rps,
                speedup, speedup / static_cast<double>(rows[i].threads),
                speedup / static_cast<double>(usable),
                rows[i].deterministic ? "true" : "false");
    const obs::RunTelemetry& t = rows[i].telemetry;
    if (t.enabled) {
      const double budget = static_cast<double>(t.threads) * t.wall_seconds;
      const double denom = budget > 0.0 ? budget : 1.0;
      std::printf(",\"breakdown\":{\"loop\":%.3f,\"shard_setup\":%.3f,"
                  "\"worker_setup\":%.3f,\"merge\":%.3f,\"checkpoint\":%.3f,"
                  "\"idle\":%.3f,\"load_imbalance\":%.3f}",
                  t.loop_seconds() / denom, t.shard_setup_seconds() / denom,
                  t.worker_setup_seconds() / denom, t.merge_seconds / denom,
                  t.checkpoint_seconds / denom, t.idle_seconds() / denom,
                  t.load_imbalance());
    }
    std::printf("}");
  }
  std::printf("],\"telemetry_enabled\":%s,\"scaling_report\":%s}\n",
              telemetry_enabled ? "true" : "false",
              scaling.to_json().c_str());
}

}  // namespace

int main() {
  using namespace ssvbr;
  bench::banner("Perf: replication-engine scaling (threads vs throughput)",
                "bit-identical estimates at every thread count; speedup bounded by cores");
  const std::vector<unsigned> thread_counts{1, 2, 4, 8};

  // Crude MC on IID gamma arrivals: cheap replications, stresses the
  // engine's sharding/jump overhead. 2*10^5 replications put the
  // 1-thread cell above one second of pure loop time.
  {
    const std::size_t reps = bench::scaled(200000, 500);
    const std::size_t k = 200;
    auto gamma = std::make_shared<GammaDistribution>(2.0, 1.0);
    const auto make_arrivals = [&gamma] {
      return std::make_unique<queueing::IidArrivalProcess>(gamma);
    };
    engine::RunRequest request;
    request.kind = engine::EstimatorKind::kOverflowMc;
    request.mc.make_arrivals = make_arrivals;
    request.mc.service_rate = 2.5;
    request.mc.buffer = 12.0;
    request.mc.stop_time = k;
    request.mc.replications = reps;
    engine::RunRequest warm = request;
    warm.mc.replications = std::min<std::size_t>(reps, 4096);
    report(
        "mc", reps, thread_counts,
        [&](engine::ReplicationEngine& eng) {
          RandomEngine rng(1001);
          engine::RunResult res = engine::run_with(request, eng, rng);
          return StudyOutcome{res.mc.probability, res.mc.estimator_variance,
                              res.mc.hits, std::move(res.telemetry)};
        },
        [&](engine::ReplicationEngine& eng) {
          RandomEngine rng(1001);
          engine::run_with(warm, eng, rng);
        });
  }

  // Importance sampling on an exponential-ACF background: Hosking
  // conditional sampling per step, the paper's Section 4 workload.
  {
    const std::size_t reps = bench::scaled(50000, 500);
    auto corr = std::make_shared<fractal::ExponentialAutocorrelation>(0.1);
    core::MarginalTransform h(std::make_shared<GammaDistribution>(2.0, 1.0));
    const core::UnifiedVbrModel model(std::move(corr), std::move(h));
    const fractal::HoskingModel background(model.background_correlation(), 100);
    is::IsOverflowSettings settings;
    settings.twisted_mean = 2.0;
    settings.service_rate = model.mean() / 0.3;
    settings.buffer = 20.0 * model.mean();
    settings.stop_time = 100;
    settings.replications = reps;
    engine::RunRequest request;
    request.kind = engine::EstimatorKind::kOverflowIs;
    request.is.model = &model;
    request.is.background = &background;
    request.is.settings = settings;
    engine::RunRequest warm = request;
    warm.is.settings.replications = std::min<std::size_t>(reps, 2048);
    report(
        "is", reps, thread_counts,
        [&](engine::ReplicationEngine& eng) {
          RandomEngine rng(1002);
          engine::RunResult res = engine::run_with(request, eng, rng);
          return StudyOutcome{res.is_estimate.probability,
                              res.is_estimate.estimator_variance,
                              res.is_estimate.hits, std::move(res.telemetry)};
        },
        [&](engine::ReplicationEngine& eng) {
          RandomEngine rng(1002);
          engine::run_with(warm, eng, rng);
        });
  }
  return 0;
}
