// Ablation — how much can one trace tell you? (the paper's Fig. 16
// caveat, quantified with batch means)
//
// The paper warns that results from the single empirical trace are
// unreliable: "even if the real data were split into batches we would
// expect significant correlations between batches due to the self
// similar nature of the traffic". This bench computes batch-means
// confidence intervals for the steady-state overflow probability from
// the single stand-in trace and reports the between-batch correlation —
// large for this LRD stream, vanishing for an SRD surrogate with the
// same marginal.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "baselines/dar.h"
#include "queueing/batch_means.h"
#include "stats/descriptive.h"
#include "stats/empirical_distribution.h"

int main() {
  using namespace ssvbr;
  bench::banner("Ablation: single-trace batch-means CIs under LRD vs SRD",
                "LRD batches stay correlated; CIs are far wider than the SRD surrogate's");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const std::vector<double> series = tr.i_frame_series();
  const double mean_rate = stats::mean(series);

  // SRD surrogate: DAR(1) with the *same marginal* and the same lag-1
  // autocorrelation.
  const double r1 = stats::autocorrelation_fft(series, 1)[1];
  const baselines::Dar1Process dar(
      r1, std::make_shared<stats::EmpiricalDistribution>(series));
  RandomEngine rng(60);
  const std::vector<double> srd_series = dar.sample(series.size(), rng);

  std::printf(
      "utilization,normalized_buffer,source,P_hat,ci95_halfwidth,batch_lag1_corr\n");
  for (const double util : {0.6, 0.8}) {
    for (const double b : {10.0, 50.0}) {
      const queueing::BatchMeansEstimate lrd =
          queueing::steady_state_overflow_batch_means(series, mean_rate / util,
                                                      b * mean_rate, 16);
      const queueing::BatchMeansEstimate srd =
          queueing::steady_state_overflow_batch_means(srd_series, mean_rate / util,
                                                      b * mean_rate, 16);
      std::printf("%.1f,%.0f,lrd_trace,%.4e,%.4e,%.3f\n", util, b, lrd.mean,
                  lrd.ci95_halfwidth, lrd.batch_mean_lag1_correlation);
      std::printf("%.1f,%.0f,srd_surrogate,%.4e,%.4e,%.3f\n", util, b, srd.mean,
                  srd.ci95_halfwidth, srd.batch_mean_lag1_correlation);
    }
  }
  return 0;
}
