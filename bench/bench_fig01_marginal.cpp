// Fig. 1 — Empirical distribution (histogram) of bytes/frame.
//
// The paper plots the relative frequency of frame sizes of the
// empirical trace; the long right tail ("far from Gaussian") motivates
// the histogram-inversion transform.
#include <cstdio>

#include "bench_util.h"
#include "stats/histogram.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 1: empirical frame-size distribution",
                "unimodal body with a long right tail, range ~0..35000 bytes/frame");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const stats::Histogram hist = stats::Histogram::from_samples(tr.frame_sizes(), 70);
  std::printf("bytes_per_frame,relative_frequency\n");
  for (std::size_t i = 0; i < hist.bin_count(); ++i) {
    std::printf("%.1f,%.6f\n", hist.bin_center(i), hist.frequency(i));
  }
  return 0;
}
