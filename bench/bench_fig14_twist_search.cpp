// Fig. 14 — Normalized variance of the IS estimator versus the
// background twisted mean m*.
//
// Paper setting: stopping time k = 500, utilization 0.2, normalized
// buffer size b = 25, 1000 replications. The curve shows a sharp
// "valley"; the paper picks m* = 3.2 as near-optimal, achieving ~1000x
// variance reduction.
#include <cstdio>

#include "bench_util.h"
#include "common/error.h"
#include "engine/run.h"
#include "is/twist_search.h"

int main() {
  using namespace ssvbr;
  bench::banner(
      "Fig. 14: normalized variance of the IS estimator vs twisted mean m*",
      "valley shape, near-optimal m* ~ 3.2, ~1000x variance reduction at the bottom");

  const core::FittedModel& fitted = bench::fitted_i_frame_model();
  const double mean_rate = fitted.model.mean();
  const double utilization = 0.2;
  const double b_normalized = 25.0;

  is::IsOverflowSettings settings;
  settings.service_rate = mean_rate / utilization;
  settings.buffer = b_normalized * mean_rate;
  settings.stop_time = 500;
  settings.replications = bench::scaled(1000, 100);

  const fractal::HoskingModel background(fitted.model.background_correlation(),
                                         settings.stop_time);

  std::vector<double> twists;
  for (double m = 0.5; m <= 5.0 + 1e-9; m += 0.25) twists.push_back(m);

  engine::ReplicationEngine engine(bench::engine_config());
  std::printf("# engine_threads: %u\n", engine.threads());
  RandomEngine rng(14);
  engine::RunRequest req;
  req.kind = engine::EstimatorKind::kTwistSweep;
  req.is.model = &fitted.model;
  req.is.background = &background;
  req.is.settings = settings;
  req.is.twists = twists;
  const std::vector<is::TwistSweepPoint> sweep = engine::run_with(req, engine, rng).sweep;

  std::printf("twisted_mean,normalized_variance,probability,hits,variance_reduction,ess\n");
  for (const auto& p : sweep) {
    std::printf("%.2f,%.6f,%.6e,%zu,%.1f,%.1f\n", p.twisted_mean,
                p.estimate.normalized_variance, p.estimate.probability, p.estimate.hits,
                p.estimate.variance_reduction_vs_mc, p.estimate.effective_sample_size);
  }
  try {
    const auto& best = is::find_best_twist(sweep);
    std::printf("# best_twist,%.2f  (paper: 3.2)\n", best.twisted_mean);
    std::printf("# best_variance_reduction,%.1f  (paper: ~1000)\n",
                best.estimate.variance_reduction_vs_mc);
    std::printf("# best_ess,%.1f of %zu replications\n",
                best.estimate.effective_sample_size, best.estimate.replications);
  } catch (const NumericalError&) {
    std::printf("# best_twist,none (no usable estimate at this scale)\n");
  }
  return 0;
}
