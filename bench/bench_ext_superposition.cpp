// Extension — statistical multiplexing gain under self-similar video.
//
// N independent copies of the fitted VBR model share one link at a
// fixed per-source utilization. For SRD traffic, aggregation smooths
// bursts quickly (multiplexing gain); under LRD the slow scene-scale
// fluctuations do not average out within any operational buffer, so
// the overflow probability improves far more slowly with N — the
// system-level consequence of the paper's measurements.
#include <cstdio>
#include <cmath>

#include "bench_util.h"
#include "is/is_estimator.h"

int main() {
  using namespace ssvbr;
  bench::banner("Extension: overflow probability vs number of multiplexed sources",
                "P falls with N but far slower than the sqrt(N) SRD intuition");

  const core::FittedModel& fitted = bench::fitted_i_frame_model();
  const double mean_rate = fitted.model.mean();
  const double util = 0.5;
  const double b_per_source = 15.0;  // buffer scales with aggregate rate
  const std::size_t k = 400;

  const fractal::HoskingModel background(fitted.model.background_correlation(), k);

  std::printf("n_sources,normalized_buffer_total,log10_P,hits,variance_reduction\n");
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    is::IsOverflowSettings settings;
    settings.twisted_mean = 1.8 / std::sqrt(static_cast<double>(n));
    settings.service_rate = static_cast<double>(n) * mean_rate / util;
    settings.buffer = b_per_source * static_cast<double>(n) * mean_rate;
    settings.stop_time = k;
    settings.replications = bench::scaled(800, 80);
    RandomEngine rng(500 + n);
    const is::IsOverflowEstimate est =
        is::estimate_overflow_is_superposed(fitted.model, background, n, settings, rng);
    const double lp = est.probability > 0.0 ? std::log10(est.probability) : -99.0;
    std::printf("%zu,%.0f,%.4f,%zu,%.1f\n", n, b_per_source * static_cast<double>(n),
                lp, est.hits, est.variance_reduction_vs_mc);
  }
  return 0;
}
