// Fig. 2 — The transform h(x) = F_Y^{-1}(Phi(x)) that maps a standard
// normal marginal to the empirical frame-size marginal (eq. (7)).
#include <cstdio>

#include "bench_util.h"
#include "core/marginal_transform.h"
#include "stats/empirical_distribution.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 2: marginal transform h(x) on [-6, 6]",
                "monotone S-shaped curve from ~0 to ~40000 bytes");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const auto marginal =
      std::make_shared<stats::EmpiricalDistribution>(tr.i_frame_series());
  const core::MarginalTransform h(marginal);

  std::printf("x,h_of_x\n");
  for (double x = -6.0; x <= 6.0 + 1e-9; x += 0.1) {
    std::printf("%.2f,%.1f\n", x, h(x));
  }
  std::printf("# attenuation_factor_a,%.4f\n", h.attenuation());
  return 0;
}
