// Shared helpers for the figure-reproduction harness.
//
// Every bench binary regenerates one exhibit of the paper (a table or a
// figure) and prints it as CSV to stdout, prefixed by '#' comment lines
// that state what the paper reported so the shapes can be compared at a
// glance. REPRO_BENCH_SCALE (a positive float, default 1.0) scales
// replication counts and grid sizes for quick runs, e.g.
// REPRO_BENCH_SCALE=0.1 ./bench_fig16_overflow.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/version.h"
#include "core/model_builder.h"
#include "engine/replication_engine.h"
#include "obs/metrics.h"
#include "trace/scene_mpeg_source.h"

namespace ssvbr::bench {

/// REPRO_BENCH_SCALE environment knob.
inline double bench_scale() {
  const char* env = std::getenv("REPRO_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

/// Scale a count, keeping at least `minimum`.
inline std::size_t scaled(std::size_t base, std::size_t minimum = 1) {
  const auto v = static_cast<std::size_t>(static_cast<double>(base) * bench_scale());
  return v < minimum ? minimum : v;
}

/// The canonical "empirical" stand-in trace (full length unless the
/// scale knob shrinks it; never below ~2000 GOPs so the fits stay sane).
inline const trace::VideoTrace& empirical_trace() {
  static const trace::VideoTrace tr = [] {
    const std::size_t frames =
        bench_scale() >= 1.0 ? 0 : scaled(238626, 2000 * 12);
    return trace::make_empirical_standin_trace(frames);
  }();
  return tr;
}

/// The Section 3.2 pipeline fitted to the canonical trace's I frames,
/// computed once per binary.
inline const core::FittedModel& fitted_i_frame_model() {
  static const core::FittedModel fitted =
      core::fit_unified_model(empirical_trace().i_frame_series());
  return fitted;
}

/// Print the standard exhibit banner and arm the observability exit
/// dump (SSVBR_METRICS_JSON / SSVBR_TRACE_JSON / SSVBR_OBS_SUMMARY; all
/// no-ops unless the library was built with -DSSVBR_OBS=ON).
inline void banner(const char* exhibit, const char* paper_reference) {
  obs::install_env_exit_dump();
  const BuildInfo& build = build_info();
  std::printf("# %s\n", exhibit);
  std::printf("# paper: %s\n", paper_reference);
  std::printf("# ssvbr_version: %s (%s, %s)\n", build.version, build.git_sha,
              build.build_type);
  std::printf("# bench_scale: %.3g\n", bench_scale());
  std::printf("# hardware_threads: %u\n", std::thread::hardware_concurrency());
  std::printf("# default_shard_size: %zu\n", engine::EngineConfig{}.shard_size);
}

/// Engine configuration for bench binaries: default shards/threads,
/// plus a stderr progress heartbeat when SSVBR_PROGRESS is set (stdout
/// stays machine-readable CSV).
inline engine::EngineConfig engine_config() {
  engine::EngineConfig config;
  if (std::getenv("SSVBR_PROGRESS") != nullptr) {
    config.progress = [](const engine::EngineProgress& p) {
      std::fprintf(stderr,
                   "[ssvbr] %zu/%zu shards, %zu/%zu reps, %.0f reps/s, eta %.0fs%s\n",
                   p.shards_done, p.shards_total, p.replications_done,
                   p.replications_total, p.reps_per_second, p.eta_seconds,
                   p.final_update ? " (done)" : "");
    };
  }
  return config;
}

}  // namespace ssvbr::bench
