// Shared helpers for the figure-reproduction harness.
//
// Every bench binary regenerates one exhibit of the paper (a table or a
// figure) and prints it as CSV to stdout, prefixed by '#' comment lines
// that state what the paper reported so the shapes can be compared at a
// glance. REPRO_BENCH_SCALE (a positive float, default 1.0) scales
// replication counts and grid sizes for quick runs, e.g.
// REPRO_BENCH_SCALE=0.1 ./bench_fig16_overflow.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/model_builder.h"
#include "trace/scene_mpeg_source.h"

namespace ssvbr::bench {

/// REPRO_BENCH_SCALE environment knob.
inline double bench_scale() {
  const char* env = std::getenv("REPRO_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

/// Scale a count, keeping at least `minimum`.
inline std::size_t scaled(std::size_t base, std::size_t minimum = 1) {
  const auto v = static_cast<std::size_t>(static_cast<double>(base) * bench_scale());
  return v < minimum ? minimum : v;
}

/// The canonical "empirical" stand-in trace (full length unless the
/// scale knob shrinks it; never below ~2000 GOPs so the fits stay sane).
inline const trace::VideoTrace& empirical_trace() {
  static const trace::VideoTrace tr = [] {
    const std::size_t frames =
        bench_scale() >= 1.0 ? 0 : scaled(238626, 2000 * 12);
    return trace::make_empirical_standin_trace(frames);
  }();
  return tr;
}

/// The Section 3.2 pipeline fitted to the canonical trace's I frames,
/// computed once per binary.
inline const core::FittedModel& fitted_i_frame_model() {
  static const core::FittedModel fitted =
      core::fit_unified_model(empirical_trace().i_frame_series());
  return fitted;
}

/// Print the standard exhibit banner.
inline void banner(const char* exhibit, const char* paper_reference) {
  std::printf("# %s\n", exhibit);
  std::printf("# paper: %s\n", paper_reference);
  std::printf("# bench_scale: %.3g\n", bench_scale());
}

}  // namespace ssvbr::bench
