// Fig. 8 — Autocorrelation of the empirical trace against the final
// simulated process after attenuation compensation (paper Step 4:
// r(k) = r_hat(k)/a above the knee, eq. (14) re-solve of lambda below).
#include <cstdio>

#include "bench_util.h"
#include "stats/descriptive.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 8: empirical vs final simulated autocorrelation",
                "the compensated model tracks the empirical ACF over lags 0..500");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const std::vector<double> series = tr.i_frame_series();
  const std::vector<double> emp_acf = stats::autocorrelation_fft(series, 500);

  const core::FittedModel& fitted = bench::fitted_i_frame_model();
  std::printf("# attenuation_a,%.4f\n", fitted.report.attenuation);
  std::printf("# background_lambda,%.5f\n", fitted.report.background_lambda);
  std::printf("# background_L,%.4f\n", fitted.report.background_lrd_scale);
  std::printf("# background_beta,%.4f\n", fitted.report.background_beta);

  // Simulate a foreground trace of the empirical length and average the
  // ACF over a few replications.
  RandomEngine rng(8);
  const int reps = static_cast<int>(bench::scaled(6, 2));
  std::vector<double> sim_acf(501, 0.0);
  for (int rep = 0; rep < reps; ++rep) {
    const std::vector<double> y = fitted.model.generate(series.size(), rng);
    const std::vector<double> a = stats::autocorrelation_fft(y, 500);
    for (std::size_t k = 0; k <= 500; ++k) sim_acf[k] += a[k] / reps;
  }

  std::printf("lag,empirical_acf,simulated_acf\n");
  for (std::size_t k = 0; k <= 500; ++k) {
    std::printf("%zu,%.5f,%.5f\n", k, emp_acf[k], sim_acf[k]);
  }
  return 0;
}
