// Fig. 13 — Q-Q plot of the simulated composite process against the
// empirical trace. Agreement means the per-type histogram-inversion
// transforms reproduce the marginal exactly up to sampling noise.
#include <cstdio>

#include "bench_util.h"
#include "core/gop_model.h"
#include "stats/empirical_distribution.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 13: Q-Q plot, simulation quantiles vs empirical quantiles",
                "points hug the 45-degree diagonal over 0..14000 bytes");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const core::FittedGopModel fitted = core::fit_gop_model(tr);
  RandomEngine rng(13);

  // Pool independent realizations (see bench_fig12 for why).
  std::vector<double> synthetic;
  const int reps = static_cast<int>(bench::scaled(24, 4));
  const std::size_t n_frames = bench::scaled(tr.size(), 60000) / 8;
  for (int rep = 0; rep < reps; ++rep) {
    const trace::VideoTrace syn = fitted.model.generate(n_frames, rng);
    synthetic.insert(synthetic.end(), syn.frame_sizes().begin(),
                     syn.frame_sizes().end());
  }

  const auto points = stats::qq_points(tr.frame_sizes(), synthetic, 101);
  std::printf("probability,empirical_quantile,simulated_quantile\n");
  for (const auto& pt : points) {
    std::printf("%.4f,%.1f,%.1f\n", pt.probability, pt.x_quantile, pt.y_quantile);
  }
  return 0;
}
