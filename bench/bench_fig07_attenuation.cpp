// Fig. 7 — The attenuation factor (paper Step 3): the foreground
// process Y = h(X) has an autocorrelation a * r(k) asymptotically
// (Appendix A); the figure shows the background and foreground ACFs of
// an *uncompensated* model against the empirical ACF, making the gap
// visible. The paper measures a = 0.94 at large lags.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/marginal_transform.h"
#include "stats/acf_fit.h"
#include "stats/descriptive.h"
#include "stats/empirical_distribution.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 7: foreground vs background ACF (attenuation factor a)",
                "foreground sits a constant factor a ~ 0.94 below the background");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const std::vector<double> series = tr.i_frame_series();
  const std::vector<double> emp_acf = stats::autocorrelation_fft(series, 500);

  // Background: the *uncompensated* fitted composite correlation
  // (Step 2's r_hat), exactly the situation of the paper's Fig. 7.
  const stats::CompositeAcfFit fit = stats::fit_composite_acf(emp_acf);
  const auto background = std::make_shared<fractal::CompositeSrdLrdAutocorrelation>(
      fractal::CompositeSrdLrdAutocorrelation::with_continuity(fit.lrd_scale, fit.beta,
                                                               static_cast<double>(fit.knee)));
  const auto marginal = std::make_shared<stats::EmpiricalDistribution>(series);
  const core::MarginalTransform h(marginal);

  RandomEngine rng(7);
  const std::size_t path_length = bench::scaled(1 << 15, 1 << 12);
  const core::EmpiricalAttenuation measured = core::measure_attenuation_empirical(
      *background, h, path_length, 200, 450, rng, bench::scaled(8, 2));

  std::printf("# attenuation_measured_large_lag,%.4f  (paper: 0.94)\n",
              measured.attenuation);
  std::printf("# attenuation_analytic_asymptotic,%.4f\n", h.attenuation());
  std::printf("lag,empirical_acf,background_acf,foreground_acf\n");
  for (std::size_t k = 0; k <= 450; ++k) {
    std::printf("%zu,%.5f,%.5f,%.5f\n", k, emp_acf[k], measured.background_acf[k],
                measured.foreground_acf[k]);
  }
  return 0;
}
