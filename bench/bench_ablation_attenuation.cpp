// Ablation — attenuation compensation on/off (paper Steps 3-4).
//
// Fits the unified model with and without dividing the background ACF
// by the attenuation factor a, then measures the mean absolute error of
// the synthetic foreground ACF against the empirical one over the LRD
// range. Without compensation the synthetic ACF systematically
// undershoots (the Fig. 7 gap); with it the error shrinks (Fig. 8).
#include <cstdio>
#include <cmath>

#include "bench_util.h"
#include "core/model_builder.h"
#include "stats/descriptive.h"

namespace {

double acf_mae(const ssvbr::core::UnifiedVbrModel& model,
               const std::vector<double>& emp_acf, std::size_t series_length,
               std::size_t lag_lo, std::size_t lag_hi, int reps,
               std::uint64_t seed) {
  using namespace ssvbr;
  RandomEngine rng(seed);
  std::vector<double> sim(lag_hi + 1, 0.0);
  for (int rep = 0; rep < reps; ++rep) {
    const std::vector<double> y = model.generate(series_length, rng);
    const std::vector<double> a = stats::autocorrelation_fft(y, lag_hi);
    for (std::size_t k = 0; k <= lag_hi; ++k) sim[k] += a[k] / reps;
  }
  double mae = 0.0;
  for (std::size_t k = lag_lo; k <= lag_hi; ++k) {
    mae += std::fabs(sim[k] - emp_acf[k]);
  }
  return mae / static_cast<double>(lag_hi - lag_lo + 1);
}

}  // namespace

int main() {
  using namespace ssvbr;
  bench::banner("Ablation: attenuation compensation (Steps 3-4) on vs off",
                "compensation reduces the foreground-ACF error in the LRD range");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const std::vector<double> series = tr.i_frame_series();
  const std::vector<double> emp_acf = stats::autocorrelation_fft(series, 400);

  core::ModelBuilderOptions with_options;
  core::ModelBuilderOptions without_options;
  without_options.compensate_attenuation = false;

  const core::FittedModel with = core::fit_unified_model(series, with_options);
  const core::FittedModel without = core::fit_unified_model(series, without_options);

  const int reps = static_cast<int>(bench::scaled(6, 2));
  const std::size_t n = bench::scaled(series.size(), 4096);
  const double mae_with = acf_mae(with.model, emp_acf, n, 80, 400, reps, 21);
  const double mae_without = acf_mae(without.model, emp_acf, n, 80, 400, reps, 22);

  std::printf("variant,attenuation_a,background_L,acf_mae_lags80_400\n");
  std::printf("compensated,%.4f,%.4f,%.4f\n", with.report.attenuation,
              with.report.background_lrd_scale, mae_with);
  std::printf("uncompensated,%.4f,%.4f,%.4f\n", without.report.attenuation,
              without.report.background_lrd_scale, mae_without);
  std::printf("# improvement_factor,%.2f\n",
              mae_with > 0.0 ? mae_without / mae_with : 0.0);
  return 0;
}
