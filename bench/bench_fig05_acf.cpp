// Fig. 5 — Estimated autocorrelation function of the empirical trace
// (I-frame series, lags 1..500), showing the SRD "knee" around lag
// 60-80 followed by a slowly decaying LRD tail.
#include <cstdio>

#include "bench_util.h"
#include "stats/descriptive.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 5: empirical autocorrelation, lags 0..500",
                "r(1) ~ 0.97 decaying to ~0.45 at lag 500 with a knee near 60-80");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const std::vector<double> series = tr.i_frame_series();
  const std::vector<double> acf = stats::autocorrelation_fft(series, 500);

  std::printf("lag,autocorrelation\n");
  for (std::size_t k = 0; k <= 500; ++k) std::printf("%zu,%.5f\n", k, acf[k]);
  return 0;
}
