// Table 1 — Parameters of the compressed empirical video sequence.
//
// The paper tabulates the metadata of its Last Action Hero trace; this
// binary prints the same rows for the synthetic stand-in trace together
// with measured per-frame-type statistics.
#include <cstdio>

#include "bench_util.h"
#include "stats/descriptive.h"

int main() {
  using namespace ssvbr;
  bench::banner("Table 1: parameters of the empirical video sequence",
                "MPEG-1, 2h12m36s, 238626 frames, 320x240, 8 bpp, 15 slices, 30 fps");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const trace::TraceMetadata& meta = tr.metadata();
  const double seconds = meta.duration_seconds(tr.size());
  const int hours = static_cast<int>(seconds) / 3600;
  const int minutes = (static_cast<int>(seconds) % 3600) / 60;
  const int secs = static_cast<int>(seconds) % 60;

  std::printf("parameter,value\n");
  std::printf("coder,%s\n", meta.coder.c_str());
  std::printf("duration,%dh %dm %ds\n", hours, minutes, secs);
  std::printf("number_of_frames,%zu\n", tr.size());
  std::printf("frame_dimensions,%dx%d pixels\n", meta.width, meta.height);
  std::printf("resolution,%d bits/pixel (3-band color)\n", meta.bits_per_pixel);
  std::printf("slice_rate,%d per frame\n", meta.slices_per_frame);
  std::printf("frame_rate,%.0f per second\n", meta.frames_per_second);
  std::printf("format,%s\n", meta.format.c_str());

  std::printf("\n# measured statistics (bytes/frame)\n");
  std::printf("series,count,mean,stddev,min,max\n");
  const auto report = [&](const char* name, const std::vector<double>& xs) {
    stats::RunningStats s;
    for (const double v : xs) s.add(v);
    std::printf("%s,%zu,%.1f,%.1f,%.1f,%.1f\n", name, s.count(), s.mean(), s.stddev(),
                s.min(), s.max());
  };
  report("all_frames", {tr.frame_sizes().begin(), tr.frame_sizes().end()});
  report("I_frames", tr.sizes_of(trace::FrameType::I));
  report("P_frames", tr.sizes_of(trace::FrameType::P));
  report("B_frames", tr.sizes_of(trace::FrameType::B));
  std::printf("mean_bit_rate_bps,%.0f\n", tr.mean_bit_rate());
  return 0;
}
