// Network-scale scenario benchmark: TopologyRunRequest campaigns over a
// nodes x classes x path-length grid, swept across thread counts, with
// per-cell bit-identity verification (every thread count must reproduce
// the T=1 merged totals exactly).
//
// Prints ONE machine-readable JSON line per grid cell so future PRs can
// track topology throughput:
//
//   {"bench":"topology","scenario":"mux_tree_3x2","nodes":7,"classes":4,
//    "path_length":3,"population":1000,"replications":64,
//    "results":[{"threads":1,"seconds":...,"replications_per_s":...,
//                "speedup":...,"deterministic":true}, ...]}
//
// REPRO_BENCH_SCALE scales the replication counts.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dist/distributions.h"
#include "fractal/autocorrelation.h"
#include "net/run.h"

namespace {

using namespace ssvbr;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::shared_ptr<const core::UnifiedVbrModel> make_model() {
  auto corr = std::make_shared<fractal::ExponentialAutocorrelation>(0.1);
  core::MarginalTransform h(std::make_shared<GammaDistribution>(2.0, 1.0));
  return std::make_shared<const core::UnifiedVbrModel>(std::move(corr), std::move(h));
}

struct GridCell {
  std::string name;
  net::ScenarioConfig scenario;
  std::size_t classes = 0;
  std::size_t path_length = 0;
  std::size_t population = 0;
};

/// A mux tree with `levels` levels of fanout 2, a 1000-source class at
/// every leaf, service per level sized just above the offered load.
GridCell mux_tree_cell(const std::shared_ptr<const core::UnifiedVbrModel>& model,
                       std::size_t levels) {
  GridCell cell;
  cell.name = "mux_tree_" + std::to_string(levels) + "x2";
  cell.population = 1000;
  const double m = model->mean();
  std::vector<double> service, buffer;
  std::size_t sources = cell.population;  // per ingress at this level
  for (std::size_t l = 0; l < levels; ++l) {
    service.push_back(1.02 * static_cast<double>(sources) * m);
    buffer.push_back(1.5 * static_cast<double>(sources) * m);
    sources *= 2;
  }
  cell.scenario.topology = net::make_mux_tree(levels, 2, service, buffer);
  for (const std::size_t leaf : net::mux_tree_leaves(levels, 2)) {
    net::SourceClassConfig cls;
    cls.model = model;
    cls.population = cell.population;
    cls.ingress = leaf;
    cell.scenario.classes.push_back(cls);
  }
  cell.classes = cell.scenario.classes.size();
  cell.path_length = levels;
  cell.scenario.slots = 256;
  cell.scenario.warmup = 32;
  return cell;
}

/// A tandem line of `length` hops with one batched class at the head
/// and an ABR flow riding the whole path.
GridCell tandem_cell(const std::shared_ptr<const core::UnifiedVbrModel>& model,
                     std::size_t length) {
  GridCell cell;
  cell.name = "tandem_" + std::to_string(length) + "_abr";
  cell.population = 500;
  const double m = model->mean();
  const double offered = static_cast<double>(cell.population) * m;
  cell.scenario.topology =
      net::make_tandem(length, 1.02 * offered, 1.3 * offered);
  net::SourceClassConfig cls;
  cls.model = model;
  cls.population = cell.population;
  cell.scenario.classes.push_back(cls);
  cell.scenario.abr.enabled = true;
  cell.scenario.abr.initial_rate = m;
  cell.scenario.abr.min_rate = 0.1 * m;
  cell.scenario.abr.peak_rate = 0.1 * offered;
  cell.scenario.abr.additive_increase = 0.5 * m;
  cell.scenario.abr.queue_threshold = 0.05 * offered;
  cell.classes = 1;
  cell.path_length = length;
  cell.scenario.slots = 256;
  cell.scenario.warmup = 32;
  return cell;
}

/// A tandem path carrying a chunked-streaming ABR client alongside a
/// batched VBR background population — the client-workload cell of the
/// grid. Exercises the kAbrClient kernel path (per-slot client stepping
/// against the shared bandwidth trace) under the same bit-identity
/// contract as the pure-population cells.
GridCell abr_client_cell(const std::shared_ptr<const core::UnifiedVbrModel>& model) {
  GridCell cell;
  cell.name = "abr_client_scenario";
  cell.population = 200;
  const double m = model->mean();
  const double offered = static_cast<double>(cell.population) * m;
  cell.scenario.topology = net::make_tandem(3, 1.05 * offered, 1.3 * offered);

  net::SourceClassConfig background;
  background.model = model;
  background.population = cell.population;
  cell.scenario.classes.push_back(background);

  net::SourceClassConfig client;
  client.kind = net::SourceKind::kAbrClient;
  client.model = model;
  client.population = 1;
  client.ingress = 1;
  client.abr_client.bandwidth_trace = {6.0 * m, 10.0 * m, 2.0 * m,
                                       8.0 * m, 0.0,     12.0 * m};
  client.abr_client.chunk_slots = 8;
  client.abr_client.startup_chunks = 2;
  client.abr_client.max_buffer_slots = 48.0;
  client.abr_client.low_buffer_slots = 8.0;
  client.abr_client.high_buffer_slots = 24.0;
  cell.scenario.classes.push_back(client);

  cell.classes = cell.scenario.classes.size();
  cell.path_length = 3;
  cell.scenario.slots = 256;
  cell.scenario.warmup = 32;
  return cell;
}

void report(const GridCell& cell, std::size_t replications,
            const std::vector<unsigned>& thread_counts) {
  struct Row {
    unsigned threads;
    double seconds;
    bool deterministic;
  };
  std::vector<Row> rows;
  std::vector<std::uint64_t> words_ref;
  for (const unsigned t : thread_counts) {
    net::TopologyRunRequest request;
    request.scenario = cell.scenario;
    request.replications = replications;
    request.seed = 4242;
    request.engine.threads = t;
    request.engine.shard_size = 8;
    const auto t0 = std::chrono::steady_clock::now();
    const net::TopologyRunResult res = net::run_topology(request);
    const double secs = seconds_since(t0);
    bool deterministic = true;
    if (t == thread_counts.front()) {
      words_ref = res.totals.to_words();
    } else {
      deterministic = res.totals.to_words() == words_ref;
    }
    rows.push_back(Row{t, secs, deterministic});
  }
  std::printf("{\"bench\":\"topology\",\"scenario\":\"%s\",\"nodes\":%zu,"
              "\"classes\":%zu,\"path_length\":%zu,\"population\":%zu,"
              "\"replications\":%zu,\"results\":[",
              cell.name.c_str(), cell.scenario.topology.n_nodes(), cell.classes,
              cell.path_length, cell.population, replications);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double rps = rows[i].seconds > 0.0
                           ? static_cast<double>(replications) / rows[i].seconds
                           : 0.0;
    std::printf("%s{\"threads\":%u,\"seconds\":%.4f,\"replications_per_s\":%.1f,"
                "\"speedup\":%.2f,\"deterministic\":%s}",
                i == 0 ? "" : ",", rows[i].threads, rows[i].seconds, rps,
                rows[i].seconds > 0.0 ? rows[0].seconds / rows[i].seconds : 0.0,
                rows[i].deterministic ? "true" : "false");
  }
  std::printf("]}\n");
}

}  // namespace

int main() {
  using namespace ssvbr;
  bench::banner("Perf: network-scale topology campaigns (nodes x classes x path length)",
                "bit-identical totals at every thread count");
  const std::vector<unsigned> thread_counts{1, 2, 4, 8};
  const std::size_t replications = bench::scaled(64, 16);
  const auto model = make_model();

  report(mux_tree_cell(model, 2), replications, thread_counts);
  report(mux_tree_cell(model, 3), replications, thread_counts);
  report(tandem_cell(model, 2), replications, thread_counts);
  report(tandem_cell(model, 4), replications, thread_counts);
  report(tandem_cell(model, 8), replications, thread_counts);
  report(abr_client_cell(model), replications, thread_counts);
  return 0;
}
