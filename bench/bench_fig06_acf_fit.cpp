// Fig. 6 — Composite autocorrelation fit (paper Step 2, eq. (10)-(13)):
// a decaying exponential below the knee and a power law above it,
// fitted by least squares in the log domain.
//
// The paper obtains r_hat(k) = exp(-0.00565 k) for k < Kt and
// 1.59 k^{-0.2} for k >= Kt with Kt ~ 60.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "stats/acf_fit.h"
#include "stats/descriptive.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 6: composite SRD+LRD autocorrelation fit",
                "exp(-0.00565 k) below Kt~60; 1.59 k^-0.2 above; both drawn over the ACF");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const std::vector<double> series = tr.i_frame_series();
  const std::vector<double> acf = stats::autocorrelation_fft(series, 500);
  const stats::CompositeAcfFit fit = stats::fit_composite_acf(acf);

  std::printf("# lambda,%.5f  (paper: 0.00565)\n", fit.lambda);
  std::printf("# lrd_scale_L,%.4f  (paper: 1.59)\n", fit.lrd_scale);
  std::printf("# beta,%.4f  (paper: 0.2)\n", fit.beta);
  std::printf("# knee_Kt,%zu  (paper: ~60, knee observed at 60-80)\n", fit.knee);
  std::printf("# implied_hurst,%.4f  (paper: 0.9)\n", fit.hurst());
  std::printf("# fit_sse,%.5f\n", fit.sse);

  std::printf("lag,empirical_acf,exp_branch,power_branch,composite_fit\n");
  for (std::size_t k = 1; k <= 500; ++k) {
    const double kk = static_cast<double>(k);
    const double exp_branch = fit.srd_scale * std::exp(-fit.lambda * kk);
    const double pow_branch = fit.lrd_scale * std::pow(kk, -fit.beta);
    std::printf("%zu,%.5f,%.5f,%.5f,%.5f\n", k, acf[k], exp_branch, pow_branch,
                fit.evaluate(kk));
  }
  return 0;
}
