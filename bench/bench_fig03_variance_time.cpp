// Fig. 3 — Variance-time plot for the empirical trace.
//
// log10 var(X^(m)) against log10 m with a least-squares line over the
// large aggregation levels; the paper reads slope -0.2234 and
// H_hat = 0.89 off its full frame-level series.
#include <cstdio>

#include "bench_util.h"
#include "fractal/hurst.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 3: variance-time plot",
                "slope ~ -0.223 (fit over log10 m in [2, 4]) => H ~ 0.89");

  const trace::VideoTrace& tr = bench::empirical_trace();
  fractal::VarianceTimeOptions options;
  options.fit_min_m = 100;   // the paper fits from log10 m = 2 upward
  options.max_m = tr.size() / 20;
  options.n_levels = 40;
  const fractal::VarianceTimeResult vt =
      fractal::variance_time_analysis(tr.frame_sizes(), options);

  std::printf("log10_m,log10_var\n");
  for (const auto& p : vt.points) std::printf("%.4f,%.4f\n", p.log_x, p.log_y);
  std::printf("# fit_slope,%.4f\n", vt.fit.slope);
  std::printf("# fit_intercept,%.4f\n", vt.fit.intercept);
  std::printf("# fit_r_squared,%.4f\n", vt.fit.r_squared);
  std::printf("# beta_hat,%.4f\n", vt.beta);
  std::printf("# hurst_hat,%.4f  (paper: 0.89)\n", vt.hurst);

  // The paper combines this with R/S into H = 0.9; also report the
  // I-frame-level estimate used by the Section 3.3 pipeline.
  const fractal::VarianceTimeResult vt_i =
      fractal::variance_time_analysis(tr.i_frame_series());
  std::printf("# hurst_hat_i_frames,%.4f\n", vt_i.hurst);
  return 0;
}
