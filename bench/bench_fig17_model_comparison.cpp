// Fig. 17 — Overflow probability vs buffer size at utilization 0.6 for
// four cases: the empirical trace, the unified model with both SRD and
// LRD, an SRD-only model (exponential ACF only), and an LRD-only model
// (plain FGN background).
//
// Expected shape: for small buffers the three models agree; as b grows
// the SRD-only estimate decays much faster than the SRD+LRD one, while
// the FGN-only model starts too low at small buffers but shows the
// right asymptotic slope. SRD+LRD tracks the trace best.
#include <cstdio>
#include <cmath>
#include <memory>

#include "bench_util.h"
#include "is/is_estimator.h"
#include "queueing/overflow_mc.h"
#include "stats/descriptive.h"

namespace {

struct ModelCase {
  const char* name;
  ssvbr::core::UnifiedVbrModel model;
};

}  // namespace

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 17: overflow probability vs buffer size, four models, util 0.6",
                "SRD-only decays fastest; FGN-only too low at small b; SRD+LRD tracks trace");

  const core::FittedModel& fitted = bench::fitted_i_frame_model();
  const core::MarginalTransform& transform = fitted.model.transform();
  const std::vector<double> i_series = bench::empirical_trace().i_frame_series();
  const double mean_rate = fitted.model.mean();
  const double util = 0.6;
  const double service = mean_rate / util;

  // SRD-only: keep only the exponential branch of the Step 2 fit.
  auto srd_only = std::make_shared<fractal::ExponentialAutocorrelation>(
      fitted.report.acf_fit.lambda);
  // LRD-only: a plain FGN background at the Step 1 Hurst estimate.
  const double hurst = std::min(0.98, std::max(0.55, fitted.report.hurst_combined));
  auto lrd_only = std::make_shared<fractal::FgnAutocorrelation>(hurst);

  std::vector<ModelCase> cases;
  cases.push_back({"srd_lrd", fitted.model});
  cases.push_back({"srd_only", core::UnifiedVbrModel(srd_only, transform)});
  cases.push_back({"fgn_only", core::UnifiedVbrModel(lrd_only, transform)});

  const std::vector<double> buffers{10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 250.0};
  const std::size_t reps = bench::scaled(1000, 60) / 2;
  const double m_star = 1.2;
  const std::size_t max_k = static_cast<std::size_t>(10.0 * buffers.back());

  // Trace-driven reference (single pass).
  const double trace_mean = stats::mean(i_series);
  std::vector<double> trace_buffers;
  for (const double b : buffers) trace_buffers.push_back(b * trace_mean);
  const std::vector<double> trace_probs = queueing::steady_state_overflow_multi(
      i_series, trace_mean / util, trace_buffers);

  std::printf("model,normalized_buffer,k,log10_P,P,hits\n");
  for (std::size_t j = 0; j < buffers.size(); ++j) {
    const double lt = trace_probs[j] > 0.0 ? std::log10(trace_probs[j]) : -99.0;
    std::printf("empirical_trace,%.0f,-,%.4f,%.6e,-\n", buffers[j], lt, trace_probs[j]);
  }
  for (const ModelCase& c : cases) {
    const fractal::HoskingModel background(c.model.background_correlation(), max_k);
    for (std::size_t j = 0; j < buffers.size(); ++j) {
      const double b = buffers[j];
      is::IsOverflowSettings settings;
      settings.twisted_mean = m_star;
      settings.service_rate = service;
      settings.buffer = b * mean_rate;
      settings.stop_time = static_cast<std::size_t>(10.0 * b);
      settings.replications = reps;
      RandomEngine rng(1700 + j);
      const is::IsOverflowEstimate est =
          is::estimate_overflow_is(c.model, background, settings, rng);
      const double lp = est.probability > 0.0 ? std::log10(est.probability) : -99.0;
      std::printf("%s,%.0f,%zu,%.4f,%.6e,%zu\n", c.name, b, settings.stop_time, lp,
                  est.probability, est.hits);
    }
  }
  return 0;
}
