// Extension — Norros' fBm storage asymptotics vs importance-sampling
// simulation.
//
// The paper cites Norros [23] for the theory that LRD input produces
// Weibull-type (sub-exponential) overflow decay. Here a queue is fed
// (nearly) Gaussian FGN traffic, for which the Norros approximation
// P(Q > b) ~= exp(-theta b^{2-2H}) is available in closed form, and the
// IS engine's estimates are compared against it across buffer sizes —
// an analytic end-to-end check of the whole simulation stack.
#include <cstdio>
#include <cmath>
#include <memory>

#include "bench_util.h"
#include "dist/distributions.h"
#include "is/is_estimator.h"
#include "queueing/norros.h"

int main() {
  using namespace ssvbr;
  bench::banner("Extension: IS simulation vs Norros fBm storage asymptotics",
                "log10 P linear in b^{2-2H}; IS within ~0.5 log10 of the formula");

  const double hurst = 0.8;
  const double mean = 20.0;
  const double sigma = 2.0;
  auto corr = std::make_shared<fractal::FgnAutocorrelation>(hurst);
  core::MarginalTransform h(std::make_shared<NormalDistribution>(mean, sigma));
  const core::UnifiedVbrModel model(corr, std::move(h));

  const double service = mean + 1.0;
  const std::size_t k = 800;
  const fractal::HoskingModel background(model.background_correlation(), k);

  queueing::NorrosParameters np;
  np.mean_rate = mean;
  np.service_rate = service;
  np.stddev = sigma;
  np.hurst = hurst;

  std::printf("buffer,log10_P_is,log10_P_norros,critical_time_scale,is_hits\n");
  for (const double b : {10.0, 20.0, 40.0, 60.0, 80.0, 120.0}) {
    is::IsOverflowSettings settings;
    settings.twisted_mean = 0.8 + 0.008 * b;  // stronger twist for rarer events
    settings.service_rate = service;
    settings.buffer = b;
    settings.stop_time = k;
    settings.replications = bench::scaled(3000, 200);
    RandomEngine rng(static_cast<std::uint64_t>(b) + 77);
    const is::IsOverflowEstimate est =
        is::estimate_overflow_is(model, background, settings, rng);
    const double log_is = est.probability > 0.0 ? std::log10(est.probability) : -99.0;
    const double log_norros =
        queueing::norros_log_overflow_approximation(np, b) / std::log(10.0);
    std::printf("%.0f,%.4f,%.4f,%.1f,%zu\n", b, log_is, log_norros,
                queueing::norros_critical_time_scale(np, b), est.hits);
  }
  return 0;
}
