// Fig. 12 — Histogram of the simulated composite process against the
// empirical trace (bytes/frame, relative frequency).
#include <cstdio>

#include "bench_util.h"
#include "core/gop_model.h"
#include "stats/histogram.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 12: frame-size histograms, simulation vs empirical",
                "near-coincident histograms over 0..12000 bytes/frame");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const core::FittedGopModel fitted = core::fit_gop_model(tr);
  RandomEngine rng(12);

  // Pool several independent synthetic traces: the frame-level
  // background correlation is so high that a single realization's
  // histogram wanders far from the ensemble law.
  const double hi = 20000.0;
  stats::Histogram emp(0.0, hi, 60);
  stats::Histogram sim(0.0, hi, 60);
  emp.add_all(tr.frame_sizes());
  const int reps = static_cast<int>(bench::scaled(24, 4));
  const std::size_t n_frames = bench::scaled(tr.size(), 60000) / 8;
  for (int rep = 0; rep < reps; ++rep) {
    const trace::VideoTrace syn = fitted.model.generate(n_frames, rng);
    sim.add_all(syn.frame_sizes());
  }

  std::printf("bytes_per_frame,empirical_frequency,simulated_frequency\n");
  for (std::size_t i = 0; i < emp.bin_count(); ++i) {
    std::printf("%.1f,%.6f,%.6f\n", emp.bin_center(i), emp.frequency(i),
                sim.frequency(i));
  }
  std::printf("# total_variation_distance,%.4f\n",
              stats::Histogram::total_variation_distance(emp, sim));
  return 0;
}
