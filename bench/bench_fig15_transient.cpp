// Fig. 15 — Transient buffer overflow probability log10 P(Q_k > b)
// against the stopping time k, for an initially empty and an initially
// full buffer.
//
// Paper setting: normalized buffer b = 200, utilization 0.4, 1000
// replications, k up to 2000. The two curves approach steady state from
// below (empty start) and above (full start).
#include <cstdio>
#include <cmath>

#include "bench_util.h"
#include "is/is_estimator.h"
#include "is/likelihood.h"
#include "queueing/lindley.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 15: transient overflow probability vs stop time k",
                "empty-start rises, full-start falls; both flatten near log10 P ~ -3");

  const core::FittedModel& fitted = bench::fitted_i_frame_model();
  const core::MarginalTransform& h = fitted.model.transform();
  const double mean_rate = fitted.model.mean();
  const double utilization = 0.4;
  const double b_normalized = 200.0;
  const double service = mean_rate / utilization;
  const double buffer = b_normalized * mean_rate;

  const std::size_t max_k = bench::scaled(2000, 400);
  const std::size_t reps = bench::scaled(1000, 100);
  const double m_star = 2.0;  // favorable twist from a Fig. 14-style scan

  const fractal::HoskingModel background(fitted.model.background_correlation(), max_k);

  // Checkpoints every 100 slots. One twisted path of length max_k yields
  // the terminal indicator and likelihood at *every* checkpoint, so the
  // whole figure costs one sweep of replications per initial condition.
  std::vector<std::size_t> checkpoints;
  for (std::size_t k = 100; k <= max_k; k += 100) checkpoints.push_back(k);

  std::printf("k,log10_P_empty_start,log10_P_full_start\n");
  std::vector<double> sums_empty(checkpoints.size(), 0.0);
  std::vector<double> sums_full(checkpoints.size(), 0.0);
  for (const bool full_start : {false, true}) {
    RandomEngine rng(full_start ? 151 : 150);
    fractal::HoskingSampler sampler(background, m_star);
    is::LikelihoodRatioAccumulator lr;
    queueing::LindleyQueue queue(service, full_start ? buffer : 0.0);
    auto& sums = full_start ? sums_full : sums_empty;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      sampler.reset();
      lr.reset();
      queue.reset(full_start ? buffer : 0.0);
      std::size_t next_cp = 0;
      for (std::size_t i = 0; i < max_k && next_cp < checkpoints.size(); ++i) {
        const fractal::HoskingStep step = sampler.next(rng);
        const double delta =
            m_star * (1.0 - (i == 0 ? 0.0 : background.phi_row_sum(i)));
        lr.add_step(step.value, step.conditional_mean, delta, step.variance);
        const double q = queue.step(h(step.value));
        if (i + 1 == checkpoints[next_cp]) {
          if (q > buffer) sums[next_cp] += lr.likelihood();
          ++next_cp;
        }
      }
    }
  }
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    const double pe = sums_empty[c] / static_cast<double>(reps);
    const double pf = sums_full[c] / static_cast<double>(reps);
    std::printf("%zu,%.4f,%.4f\n", checkpoints[c],
                pe > 0.0 ? std::log10(pe) : -99.0, pf > 0.0 ? std::log10(pf) : -99.0);
  }
  return 0;
}
