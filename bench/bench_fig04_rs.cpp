// Fig. 4 — Pox diagram of R/S for the empirical trace.
//
// log10 R(t_i, n)/S(t_i, n) against log10 n with a least-squares fit;
// the paper reads slope (= H_hat) 0.9287 => H ~ 0.92.
#include <cstdio>

#include "bench_util.h"
#include "fractal/hurst.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 4: pox diagram of R/S",
                "pox cloud with least-squares slope ~0.929 => H ~ 0.92");

  // The pox diagram is computed on the I-frame series — the series the
  // Section 3.2/3.3 pipeline models. (On the composite I/B/P frame
  // series the per-scene motion modulation of P/B frames inflates the
  // rescaled range and pushes the fitted slope above 1.)
  const trace::VideoTrace& tr = bench::empirical_trace();
  const std::vector<double> series = tr.i_frame_series();
  fractal::RsOptions options;
  options.n_blocks = 10;
  options.min_n = 16;
  options.max_n = series.size() / 4;
  options.n_sizes = 30;
  const fractal::RsResult rs = fractal::rs_analysis(series, options);

  std::printf("log10_n,log10_rs\n");
  for (const auto& p : rs.points) std::printf("%.4f,%.4f\n", p.log_x, p.log_y);
  std::printf("# fit_slope_hurst,%.4f  (paper: 0.9287)\n", rs.hurst);
  std::printf("# fit_intercept,%.4f\n", rs.fit.intercept);
  std::printf("# fit_r_squared,%.4f\n", rs.fit.r_squared);
  return 0;
}
