// Performance microbenchmarks (google-benchmark): cost of the exact
// self-similar generators and of the pipeline's heavy primitives.
//
// The paper repeatedly notes that "the generation of self-similar
// traffic using Hosking's method is computationally quite demanding" —
// these benchmarks quantify that: Hosking is O(n^2) per path while
// Davies-Harte is O(n log n), and a shared coefficient table amortizes
// Hosking's setup across replications.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "baselines/ar1.h"
#include "core/marginal_transform.h"
#include "dist/distributions.h"
#include "engine/parallel_estimators.h"
#include "fractal/autocorrelation.h"
#include "fractal/davies_harte.h"
#include "fractal/hosking.h"
#include "queueing/arrival.h"
#include "stats/descriptive.h"

namespace {

using namespace ssvbr;

const fractal::FgnAutocorrelation& fgn() {
  static const fractal::FgnAutocorrelation corr(0.9);
  return corr;
}

void BM_HoskingTableSetup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const fractal::HoskingModel model(fgn(), n);
    benchmark::DoNotOptimize(model.innovation_variance(n - 1));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_HoskingTableSetup)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)->Complexity();

void BM_HoskingPathWithSharedTable(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fractal::HoskingModel model(fgn(), n);
  RandomEngine rng(1);
  std::vector<double> path(n);
  for (auto _ : state) {
    model.sample_path(rng, path);
    benchmark::DoNotOptimize(path.data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_HoskingPathWithSharedTable)
    ->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)->Complexity();

void BM_HoskingStreamingPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomEngine rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fractal::hosking_sample_streaming(fgn(), n, rng));
  }
}
BENCHMARK(BM_HoskingStreamingPath)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DaviesHartePath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fractal::DaviesHarteModel model(fgn(), n);
  RandomEngine rng(3);
  std::vector<double> path(n);
  for (auto _ : state) {
    model.sample_path(rng, path);
    benchmark::DoNotOptimize(path.data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_DaviesHartePath)
    ->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536)->Complexity();

void BM_Ar1Path(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const baselines::Ar1Process ar(0.95);
  RandomEngine rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ar.sample(n, rng));
  }
}
BENCHMARK(BM_Ar1Path)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_MarginalTransformApply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Gamma target: exercises the incomplete-gamma inverse per sample.
  const core::MarginalTransform h(std::make_shared<GammaDistribution>(2.0, 1000.0));
  RandomEngine rng(5);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();
  std::vector<double> y(n);
  for (auto _ : state) {
    h.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MarginalTransformApply)->Arg(1024)->Arg(8192);

void BM_AutocorrelationFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomEngine rng(6);
  std::vector<double> xs(n);
  for (auto& v : xs) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::autocorrelation_fft(xs, 500));
  }
}
BENCHMARK(BM_AutocorrelationFft)->Arg(1 << 14)->Arg(1 << 17);

void BM_RandomEngineJump(benchmark::State& state) {
  // Cost of positioning one replication stream (256 raw xoshiro steps);
  // bounds the engine's stream-setup overhead of <= threads * N jumps.
  RandomEngine rng(8);
  for (auto _ : state) {
    rng.jump();
    benchmark::DoNotOptimize(rng);
  }
}
BENCHMARK(BM_RandomEngineJump);

void BM_EngineMcOverflow(benchmark::State& state) {
  // Crude-MC overflow study through the replication engine at a given
  // thread count; IID gamma arrivals keep the per-replication work
  // representative but table-free.
  const auto threads = static_cast<unsigned>(state.range(0));
  engine::ReplicationEngine eng(threads);
  auto gamma = std::make_shared<GammaDistribution>(2.0, 1.0);
  const auto make_arrivals = [&gamma] {
    return std::make_unique<queueing::IidArrivalProcess>(gamma);
  };
  for (auto _ : state) {
    RandomEngine rng(99);
    benchmark::DoNotOptimize(engine::estimate_overflow_mc_par(
        make_arrivals, 2.5, 12.0, 200, 2000, rng, eng));
  }
}
BENCHMARK(BM_EngineMcOverflow)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_AutocorrelationDirect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  RandomEngine rng(7);
  std::vector<double> xs(n);
  for (auto& v : xs) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::autocorrelation(xs, 500));
  }
}
BENCHMARK(BM_AutocorrelationDirect)->Arg(1 << 14);

}  // namespace
