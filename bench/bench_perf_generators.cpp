// Pipeline hot-path benchmark: before/after perf trajectory as JSON.
//
// Each benchmark times the CURRENT implementation against an in-file
// LEGACY implementation that faithfully reproduces the pre-overhaul hot
// path (recurrence-twiddle FFT with per-path allocation, naive
// conditional-mean dot products, exact per-sample marginal transform,
// per-source sampler objects in the IS loop). Running both in one
// binary on one machine makes the speedup claims self-contained — no
// cross-checkout comparison needed.
//
// Output is one JSON object on stdout:
//   {"meta": {version, git_sha, build_type, bench_scale},
//    "benches": [{"name": ..., "baseline_ns": ..., "current_ns": ...,
//                 "speedup": ...}, ...]}
// scripts/run_benches.sh folds this (plus bench_perf_engine's lines)
// into BENCH_pipeline.json. REPRO_BENCH_SCALE shrinks the workloads for
// smoke runs.
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "baselines/markov_lrd.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "common/version.h"
#include "core/background_sampler.h"
#include "core/marginal_transform.h"
#include "core/unified_model.h"
#include "dist/distributions.h"
#include "dist/random.h"
#include "fft/fft.h"
#include "fractal/autocorrelation.h"
#include "fractal/davies_harte.h"
#include "fractal/hosking.h"
#include "is/is_estimator.h"
#include "is/likelihood.h"
#include "queueing/lindley.h"
#include "stats/descriptive.h"

namespace {

using namespace ssvbr;

// --------------------------------------------------------------- legacy
// Pre-overhaul implementations, kept verbatim (minus instrumentation) so
// the baseline numbers measure the shipped code of the previous
// revision, not a strawman.
namespace legacy {

using fft::Complex;

void bit_reverse_permute(std::span<Complex> data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

// Radix-2 kernel with the per-butterfly w *= wlen recurrence.
void fft_pow2(std::span<Complex> data, int sign) {
  const std::size_t n = data.size();
  bit_reverse_permute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = static_cast<double>(sign) * kTwoPi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Davies-Harte sampling over a prebuilt eigenvalue table: full-size
// complex spectrum allocated per path, one Box-Muller normal per bin,
// full-size complex FFT.
struct DaviesHarte {
  std::size_t n = 0;
  std::size_t m = 0;
  std::vector<double> sqrt_eigenvalues;

  DaviesHarte(const fractal::AutocorrelationModel& model, std::size_t length) : n(length) {
    m = next_power_of_two(2 * n);
    const std::size_t half = m / 2;
    const std::vector<double> r = model.tabulate(half);
    std::vector<Complex> c(m);
    for (std::size_t j = 0; j <= half; ++j) c[j] = Complex(r[j], 0.0);
    for (std::size_t j = half + 1; j < m; ++j) c[j] = Complex(r[m - j], 0.0);
    fft_pow2(c, -1);
    sqrt_eigenvalues.resize(m);
    for (std::size_t k = 0; k < m; ++k) {
      const double lambda = c[k].real();
      sqrt_eigenvalues[k] = lambda > 0.0 ? std::sqrt(lambda) : 0.0;
    }
  }

  void sample_path(RandomEngine& rng, std::span<double> out) const {
    std::vector<Complex> z(m);
    const std::size_t half = m / 2;
    z[0] = Complex(sqrt_eigenvalues[0] * rng.normal(), 0.0);
    z[half] = Complex(sqrt_eigenvalues[half] * rng.normal(), 0.0);
    const double inv_sqrt2 = 1.0 / kSqrt2;
    for (std::size_t k = 1; k < half; ++k) {
      const double a = rng.normal() * inv_sqrt2;
      const double b = rng.normal() * inv_sqrt2;
      z[k] = sqrt_eigenvalues[k] * Complex(a, b);
      z[m - k] = std::conj(z[k]);
    }
    fft_pow2(z, -1);
    const double scale = 1.0 / std::sqrt(static_cast<double>(m));
    for (std::size_t j = 0; j < n; ++j) out[j] = z[j].real() * scale;
  }
};

// Naive conditional-mean dot product (no blocking, one accumulator).
double conditional_mean(const fractal::HoskingModel& model, std::size_t k,
                        const double* history) {
  if (k == 0) return 0.0;
  const std::span<const double> row = model.phi_row(k);
  double m = 0.0;
  for (std::size_t j = 1; j <= k; ++j) m += row[j - 1] * history[k - j];
  return m;
}

void hosking_sample_path(const fractal::HoskingModel& model, RandomEngine& rng,
                         std::span<double> out) {
  out[0] = rng.normal(0.0, 1.0);
  for (std::size_t k = 1; k < out.size(); ++k) {
    const double m = conditional_mean(model, k, out.data());
    out[k] = rng.normal(m, std::sqrt(model.innovation_variance(k)));
  }
}

// Pre-overhaul IS replication: one sampler object (growing history
// vector, naive dot, per-step sqrt) per source, exact marginal
// transform per step.
struct IsKernel {
  const core::MarginalTransform* transform;
  const fractal::HoskingModel* background;
  is::IsOverflowSettings settings;
  std::vector<std::vector<double>> histories;
  queueing::LindleyQueue queue;
  is::LikelihoodRatioAccumulator lr;

  IsKernel(const core::UnifiedVbrModel& model, const fractal::HoskingModel& bg,
           std::size_t n_sources, const is::IsOverflowSettings& s)
      : transform(&model.transform()),
        background(&bg),
        settings(s),
        histories(n_sources),
        queue(s.service_rate, s.initial_occupancy) {
    for (auto& h : histories) h.reserve(s.stop_time);
  }

  is::IsReplicationKernel::Outcome run_one(RandomEngine& rng) {
    const double m_star = settings.twisted_mean;
    for (auto& h : histories) h.clear();
    queue.reset(settings.initial_occupancy);
    lr.reset();
    bool hit = false;
    double w = 0.0;
    for (std::size_t i = 0; i < settings.stop_time; ++i) {
      const double delta =
          m_star * (1.0 - (i == 0 ? 0.0 : background->phi_row_sum(i)));
      double y_total = 0.0;
      for (auto& hist : histories) {
        const double variance = background->innovation_variance(i);
        double cm = m_star;
        if (i > 0) {
          cm = m_star * (1.0 - background->phi_row_sum(i)) +
               conditional_mean(*background, i, hist.data());
        }
        const double x = rng.normal(cm, std::sqrt(variance));
        hist.push_back(x);
        lr.add_step(x, cm, delta, variance);
        y_total += transform->exact_value(x);
      }
      if (settings.event == queueing::OverflowEvent::kFirstPassage) {
        w += y_total - settings.service_rate;
        if (w > settings.buffer) {
          hit = true;
          break;
        }
      } else {
        queue.step(y_total);
      }
    }
    if (settings.event == queueing::OverflowEvent::kTerminal) {
      hit = queue.size() > settings.buffer;
    }
    return {hit ? lr.likelihood() : 0.0, hit};
  }
};

}  // namespace legacy

// --------------------------------------------------------------- timing

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Time `body` (one call = one unit of work): one warmup call, then
/// enough iterations to cover ~min_seconds. Returns ns per unit.
template <class F>
double time_ns(F&& body, double min_seconds = 0.2) {
  body();  // warmup: plan caches, page faults, lazy tables
  std::size_t iters = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    body();
    ++iters;
    elapsed = seconds_since(t0);
  } while (elapsed < min_seconds);
  return elapsed / static_cast<double>(iters) * 1e9;
}

struct BenchRow {
  const char* name;
  std::size_t n;
  double baseline_ns;
  double current_ns;
};

std::vector<BenchRow> rows;

void add_row(const char* name, std::size_t n, double baseline_ns, double current_ns) {
  rows.push_back({name, n, baseline_ns, current_ns});
  std::fflush(stdout);
}

}  // namespace

int main() {
  obs::install_env_exit_dump();
  const double min_seconds = 0.25 * bench::bench_scale();

  // ---- Davies-Harte path generation (the ISSUE's >= 3x target) ----
  {
    const std::size_t n = 16384;
    const fractal::FgnAutocorrelation corr(0.9);
    const legacy::DaviesHarte old_model(corr, n);
    const fractal::DaviesHarteModel new_model(corr, n);
    std::vector<double> path(n);
    RandomEngine rng_old(42), rng_new(42);
    const double base = time_ns([&] { old_model.sample_path(rng_old, path); }, min_seconds);
    const double cur = time_ns([&] { new_model.sample_path(rng_new, path); }, min_seconds);
    add_row("davies_harte_path", n, base, cur);
  }

  // ---- Hosking path over a shared coefficient table ----
  {
    const std::size_t n = 2048;
    const fractal::FgnAutocorrelation corr(0.9);
    const fractal::HoskingModel model(corr, n);
    std::vector<double> path(n);
    RandomEngine rng_old(43), rng_new(43);
    const double base =
        time_ns([&] { legacy::hosking_sample_path(model, rng_old, path); }, min_seconds);
    const double cur = time_ns([&] { model.sample_path(rng_new, path); }, min_seconds);
    add_row("hosking_path_shared_table", n, base, cur);
  }

  // ---- Paxson streaming synthesis vs the exact generators (PR 9) ----
  // Baselines here are the CURRENT exact backends, not legacy code: the
  // rows quantify what the approximate window-streamed backend buys
  // over the best exact alternative at the same horizon.
  double dh_ns_16k = 0.0;
  {
    const std::size_t n = 16384;
    const fractal::FgnAutocorrelation corr(0.9);
    const fractal::DaviesHarteModel dh(corr, n);
    const core::BackgroundPathSampler paxson(
        std::make_shared<fractal::FgnAutocorrelation>(0.9), n,
        core::BackgroundGenerator::kPaxson);
    std::vector<double> path(n);
    core::BackgroundWorkspace ws;
    RandomEngine rng_old(46), rng_new(46);
    dh_ns_16k = time_ns([&] { dh.sample_path(rng_old, path); }, min_seconds);
    const double cur =
        time_ns([&] { paxson.sample(rng_new, path, ws); }, min_seconds);
    add_row("paxson_vs_davies_harte_path", n, dh_ns_16k, cur);
  }
  {
    const std::size_t n = 2048;
    const fractal::FgnAutocorrelation corr(0.9);
    const fractal::HoskingModel hosking(corr, n);
    const core::BackgroundPathSampler paxson(
        std::make_shared<fractal::FgnAutocorrelation>(0.9), n,
        core::BackgroundGenerator::kPaxson);
    std::vector<double> path(n);
    core::BackgroundWorkspace ws;
    RandomEngine rng_old(47), rng_new(47);
    const double base =
        time_ns([&] { hosking.sample_path(rng_old, path); }, min_seconds);
    const double cur =
        time_ns([&] { paxson.sample(rng_new, path, ws); }, min_seconds);
    add_row("paxson_vs_hosking_path", n, base, cur);
  }
  {
    // A horizon Davies-Harte cannot reach in-memory: 2^24 samples need
    // an m = 2^25 embedding (~0.25 GB eigenvalue table + ~0.5 GB
    // complex spectrum + scratch), while the Paxson stream holds one
    // 2^16 window (~2 MB) whatever the horizon. The baseline is
    // therefore EXTRAPOLATED, not measured: the measured 16k
    // Davies-Harte path time scaled by the O(m log m) FFT work ratio —
    // an optimistic stand-in (it ignores the cache cliffs a 0.75 GB
    // working set would hit), honestly labeled by the row name.
    const std::size_t n = std::size_t{1} << 24;
    const std::size_t n0 = 16384;
    const auto fft_work = [](std::size_t len) {
      const double m = static_cast<double>(next_power_of_two(2 * len));
      return m * std::log2(m);
    };
    const double dh_extrapolated_ns = dh_ns_16k * fft_work(n) / fft_work(n0);
    const core::BackgroundPathSampler paxson(
        std::make_shared<fractal::FgnAutocorrelation>(0.9), n,
        core::BackgroundGenerator::kPaxson);
    core::BackgroundWorkspace ws;
    RandomEngine rng(48);
    std::vector<double> block(8192);
    const double cur = time_ns(
        [&] {
          core::BackgroundPathSampler::Stream stream =
              paxson.begin_stream(rng, ws);
          while (stream.next_block(block) > 0) {
          }
        },
        min_seconds);
    add_row("paxson_stream_16m_vs_dh_extrapolated", n, dh_extrapolated_ns, cur);
  }

  // ---- Markov-chain LRD baseline vs Paxson synthesis (same H) ----
  // Quantifies what the O(1)-per-slot countdown chain buys over the
  // cheapest Gaussian fGn backend at the same horizon and Hurst
  // parameter. The "baseline" is the CURRENT Paxson path (not legacy
  // code): the row tracks the cost ratio between the two live LRD
  // generators, the number a user trades against the Markov chain's
  // two-point marginal (see src/baselines/markov_lrd.h).
  {
    const std::size_t n = 16384;
    const core::BackgroundPathSampler paxson(
        std::make_shared<fractal::FgnAutocorrelation>(0.8), n,
        core::BackgroundGenerator::kPaxson);
    const baselines::MarkovLrdProcess chain(0.8);
    std::vector<double> path(n);
    core::BackgroundWorkspace ws;
    RandomEngine rng_old(49), rng_new(49);
    const double base =
        time_ns([&] { paxson.sample(rng_old, path, ws); }, min_seconds);
    const double cur =
        time_ns([&] { chain.sample_into(path, rng_new); }, min_seconds);
    add_row("markov_vs_paxson_path", n, base, cur);
  }

  // ---- Marginal transform: exact inverse-CDF vs tabulated ----
  {
    const std::size_t n = 8192;
    core::MarginalTransform exact(std::make_shared<GammaDistribution>(2.0, 1000.0));
    core::MarginalTransform tabulated = exact;
    tabulated.enable_tabulated();
    RandomEngine rng(44);
    std::vector<double> x(n), y(n);
    for (auto& v : x) v = rng.normal();
    const double base = time_ns([&] { exact.apply(x, y); }, min_seconds);
    const double cur = time_ns([&] { tabulated.apply(x, y); }, min_seconds);
    add_row("marginal_transform_apply", n, base, cur);
  }

  // ---- Autocorrelation via FFT (plan + r2c vs legacy full complex) ----
  {
    const std::size_t n = std::size_t{1} << 17;
    RandomEngine rng(45);
    std::vector<double> xs(n);
    for (auto& v : xs) v = rng.normal();
    // Legacy baseline: the pre-overhaul code allocated a full complex
    // vector and ran the recurrence-twiddle transform twice (forward +
    // inverse through conjugation) at padded size.
    const std::size_t m = next_power_of_two(2 * n);
    const double base = time_ns(
        [&] {
          std::vector<fft::Complex> buf(m, fft::Complex(0.0, 0.0));
          for (std::size_t i = 0; i < n; ++i) buf[i] = fft::Complex(xs[i], 0.0);
          legacy::fft_pow2(buf, -1);
          for (auto& c : buf) c = fft::Complex(std::norm(c), 0.0);
          legacy::fft_pow2(buf, +1);
        },
        min_seconds);
    const double cur =
        time_ns([&] { stats::autocorrelation_fft(xs, 500); }, min_seconds);
    add_row("autocorrelation_fft", n, base, cur);
  }

  // ---- End-to-end Fig. 14 twist sweep (the ISSUE's >= 2x target) ----
  {
    const std::size_t stop_time = 250;
    const std::size_t reps = bench::scaled(400, 20);
    const std::vector<double> twists{0.5, 1.0, 1.5, 2.0, 2.5};
    auto corr = std::make_shared<fractal::ExponentialAutocorrelation>(0.05);
    core::MarginalTransform h(std::make_shared<GammaDistribution>(2.0, 1000.0));
    core::UnifiedVbrModel model(corr, std::move(h));
    const fractal::HoskingModel background(model.background_correlation(), stop_time);
    is::IsOverflowSettings settings;
    settings.service_rate = model.mean() / 0.7;
    settings.buffer = 15.0 * model.mean();
    settings.stop_time = stop_time;
    settings.replications = reps;

    core::UnifiedVbrModel fast_model = model;
    fast_model.enable_tabulated_transform();

    const auto sweep_legacy = [&] {
      for (const double twist : twists) {
        is::IsOverflowSettings s = settings;
        s.twisted_mean = twist;
        legacy::IsKernel kernel(model, background, 1, s);
        RandomEngine rng(1000);
        for (std::size_t rep = 0; rep < reps; ++rep) {
          RandomEngine stream = rng;
          kernel.run_one(stream);
          rng.jump();
        }
      }
    };
    const auto sweep_current = [&] {
      for (const double twist : twists) {
        is::IsOverflowSettings s = settings;
        s.twisted_mean = twist;
        RandomEngine rng(1000);
        is::estimate_overflow_is(fast_model, background, s, rng);
      }
    };
    const double base = time_ns(sweep_legacy, min_seconds);
    const double cur = time_ns(sweep_current, min_seconds);
    add_row("is_twist_sweep_fig14", reps * twists.size(), base, cur);
  }

  // ------------------------------------------------------------- output
  const BuildInfo& build = build_info();
  std::printf("{\"meta\":{\"version\":\"%s\",\"git_sha\":\"%s\",\"build_type\":\"%s\","
              "\"bench_scale\":%.4g},\n \"benches\":[",
              build.version, build.git_sha, build.build_type, bench::bench_scale());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    std::printf("%s\n  {\"name\":\"%s\",\"n\":%zu,\"baseline_ns\":%.0f,"
                "\"current_ns\":%.0f,\"speedup\":%.2f}",
                i == 0 ? "" : ",", r.name, r.n, r.baseline_ns, r.current_ns,
                r.current_ns > 0.0 ? r.baseline_ns / r.current_ns : 0.0);
  }
  std::printf("\n ]}\n");
  return 0;
}
