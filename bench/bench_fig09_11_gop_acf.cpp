// Figs. 9-11 — Frame-level autocorrelation of the composite I-B-P model
// against the empirical trace, in the paper's three lag windows
// (1..150, 151..300, 301..490). The GOP periodicity produces the comb
// pattern; the envelope follows the rescaled I-frame correlation
// (eq. (15)).
#include <cstdio>

#include "bench_util.h"
#include "core/gop_model.h"
#include "stats/descriptive.h"

int main() {
  using namespace ssvbr;
  bench::banner("Figs. 9-11: composite I-B-P autocorrelation, lags 1..490",
                "comb pattern with period 12; envelope decays from ~0.97 to ~0.4");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const std::vector<double> emp_acf = stats::autocorrelation_fft(tr.frame_sizes(), 490);

  const core::FittedGopModel fitted = core::fit_gop_model(tr);
  RandomEngine rng(9);
  const std::size_t n_frames = bench::scaled(tr.size(), 60000);
  const trace::VideoTrace syn = fitted.model.generate(n_frames, rng);
  const std::vector<double> sim_acf = stats::autocorrelation_fft(syn.frame_sizes(), 490);

  std::printf("# figure,lag_window\n");
  std::printf("# fig09,1..150\n# fig10,151..300\n# fig11,301..490\n");
  std::printf("lag,empirical_acf,simulated_acf\n");
  for (std::size_t k = 1; k <= 490; ++k) {
    std::printf("%zu,%.5f,%.5f\n", k, emp_acf[k], sim_acf[k]);
  }
  return 0;
}
