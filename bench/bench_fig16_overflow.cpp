// Fig. 16 — Steady-state overflow probability log10 P(Q_k > b) against
// the normalized buffer size b, for utilizations 0.2, 0.4, 0.6, 0.8,
// with stop time k = 10 b, alongside the trace-driven measurement.
//
// Expected shape: probability increases with utilization and decays
// sub-exponentially (concave-up on the log scale) in b; the synthetic
// curves track the trace-driven ones, with growing disagreement at low
// utilization / large buffers where a single trace cannot estimate such
// rare events (exactly the caveat the paper makes).
#include <cstdio>
#include <cmath>

#include "bench_util.h"
#include "engine/run.h"
#include "is/is_estimator.h"
#include "queueing/overflow_mc.h"
#include "stats/descriptive.h"

int main() {
  using namespace ssvbr;
  bench::banner("Fig. 16: overflow probability vs buffer size, util 0.2/0.4/0.6/0.8",
                "log10 P from ~-0.5 (util .8, small b) down to ~-5.5 (util .2, b=250)");

  const core::FittedModel& fitted = bench::fitted_i_frame_model();
  const double mean_rate = fitted.model.mean();
  const std::vector<double> i_series = bench::empirical_trace().i_frame_series();

  const std::vector<double> utilizations{0.2, 0.4, 0.6, 0.8};
  // Favorable twists per utilization from Fig. 14-style scans: rarer
  // events (lower utilization) need stronger twisting.
  const std::vector<double> twists{3.0, 2.0, 1.2, 0.6};
  const std::vector<double> buffers{10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 250.0};
  const std::size_t reps = bench::scaled(1000, 60) / 2;  // per (util, b) point

  const std::size_t max_k = static_cast<std::size_t>(10.0 * buffers.back());
  const fractal::HoskingModel background(fitted.model.background_correlation(), max_k);
  engine::ReplicationEngine engine;
  std::printf("# engine_threads: %u\n", engine.threads());

  std::printf(
      "utilization,normalized_buffer,k,log10_P_model,log10_P_trace,model_P,hits\n");
  for (std::size_t u = 0; u < utilizations.size(); ++u) {
    const double util = utilizations[u];
    const double service = mean_rate / util;
    // Trace-driven: one pass over the whole trace for all buffer sizes
    // (the paper likewise reuses its single empirical trace).
    const double trace_mean = stats::mean(i_series);
    std::vector<double> trace_buffers;
    for (const double b : buffers) trace_buffers.push_back(b * trace_mean);
    const std::vector<double> trace_probs = queueing::steady_state_overflow_multi(
        i_series, trace_mean / util, trace_buffers);

    for (std::size_t j = 0; j < buffers.size(); ++j) {
      const double b = buffers[j];
      is::IsOverflowSettings settings;
      settings.twisted_mean = twists[u];
      settings.service_rate = service;
      settings.buffer = b * mean_rate;
      settings.stop_time = static_cast<std::size_t>(10.0 * b);
      settings.replications = reps;
      RandomEngine rng(1600 + 10 * u + j);
      engine::RunRequest req;
      req.kind = engine::EstimatorKind::kOverflowIs;
      req.is.model = &fitted.model;
      req.is.background = &background;
      req.is.settings = settings;
      const is::IsOverflowEstimate est = engine::run_with(req, engine, rng).is_estimate;
      const double log_model = est.probability > 0.0 ? std::log10(est.probability) : -99.0;
      const double log_trace =
          trace_probs[j] > 0.0 ? std::log10(trace_probs[j]) : -99.0;
      std::printf("%.1f,%.0f,%zu,%.4f,%.4f,%.6e,%zu\n", util, b, settings.stop_time,
                  log_model, log_trace, est.probability, est.hits);
    }
  }
  return 0;
}
