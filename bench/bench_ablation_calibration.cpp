// Ablation — iterative foreground-ACF calibration (the "automatic
// search for the best background autocorrelation structure" the paper
// lists as work in progress).
//
// Starting from the *uncompensated* Step-2 fit (attenuation ablated),
// the calibration loop simulates the foreground, measures its ACF
// mismatch against the empirical trace, and nudges the background
// parameters — automatically recovering (and fine-tuning) what Steps
// 3-4 achieve analytically, without knowing the attenuation factor.
#include <cstdio>

#include "bench_util.h"
#include "core/iterative_calibration.h"
#include "stats/descriptive.h"

int main() {
  using namespace ssvbr;
  bench::banner("Ablation: iterative foreground-ACF calibration",
                "ACF error decreases across iterations beyond the analytic Step 4");

  const trace::VideoTrace& tr = bench::empirical_trace();
  const std::vector<double> series = tr.i_frame_series();
  const std::vector<double> target = stats::autocorrelation_fft(series, 300);

  // Uncompensated starting point: Step 2 only.
  core::ModelBuilderOptions builder_options;
  builder_options.compensate_attenuation = false;
  const core::FittedModel uncompensated =
      core::fit_unified_model(series, builder_options);
  // The analytically compensated model, for reference.
  const core::FittedModel& fitted = bench::fitted_i_frame_model();

  core::IterativeCalibrationOptions options;
  options.iterations = static_cast<std::size_t>(bench::scaled(6, 3));
  options.acf_max_lag = 300;
  options.path_length = bench::scaled(16384, 4096);
  options.replications = static_cast<std::size_t>(bench::scaled(6, 2));
  RandomEngine rng(88);
  const core::CalibrationResult result =
      core::calibrate_foreground_acf(uncompensated.model, target, options, rng);

  std::printf("iteration,lambda,lrd_scale,acf_mae\n");
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const auto& it = result.history[i];
    std::printf("%zu,%.5f,%.4f,%.4f\n", i, it.lambda, it.lrd_scale, it.acf_error);
  }
  std::printf("# initial_error,%.4f\n", result.initial_error);
  std::printf("# final_error,%.4f\n", result.final_error);
  std::printf("# improvement_factor,%.2f\n",
              result.final_error > 0.0 ? result.initial_error / result.final_error : 0.0);
  std::printf("# calibrated_background,%s\n",
              result.model.background_correlation().describe().c_str());
  std::printf("# analytic_step4_background,%s\n",
              fitted.model.background_correlation().describe().c_str());
  return 0;
}
