// Rare-event estimation with importance sampling (Section 4 of the
// paper): estimate the probability that an ATM multiplexer buffer fed
// by self-similar VBR video overflows — an event far too rare for crude
// Monte Carlo — by twisting the mean of the Gaussian background process
// and reweighting with the sequential likelihood ratio.
#include <cstdio>
#include <cmath>

#include "core/model_builder.h"
#include "engine/parallel_estimators.h"
#include "is/is_estimator.h"
#include "is/twist_search.h"
#include "obs/metrics.h"
#include "trace/scene_mpeg_source.h"

int main() {
  using namespace ssvbr;

  // SSVBR_METRICS_JSON / SSVBR_TRACE_JSON / SSVBR_OBS_SUMMARY dump
  // instrumentation at exit when the library is built with
  // -DSSVBR_OBS=ON; without it this call is a no-op.
  obs::install_env_exit_dump();

  std::printf("=== Rare buffer-overflow estimation via importance sampling ===\n\n");

  // All replication studies below run on the deterministic parallel
  // engine: results are bit-identical to a single-threaded run, only
  // faster when cores are available. The progress callback heartbeats
  // long studies to stderr without touching the estimates.
  engine::EngineConfig engine_config;
  engine_config.progress = [](const engine::EngineProgress& p) {
    if (!p.final_update) {
      std::fprintf(stderr, "  [engine] %zu/%zu replications, %.0f reps/s, eta %.0fs\n",
                   p.replications_done, p.replications_total, p.reps_per_second,
                   p.eta_seconds);
    }
  };
  engine::ReplicationEngine engine(std::move(engine_config));
  std::printf("replication engine: %u worker thread(s), shard size %zu\n",
              engine.threads(), engine.shard_size());

  // Fit the traffic model.
  const trace::VideoTrace movie = trace::make_empirical_standin_trace();
  const core::FittedModel fitted = core::fit_unified_model(movie.i_frame_series());
  const double mean_rate = fitted.model.mean();

  // Queue setting: low utilization, large buffer => very rare overflow.
  const double utilization = 0.2;
  const double buffer_normalized = 25.0;
  const std::size_t stop_time = 500;
  std::printf("queue: utilization %.1f, normalized buffer %.0f, stop time k=%zu\n",
              utilization, buffer_normalized, stop_time);

  const fractal::HoskingModel background(fitted.model.background_correlation(),
                                         stop_time);
  is::IsOverflowSettings settings;
  settings.service_rate = mean_rate / utilization;
  settings.buffer = buffer_normalized * mean_rate;
  settings.stop_time = stop_time;
  settings.replications = 500;

  // Stage 1: coarse scan for the variance valley (Fig. 14).
  std::printf("\nStage 1: twist scan (500 replications each)\n");
  std::printf("  m*    P_hat        norm.var   hits   ESS\n");
  RandomEngine rng(42);
  const auto sweep = engine::sweep_twist_par(fitted.model, background, settings,
                                             {1.0, 2.0, 3.0, 4.0, 5.0}, rng, engine);
  for (const auto& p : sweep) {
    std::printf("  %.1f   %.3e   %8.4f   %4zu   %.1f\n", p.twisted_mean,
                p.estimate.probability, p.estimate.normalized_variance, p.estimate.hits,
                p.estimate.effective_sample_size);
  }
  const auto& best = is::find_best_twist(sweep);
  std::printf("  -> near-optimal twist m* = %.1f\n", best.twisted_mean);

  // Stage 2: production run at the chosen twist.
  settings.twisted_mean = best.twisted_mean;
  settings.replications = 4000;
  RandomEngine rng2(43);
  const is::IsOverflowEstimate est = engine::estimate_overflow_is_par(
      fitted.model, background, settings, rng2, engine);
  std::printf("\nStage 2: final estimate (%zu replications)\n", est.replications);
  std::printf("  P(overflow by k=%zu) = %.3e  (95%% CI +- %.1e)\n", stop_time,
              est.probability, est.ci95_halfwidth);
  std::printf("  variance reduction vs crude MC: %.0fx\n", est.variance_reduction_vs_mc);
  std::printf("  effective sample size: %.1f of %zu weights\n",
              est.effective_sample_size, est.replications);
  if (est.probability > 0.0) {
    const double mc_reps = 384.0 / est.probability;  // ~10% CI for Bernoulli
    std::printf("  crude MC would need ~%.2e replications for the same precision;\n"
                "  importance sampling needed %zu.\n",
                mc_reps, est.replications);
  }
  return 0;
}
