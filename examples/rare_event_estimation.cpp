// Rare-event estimation with importance sampling (Section 4 of the
// paper): estimate the probability that an ATM multiplexer buffer fed
// by self-similar VBR video overflows — an event far too rare for crude
// Monte Carlo — by twisting the mean of the Gaussian background process
// and reweighting with the sequential likelihood ratio.
//
// This example doubles as the demo of the unified run-control API
// (engine/run.h): the production run goes through engine::RunRequest /
// RunResult, and the flags below exercise durable checkpointing,
// resume, and Ctrl-C cancellation:
//
//   --checkpoint PATH     write crash-safe shard snapshots to PATH
//   --checkpoint-every N  snapshot cadence in shards (default 1)
//   --resume              continue from PATH if it exists
//   --replications N      production replications (default 4000)
//   --twist M             skip the scan, use twist M directly
//   --skip-sweep          alias for --twist 3.0
//   --seed S              production-run seed (default 43)
//   --threads T           worker threads (default: hardware)
//   --shard-size N        replications per shard (default 256)
//   --stop-time K         overflow horizon in slots (default 500)
//   --max-replications N  per-invocation budget (campaign slices)
//
// Exit status: 0 when the estimate completed, 3 when the run drained
// early (cancelled / deadline / budget; rerun with --resume to
// continue), 2 for bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <string>

#include "common/error.h"
#include "core/model_builder.h"
#include "engine/run.h"
#include "is/is_estimator.h"
#include "is/twist_search.h"
#include "obs/metrics.h"
#include "trace/scene_mpeg_source.h"

namespace {

struct Options {
  std::string checkpoint;
  std::size_t checkpoint_every = 1;
  bool resume = false;
  std::size_t replications = 4000;
  double twist = 0.0;  // 0 => run the stage-1 scan
  std::uint64_t seed = 43;
  unsigned threads = 0;
  std::size_t shard_size = 256;
  std::size_t stop_time = 500;
  std::size_t max_replications = 0;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--checkpoint") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.checkpoint = v;
    } else if (arg == "--checkpoint-every") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--replications") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.replications = std::strtoull(v, nullptr, 10);
    } else if (arg == "--twist") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.twist = std::strtod(v, nullptr);
    } else if (arg == "--skip-sweep") {
      opt.twist = 3.0;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--shard-size") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.shard_size = std::strtoull(v, nullptr, 10);
    } else if (arg == "--stop-time") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.stop_time = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-replications") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.max_replications = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssvbr;

  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  // SSVBR_METRICS_JSON / SSVBR_TRACE_JSON / SSVBR_OBS_SUMMARY dump
  // instrumentation at exit when the library is built with
  // -DSSVBR_OBS=ON; without it this call is a no-op.
  obs::install_env_exit_dump();

  std::printf("=== Rare buffer-overflow estimation via importance sampling ===\n\n");

  // All replication studies below run on the deterministic parallel
  // engine: results are bit-identical to a single-threaded run at any
  // thread count, with or without an interruption in between. Ctrl-C
  // drains workers at shard boundaries, writes a final checkpoint (when
  // --checkpoint is set), and exits cleanly; rerun with --resume to
  // pick the campaign back up without replaying a single replication.
  engine::install_sigint_cancellation();

  engine::EngineConfig engine_config;
  engine_config.threads = opt.threads;
  engine_config.shard_size = opt.shard_size;
  engine_config.progress = [](const engine::EngineProgress& p) {
    if (!p.final_update) {
      std::fprintf(stderr, "  [engine] %zu/%zu replications, %.0f reps/s, eta %.0fs\n",
                   p.replications_done, p.replications_total, p.reps_per_second,
                   p.eta_seconds);
    }
  };
  engine::ReplicationEngine engine(std::move(engine_config));
  std::printf("replication engine: %u worker thread(s), shard size %zu\n",
              engine.threads(), engine.shard_size());

  // Fit the traffic model.
  const trace::VideoTrace movie = trace::make_empirical_standin_trace();
  const core::FittedModel fitted = core::fit_unified_model(movie.i_frame_series());
  const double mean_rate = fitted.model.mean();

  // Queue setting: low utilization, large buffer => very rare overflow.
  const double utilization = 0.2;
  const double buffer_normalized = 25.0;
  std::printf("queue: utilization %.1f, normalized buffer %.0f, stop time k=%zu\n",
              utilization, buffer_normalized, opt.stop_time);

  const fractal::HoskingModel background(fitted.model.background_correlation(),
                                         opt.stop_time);
  is::IsOverflowSettings settings;
  settings.service_rate = mean_rate / utilization;
  settings.buffer = buffer_normalized * mean_rate;
  settings.stop_time = opt.stop_time;
  settings.replications = 500;

  double twist = opt.twist;
  if (twist <= 0.0) {
    // Stage 1: coarse scan for the variance valley (Fig. 14), through
    // the same unified request API (sweeps support cancellation at grid
    // -point granularity but not checkpointing).
    std::printf("\nStage 1: twist scan (500 replications each)\n");
    std::printf("  m*    P_hat        norm.var   hits   ESS\n");
    engine::RunRequest scan;
    scan.kind = engine::EstimatorKind::kTwistSweep;
    scan.is.model = &fitted.model;
    scan.is.background = &background;
    scan.is.settings = settings;
    scan.is.twists = {1.0, 2.0, 3.0, 4.0, 5.0};
    scan.controls.cancel_on_sigint = true;
    RandomEngine rng(42);
    const engine::RunResult scan_result = engine::run_with(scan, engine, rng);
    for (const auto& p : scan_result.sweep) {
      std::printf("  %.1f   %.3e   %8.4f   %4zu   %.1f\n", p.twisted_mean,
                  p.estimate.probability, p.estimate.normalized_variance,
                  p.estimate.hits, p.estimate.effective_sample_size);
    }
    if (!scan_result.complete()) {
      std::printf("  scan %s after %zu grid point(s)\n",
                  engine::to_string(scan_result.status), scan_result.sweep.size());
      return 3;
    }
    const auto& best = is::find_best_twist(scan_result.sweep);
    twist = best.twisted_mean;
    std::printf("  -> near-optimal twist m* = %.1f\n", twist);
  } else {
    std::printf("\nStage 1 skipped: twist m* = %.1f given on the command line\n", twist);
  }

  // Stage 2: production run at the chosen twist, as one durable
  // RunRequest.
  settings.twisted_mean = twist;
  settings.replications = opt.replications;
  engine::RunRequest request;
  request.kind = engine::EstimatorKind::kOverflowIs;
  request.is.model = &fitted.model;
  request.is.background = &background;
  request.is.settings = settings;
  request.seed = opt.seed;
  request.checkpoint.path = opt.checkpoint;
  request.checkpoint.every_shards = opt.checkpoint_every;
  request.checkpoint.resume = opt.resume;
  request.controls.cancel_on_sigint = true;
  request.controls.max_replications = opt.max_replications;

  RandomEngine rng2(opt.seed);
  engine::RunResult result;
  try {
    result = engine::run_with(request, engine, rng2);
  } catch (const RunError& e) {
    std::fprintf(stderr, "run rejected: %s\n", e.what());
    return 2;
  }

  if (result.provenance.resumed) {
    std::printf("\nresumed from shard %zu/%zu (replaying nothing)\n",
                result.provenance.resumed_shards, result.provenance.shards_total);
  }

  const is::IsOverflowEstimate est = result.is_estimate;
  std::printf("\nStage 2: %s after %zu/%zu replications (%zu checkpoint writes)\n",
              engine::to_string(result.status), result.replications_done,
              result.replications_total, result.provenance.checkpoints_written);
  std::printf("  P(overflow by k=%zu) = %.3e  (95%% CI +- %.1e)\n", opt.stop_time,
              est.probability, est.ci95_halfwidth);
  std::printf("  variance reduction vs crude MC: %.0fx\n", est.variance_reduction_vs_mc);
  std::printf("  effective sample size: %.1f of %zu weights\n",
              est.effective_sample_size, est.replications);
  if (est.probability > 0.0) {
    const double mc_reps = 384.0 / est.probability;  // ~10% CI for Bernoulli
    std::printf("  crude MC would need ~%.2e replications for the same precision;\n"
                "  importance sampling needed %zu.\n",
                mc_reps, est.replications);
  }
  if (!result.complete()) {
    std::printf("\nrun drained early (%s); rerun with --resume to continue.\n",
                engine::to_string(result.status));
    return 3;
  }
  // Machine-checkable determinism probe: the exact bits of the final
  // estimate, compared across interrupted-and-resumed invocations by
  // scripts/check_checkpoint_schema.py.
  std::printf("final_estimate_bits 0x%016" PRIx64 "\n",
              std::bit_cast<std::uint64_t>(est.probability));
  return 0;
}
