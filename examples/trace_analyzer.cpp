// Trace analyzer CLI: read a frame-size trace (the text format written
// by VideoTrace::save) and print the paper's full diagnostic battery —
// Table-1-style metadata, per-type statistics, Hurst estimates, and the
// composite autocorrelation fit.
//
//   usage: example_trace_analyzer [trace.txt]
//
// Without an argument, a synthetic demonstration trace is analyzed (and
// written to ./demo_trace.txt so the round trip can be inspected).
#include <cstdio>
#include <string>

#include "common/error.h"
#include "core/model_builder.h"
#include "stats/acf_fit.h"
#include "stats/descriptive.h"
#include "trace/scene_mpeg_source.h"
#include "trace/video_trace.h"

namespace {

void per_type_row(const ssvbr::trace::VideoTrace& tr, ssvbr::trace::FrameType type) {
  using namespace ssvbr;
  const std::vector<double> sizes = tr.sizes_of(type);
  if (sizes.empty()) {
    std::printf("  %c frames : none\n", trace::to_char(type));
    return;
  }
  stats::RunningStats s;
  for (const double v : sizes) s.add(v);
  std::printf("  %c frames : n=%-7zu mean=%-8.0f sd=%-8.0f max=%.0f\n",
              trace::to_char(type), s.count(), s.mean(), s.stddev(), s.max());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssvbr;

  trace::VideoTrace tr = [&] {
    if (argc > 1) {
      std::printf("loading %s ...\n", argv[1]);
      return trace::VideoTrace::load_file(argv[1]);
    }
    std::printf("no trace given; analyzing a synthetic demo trace\n");
    trace::VideoTrace demo = trace::make_empirical_standin_trace(60000);
    demo.save_file("demo_trace.txt");
    std::printf("(demo trace written to ./demo_trace.txt)\n");
    return demo;
  }();

  std::printf("\n--- sequence ---------------------------------------------\n");
  std::printf("  title    : %s\n", tr.metadata().title.c_str());
  std::printf("  frames   : %zu (%.1f s at %.0f fps)\n", tr.size(),
              tr.metadata().duration_seconds(tr.size()),
              tr.metadata().frames_per_second);
  std::printf("  GOP      : %s (K_I = %zu)\n", tr.gop().pattern().c_str(),
              tr.gop().i_period());
  std::printf("  bit rate : %.0f kbit/s mean\n", tr.mean_bit_rate() / 1000.0);

  std::printf("\n--- per-type statistics (bytes/frame) --------------------\n");
  per_type_row(tr, trace::FrameType::I);
  per_type_row(tr, trace::FrameType::P);
  per_type_row(tr, trace::FrameType::B);

  const std::vector<double> i_series = tr.i_frame_series();
  if (i_series.size() < 1200) {
    std::printf("\ntrace too short for self-similarity analysis (need >= 1200 GOPs)\n");
    return 0;
  }

  std::printf("\n--- self-similarity --------------------------------------\n");
  const auto vt = fractal::variance_time_analysis(i_series);
  const auto rs = fractal::rs_analysis(i_series);
  std::printf("  H (variance-time) : %.3f  (R^2 %.2f)\n", vt.hurst, vt.fit.r_squared);
  std::printf("  H (R/S analysis)  : %.3f  (R^2 %.2f)\n", rs.hurst, rs.fit.r_squared);

  std::printf("\n--- autocorrelation structure ----------------------------\n");
  const std::size_t max_lag = std::min<std::size_t>(500, i_series.size() / 3);
  const std::vector<double> acf = stats::autocorrelation_fft(i_series, max_lag);
  std::printf("  r(1)=%.3f  r(10)=%.3f  r(100)=%.3f\n", acf[1], acf[10],
              acf[std::min<std::size_t>(100, max_lag)]);
  try {
    const stats::CompositeAcfFit fit = stats::fit_composite_acf(acf);
    std::printf("  composite fit: exp(-%.4f k) below Kt=%zu, %.2f k^-%.2f above\n",
                fit.lambda, fit.knee, fit.lrd_scale, fit.beta);
    std::printf("  => short-range time constant %.0f GOPs, LRD Hurst %.3f\n",
                1.0 / fit.lambda, fit.hurst());
  } catch (const NumericalError& e) {
    std::printf("  composite fit failed: %s\n", e.what());
  }
  return 0;
}
