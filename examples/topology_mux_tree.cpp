// Network-scale multiplexer-tree study: a 3-level ATM mux tree whose
// four access nodes each aggregate a 1000-source VBR population
// (batched into one superposed background process, Section 5 of the
// paper scaled up), run as a deterministic TopologyRunRequest campaign.
// Reports per-node loss / queueing / delay and the end-to-end picture.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/marginal_transform.h"
#include "core/unified_model.h"
#include "dist/distributions.h"
#include "fractal/autocorrelation.h"
#include "net/run.h"

int main() {
  using namespace ssvbr;

  std::printf("=== Topology study: 3-level mux tree, 1000-source populations ===\n\n");

  // The unified VBR source model: gamma marginal on an SRD/LRD
  // background (exponential ACF here keeps the example fast; swap in
  // fractal::FgnAutocorrelation for the LRD regime).
  auto corr = std::make_shared<fractal::ExponentialAutocorrelation>(0.1);
  core::MarginalTransform h(std::make_shared<GammaDistribution>(2.0, 1.0));
  const auto model = std::make_shared<const core::UnifiedVbrModel>(
      std::move(corr), std::move(h));
  const double m = model->mean();

  // 4 access nodes -> 2 edge nodes -> 1 core node. Each level carries
  // twice the sources of the one below; service is provisioned at ~98%
  // utilization (tight headroom so queues actually breathe), and buffer
  // — which caps TOTAL per-slot content, service included — at 1.5x the
  // offered load, i.e. about half a slot of waiting room above service.
  const std::size_t population = 1000;
  std::vector<double> service, buffer;
  std::size_t sources = population;
  for (std::size_t level = 0; level < 3; ++level) {
    service.push_back(1.02 * static_cast<double>(sources) * m);
    buffer.push_back(1.5 * static_cast<double>(sources) * m);
    sources *= 2;
  }

  net::TopologyRunRequest request;
  request.scenario.topology = net::make_mux_tree(3, 2, service, buffer);
  for (const std::size_t leaf : net::mux_tree_leaves(3, 2)) {
    net::SourceClassConfig cls;
    cls.model = model;
    cls.population = population;
    cls.ingress = leaf;
    request.scenario.classes.push_back(cls);
  }
  request.scenario.slots = 4096;
  request.scenario.warmup = 512;
  request.replications = 64;
  request.seed = 42;

  std::printf("%zu nodes, %zu source classes x %zu sources, %zu slots x %zu replications\n\n",
              request.scenario.topology.n_nodes(), request.scenario.classes.size(),
              population, request.scenario.slots, request.replications);

  const net::TopologyRunResult result = net::run_topology(request);
  if (!result.complete()) {
    std::printf("campaign stopped early (%zu/%zu replications)\n",
                result.replications_done, result.replications_total);
    return 1;
  }

  std::printf("node,loss_ratio,overflow_fraction,mean_queue,peak_queue,mean_delay_slots,utilization\n");
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    const net::NodeReport& node = result.nodes[i];
    std::printf("%zu,%.3e,%.4f,%.1f,%.1f,%.3f,%.3f\n", i, node.loss_ratio,
                node.overflow_fraction, node.mean_queue, node.peak_queue,
                node.mean_delay_slots, node.utilization);
  }
  std::printf("\nend_to_end_loss_ratio,%.3e\n", result.end_to_end_loss_ratio);
  std::printf("delivered_fraction,%.6f\n", result.delivered_fraction);
  std::printf("elapsed_seconds,%.2f\n", result.elapsed_seconds);
  return 0;
}
