// Tandem-with-ABR study: a rate-adaptive (AIMD) foreground flow crosses
// a 4-hop tandem of ATM queues shared with a long-range-dependent VBR
// background population. The question: how much of the nominal peak
// rate does the adaptive flow actually get against self-similar cross
// traffic, and how often is it squeezed?
#include <cstdio>
#include <memory>

#include "core/marginal_transform.h"
#include "core/unified_model.h"
#include "dist/distributions.h"
#include "fractal/autocorrelation.h"
#include "net/run.h"

int main() {
  using namespace ssvbr;

  std::printf("=== Topology study: ABR flow vs LRD background on a 4-hop tandem ===\n\n");

  // LRD background (fractional-Gaussian-noise ACF, H = 0.8): the burst
  // clustering that makes adaptation hard at every timescale.
  auto corr = std::make_shared<fractal::FgnAutocorrelation>(0.8);
  core::MarginalTransform h(std::make_shared<GammaDistribution>(2.0, 1.0));
  const auto model = std::make_shared<const core::UnifiedVbrModel>(
      std::move(corr), std::move(h));
  const double m = model->mean();

  const std::size_t population = 500;
  const double offered = static_cast<double>(population) * m;

  net::TopologyRunRequest request;
  // Each hop is provisioned at ~98% background utilization, leaving
  // ~2% headroom the ABR flow competes for. Buffer caps total per-slot
  // content (service included), so it sits above the service rate.
  request.scenario.topology =
      net::make_tandem(4, 1.02 * offered, 1.3 * offered);
  net::SourceClassConfig background;
  background.model = model;
  background.population = population;
  request.scenario.classes.push_back(background);

  net::AbrFlowConfig& abr = request.scenario.abr;
  abr.enabled = true;
  abr.initial_rate = m;
  abr.min_rate = 0.1 * m;
  abr.peak_rate = 0.15 * offered;  // well above the actual headroom
  abr.additive_increase = 0.5 * m;
  abr.decrease_factor = 0.5;
  abr.queue_threshold = 0.05 * offered;

  request.scenario.slots = 4096;
  request.scenario.warmup = 512;
  request.replications = 64;
  request.seed = 7;

  std::printf("%zu hops, background %zu sources (H=0.8), ABR peak %.0f cells/slot\n\n",
              request.scenario.topology.n_nodes(), population, abr.peak_rate);

  const net::TopologyRunResult result = net::run_topology(request);
  if (!result.complete()) {
    std::printf("campaign stopped early (%zu/%zu replications)\n",
                result.replications_done, result.replications_total);
    return 1;
  }

  std::printf("abr_mean_rate,%.2f cells/slot (%.1f%% of peak)\n",
              result.abr_mean_rate, 100.0 * result.abr_mean_rate / abr.peak_rate);
  std::printf("abr_congested_fraction,%.4f\n", result.abr_congested_fraction);
  std::printf("abr_rate_range,[%.2f, %.2f]\n", result.totals.abr_min_rate(),
              result.totals.abr_max_rate());
  std::printf("\nhop,loss_ratio,mean_queue,mean_delay_slots,utilization\n");
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    const net::NodeReport& node = result.nodes[i];
    std::printf("%zu,%.3e,%.1f,%.3f,%.3f\n", i, node.loss_ratio, node.mean_queue,
                node.mean_delay_slots, node.utilization);
  }
  std::printf("\nend_to_end_loss_ratio,%.3e\n", result.end_to_end_loss_ratio);
  std::printf("elapsed_seconds,%.2f\n", result.elapsed_seconds);
  return 0;
}
