// ATM multiplexer dimensioning study: multiplex several independent
// model-driven VBR video sources onto one ATM link and measure the cell
// loss ratio as a function of buffer size and link capacity — the
// engineering question (how much buffer / bandwidth does self-similar
// video need?) that motivates the paper's modeling work.
#include <cstdio>
#include <memory>
#include <vector>

#include "atm/cell.h"
#include "atm/multiplexer.h"
#include "atm/segmentation.h"
#include "core/gop_model.h"
#include "trace/scene_mpeg_source.h"

int main() {
  using namespace ssvbr;

  std::printf("=== ATM multiplexer study: N VBR video sources on one link ===\n\n");

  // Fit the composite I/B/P model once, then instantiate independent
  // sources from it.
  const trace::VideoTrace movie = trace::make_empirical_standin_trace(60000);
  const core::FittedGopModel fitted = core::fit_gop_model(movie);

  const std::size_t n_sources = 6;
  const std::size_t n_frames = 12000;           // ~6.7 minutes per source
  const std::size_t slots_per_frame = 15;       // one slot per slice interval
  RandomEngine rng(1);

  // Per-slot cell arrivals of every source (AAL5 segmentation, smooth
  // pacing across the frame interval).
  std::vector<std::vector<std::size_t>> sources;
  double total_cell_rate = 0.0;  // cells per slot
  for (std::size_t s = 0; s < n_sources; ++s) {
    const trace::VideoTrace tr = fitted.model.generate(n_frames, rng);
    sources.push_back(
        atm::segment_frames(tr.frame_sizes(), slots_per_frame, atm::PacingMode::kSmooth));
    total_cell_rate += static_cast<double>(atm::total_cells(tr.frame_sizes())) /
                       static_cast<double>(n_frames * slots_per_frame);
  }
  std::printf("%zu sources, %zu slots each, aggregate offered load %.1f cells/slot\n",
              n_sources, sources.front().size(), total_cell_rate);

  // Sweep buffer size at a fixed 80%-utilization link.
  const double service = total_cell_rate / 0.8;
  std::printf("\nlink rate %.1f cells/slot (utilization 0.80)\n", service);
  std::printf("buffer_cells,cell_loss_ratio,peak_queue\n");
  for (const std::size_t buffer : {100u, 400u, 1600u, 6400u, 25600u}) {
    const atm::MuxStats stats = atm::multiplex(sources, buffer, service);
    std::printf("%zu,%.3e,%zu\n", buffer, stats.cell_loss_ratio(), stats.peak_queue);
  }

  // Sweep utilization at a fixed buffer: the self-similar burstiness
  // forces conservative dimensioning.
  const std::size_t buffer = 1600;
  std::printf("\nbuffer %zu cells\n", buffer);
  std::printf("utilization,link_cells_per_slot,cell_loss_ratio\n");
  for (const double util : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    const atm::MuxStats stats = atm::multiplex(sources, buffer, total_cell_rate / util);
    std::printf("%.1f,%.1f,%.3e\n", util, total_cell_rate / util,
                stats.cell_loss_ratio());
  }
  std::printf("\nNote the slow improvement with buffer size: with long-range-\n"
              "dependent input, buffering is far less effective than extra\n"
              "bandwidth — the paper's core operational message.\n");
  return 0;
}
