// Quickstart: fit the unified self-similar VBR model to a video trace
// and synthesize new traffic with the same marginal and SRD+LRD
// autocorrelation structure.
//
//   $ ./example_quickstart
//
// In a real deployment the trace would come from VideoTrace::load_file;
// here we synthesize a stand-in for the paper's "Last Action Hero"
// sequence so the example is self-contained.
#include <algorithm>
#include <cstdio>

#include "core/model_builder.h"
#include "stats/descriptive.h"
#include "trace/scene_mpeg_source.h"

int main() {
  using namespace ssvbr;

  // 1. Obtain an empirical frame-size trace (bytes per frame).
  const trace::VideoTrace movie = trace::make_empirical_standin_trace();
  const std::vector<double> i_frames = movie.i_frame_series();
  std::printf("trace: %zu frames, %zu I frames, mean %.0f bytes/frame\n",
              movie.size(), i_frames.size(), movie.mean_frame_size());

  // 2. Fit the paper's four-step pipeline: Hurst estimation, composite
  //    SRD+LRD autocorrelation fit, attenuation measurement, and
  //    compensation.
  const core::FittedModel fitted = core::fit_unified_model(i_frames);
  std::printf("fitted: H=%.2f  lambda=%.4f  L=%.2f  beta=%.2f  knee=%zu  a=%.2f\n",
              fitted.report.hurst_combined, fitted.report.acf_fit.lambda,
              fitted.report.acf_fit.lrd_scale, fitted.report.acf_fit.beta,
              fitted.report.acf_fit.knee, fitted.report.attenuation);

  // 3. Generate synthetic traffic from the fitted model.
  RandomEngine rng(/*seed=*/2024);
  const std::vector<double> synthetic = fitted.model.generate(5000, rng);
  std::printf("synthetic: %zu samples, mean %.0f bytes, min %.0f, max %.0f\n",
              synthetic.size(), stats::mean(synthetic),
              *std::min_element(synthetic.begin(), synthetic.end()),
              *std::max_element(synthetic.begin(), synthetic.end()));
  std::printf("(ensemble mean %.0f bytes; single long-range-dependent paths\n"
              " wander around it far more than an i.i.d. sample would)\n",
              fitted.model.mean());

  // 4. Verify the headline invariant: the synthetic ACF decays slowly
  //    (long-range dependence), unlike a Markovian model.
  const std::vector<double> acf = stats::autocorrelation_fft(synthetic, 100);
  std::printf("synthetic ACF: r(1)=%.2f  r(10)=%.2f  r(100)=%.2f\n", acf[1], acf[10],
              acf[100]);
  return 0;
}
