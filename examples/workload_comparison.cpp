// Cross-model workload comparison: the unified model against every
// alternative generator in the repo, all driving the same single-server
// queue at the same utilization. Two columns tell the story the paper
// tells across Figs. 14-17: the estimated Hurst parameter (does the
// generator actually carry long-range dependence?) and the buffer-tail
// probability P(Q > b) (what that dependence costs a multiplexer).
//
// The long-memory generators (unified fGn, activity-modulated fGn,
// Markov-chain LRD) should agree on H ~ 0.8 and on a heavy queue tail;
// the short-memory baselines (DAR(1), TES, MMPP) report H near 1/2 and
// a tail that is orders of magnitude lighter at the same utilization —
// the paper's argument for why Markovian traffic models underestimate
// buffer requirements for VBR video.
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "baselines/dar.h"
#include "baselines/markov_lrd.h"
#include "baselines/mmpp.h"
#include "baselines/tes.h"
#include "core/activity_model.h"
#include "core/marginal_transform.h"
#include "core/unified_model.h"
#include "dist/distributions.h"
#include "dist/random.h"
#include "fractal/autocorrelation.h"
#include "fractal/hurst.h"
#include "queueing/lindley.h"

namespace {

using namespace ssvbr;

constexpr std::size_t kPathLength = 1u << 15;
constexpr std::size_t kReplications = 8;
constexpr std::size_t kWarmup = 1024;
constexpr double kUtilization = 0.7;
constexpr double kBufferMeans = 30.0;  // deep buffer: where the tails separate

struct WorkloadRow {
  const char* name;
  double mean;           ///< analytic long-run mean of the generator
  double hurst;          ///< R/S estimate averaged over replications
  double overflow;       ///< post-warmup fraction of slots with Q > b
  double mean_queue;     ///< post-warmup mean queue (in source means)
};

/// Feed `path` through a Lindley queue at the row's operating point and
/// fold the post-warmup tail statistics into the row.
void drive_queue(WorkloadRow& row, std::span<const double> path) {
  const double service = row.mean / kUtilization;
  const double buffer = kBufferMeans * row.mean;
  queueing::LindleyQueue queue(service);
  std::size_t over = 0;
  double queue_sum = 0.0;
  for (std::size_t t = 0; t < path.size(); ++t) {
    const double q = queue.step(path[t]);
    if (t < kWarmup) continue;
    if (q > buffer) ++over;
    queue_sum += q;
  }
  const double measured = static_cast<double>(path.size() - kWarmup);
  row.overflow += static_cast<double>(over) / measured / kReplications;
  row.mean_queue += queue_sum / measured / row.mean / kReplications;
}

/// Run one generator: `sample(rng)` returns a fresh path per call.
template <class Sampler>
WorkloadRow measure(const char* name, double mean, RandomEngine& rng,
                    Sampler&& sample) {
  WorkloadRow row{name, mean, 0.0, 0.0, 0.0};
  for (std::size_t rep = 0; rep < kReplications; ++rep) {
    const std::vector<double> path = sample(rng);
    row.hurst += fractal::rs_analysis(path).hurst / kReplications;
    drive_queue(row, path);
  }
  return row;
}

}  // namespace

int main() {
  using core::BackgroundGenerator;

  std::printf("=== Workload comparison: every generator, one queue ===\n\n");
  std::printf("operating point: utilization %.2f, buffer %.0f x mean, "
              "%zu slots x %zu replications\n\n",
              kUtilization, kBufferMeans, kPathLength, kReplications);

  // Common long-memory target (H = 0.8) and marginal (Gamma(2,1)), so
  // the rows differ only in the correlation machinery each generator
  // can actually express.
  const auto model = std::make_shared<const core::UnifiedVbrModel>(
      std::make_shared<fractal::FgnAutocorrelation>(0.8),
      core::MarginalTransform(std::make_shared<GammaDistribution>(2.0, 1.0)));

  core::ActivityConfig activity_cfg;
  activity_cfg.busy_mean_frames = 8.0;
  activity_cfg.idle_mean_frames = 4.0;
  const core::ActivityModulatedModel activity(model, activity_cfg);

  // Markov LRD chain at the same H, with the ON rate chosen so the
  // long-run mean (on + off) / 2 matches the unified model's mean.
  const baselines::MarkovLrdProcess markov(0.8, 2.0 * model->mean(), 0.0);

  // DAR(1) fitted the traditional way: same marginal, rho matched to
  // the fGn lag-1 autocorrelation. The match is exact at lag 1 and
  // collapses geometrically beyond — the failure mode the paper's
  // Fig. 17 comparison targets.
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 1.0);
  const baselines::Dar1Process dar(
      model->predicted_foreground_acf(1.0), gamma);
  const baselines::TesProcess tes(0.3, 0.5, gamma, /*plus=*/true);
  const baselines::MmppProcess mmpp =
      baselines::MmppProcess::two_state(1.0, 3.0, 20.0, 10.0);

  RandomEngine rng(1995);
  std::vector<WorkloadRow> rows;
  rows.push_back(measure("unified_fgn", model->mean(), rng, [&](RandomEngine& r) {
    return model->generate(kPathLength, r, BackgroundGenerator::kDaviesHarte);
  }));
  rows.push_back(measure("activity_modulated", activity.mean(), rng,
                         [&](RandomEngine& r) {
                           return activity.generate(kPathLength, r,
                                                    BackgroundGenerator::kDaviesHarte);
                         }));
  rows.push_back(measure("markov_lrd", markov.mean(), rng, [&](RandomEngine& r) {
    return markov.sample(kPathLength, r);
  }));
  rows.push_back(measure("dar1", gamma->mean(), rng, [&](RandomEngine& r) {
    return dar.sample(kPathLength, r);
  }));
  rows.push_back(measure("tes_plus", gamma->mean(), rng, [&](RandomEngine& r) {
    return tes.sample(kPathLength, r);
  }));
  rows.push_back(measure("mmpp_2state", mmpp.mean_rate(), rng,
                         [&](RandomEngine& r) {
                           return mmpp.sample(kPathLength, r);
                         }));

  std::printf("generator,mean,hurst_rs,overflow_fraction,mean_queue_over_mean\n");
  for (const WorkloadRow& row : rows) {
    std::printf("%s,%.3f,%.3f,%.3e,%.2f\n", row.name, row.mean, row.hurst,
                row.overflow, row.mean_queue);
  }
  std::printf("\nReading the table: the long-memory rows (unified, activity,\n"
              "markov_lrd) estimate H well above the short-memory baselines\n"
              "(R/S reads those near 0.6 only through its small-sample bias)\n"
              "and pay one to two orders of magnitude more buffer overflow at\n"
              "the same utilization; matching the marginal (DAR/TES reuse the\n"
              "same Gamma(2,1)) buys none of the queueing behaviour — the\n"
              "correlation tail does.\n");
  return 0;
}
