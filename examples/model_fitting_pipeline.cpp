// The paper's complete modeling workflow (Sections 3.1-3.3), with every
// intermediate diagnostic printed: Hurst estimation by two methods,
// composite autocorrelation fitting, attenuation measurement, the
// compensated background process, and finally the interframe (I/B/P)
// GOP model with its per-type marginal transforms.
#include <cmath>
#include <cstdio>

#include "core/gop_model.h"
#include "core/model_builder.h"
#include "stats/descriptive.h"
#include "stats/empirical_distribution.h"
#include "trace/scene_mpeg_source.h"

int main() {
  using namespace ssvbr;

  std::printf("=== Unified VBR video modeling pipeline ===\n\n");
  const trace::VideoTrace movie = trace::make_empirical_standin_trace();
  std::printf("input trace: %zu frames (%.1f minutes of video), GOP %s\n",
              movie.size(),
              movie.metadata().duration_seconds(movie.size()) / 60.0,
              movie.gop().pattern().c_str());

  // ---- Step 1: Hurst parameter estimation ------------------------------
  const std::vector<double> i_frames = movie.i_frame_series();
  const auto vt = fractal::variance_time_analysis(i_frames);
  const auto rs = fractal::rs_analysis(i_frames);
  std::printf("\nStep 1 - Hurst estimation (I-frame series, n=%zu)\n", i_frames.size());
  std::printf("  variance-time plot : slope %.4f  =>  H = %.3f\n", vt.fit.slope,
              vt.hurst);
  std::printf("  R/S pox diagram    : slope %.4f  =>  H = %.3f\n", rs.fit.slope,
              rs.hurst);

  // ---- Step 2: composite SRD+LRD autocorrelation fit -------------------
  const std::vector<double> acf = stats::autocorrelation_fft(i_frames, 500);
  const stats::CompositeAcfFit fit = stats::fit_composite_acf(acf);
  std::printf("\nStep 2 - autocorrelation fit over lags 1..500\n");
  std::printf("  SRD branch  : exp(-%.5f k)          (fit R^2 = %.3f)\n", fit.lambda,
              fit.exp_fit.r_squared);
  std::printf("  LRD branch  : %.3f k^-%.3f          (fit R^2 = %.3f)\n",
              fit.lrd_scale, fit.beta, fit.pow_fit.r_squared);
  std::printf("  knee Kt     : %zu   implied H = %.3f\n", fit.knee, fit.hurst());

  // ---- Steps 3-4: attenuation and compensation (via the builder) ------
  const core::FittedModel unified = core::fit_unified_model(i_frames);
  std::printf("\nStep 3 - attenuation factor a = %.4f\n", unified.report.attenuation);
  std::printf("Step 4 - compensated background correlation: %s\n",
              unified.model.background_correlation().describe().c_str());

  // ---- Section 3.3: composite I/B/P model ------------------------------
  const core::FittedGopModel gop = core::fit_gop_model(movie);
  std::printf("\nSection 3.3 - GOP model (background rescaled by K_I = %zu)\n",
              movie.gop().i_period());
  for (const auto type :
       {trace::FrameType::I, trace::FrameType::P, trace::FrameType::B}) {
    const auto& transform = gop.model.transform(type);
    std::printf("  h_%c: mean %.0f bytes, stddev %.0f, attenuation %.3f\n",
                trace::to_char(type), transform.output_mean(),
                std::sqrt(transform.output_variance()), transform.attenuation());
  }

  // ---- Validation: compare synthetic and empirical statistics ---------
  RandomEngine rng(7);
  const trace::VideoTrace synthetic = gop.model.generate(movie.size() / 2, rng);
  std::printf("\nValidation (synthetic vs empirical)\n");
  std::printf("  mean bytes/frame : %.0f vs %.0f\n", synthetic.mean_frame_size(),
              movie.mean_frame_size());
  const auto syn_acf = stats::autocorrelation_fft(synthetic.frame_sizes(), 48);
  const auto emp_acf = stats::autocorrelation_fft(movie.frame_sizes(), 48);
  std::printf("  frame ACF r(12)  : %.3f vs %.3f (GOP period)\n", syn_acf[12],
              emp_acf[12]);
  std::printf("  frame ACF r(48)  : %.3f vs %.3f\n", syn_acf[48], emp_acf[48]);
  std::printf("\ndone.\n");
  return 0;
}
