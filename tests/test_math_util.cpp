#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace ssvbr {
namespace {

TEST(MathUtil, LogSumExpMatchesDirectForModerateValues) {
  EXPECT_NEAR(log_sum_exp(0.0, 0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(log_sum_exp(1.0, 2.0), std::log(std::exp(1.0) + std::exp(2.0)), 1e-12);
}

TEST(MathUtil, LogSumExpHandlesExtremeMagnitudes) {
  // exp(1000) overflows; the result must still be finite and ~max.
  EXPECT_NEAR(log_sum_exp(1000.0, 0.0), 1000.0, 1e-9);
  EXPECT_NEAR(log_sum_exp(-1000.0, -1001.0), -1000.0 + std::log1p(std::exp(-1.0)), 1e-9);
}

TEST(MathUtil, LogSumExpWithNegativeInfinity) {
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_sum_exp(ninf, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(log_sum_exp(3.0, ninf), 3.0);
}

TEST(MathUtil, KahanSumBeatsNaiveOnIllConditionedInput) {
  // 1 + 1e-16 repeated: naive summation loses the small terms entirely.
  std::vector<double> xs;
  xs.push_back(1.0);
  for (int i = 0; i < 10000; ++i) xs.push_back(1e-16);
  const double kahan = kahan_sum(xs);
  EXPECT_NEAR(kahan, 1.0 + 1e-12, 1e-15);
}

TEST(MathUtil, ClampBounds) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtil, AlmostEqual) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
  EXPECT_TRUE(almost_equal(0.0, 0.0));
  EXPECT_TRUE(almost_equal(1e300, 1e300 * (1.0 + 1e-10)));
}

TEST(MathUtil, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1025), 2048u);
}

}  // namespace
}  // namespace ssvbr
