// Markov-chain LRD baseline (Clegg & Dodson, cs/0610134): parameter
// mapping H = (3 - alpha)/2, the inverse-transform run-length law,
// two-point marginal moments, determinism, and input validation.
#include "baselines/markov_lrd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "dist/random.h"
#include "stats/descriptive.h"

namespace ssvbr::baselines {
namespace {

TEST(MarkovLrd, ParameterMapping) {
  const MarkovLrdProcess chain(0.75);
  EXPECT_DOUBLE_EQ(chain.hurst(), 0.75);
  EXPECT_DOUBLE_EQ(chain.alpha(), 3.0 - 2.0 * 0.75);
  EXPECT_DOUBLE_EQ(chain.on_rate(), 1.0);
  EXPECT_DOUBLE_EQ(chain.off_rate(), 0.0);
  EXPECT_DOUBLE_EQ(chain.mean(), 0.5);
  EXPECT_DOUBLE_EQ(chain.variance(), 0.25);

  const MarkovLrdProcess scaled(0.9, 8.0, 2.0);
  EXPECT_DOUBLE_EQ(scaled.mean(), 5.0);
  EXPECT_DOUBLE_EQ(scaled.variance(), 9.0);
}

TEST(MarkovLrd, RejectsInvalidParameters) {
  EXPECT_THROW(MarkovLrdProcess(0.5), InvalidArgument);   // H must exceed 1/2
  EXPECT_THROW(MarkovLrdProcess(1.0), InvalidArgument);   // and stay below 1
  EXPECT_THROW(MarkovLrdProcess(0.8, 1.0, 1.0), InvalidArgument);  // on == off
  EXPECT_THROW(MarkovLrdProcess(0.8, 1.0, -0.5), InvalidArgument);
}

TEST(MarkovLrd, RunLengthsFollowTheHeavyTailLaw) {
  // L = floor(U^(-1/alpha)) gives P(L >= k) = k^(-alpha) exactly: the
  // empirical survival at small k must match to binomial noise.
  const double hurst = 0.8;  // alpha = 1.4
  const MarkovLrdProcess chain(hurst);
  RandomEngine rng(101);
  constexpr std::size_t kRuns = 200000;
  std::vector<std::size_t> exceed(6, 0);  // counts of L >= k, k = 1..6
  for (std::size_t i = 0; i < kRuns; ++i) {
    const std::uint64_t len = chain.sample_run_length(rng);
    ASSERT_GE(len, 1u);
    for (std::size_t k = 1; k <= 6; ++k) {
      if (len >= k) ++exceed[k - 1];
    }
  }
  for (std::size_t k = 1; k <= 6; ++k) {
    const double expected = std::pow(static_cast<double>(k), -chain.alpha());
    const double observed =
        static_cast<double>(exceed[k - 1]) / static_cast<double>(kRuns);
    EXPECT_NEAR(observed, expected, 0.01) << "at run length " << k;
  }
}

TEST(MarkovLrd, PathMomentsMatchTheTwoPointMarginal) {
  const MarkovLrdProcess chain(0.7, 3.0, 1.0);
  RandomEngine rng(102);
  const std::vector<double> path = chain.sample(1 << 16, rng);
  for (const double v : path) {
    ASSERT_TRUE(v == 3.0 || v == 1.0);
  }
  // alpha = 1.6 has finite mean but infinite run-length variance, so
  // the time-average converges slowly; the tolerance reflects that.
  EXPECT_NEAR(stats::mean(path), chain.mean(), 0.15);
}

TEST(MarkovLrd, SamplingIsDeterministicPerSeed) {
  const MarkovLrdProcess chain(0.85);
  RandomEngine a(7), b(7), c(8);
  const std::vector<double> pa = chain.sample(4096, a);
  const std::vector<double> pb = chain.sample(4096, b);
  const std::vector<double> pc = chain.sample(4096, c);
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, pc);
}

TEST(MarkovLrd, StateStepperMatchesSampleInto) {
  // sample_into is begin() + n x next() by definition; the two paths
  // must agree bit for bit from the same engine state.
  const MarkovLrdProcess chain(0.8, 2.0, 0.5);
  RandomEngine a(55), b(55);
  std::vector<double> bulk(1024);
  chain.sample_into(bulk, a);
  MarkovLrdProcess::State state = chain.begin(b);
  for (std::size_t t = 0; t < bulk.size(); ++t) {
    EXPECT_EQ(bulk[t], chain.next(state, b)) << "at slot " << t;
  }
}

}  // namespace
}  // namespace ssvbr::baselines
