// ABR chunked-streaming client: randomized property tests for the
// documented invariants (non-negative buffer, exact wall-time
// partition, byte conservation against the trace), policy behaviour,
// validation, and thread-count bit-identity of a client-fed scenario
// through the TopologyRunRequest front door.
#include "net/abr_client.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/error.h"
#include "dist/distributions.h"
#include "dist/random.h"
#include "fractal/autocorrelation.h"
#include "net/run.h"

namespace ssvbr::net {
namespace {

using engine::EngineConfig;
using engine::ReplicationEngine;

AbrClientConfig base_config() {
  AbrClientConfig cfg;
  cfg.bandwidth_trace = {4.0, 6.0, 2.0, 8.0};
  cfg.chunk_slots = 4;
  cfg.bitrate_ladder = {0.5, 1.0, 2.0};
  cfg.startup_chunks = 2;
  cfg.max_buffer_slots = 24.0;
  cfg.low_buffer_slots = 4.0;
  cfg.high_buffer_slots = 12.0;
  return cfg;
}

TEST(AbrClient, RejectsInvalidConfigs) {
  {
    AbrClientConfig cfg = base_config();
    cfg.bandwidth_trace.clear();
    EXPECT_THROW(AbrClient{cfg}, InvalidArgument);
  }
  {
    AbrClientConfig cfg = base_config();
    cfg.bandwidth_trace = {0.0, 0.0};  // no capacity at all
    EXPECT_THROW(AbrClient{cfg}, InvalidArgument);
  }
  {
    AbrClientConfig cfg = base_config();
    cfg.bandwidth_trace[1] = -1.0;
    EXPECT_THROW(AbrClient{cfg}, InvalidArgument);
  }
  {
    AbrClientConfig cfg = base_config();
    cfg.chunk_slots = 0;
    EXPECT_THROW(AbrClient{cfg}, InvalidArgument);
  }
  {
    AbrClientConfig cfg = base_config();
    cfg.bitrate_ladder = {1.0, 1.0};  // not strictly ascending
    EXPECT_THROW(AbrClient{cfg}, InvalidArgument);
  }
  {
    AbrClientConfig cfg = base_config();
    cfg.startup_chunks = 0;
    EXPECT_THROW(AbrClient{cfg}, InvalidArgument);
  }
  {
    AbrClientConfig cfg = base_config();
    cfg.low_buffer_slots = 20.0;  // low > high
    EXPECT_THROW(AbrClient{cfg}, InvalidArgument);
  }
}

TEST(AbrClient, PolicyInterpolatesTheLadder) {
  const AbrClientConfig cfg = base_config();
  const AbrClient client(cfg);
  EXPECT_EQ(client.pick_level(0.0), 0u);
  EXPECT_EQ(client.pick_level(cfg.low_buffer_slots), 0u);
  EXPECT_EQ(client.pick_level(cfg.high_buffer_slots), 2u);
  EXPECT_EQ(client.pick_level(cfg.max_buffer_slots), 2u);
  // Strictly inside the band the level is monotone non-decreasing.
  std::size_t prev = 0;
  for (double b = cfg.low_buffer_slots; b <= cfg.high_buffer_slots; b += 0.5) {
    const std::size_t level = client.pick_level(b);
    EXPECT_GE(level, prev);
    prev = level;
  }
}

TEST(AbrClient, RandomizedRunsKeepTheDocumentedInvariants) {
  RandomEngine rng(404);
  for (int iter = 0; iter < 50; ++iter) {
    AbrClientConfig cfg;
    cfg.chunk_slots = 1 + static_cast<std::size_t>(rng.uniform() * 8.0);
    cfg.bitrate_ladder = {0.5, 1.0, 1.5, 2.0};
    cfg.startup_chunks = 1 + static_cast<std::size_t>(rng.uniform() * 3.0);
    cfg.low_buffer_slots = rng.uniform() * 4.0;
    cfg.high_buffer_slots = cfg.low_buffer_slots + rng.uniform() * 12.0;
    cfg.max_buffer_slots = cfg.high_buffer_slots + rng.uniform() * 12.0;
    cfg.bandwidth_trace.resize(
        10 + static_cast<std::size_t>(rng.uniform() * 100.0));
    for (double& c : cfg.bandwidth_trace) {
      c = rng.uniform() < 0.15 ? 0.0 : rng.uniform() * 6.0;
    }
    std::vector<double> chunks(
        1 + static_cast<std::size_t>(rng.uniform() * 30.0));
    for (double& c : chunks) c = 0.5 + rng.uniform() * 20.0;
    const std::size_t slots = std::max<std::size_t>(
        4, static_cast<std::size_t>(rng.uniform() * 2.5 *
                                    static_cast<double>(chunks.size()) *
                                    static_cast<double>(cfg.chunk_slots)));

    AbrClient client(cfg);
    client.begin(chunks);
    double download_sum = 0.0;
    const std::size_t trace_n = cfg.bandwidth_trace.size();
    for (std::size_t t = 0; t < slots; ++t) {
      const double cap = cfg.bandwidth_trace[t % trace_n];
      const double d = client.step(cap);
      ASSERT_LE(d, cap) << "download exceeded the trace capacity";
      ASSERT_GE(d, 0.0);
      ASSERT_GE(client.buffer_slots(), 0.0) << "buffer went negative";
      download_sum += d;
    }
    const AbrClientStats& s = client.stats();
    // Every slot lands in exactly one accounting class.
    ASSERT_EQ(
        s.startup_slots + s.play_slots + s.rebuffer_slots + s.finished_slots,
        slots);
    // Byte conservation: the same additions in the same order.
    ASSERT_EQ(s.downloaded, download_sum);
    ASSERT_LE(s.chunks_completed, chunks.size());
    ASSERT_EQ(s.buffer_end, client.buffer_slots());
    // Quality indices stay on the ladder (one pick per started chunk).
    ASSERT_LE(s.quality_sum,
              (cfg.bitrate_ladder.size() - 1) * (s.chunks_completed + 1));
  }
}

TEST(AbrClient, ShortPlaylistsFinishInsteadOfStallingInStartup) {
  // A playlist below the startup threshold must still play out.
  AbrClientConfig cfg = base_config();
  cfg.startup_chunks = 3;
  const std::vector<double> chunks = {8.0};  // one chunk < threshold
  AbrClient client(cfg);
  client.run(chunks, 64);
  const AbrClientStats& s = client.stats();
  EXPECT_EQ(s.chunks_completed, 1u);
  EXPECT_EQ(s.play_slots, cfg.chunk_slots);
  EXPECT_GT(s.finished_slots, 0u);
}

TEST(AbrClient, RunMatchesManualStepping) {
  const AbrClientConfig cfg = base_config();
  const std::vector<double> chunks = {10.0, 12.0, 8.0, 20.0, 6.0};
  constexpr std::size_t kSlots = 96;

  AbrClient manual(cfg);
  manual.begin(chunks);
  std::vector<double> expected(kSlots);
  for (std::size_t t = 0; t < kSlots; ++t) {
    expected[t] =
        manual.step(cfg.bandwidth_trace[t % cfg.bandwidth_trace.size()]);
  }

  AbrClient batch(cfg);
  std::vector<double> downloads(kSlots);
  batch.run(chunks, kSlots, downloads);
  EXPECT_EQ(downloads, expected);
  EXPECT_EQ(batch.stats().downloaded, manual.stats().downloaded);
  EXPECT_EQ(batch.stats().play_slots, manual.stats().play_slots);
}

/// A tandem scenario mixing one ABR client class with a VBR background
/// population class, runnable through the front door.
TopologyRunRequest client_scenario_request() {
  const auto model = std::make_shared<const core::UnifiedVbrModel>(
      std::make_shared<fractal::ExponentialAutocorrelation>(0.1),
      core::MarginalTransform(std::make_shared<GammaDistribution>(2.0, 1.0)));
  TopologyRunRequest request;
  const double m = model->mean();
  request.scenario.topology = make_tandem(3, 130.0 * m, 80.0 * m);

  SourceClassConfig background;
  background.model = model;
  background.population = 100;
  request.scenario.classes.push_back(background);

  SourceClassConfig client;
  client.kind = SourceKind::kAbrClient;
  client.model = model;
  client.population = 1;
  client.ingress = 1;
  client.abr_client.bandwidth_trace = {6.0 * m, 10.0 * m, 2.0 * m,
                                       8.0 * m, 0.0,     12.0 * m};
  client.abr_client.chunk_slots = 8;
  client.abr_client.startup_chunks = 2;
  client.abr_client.max_buffer_slots = 48.0;
  client.abr_client.low_buffer_slots = 8.0;
  client.abr_client.high_buffer_slots = 24.0;
  request.scenario.classes.push_back(client);

  request.scenario.slots = 192;
  request.scenario.warmup = 32;
  request.replications = 24;
  request.seed = 8101;
  request.engine.shard_size = 8;
  return request;
}

TEST(AbrClient, ScenarioIsBitIdenticalAcrossThreadCounts) {
  const TopologyRunRequest request = client_scenario_request();
  std::vector<TopologyRunResult> results;
  for (const unsigned threads : {1u, 2u, 8u}) {
    TopologyRunRequest r = request;
    r.engine.threads = threads;
    ReplicationEngine engine(EngineConfig{threads, r.engine.shard_size});
    RandomEngine rng(r.seed);
    results.push_back(run_topology_with(r, engine, rng));
    ASSERT_TRUE(results.back().complete());
  }
  EXPECT_EQ(results[0].totals.to_words(), results[1].totals.to_words());
  EXPECT_EQ(results[0].totals.to_words(), results[2].totals.to_words());
  EXPECT_GT(results[0].totals.external_arrived(), 0.0);
}

TEST(AbrClient, KernelAccountsClientWallTime) {
  const TopologyRunRequest request = client_scenario_request();
  const ScenarioContext context(request.scenario);
  ScenarioKernel kernel(context);
  RandomEngine rng(request.seed);
  for (int rep = 0; rep < 4; ++rep) {
    const ScenarioStats& stats = kernel.run_one(rng);
    const AbrClientStats& c = stats.clients;
    // One client class: its slot classes partition the replication.
    EXPECT_EQ(c.startup_slots + c.play_slots + c.rebuffer_slots +
                  c.finished_slots,
              request.scenario.slots);
    EXPECT_GT(c.downloaded, 0.0);
    EXPECT_GE(c.buffer_end, 0.0);
    EXPECT_LE(c.downloaded, stats.external_arrived);
  }
}

}  // namespace
}  // namespace ssvbr::net
