#include "fft/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/error.h"
#include "common/math_util.h"
#include "dist/random.h"

namespace ssvbr::fft {
namespace {

// O(n^2) reference DFT.
std::vector<Complex> reference_dft(std::span<const Complex> x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -kTwoPi * static_cast<double>(k * j) / static_cast<double>(n);
      sum += x[j] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = sum;
  }
  return out;
}

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  return x;
}

double max_error(std::span<const Complex> a, std::span<const Complex> b) {
  double e = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) e = std::max(e, std::abs(a[i] - b[i]));
  return e;
}

TEST(Fft, ForwardPow2MatchesReference) {
  for (const std::size_t n : {2u, 8u, 64u, 256u}) {
    std::vector<Complex> x = random_signal(n, n);
    std::vector<Complex> fast = x;
    forward_pow2(fast);
    const std::vector<Complex> ref = reference_dft(x);
    EXPECT_LT(max_error(fast, ref), 1e-9 * static_cast<double>(n)) << "n=" << n;
  }
}

TEST(Fft, Pow2RoundTripRecoversInput) {
  std::vector<Complex> x = random_signal(1024, 3);
  std::vector<Complex> y = x;
  forward_pow2(y);
  inverse_pow2(y);
  for (auto& v : y) v /= 1024.0;
  EXPECT_LT(max_error(x, y), 1e-10);
}

TEST(FftPlan, MatchesReferenceDftAtTightTolerance) {
  // The precomputed-twiddle plan must track the O(n^2) reference to
  // near machine precision; tolerance scales with the DFT magnitude
  // (values are O(sqrt(n)) for unit-variance input).
  for (const std::size_t n : {2u, 4u, 16u, 128u, 512u}) {
    const std::vector<Complex> x = random_signal(n, 300 + n);
    std::vector<Complex> fast = x;
    FftPlan::get(n)->forward(fast);
    const std::vector<Complex> ref = reference_dft(x);
    EXPECT_LT(max_error(fast, ref), 1e-12 * static_cast<double>(n * n)) << "n=" << n;
  }
}

TEST(FftPlan, OddSizesViaBluesteinMatchReferenceAtTightTolerance) {
  // forward() dispatches odd/composite lengths to Bluestein, which runs
  // on the same plan machinery; hold it to the same precision scale.
  for (const std::size_t n : {3u, 17u, 127u, 241u}) {
    const std::vector<Complex> x = random_signal(n, 400 + n);
    const std::vector<Complex> fast = forward(x);
    const std::vector<Complex> ref = reference_dft(x);
    EXPECT_LT(max_error(fast, ref), 1e-12 * static_cast<double>(n * n)) << "n=" << n;
  }
}

TEST(FftPlan, CacheReturnsSharedPlanPerSize) {
  const auto a = FftPlan::get(256);
  const auto b = FftPlan::get(256);
  EXPECT_EQ(a.get(), b.get());  // one table build per size, process-wide
  EXPECT_EQ(a->size(), 256u);
  EXPECT_NE(a.get(), FftPlan::get(128).get());
}

TEST(FftPlan, ForwardRealScratchReuseIsDeterministic) {
  // forward_real with a reused (warm, possibly oversized) scratch must
  // produce bit-identical spectra to a fresh scratch.
  RandomEngine rng(17);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.normal();
  const auto plan = FftPlan::get(64);
  std::vector<Complex> out_fresh(64);
  std::vector<Complex> out_reused(64);
  std::vector<Complex> fresh_scratch;
  plan->forward_real(x, out_fresh, fresh_scratch);
  std::vector<Complex> warm_scratch(1024);  // oversized from a prior use
  plan->forward_real(x, out_reused, warm_scratch);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_EQ(out_fresh[k], out_reused[k]) << "k=" << k;
  }
}

TEST(Fft, ForwardRejectsNonPowerOfTwo) {
  std::vector<Complex> x(3);
  EXPECT_THROW(forward_pow2(x), InvalidArgument);
}

class BluesteinSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BluesteinSizes, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  const std::vector<Complex> x = random_signal(n, 100 + n);
  const std::vector<Complex> fast = forward(x);
  const std::vector<Complex> ref = reference_dft(x);
  EXPECT_LT(max_error(fast, ref), 1e-8 * static_cast<double>(n));
}

TEST_P(BluesteinSizes, InverseRoundTrip) {
  const std::size_t n = GetParam();
  const std::vector<Complex> x = random_signal(n, 200 + n);
  const std::vector<Complex> back = inverse(forward(x));
  EXPECT_LT(max_error(x, back), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(ArbitraryLengths, BluesteinSizes,
                         ::testing::Values(1, 2, 3, 5, 7, 12, 17, 31, 60, 100, 127, 240));

TEST(Fft, ForwardRealMatchesComplexPath) {
  RandomEngine rng(5);
  std::vector<double> xr(37);
  for (auto& v : xr) v = rng.normal();
  std::vector<Complex> xc(xr.size());
  for (std::size_t i = 0; i < xr.size(); ++i) xc[i] = Complex(xr[i], 0.0);
  EXPECT_LT(max_error(forward_real(xr), forward(xc)), 1e-10);
}

TEST(Fft, RealTransformHasHermitianSymmetry) {
  RandomEngine rng(6);
  std::vector<double> xr(24);
  for (auto& v : xr) v = rng.normal();
  const std::vector<Complex> f = forward_real(xr);
  for (std::size_t k = 1; k < xr.size(); ++k) {
    EXPECT_NEAR(f[k].real(), f[xr.size() - k].real(), 1e-10);
    EXPECT_NEAR(f[k].imag(), -f[xr.size() - k].imag(), 1e-10);
  }
}

TEST(Fft, CircularConvolutionMatchesDirect) {
  const std::size_t n = 9;
  const std::vector<Complex> a = random_signal(n, 7);
  const std::vector<Complex> b = random_signal(n, 8);
  const std::vector<Complex> fast = circular_convolution(a, b);
  std::vector<Complex> ref(n, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) ref[(i + j) % n] += a[i] * b[j];
  }
  EXPECT_LT(max_error(fast, ref), 1e-9);
}

TEST(Fft, CircularConvolutionRequiresEqualLengths) {
  const std::vector<Complex> a(4);
  const std::vector<Complex> b(5);
  EXPECT_THROW(circular_convolution(a, b), InvalidArgument);
}

TEST(Fft, PeriodogramOfSinusoidConcentratesAtItsFrequency) {
  const std::size_t n = 128;
  std::vector<double> x(n);
  const std::size_t bin = 10;
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = std::cos(kTwoPi * static_cast<double>(bin * j) / static_cast<double>(n));
  }
  const std::vector<double> p = periodogram(x);
  ASSERT_EQ(p.size(), n);
  // All energy sits in bins `bin` and `n - bin`.
  double total = 0.0;
  for (const double v : p) total += v;
  EXPECT_NEAR((p[bin] + p[n - bin]) / total, 1.0, 1e-9);
}

TEST(Fft, EmptyInputRejected) {
  const std::vector<Complex> empty;
  EXPECT_THROW(forward(empty), InvalidArgument);
  EXPECT_THROW(inverse(empty), InvalidArgument);
}

TEST(Fft, ParsevalIdentityHolds) {
  const std::size_t n = 60;  // exercises the Bluestein path
  const std::vector<Complex> x = random_signal(n, 11);
  const std::vector<Complex> f = forward(x);
  double time_energy = 0.0;
  double freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : f) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * time_energy * static_cast<double>(n));
}

}  // namespace
}  // namespace ssvbr::fft
