#include "dist/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/error.h"
#include "test_util.h"

namespace ssvbr {
namespace {

// ---------------------------------------------------------------- generic

struct DistCase {
  const char* name;
  std::shared_ptr<const Distribution> dist;
};

class DistributionContract : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionContract, QuantileInvertsCdf) {
  const Distribution& d = *GetParam().dist;
  for (const double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    const double y = d.quantile(p);
    EXPECT_NEAR(d.cdf(y), p, 1e-8) << GetParam().name << " p=" << p;
  }
}

TEST_P(DistributionContract, CdfIsMonotone) {
  const Distribution& d = *GetParam().dist;
  const double lo = d.quantile(0.001);
  const double hi = d.quantile(0.999);
  double prev = -0.1;
  for (int i = 0; i <= 100; ++i) {
    const double y = lo + (hi - lo) * i / 100.0;
    const double c = d.cdf(y);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

TEST_P(DistributionContract, PdfMatchesCdfDerivative) {
  const Distribution& d = *GetParam().dist;
  for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double y = d.quantile(p);
    const double h = std::max(1e-6, std::fabs(y) * 1e-6);
    const double numeric = (d.cdf(y + h) - d.cdf(y - h)) / (2.0 * h);
    EXPECT_NEAR(d.pdf(y), numeric, 1e-4 * (1.0 + numeric))
        << GetParam().name << " y=" << y;
  }
}

TEST_P(DistributionContract, SampleMomentsMatchAnalytic) {
  const Distribution& d = *GetParam().dist;
  if (!std::isfinite(d.mean()) || !std::isfinite(d.variance())) GTEST_SKIP();
  RandomEngine rng(99);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  const double se_mean = std::sqrt(d.variance() / n);
  EXPECT_NEAR(mean, d.mean(), 6.0 * se_mean + 1e-9) << GetParam().name;
  EXPECT_NEAR(var, d.variance(), 0.1 * d.variance() + 1e-9) << GetParam().name;
}

TEST_P(DistributionContract, DescribeIsNonEmpty) {
  EXPECT_FALSE(GetParam().dist->describe().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DistributionContract,
    ::testing::Values(
        DistCase{"normal", std::make_shared<NormalDistribution>(3.0, 2.0)},
        DistCase{"gamma_sub1", std::make_shared<GammaDistribution>(0.7, 5.0)},
        DistCase{"gamma", std::make_shared<GammaDistribution>(2.5, 1000.0)},
        // alpha = 4.5 keeps the fourth moment finite so the sample
        // variance converges at the usual rate (heavier tails are
        // exercised by the dedicated Pareto tests below).
        DistCase{"pareto", std::make_shared<ParetoDistribution>(4.5, 100.0)},
        DistCase{"lognormal", std::make_shared<LognormalDistribution>(1.0, 0.5)},
        DistCase{"gamma_pareto",
                 std::make_shared<GammaParetoDistribution>(
                     GammaParetoDistribution::with_continuous_density(2.0, 1000.0,
                                                                      5000.0, 1.8))}),
    [](const auto& info) { return info.param.name; });

// ----------------------------------------------------------------- normal

TEST(Normal, RejectsNonPositiveStddev) {
  EXPECT_THROW(NormalDistribution(0.0, 0.0), InvalidArgument);
  EXPECT_THROW(NormalDistribution(0.0, -1.0), InvalidArgument);
}

// ------------------------------------------------------------------ gamma

TEST(Gamma, MeanAndVariance) {
  const GammaDistribution g(3.0, 2.0);
  EXPECT_DOUBLE_EQ(g.mean(), 6.0);
  EXPECT_DOUBLE_EQ(g.variance(), 12.0);
}

TEST(Gamma, CdfZeroBelowSupport) {
  const GammaDistribution g(2.0, 1.0);
  EXPECT_DOUBLE_EQ(g.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(g.pdf(-1.0), 0.0);
}

TEST(Gamma, SamplerCoversSubUnityShape) {
  // shape < 1 exercises the boosting branch of Marsaglia-Tsang.
  const GammaDistribution g(0.4, 1.0);
  RandomEngine rng(5);
  const double ks = testing::ks_statistic(
      [&] {
        std::vector<double> s(20000);
        for (auto& v : s) v = g.sample(rng);
        return s;
      }(),
      [&](double y) { return g.cdf(y); });
  EXPECT_LT(ks, 0.015);
}

// ----------------------------------------------------------------- pareto

TEST(Pareto, TailAndMoments) {
  const ParetoDistribution p(3.0, 2.0);
  EXPECT_DOUBLE_EQ(p.cdf(2.0), 0.0);
  EXPECT_NEAR(p.cdf(4.0), 1.0 - std::pow(0.5, 3.0), 1e-12);
  EXPECT_NEAR(p.mean(), 3.0, 1e-12);
  EXPECT_NEAR(p.variance(), 2.0 * 2.0 * 3.0 / (4.0 * 1.0), 1e-12);
}

TEST(Pareto, InfiniteMomentsForHeavyTails) {
  EXPECT_TRUE(std::isinf(ParetoDistribution(0.9, 1.0).mean()));
  EXPECT_TRUE(std::isinf(ParetoDistribution(1.5, 1.0).variance()));
  EXPECT_TRUE(std::isfinite(ParetoDistribution(1.5, 1.0).mean()));
}

// ------------------------------------------------------------ gamma-pareto

TEST(GammaPareto, DensityContinuousAtSplice) {
  const auto d = GammaParetoDistribution::with_continuous_density(2.0, 1000.0, 5000.0, 1.8);
  const double left = d.pdf(5000.0 - 1e-6);
  const double right = d.pdf(5000.0 + 1e-6);
  EXPECT_NEAR(left, right, 1e-6 * right);
}

TEST(GammaPareto, CdfContinuousAtSplice) {
  const auto d = GammaParetoDistribution::with_continuous_density(2.0, 1000.0, 5000.0, 1.8);
  EXPECT_NEAR(d.cdf(5000.0 - 1e-9), d.cdf(5000.0 + 1e-9), 1e-9);
  EXPECT_NEAR(d.cdf(5000.0), 1.0 - d.tail_mass(), 1e-12);
}

TEST(GammaPareto, TailIsExactlyPareto) {
  const GammaParetoDistribution d(2.0, 1000.0, 5000.0, 1.8, 0.05);
  // Conditional tail beyond the splice: P(Y > y | Y > split) = (split/y)^alpha.
  const double cond = (1.0 - d.cdf(10000.0)) / 0.05;
  EXPECT_NEAR(cond, std::pow(0.5, 1.8), 1e-10);
}

TEST(GammaPareto, MeanMatchesSimulation) {
  const auto d = GammaParetoDistribution::with_continuous_density(2.0, 1000.0, 6000.0, 2.5);
  RandomEngine rng(17);
  const int n = 400000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), 0.02 * d.mean());
}

TEST(GammaPareto, RejectsBadTailMass) {
  EXPECT_THROW(GammaParetoDistribution(2.0, 1.0, 5.0, 2.0, 0.0), InvalidArgument);
  EXPECT_THROW(GammaParetoDistribution(2.0, 1.0, 5.0, 2.0, 1.0), InvalidArgument);
}

// --------------------------------------------------------------- lognormal

TEST(Lognormal, MomentFormulas) {
  const LognormalDistribution d(1.0, 0.5);
  EXPECT_NEAR(d.mean(), std::exp(1.0 + 0.125), 1e-12);
  EXPECT_NEAR(d.variance(), (std::exp(0.25) - 1.0) * std::exp(2.0 + 0.25), 1e-10);
}

}  // namespace
}  // namespace ssvbr
