#include "core/iterative_calibration.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.h"
#include "dist/distributions.h"
#include "fractal/autocorrelation.h"
#include "stats/descriptive.h"

namespace ssvbr::core {
namespace {

// Target: the foreground ACF of a "true" model. Starting from a
// deliberately detuned model, calibration must move toward the truth.
// Continuity at the knee (eq. (14)) keeps the composites positive
// definite; lambda is implied by (L, beta, knee).
UnifiedVbrModel make_model(double lrd_scale, double beta, double knee) {
  auto corr = std::make_shared<fractal::CompositeSrdLrdAutocorrelation>(
      fractal::CompositeSrdLrdAutocorrelation::with_continuity(lrd_scale, beta, knee));
  MarginalTransform h(std::make_shared<GammaDistribution>(2.0, 1000.0));
  return UnifiedVbrModel(std::move(corr), std::move(h));
}

std::vector<double> foreground_acf_of(const UnifiedVbrModel& model, std::size_t max_lag,
                                      std::uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<double> acf(max_lag + 1, 0.0);
  const int reps = 8;
  for (int rep = 0; rep < reps; ++rep) {
    const auto y = model.generate(16384, rng);
    const auto a = stats::autocorrelation_fft(y, max_lag);
    for (std::size_t k = 0; k <= max_lag; ++k) acf[k] += a[k] / reps;
  }
  return acf;
}

TEST(IterativeCalibration, ReducesAcfErrorFromDetunedStart) {
  const UnifiedVbrModel truth = make_model(0.9, 0.3, 40.0);
  const std::vector<double> target = foreground_acf_of(truth, 250, 99);

  // Detuned start: too-fast SRD decay and too-small LRD amplitude.
  const UnifiedVbrModel start = make_model(0.55, 0.3, 40.0);

  IterativeCalibrationOptions options;
  options.iterations = 5;
  options.acf_max_lag = 250;
  options.path_length = 8192;
  options.replications = 4;
  RandomEngine rng(1);
  const CalibrationResult result =
      calibrate_foreground_acf(start, target, options, rng);

  ASSERT_EQ(result.history.size(), 5u);
  EXPECT_LT(result.final_error, result.initial_error);
  EXPECT_LT(result.final_error, 0.6 * result.initial_error);

  // The calibrated background parameters moved toward the truth
  // (truth L = 0.9, start L = 0.55 with a faster-decaying SRD branch).
  const auto* calibrated = dynamic_cast<const fractal::CompositeSrdLrdAutocorrelation*>(
      &result.model.background_correlation());
  ASSERT_NE(calibrated, nullptr);
  EXPECT_GT(calibrated->lrd_scale(), 0.55);
}

TEST(IterativeCalibration, NearPerfectStartStaysNearPerfect) {
  const UnifiedVbrModel truth = make_model(0.9, 0.3, 40.0);
  const std::vector<double> target = foreground_acf_of(truth, 200, 98);
  IterativeCalibrationOptions options;
  options.iterations = 3;
  options.acf_max_lag = 200;
  options.path_length = 8192;
  RandomEngine rng(2);
  const CalibrationResult result =
      calibrate_foreground_acf(truth, target, options, rng);
  // Starting at the truth, the best-seen error must stay small (the
  // loop may wiggle but returns the best iterate).
  EXPECT_LE(result.final_error, result.initial_error + 1e-12);
  EXPECT_LT(result.final_error, 0.1);
}

TEST(IterativeCalibration, CalibratedModelStaysPositiveDefinite) {
  const UnifiedVbrModel truth = make_model(1.2, 0.25, 60.0);
  const std::vector<double> target = foreground_acf_of(truth, 200, 97);
  const UnifiedVbrModel start = make_model(0.8, 0.25, 60.0);
  IterativeCalibrationOptions options;
  options.iterations = 4;
  options.acf_max_lag = 200;
  options.path_length = 8192;
  RandomEngine rng(3);
  const CalibrationResult result =
      calibrate_foreground_acf(start, target, options, rng);
  EXPECT_TRUE(
      fractal::is_valid_correlation(result.model.background_correlation(), 1024));
}

TEST(IterativeCalibration, Validation) {
  const UnifiedVbrModel model = make_model(0.9, 0.3, 40.0);
  std::vector<double> target(301, 0.5);
  target[0] = 1.0;
  RandomEngine rng(4);
  IterativeCalibrationOptions options;
  options.acf_max_lag = 400;  // longer than the target
  EXPECT_THROW(calibrate_foreground_acf(model, target, options, rng), InvalidArgument);
  options.acf_max_lag = 300;
  options.path_length = 100;  // too short
  EXPECT_THROW(calibrate_foreground_acf(model, target, options, rng), InvalidArgument);
  options.path_length = 8192;
  options.damping = 0.0;
  EXPECT_THROW(calibrate_foreground_acf(model, target, options, rng), InvalidArgument);

  // Non-composite background is rejected.
  auto fgn = std::make_shared<fractal::FgnAutocorrelation>(0.8);
  MarginalTransform h(std::make_shared<GammaDistribution>(2.0, 1.0));
  const UnifiedVbrModel fgn_model(fgn, std::move(h));
  IterativeCalibrationOptions ok;
  EXPECT_THROW(calibrate_foreground_acf(fgn_model, target, ok, rng), InvalidArgument);
}

}  // namespace
}  // namespace ssvbr::core
