#include "queueing/batch_means.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "dist/random.h"
#include "fractal/autocorrelation.h"
#include "fractal/davies_harte.h"

namespace ssvbr::queueing {
namespace {

TEST(BatchMeans, PointEstimateIsGrandMeanOfFullBatches) {
  // 10 observations, 3 batches of 3: the last observation is dropped.
  const std::vector<double> xs{1, 1, 1, 2, 2, 2, 3, 3, 3, 100};
  const BatchMeansEstimate est = batch_means(xs, 3);
  EXPECT_EQ(est.n_batches, 3u);
  EXPECT_EQ(est.batch_size, 3u);
  EXPECT_NEAR(est.mean, 2.0, 1e-12);
  EXPECT_NEAR(est.batch_variance, 1.0, 1e-12);
  EXPECT_NEAR(est.ci95_halfwidth, 2.0 * std::sqrt(1.0 / 3.0), 1e-12);
}

TEST(BatchMeans, IidDataGivesTightCalibratedIntervals) {
  RandomEngine rng(1);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.normal(5.0, 2.0);
  const BatchMeansEstimate est = batch_means(xs, 20);
  EXPECT_NEAR(est.mean, 5.0, 0.05);
  // For iid data the CI half width approaches 2 * sigma / sqrt(n).
  EXPECT_NEAR(est.ci95_halfwidth, 2.0 * 2.0 / std::sqrt(100000.0), 0.01);
  EXPECT_LT(std::fabs(est.batch_mean_lag1_correlation), 0.6);
}

TEST(BatchMeans, LrdDataShowsCorrelatedBatchesAndWideIntervals) {
  // The paper's caution: batches of a self-similar stream stay
  // correlated. Compare CI width of fGn(H=0.9) against iid noise of the
  // same marginal variance.
  const fractal::FgnAutocorrelation corr(0.9);
  const fractal::DaviesHarteModel gen(corr, 1 << 15);
  RandomEngine rng(2);
  const std::vector<double> lrd = gen.sample(rng);
  std::vector<double> iid(lrd.size());
  for (auto& x : iid) x = rng.normal();

  const BatchMeansEstimate est_lrd = batch_means(lrd, 16);
  const BatchMeansEstimate est_iid = batch_means(iid, 16);
  EXPECT_GT(est_lrd.ci95_halfwidth, 3.0 * est_iid.ci95_halfwidth);
}

TEST(BatchMeans, Validation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW(batch_means(xs, 1), InvalidArgument);
  EXPECT_THROW(batch_means(xs, 4), InvalidArgument);
}

TEST(SteadyStateBatchMeans, MatchesDirectEstimateOnDeterministicCycle) {
  // Arrivals {3, 0, 0} with service 1: queue cycle {2, 1, 0} =>
  // P(Q > 0.5) = 2/3 exactly; batch means must agree with near-zero
  // between-batch variance (the cycle repeats identically).
  std::vector<double> arrivals;
  for (int i = 0; i < 3000; ++i) arrivals.push_back(i % 3 == 0 ? 3.0 : 0.0);
  const BatchMeansEstimate est =
      steady_state_overflow_batch_means(arrivals, 1.0, 0.5, 10);
  EXPECT_NEAR(est.mean, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(est.batch_variance, 0.0, 1e-12);
}

TEST(SteadyStateBatchMeans, WarmupExcluded) {
  std::vector<double> arrivals(5000, 0.5);
  const BatchMeansEstimate est =
      steady_state_overflow_batch_means(arrivals, 1.0, 0.1, 5, 1000);
  EXPECT_EQ(est.batch_size, 800u);
  EXPECT_THROW(steady_state_overflow_batch_means(arrivals, 1.0, 0.1, 5, 5000),
               InvalidArgument);
}

}  // namespace
}  // namespace ssvbr::queueing
