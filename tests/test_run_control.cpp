// Durable run-control tests: the RunRequest/RunResult façade, shard
// checkpointing, crash-and-resume bit-identity, cancellation, budgets,
// and the structured-error surface (engine/run.h, engine/checkpoint.h).
#include "engine/run.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.h"
#include "dist/distributions.h"
#include "engine/checkpoint.h"
#include "fractal/autocorrelation.h"

namespace ssvbr::engine {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

core::UnifiedVbrModel make_model() {
  auto corr = std::make_shared<fractal::ExponentialAutocorrelation>(0.1);
  core::MarginalTransform h(std::make_shared<GammaDistribution>(2.0, 1.0));
  return core::UnifiedVbrModel(std::move(corr), std::move(h));
}

ArrivalFactory gamma_arrivals() {
  auto gamma = std::make_shared<GammaDistribution>(2.0, 1.0);
  return [gamma] { return std::make_unique<queueing::IidArrivalProcess>(gamma); };
}

is::IsOverflowSettings rare_settings(const core::UnifiedVbrModel& model,
                                     std::size_t replications) {
  is::IsOverflowSettings settings;
  settings.twisted_mean = 2.0;
  settings.service_rate = model.mean() / 0.3;
  settings.buffer = 15.0 * model.mean();
  settings.stop_time = 60;
  settings.replications = replications;
  return settings;
}

/// Per-test checkpoint path under gtest's temp dir; removed up front so
/// a crashed previous run cannot leak state into this one.
std::string fresh_checkpoint_path(const char* name) {
  const std::string path = ::testing::TempDir() + "ssvbr_ckpt_" + name + ".json";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

RunRequest is_request(const core::UnifiedVbrModel& model,
                      const fractal::HoskingModel& background,
                      std::size_t replications) {
  RunRequest request;
  request.kind = EstimatorKind::kOverflowIs;
  request.is.model = &model;
  request.is.background = &background;
  request.is.settings = rare_settings(model, replications);
  request.seed = 7771;
  request.engine.threads = 1;
  request.engine.shard_size = 16;
  return request;
}

// ---------------------------------------------------------------------------
// Validation: structured errors instead of scattered asserts.
// ---------------------------------------------------------------------------

TEST(RunControlValidation, RejectsZeroReplications) {
  const core::UnifiedVbrModel model = make_model();
  const fractal::HoskingModel background(model.background_correlation(), 60);
  RunRequest request = is_request(model, background, 0);
  const auto err = validate(request);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::kInvalidArgument);
  EXPECT_THROW(run(request), RunError);
}

TEST(RunControlValidation, RejectsMissingModel) {
  RunRequest request;
  request.kind = EstimatorKind::kOverflowIs;
  const auto err = validate(request);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(err->context, "RunRequest.is.model");
}

TEST(RunControlValidation, RejectsMissingArrivalFactory) {
  RunRequest request;
  request.kind = EstimatorKind::kOverflowMc;
  request.mc.replications = 10;
  const auto err = validate(request);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(err->context, "RunRequest.mc.make_arrivals");
}

TEST(RunControlValidation, RejectsUnwritableCheckpointPath) {
  const core::UnifiedVbrModel model = make_model();
  const fractal::HoskingModel background(model.background_correlation(), 60);
  RunRequest request = is_request(model, background, 16);
  request.checkpoint.path = "/nonexistent-ssvbr-dir/campaign.ckpt";
  const auto err = validate(request);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::kUnwritableCheckpoint);
  try {
    run(request);
    FAIL() << "run() must reject an unwritable checkpoint path";
  } catch (const RunError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnwritableCheckpoint);
    EXPECT_EQ(e.context(), "/nonexistent-ssvbr-dir/campaign.ckpt");
  }
}

TEST(RunControlValidation, RejectsEmptyTwistGrid) {
  const core::UnifiedVbrModel model = make_model();
  const fractal::HoskingModel background(model.background_correlation(), 60);
  RunRequest request = is_request(model, background, 16);
  request.kind = EstimatorKind::kTwistSweep;
  const auto err = validate(request);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::kEmptyTwistGrid);
}

TEST(RunControlValidation, RejectsSweepCheckpointing) {
  const core::UnifiedVbrModel model = make_model();
  const fractal::HoskingModel background(model.background_correlation(), 60);
  RunRequest request = is_request(model, background, 16);
  request.kind = EstimatorKind::kTwistSweep;
  request.is.twists = {1.0, 2.0};
  request.checkpoint.path = fresh_checkpoint_path("sweep_unsupported");
  const auto err = validate(request);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// The tentpole: kill mid-campaign, resume, reproduce bit-identically.
// ---------------------------------------------------------------------------

TEST(RunControlDurability, InterruptedIsCampaignResumesBitIdentically) {
  const core::UnifiedVbrModel model = make_model();
  const fractal::HoskingModel background(model.background_correlation(), 60);
  const std::size_t reps = 160;  // 10 shards of 16

  // Reference: one uninterrupted run.
  RunRequest reference = is_request(model, background, reps);
  RandomEngine ref_rng(reference.seed);
  ReplicationEngine ref_engine(EngineConfig{1, 16});
  const RunResult ref = run_with(reference, ref_engine, ref_rng);
  ASSERT_TRUE(ref.complete());
  ASSERT_EQ(ref.replications_done, reps);

  // Interrupted: the in-process fault injector throws after 3 shards;
  // one thread makes the interruption point exact. The engine must
  // write a final snapshot before propagating the fault.
  const std::string path = fresh_checkpoint_path("is_roundtrip");
  RunRequest interrupted = is_request(model, background, reps);
  interrupted.checkpoint.path = path;
  interrupted.checkpoint.every_shards = 1;
  interrupted.controls.fault_hook = [](std::size_t k) {
    if (k >= 3) throw std::runtime_error("injected fault after 3 shards");
  };
  EXPECT_THROW(run(interrupted), std::runtime_error);
  ASSERT_TRUE(checkpoint::exists(path));
  {
    const checkpoint::Snapshot snap = checkpoint::load(path);
    EXPECT_EQ(snap.shards.size(), 3u);
    EXPECT_EQ(snap.shards_total, 10u);
    EXPECT_EQ(snap.replications_done, 48u);
  }

  // Resume on FOUR threads: restored shards are merged, not replayed,
  // and the estimate matches the uninterrupted single-thread run bit
  // for bit.
  RunRequest resumed = is_request(model, background, reps);
  resumed.checkpoint.path = path;
  resumed.checkpoint.resume = true;
  ReplicationEngine resume_engine(EngineConfig{4, 16});
  RandomEngine resume_rng(resumed.seed);
  const RunResult res = run_with(resumed, resume_engine, resume_rng);

  EXPECT_TRUE(res.complete());
  EXPECT_TRUE(res.provenance.resumed);
  EXPECT_EQ(res.provenance.resumed_shards, 3u);
  EXPECT_EQ(res.provenance.shards_total, 10u);
  EXPECT_EQ(res.replications_done, reps);
  EXPECT_EQ(bits(res.is_estimate.probability), bits(ref.is_estimate.probability));
  EXPECT_EQ(bits(res.is_estimate.estimator_variance),
            bits(ref.is_estimate.estimator_variance));
  EXPECT_EQ(bits(res.is_estimate.normalized_variance),
            bits(ref.is_estimate.normalized_variance));
  EXPECT_EQ(res.is_estimate.hits, ref.is_estimate.hits);
  // The caller-visible stream state also matches: resuming consumed the
  // same stream real estate as running straight through.
  EXPECT_TRUE(resume_rng.state() == ref_rng.state());
}

TEST(RunControlDurability, InterruptedMcCampaignResumesBitIdentically) {
  const std::size_t reps = 320;  // 10 shards of 32

  RunRequest base;
  base.kind = EstimatorKind::kOverflowMc;
  base.mc.make_arrivals = gamma_arrivals();
  base.mc.service_rate = 2.5;
  base.mc.buffer = 10.0;
  base.mc.stop_time = 50;
  base.mc.replications = reps;
  base.seed = 1234;
  base.engine.threads = 1;
  base.engine.shard_size = 32;

  RunRequest reference = base;
  const RunResult ref = run(reference);
  ASSERT_TRUE(ref.complete());

  const std::string path = fresh_checkpoint_path("mc_roundtrip");
  RunRequest interrupted = base;
  interrupted.checkpoint.path = path;
  interrupted.checkpoint.every_shards = 1;
  interrupted.controls.fault_hook = [](std::size_t k) {
    if (k >= 4) throw std::runtime_error("injected fault after 4 shards");
  };
  EXPECT_THROW(run(interrupted), std::runtime_error);
  ASSERT_TRUE(checkpoint::exists(path));

  RunRequest resumed = base;
  resumed.engine.threads = 4;
  resumed.checkpoint.path = path;
  resumed.checkpoint.resume = true;
  const RunResult res = run(resumed);

  EXPECT_TRUE(res.complete());
  EXPECT_TRUE(res.provenance.resumed);
  EXPECT_EQ(res.provenance.resumed_shards, 4u);
  EXPECT_EQ(bits(res.mc.probability), bits(ref.mc.probability));
  EXPECT_EQ(res.mc.hits, ref.mc.hits);
}

TEST(RunControlDurability, BudgetSlicesAdvanceTheCampaignToTheSameBits) {
  // Run the campaign in max_replications-bounded slices across
  // "process lifetimes" (fresh engine + rng each time, state carried
  // only by the checkpoint file) until it completes; the final estimate
  // must equal the uninterrupted one bit for bit.
  const core::UnifiedVbrModel model = make_model();
  const fractal::HoskingModel background(model.background_correlation(), 60);
  const std::size_t reps = 128;  // 8 shards of 16

  RunRequest reference = is_request(model, background, reps);
  const RunResult ref = run(reference);
  ASSERT_TRUE(ref.complete());

  const std::string path = fresh_checkpoint_path("budget_slices");
  RunResult last;
  int slices = 0;
  for (; slices < 32; ++slices) {
    RunRequest slice = is_request(model, background, reps);
    slice.checkpoint.path = path;
    slice.checkpoint.every_shards = 1;
    slice.checkpoint.resume = true;
    slice.controls.max_replications = 48;  // 3 shards per slice
    last = run(slice);
    if (last.complete()) break;
    EXPECT_EQ(last.status, RunStatus::kBudgetExhausted);
  }
  ASSERT_TRUE(last.complete());
  EXPECT_GE(slices, 2);  // the budget actually sliced the campaign
  EXPECT_EQ(bits(last.is_estimate.probability), bits(ref.is_estimate.probability));
  EXPECT_EQ(bits(last.is_estimate.estimator_variance),
            bits(ref.is_estimate.estimator_variance));
  EXPECT_EQ(last.is_estimate.hits, ref.is_estimate.hits);
}

TEST(RunControlDurability, PreRaisedStopFlagCancelsBeforeAnyShard) {
  const core::UnifiedVbrModel model = make_model();
  const fractal::HoskingModel background(model.background_correlation(), 60);
  const std::string path = fresh_checkpoint_path("cancel_resume");

  std::atomic<bool> stop{true};
  RunRequest cancelled = is_request(model, background, 96);
  cancelled.checkpoint.path = path;
  cancelled.controls.stop = &stop;
  ReplicationEngine engine(EngineConfig{2, 16});
  RandomEngine rng(cancelled.seed);
  const RandomEngine::State before = rng.state();
  const RunResult res = run_with(cancelled, engine, rng);
  EXPECT_EQ(res.status, RunStatus::kCancelled);
  EXPECT_EQ(res.replications_done, 0u);
  // An incomplete study consumes no caller-visible stream real estate.
  EXPECT_TRUE(rng.state() == before);
  // The drain still wrote a (0-shard) snapshot; resuming from it and
  // finishing matches a straight run.
  ASSERT_TRUE(checkpoint::exists(path));

  RunRequest reference = is_request(model, background, 96);
  const RunResult ref = run(reference);
  RunRequest resumed = is_request(model, background, 96);
  resumed.checkpoint.path = path;
  resumed.checkpoint.resume = true;
  const RunResult fin = run(resumed);
  ASSERT_TRUE(fin.complete());
  EXPECT_EQ(bits(fin.is_estimate.probability), bits(ref.is_estimate.probability));
}

TEST(RunControlDurability, TinyDeadlineExpires) {
  const core::UnifiedVbrModel model = make_model();
  const fractal::HoskingModel background(model.background_correlation(), 60);
  RunRequest request = is_request(model, background, 4096);
  request.controls.deadline_seconds = 1e-9;
  const RunResult res = run(request);
  EXPECT_EQ(res.status, RunStatus::kDeadlineExpired);
  EXPECT_LT(res.replications_done, 4096u);
}

TEST(RunControlDurability, FingerprintMismatchIsRejected) {
  const core::UnifiedVbrModel model = make_model();
  const fractal::HoskingModel background(model.background_correlation(), 60);
  const std::string path = fresh_checkpoint_path("fingerprint");

  RunRequest first = is_request(model, background, 96);
  first.checkpoint.path = path;
  first.checkpoint.every_shards = 1;
  first.controls.fault_hook = [](std::size_t k) {
    if (k >= 2) throw std::runtime_error("injected fault");
  };
  EXPECT_THROW(run(first), std::runtime_error);
  ASSERT_TRUE(checkpoint::exists(path));

  // A different buffer is a different campaign (config hash changes).
  RunRequest changed_config = is_request(model, background, 96);
  changed_config.is.settings.buffer *= 2.0;
  changed_config.checkpoint.path = path;
  changed_config.checkpoint.resume = true;
  try {
    run(changed_config);
    FAIL() << "resume must reject a snapshot with a different config";
  } catch (const RunError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFingerprintMismatch);
  }

  // A different seed is a different stream family.
  RunRequest changed_seed = is_request(model, background, 96);
  changed_seed.seed = 9999;
  changed_seed.checkpoint.path = path;
  changed_seed.checkpoint.resume = true;
  try {
    run(changed_seed);
    FAIL() << "resume must reject a snapshot with a different seed";
  } catch (const RunError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFingerprintMismatch);
  }

  // A different shard size changes the merge structure.
  RunRequest changed_shards = is_request(model, background, 96);
  changed_shards.engine.shard_size = 32;
  changed_shards.checkpoint.path = path;
  changed_shards.checkpoint.resume = true;
  try {
    run(changed_shards);
    FAIL() << "resume must reject a snapshot with a different shard size";
  } catch (const RunError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFingerprintMismatch);
  }
}

TEST(RunControlDurability, CorruptCheckpointIsRejected) {
  const core::UnifiedVbrModel model = make_model();
  const fractal::HoskingModel background(model.background_correlation(), 60);
  const std::string path = fresh_checkpoint_path("corrupt");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"magic\": \"not-a-checkpoint\"", f);
    std::fclose(f);
  }
  RunRequest request = is_request(model, background, 96);
  request.checkpoint.path = path;
  request.checkpoint.resume = true;
  try {
    run(request);
    FAIL() << "resume must reject a torn/garbage snapshot";
  } catch (const RunError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCheckpointCorrupt);
  }
}

TEST(RunControlDurability, ResumeWithoutSnapshotStartsFresh) {
  const core::UnifiedVbrModel model = make_model();
  const fractal::HoskingModel background(model.background_correlation(), 60);
  RunRequest request = is_request(model, background, 64);
  request.checkpoint.path = fresh_checkpoint_path("fresh_start");
  request.checkpoint.resume = true;  // nothing to resume: not an error
  const RunResult res = run(request);
  EXPECT_TRUE(res.complete());
  EXPECT_FALSE(res.provenance.resumed);
  EXPECT_EQ(res.provenance.resumed_shards, 0u);
  EXPECT_GE(res.provenance.checkpoints_written, 1u);
}

// ---------------------------------------------------------------------------
// Snapshot format unit coverage.
// ---------------------------------------------------------------------------

TEST(CheckpointFormat, SaveLoadRoundTripsEveryBit) {
  const std::string path = fresh_checkpoint_path("format_roundtrip");
  checkpoint::Snapshot snap;
  snap.fingerprint.estimator = "overflow_is";
  snap.fingerprint.accumulator = "score";
  snap.fingerprint.config_hash = 0xDEADBEEFCAFEF00DULL;
  snap.fingerprint.replications = 1000;
  snap.fingerprint.shard_size = 64;
  RandomEngine rng(31337);
  (void)rng.normal();  // populate the Box-Muller cache
  snap.fingerprint.rng = rng.state();
  snap.shards_total = 16;
  snap.replications_done = 128;
  // Denormals, negative zero, infinities: hex round-trip must be exact.
  snap.shards.push_back({0, {1, bits(-0.0), bits(1e-310), 0}});
  snap.shards.push_back({7, {2, bits(0.1), bits(-INFINITY), ~0ULL}});

  checkpoint::save(path, snap);
  const checkpoint::Snapshot back = checkpoint::load(path);
  EXPECT_TRUE(back.fingerprint == snap.fingerprint);
  EXPECT_EQ(back.shards_total, snap.shards_total);
  EXPECT_EQ(back.replications_done, snap.replications_done);
  ASSERT_EQ(back.shards.size(), snap.shards.size());
  for (std::size_t s = 0; s < snap.shards.size(); ++s) {
    EXPECT_EQ(back.shards[s].index, snap.shards[s].index);
    EXPECT_EQ(back.shards[s].words, snap.shards[s].words);
  }
  const std::vector<char> flags = back.completed_flags();
  ASSERT_EQ(flags.size(), 16u);
  EXPECT_EQ(flags[0], 1);
  EXPECT_EQ(flags[7], 1);
  EXPECT_EQ(flags[1], 0);
}

TEST(CheckpointFormat, LoadRejectsDuplicateShardIndices) {
  const std::string path = fresh_checkpoint_path("format_dup");
  checkpoint::Snapshot snap;
  snap.fingerprint.estimator = "overflow_mc";
  snap.fingerprint.accumulator = "hit";
  snap.shards_total = 4;
  snap.shards.push_back({1, {1, 0}});
  snap.shards.push_back({1, {1, 0}});  // duplicate
  checkpoint::save(path, snap);
  try {
    checkpoint::load(path);
    FAIL() << "duplicate shard records must be rejected";
  } catch (const RunError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCheckpointCorrupt);
  }
}

TEST(RunControlErrors, ErrorCodeStringsAndFormatting) {
  EXPECT_STREQ(to_string(ErrorCode::kFingerprintMismatch), "fingerprint_mismatch");
  EXPECT_STREQ(to_string(RunStatus::kBudgetExhausted), "budget_exhausted");
  const Error err{ErrorCode::kUnwritableCheckpoint, "no such directory", "/tmp/x"};
  const RunError wrapped(err);
  EXPECT_NE(std::string(wrapped.what()).find("unwritable_checkpoint"),
            std::string::npos);
  EXPECT_NE(std::string(wrapped.what()).find("/tmp/x"), std::string::npos);
}

TEST(RunControlSigint, LatchInstallAndReset) {
  install_sigint_cancellation();  // idempotent; must not disturb gtest
  reset_sigint_flag();
  EXPECT_FALSE(sigint_flag().load());
}

}  // namespace
}  // namespace ssvbr::engine
